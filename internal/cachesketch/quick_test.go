package cachesketch

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/faults"
)

// quickOp is one randomly generated protocol event. testing/quick fills
// the fields; interpretation maps them onto protocol operations.
type quickOp struct {
	Kind    uint8 // % 4 → cached-read, write, advance, snapshot-check
	Key     uint8 // % 8 → one of eight resources
	Seconds uint8 // time parameter
}

// TestQuickServerSketchInvariants drives the server sketch with random
// op sequences and checks two invariants after every step:
//
//  1. No false negatives: every resource that had a write while a
//     reported copy was unexpired must be in the sketch until that copy's
//     expiry (tracked by a naive reference model).
//  2. Conservative only: the sketch may track more (false positives are
//     legal) but Contains must never be false when the model says true.
func TestQuickServerSketchInvariants(t *testing.T) {
	f := func(ops []quickOp) bool {
		clk := clock.NewSimulated(time.Time{})
		srv := NewServer(ServerConfig{Capacity: 100, FalsePositiveRate: 0.01, Clock: clk})

		// Reference model: per key, the maximum reported expiry and the
		// deadline until which the key must be tracked (set on write).
		maxExpiry := map[string]time.Time{}
		mustTrackUntil := map[string]time.Time{}

		for _, op := range ops {
			key := fmt.Sprintf("/r/%d", op.Key%8)
			switch op.Kind % 4 {
			case 0: // cached read with TTL 1..64s
				exp := clk.Now().Add(time.Duration(op.Seconds%64+1) * time.Second)
				srv.ReportCachedRead(key, exp)
				if exp.After(maxExpiry[key]) {
					maxExpiry[key] = exp
				}
			case 1: // write
				srv.ReportWrite(key)
				if exp, ok := maxExpiry[key]; ok && exp.After(clk.Now()) {
					if exp.After(mustTrackUntil[key]) {
						mustTrackUntil[key] = exp
					}
				}
			case 2: // time passes 0..16s
				clk.Advance(time.Duration(op.Seconds%16) * time.Second)
			case 3: // invariant probe via snapshot
				sn := srv.Snapshot()
				for k, until := range mustTrackUntil {
					if clk.Now().Before(until) && !sn.MightBeStale(k) {
						return false // false negative — protocol broken
					}
				}
			}
			// Invariant 1 on the live server after every op.
			for k, until := range mustTrackUntil {
				if clk.Now().Before(until) && !srv.Contains(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSketchDrainsWhenQuiescent: after arbitrary activity, once all
// reported expirations have passed the sketch must be empty — no leaks.
func TestQuickSketchDrainsWhenQuiescent(t *testing.T) {
	f := func(ops []quickOp) bool {
		clk := clock.NewSimulated(time.Time{})
		srv := NewServer(ServerConfig{Capacity: 100, Clock: clk})
		for _, op := range ops {
			key := fmt.Sprintf("/r/%d", op.Key%8)
			switch op.Kind % 3 {
			case 0:
				srv.ReportCachedRead(key, clk.Now().Add(time.Duration(op.Seconds%64+1)*time.Second))
			case 1:
				srv.ReportWrite(key)
			case 2:
				clk.Advance(time.Duration(op.Seconds%8) * time.Second)
			}
		}
		clk.Advance(65 * time.Second) // beyond every possible TTL
		st := srv.Stats()
		return st.Tracked == 0 && st.TableSize == 0 && st.Adds == st.Removes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeltaAtomicityUnderSketchFaults is the chaos-mode version of
// the protocol property: the sketch channel drops out at random (seeded
// fault injector, error bursts), so the client is often stuck on an
// expired snapshot. A device following the degradation discipline —
// refresh when NeedsRefresh; with a fresh snapshot obey Check; without
// one serve a held copy only while it is younger than Δ, otherwise force
// a revalidation — must still never serve a version staler than Δ.
// Random op sequences from testing/quick; every served version is judged
// against a VersionLog reference.
func TestQuickDeltaAtomicityUnderSketchFaults(t *testing.T) {
	const delta = 10 * time.Second
	const ttl = 30 * time.Second
	trial := int64(0)
	f := func(ops []quickOp) bool {
		trial++
		clk := clock.NewSimulated(time.Time{})
		srv := NewServer(ServerConfig{Capacity: 100, FalsePositiveRate: 0.01, Clock: clk})
		log := NewVersionLog()
		inj := faults.New(clk, trial, faults.Rule{
			Component: faults.SketchFetch, Kind: faults.Error, Probability: 0.5, Burst: 3,
		})
		cl := NewClient(clk, delta)

		type held struct {
			v  uint64
			at time.Time
		}
		versions := map[string]uint64{}
		cache := map[string]held{}
		version := func(key string) uint64 {
			if versions[key] == 0 {
				versions[key] = 1
				log.RecordWrite(key, 1, clk.Now())
			}
			return versions[key]
		}
		// fetch models a full (or conditional) origin fetch: the device
		// ends up holding the current version with a reported TTL copy.
		fetch := func(key string) uint64 {
			v := version(key)
			srv.ReportCachedRead(key, clk.Now().Add(ttl))
			cache[key] = held{v: v, at: clk.Now()}
			return v
		}
		served := 0
		for _, op := range ops {
			key := fmt.Sprintf("/r/%d", op.Key%8)
			switch op.Kind % 4 {
			case 0: // backend write
				v := version(key) + 1
				versions[key] = v
				log.RecordWrite(key, v, clk.Now())
				srv.ReportWrite(key)
			case 1: // time passes 0..7s
				clk.Advance(time.Duration(op.Seconds%8) * time.Second)
			default: // page load under the degradation discipline
				if cl.NeedsRefresh() {
					if d := inj.Decide(faults.SketchFetch); !d.Faulted() {
						cl.Install(srv.Snapshot())
					}
				}
				var servedV uint64
				h, ok := cache[key]
				unexpired := ok && clk.Now().Sub(h.at) < ttl
				if !cl.NeedsRefresh() {
					switch cl.Check(key) {
					case ServeFromCache:
						if unexpired {
							servedV = h.v
						} else {
							servedV = fetch(key)
						}
					default: // Revalidate
						servedV = fetch(key)
					}
				} else if unexpired && clk.Now().Sub(h.at) <= delta {
					servedV = h.v // serve-stale-within-Δ rung
				} else {
					servedV = fetch(key) // forced revalidation rung
				}
				served++
				if st := log.Staleness(key, servedV, clk.Now()); st > delta {
					t.Logf("trial %d: key %s served v%d with staleness %v > Δ", trial, key, servedV, st)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInstallCheckInterleavings exercises the lock-free client
// against a mutating server: writers push keys into the sketch while
// installers race snapshots into the client and checkers probe it. Run
// under -race this validates the atomic-snapshot protocol; the inline
// assertions validate its semantics under every interleaving:
//
//   - observed snapshot generations never decrease (Install keeps the
//     newest snapshot, so a racing stale fetch cannot regress the sketch);
//   - Check only ever returns a valid decision, and never RefreshSketch
//     while a fresh snapshot is installed;
//   - after quiescence, Δ-atomicity holds: every key whose write predates
//     the final installed snapshot is flagged (no false negatives).
func TestConcurrentInstallCheckInterleavings(t *testing.T) {
	const (
		keys       = 64
		installs   = 200
		checksPerG = 2000
	)
	clk := clock.NewSimulated(time.Time{})
	srv := NewServer(ServerConfig{Capacity: 4 * keys, FalsePositiveRate: 0.01, Clock: clk})
	cl := NewClient(clk, time.Hour)
	cl.Install(srv.Snapshot()) // never RefreshSketch below: Δ = 1h, time frozen
	keyOf := func(i int) string { return fmt.Sprintf("/r/%d", i) }

	var wg sync.WaitGroup
	// Writer: makes every key cache-tracked, then stale.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < keys; i++ {
			srv.ReportCachedRead(keyOf(i), clk.Now().Add(time.Hour))
			srv.ReportWrite(keyOf(i))
		}
	}()
	// Installer: races fresh snapshots into the client and checks that
	// the generations it obtains from the server never decrease.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastGen uint64
		for i := 0; i < installs; i++ {
			sn := srv.Snapshot()
			if sn.Generation < lastGen {
				t.Errorf("server generation regressed: %d -> %d", lastGen, sn.Generation)
				return
			}
			lastGen = sn.Generation
			cl.Install(sn)
		}
	}()
	// Checkers: concurrent probes must always see a coherent snapshot.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < checksPerG; i++ {
				switch d := cl.Check(keyOf((seed + i) % keys)); d {
				case ServeFromCache, Revalidate:
				case RefreshSketch:
					t.Errorf("RefreshSketch with a fresh snapshot installed")
					return
				default:
					t.Errorf("invalid decision %v", d)
					return
				}
			}
		}(g * 7)
	}
	wg.Wait()

	// Quiescent Δ-atomicity: with the final snapshot installed, every
	// written key must be flagged for revalidation.
	cl.Install(srv.Snapshot())
	for i := 0; i < keys; i++ {
		if d := cl.Check(keyOf(i)); d != Revalidate {
			t.Fatalf("key %s written before snapshot not flagged (got %v)", keyOf(i), d)
		}
	}
	st := cl.Stats()
	if st.Refreshes == 0 || st.Refreshes > installs+2 {
		t.Fatalf("refreshes = %d, want in [1, %d]", st.Refreshes, installs+2)
	}
}
