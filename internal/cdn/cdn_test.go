package cdn

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
	"speedkit/internal/netsim"
)

func newTestCDN() (*CDN, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	c := New(Config{Clock: clk, PurgeDelay: 10 * time.Millisecond})
	return c, clk
}

func TestCDNEdgesDeployed(t *testing.T) {
	c, _ := newTestCDN()
	if len(c.Regions()) != 3 {
		t.Fatalf("regions = %v", c.Regions())
	}
	for _, r := range netsim.Regions() {
		if c.Edge(r) == nil {
			t.Fatalf("edge %s missing", r)
		}
	}
	if c.Edge(netsim.Region("mars")) != nil {
		t.Fatal("undeployed region returned an edge")
	}
}

func TestCDNFillAndLookup(t *testing.T) {
	c, clk := newTestCDN()
	eu := c.Edge(netsim.EU)
	eu.Fill(cache.TTLEntry(clk, "/p/1", []byte("body"), 1, time.Minute))
	e, ok := eu.Lookup("/p/1")
	if !ok || string(e.Body) != "body" {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	// Edges are independent: US edge has no copy.
	if _, ok := c.Edge(netsim.US).Lookup("/p/1"); ok {
		t.Fatal("entry leaked across edges")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCDNTTLExpiry(t *testing.T) {
	c, clk := newTestCDN()
	eu := c.Edge(netsim.EU)
	eu.Fill(cache.TTLEntry(clk, "/p/1", nil, 1, 30*time.Second))
	clk.Advance(31 * time.Second)
	if _, ok := eu.Lookup("/p/1"); ok {
		t.Fatal("expired entry served")
	}
}

func TestCDNPurgeRemovesFromAllEdges(t *testing.T) {
	c, clk := newTestCDN()
	for _, r := range netsim.Regions() {
		c.Edge(r).Fill(cache.TTLEntry(clk, "/p/1", nil, 1, time.Hour))
	}
	c.Purge("/p/1")
	clk.Advance(11 * time.Millisecond) // past PurgeDelay
	for _, r := range netsim.Regions() {
		if _, ok := c.Edge(r).Lookup("/p/1"); ok {
			t.Fatalf("purged entry still served at %s", r)
		}
	}
	st := c.Stats()
	if st.Purges != 1 || st.PurgedEntries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCDNPurgeDelayWindow(t *testing.T) {
	c, clk := newTestCDN()
	eu := c.Edge(netsim.EU)
	eu.Fill(cache.TTLEntry(clk, "/p/1", nil, 1, time.Hour))
	c.Purge("/p/1")
	// Before the delay elapses the stale copy is still served — this is
	// the small window the sketch protocol covers.
	clk.Advance(5 * time.Millisecond)
	if _, ok := eu.Lookup("/p/1"); !ok {
		t.Fatal("purge took effect before its propagation delay")
	}
	clk.Advance(6 * time.Millisecond)
	if _, ok := eu.Lookup("/p/1"); ok {
		t.Fatal("purge never took effect")
	}
}

func TestCDNPurgeSparesNewerFills(t *testing.T) {
	c, clk := newTestCDN()
	eu := c.Edge(netsim.EU)
	eu.Fill(cache.TTLEntry(clk, "/p/1", nil, 1, time.Hour))
	c.Purge("/p/1")
	// A fresh copy (v2) is fetched after the purge was issued but before
	// it propagates; the purge must not remove it.
	clk.Advance(5 * time.Millisecond)
	eu.Fill(cache.TTLEntry(clk, "/p/1", nil, 2, time.Hour))
	clk.Advance(6 * time.Millisecond)
	e, ok := eu.Lookup("/p/1")
	if !ok || e.Version != 2 {
		t.Fatalf("fresh fill lost to stale purge: %+v, %v", e, ok)
	}
}

func TestCDNPurgeAll(t *testing.T) {
	c, clk := newTestCDN()
	for i := 0; i < 10; i++ {
		c.Edge(netsim.EU).Fill(cache.TTLEntry(clk, fmt.Sprintf("/p/%d", i), nil, 1, time.Hour))
	}
	c.PurgeAll()
	if c.Edge(netsim.EU).Store().Len() != 0 {
		t.Fatal("PurgeAll left entries")
	}
}

func TestCDNEdgeStats(t *testing.T) {
	c, clk := newTestCDN()
	c.Edge(netsim.EU).Fill(cache.TTLEntry(clk, "/p/1", nil, 1, time.Hour))
	c.Edge(netsim.EU).Lookup("/p/1")
	st := c.EdgeStats(netsim.EU)
	if st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("edge stats = %+v", st)
	}
	if st := c.EdgeStats(netsim.Region("mars")); st.Puts != 0 {
		t.Fatal("ghost edge has stats")
	}
}

func TestCDNHitRatio(t *testing.T) {
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty ratio nonzero")
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestCDNDefaults(t *testing.T) {
	c := New(Config{})
	if len(c.Regions()) != 3 || c.cfg.EdgeMaxItems != 100000 || c.cfg.PurgeDelay != 10*time.Millisecond {
		t.Fatalf("defaults: %+v", c.cfg)
	}
}

func TestCDNConcurrent(t *testing.T) {
	c, clk := newTestCDN()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			edge := c.Edge(netsim.Regions()[w%3])
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("/p/%d", i%50)
				edge.Fill(cache.TTLEntry(clk, key, nil, 1, time.Minute))
				edge.Lookup(key)
				if i%100 == 0 {
					c.Purge(key)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Fills == 0 || st.Purges == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
