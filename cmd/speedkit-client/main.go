// Command speedkit-client is the device side of the HTTP deployment: it
// runs the full client proxy (sketch discipline, device cache, on-device
// personalization, offline fallback) against a speedkit-server instance
// and prints what each load cost and where it was served from.
//
//	speedkit-server -addr :8080 &
//	speedkit-client -server http://localhost:8080 -paths /,/product/p00042,/category/shoes -n 3
//	speedkit-client -server http://localhost:8080 -user u000004 -delta 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"speedkit/internal/httpclient"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "speedkit-server base URL")
	paths := flag.String("paths", "/,/product/p00042,/category/shoes", "comma-separated paths to load")
	n := flag.Int("n", 2, "rounds over the path list")
	userID := flag.String("user", "", "user ID for personalization (empty = anonymous)")
	delta := flag.Duration("delta", 30*time.Second, "staleness bound Δ")
	verbose := flag.Bool("v", false, "print page bodies")
	flag.Parse()

	var u *session.User
	if *userID != "" {
		// A device knows its own user; the ID must match a server-side
		// registration for origin-rendered blocks, while local blocks
		// (greeting, cart) work from this state alone.
		u = &session.User{ID: *userID, Name: "User " + *userID, LoggedIn: true,
			Tier: "gold", ConsentPersonalization: true}
		u.AddToCart("p00001", 2)
	}

	dev := proxy.New(proxy.Config{
		User:   u,
		Region: netsim.EU,
		Delta:  *delta,
	}, httpclient.New(*server, nil))

	pathList := strings.Split(*paths, ",")
	failures := 0
	for round := 1; round <= *n; round++ {
		fmt.Printf("— round %d —\n", round)
		for _, path := range pathList {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			res, err := dev.Load(context.Background(), path)
			if err != nil {
				fmt.Printf("  %-28s ERROR: %v\n", path, err)
				failures++
				continue
			}
			flags := make([]string, 0, 3)
			if res.SketchRefreshed {
				flags = append(flags, "sketch")
			}
			if res.Revalidated {
				flags = append(flags, "revalidated")
			}
			if res.Offline {
				flags = append(flags, "OFFLINE")
			}
			fmt.Printf("  %-28s %-7s v%-3d %8v  blocks=%d %s\n",
				path, res.Source, res.Version, res.Latency.Round(time.Microsecond),
				res.BlocksPersonalized, strings.Join(flags, ","))
			if *verbose {
				fmt.Printf("    %s\n", res.Body)
			}
		}
	}

	st := dev.Stats()
	fmt.Printf("\nstats: %+v\n", st)
	fmt.Printf("device cache: %+v\n", dev.CacheStats())
	if failures > 0 {
		os.Exit(1)
	}
}
