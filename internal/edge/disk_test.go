package edge

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
)

func TestEntryEncodingRoundTrip(t *testing.T) {
	e := cache.Entry{
		Key:       "/product/p00042",
		Body:      []byte("the body bytes"),
		Version:   7,
		StoredAt:  time.Unix(1000, 42),
		ExpiresAt: time.Unix(2000, 7),
		Metadata:  map[string]string{metaGen: "9", metaContentType: "text/html"},
	}
	got, ok := decodeEntry(encodeEntry(e))
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Key != e.Key || string(got.Body) != string(e.Body) || got.Version != e.Version {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.StoredAt.Equal(e.StoredAt) || !got.ExpiresAt.Equal(e.ExpiresAt) {
		t.Fatalf("time mismatch: %+v", got)
	}
	if got.Metadata[metaGen] != "9" || got.Metadata[metaContentType] != "text/html" {
		t.Fatalf("metadata mismatch: %+v", got.Metadata)
	}

	// Zero times survive as zero (a never-expiring entry stays one).
	z, ok := decodeEntry(encodeEntry(cache.Entry{Key: "k", Body: []byte("b")}))
	if !ok || !z.ExpiresAt.IsZero() || !z.StoredAt.IsZero() {
		t.Fatalf("zero-time round trip: %+v", z)
	}

	// Truncated inputs fail cleanly, never panic.
	enc := encodeEntry(e)
	for i := 0; i < len(enc); i++ {
		decodeEntry(enc[:i])
	}
}

func TestDiskTierRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewSimulated(time.Unix(1000, 0))

	open := func() (*diskTier, *cache.Store, RecoveryInfo) {
		mem := cache.New(cache.Config{Clock: clk})
		var m metrics
		d, info, err := openDisk(dir, 1000, clk, nil, mem, &m)
		if err != nil {
			t.Fatal(err)
		}
		return d, mem, info
	}

	d, _, info := open()
	if info.Entries != 0 || info.ColdStart {
		t.Fatalf("fresh open: %+v", info)
	}
	for _, k := range []string{"/a", "/b", "/c"} {
		d.appendFill(cache.Entry{Key: k, Body: []byte("body " + k), Version: 1})
	}
	d.appendPurge("/b")
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	d2, mem2, info2 := open()
	if info2.Replayed != 4 || mem2.Len() != 2 {
		t.Fatalf("recovery: info=%+v len=%d", info2, mem2.Len())
	}
	if _, ok := mem2.Get("/b"); ok {
		t.Fatal("purged entry survived recovery")
	}
	if e, ok := mem2.Get("/a"); !ok || string(e.Body) != "body /a" {
		t.Fatalf("entry /a: %+v ok=%v", e, ok)
	}
	d2.close()
}

func TestDiskTierSnapshotAndPrune(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewSimulated(time.Unix(1000, 0))
	mem := cache.New(cache.Config{Clock: clk})
	var m metrics
	d, _, err := openDisk(dir, 2, clk, nil, mem, &m)
	if err != nil {
		t.Fatal(err)
	}
	// Cadence 2: the fourth record triggers the second snapshot.
	for _, k := range []string{"/a", "/b", "/c", "/d"} {
		e := cache.Entry{Key: k, Body: []byte("body " + k)}
		mem.Put(e)
		d.appendFill(e)
	}
	if m.snapshots.Load() == 0 {
		t.Fatal("no snapshot taken")
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "edge-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %d, want 1 (pruned)", len(snaps))
	}
	d.close()

	// Recovery from snapshot + tail.
	mem2 := cache.New(cache.Config{Clock: clk})
	var m2 metrics
	d2, info, err := openDisk(dir, 2, clk, nil, mem2, &m2)
	if err != nil {
		t.Fatal(err)
	}
	if mem2.Len() != 4 {
		t.Fatalf("recovered %d entries, want 4 (info=%+v)", mem2.Len(), info)
	}
	if info.SnapshotLSN == 0 {
		t.Fatalf("snapshot not used: %+v", info)
	}
	d2.close()
}

// TestDiskTierTornTailRecovery injects a crash tearing a WAL frame
// mid-append — the kill -9 signature — and asserts the next open
// truncates the torn tail and keeps everything acknowledged before it.
func TestDiskTierTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewSimulated(time.Unix(1000, 0))
	mem := cache.New(cache.Config{Clock: clk})
	var m metrics
	// Seeded probabilistic crash: deterministic per seed, so the tear
	// lands on the same append every run; the test counts survivors
	// dynamically instead of hard-coding the offset.
	inj := faults.New(clk, 42, faults.Rule{
		Component: faults.WALAppend, Kind: faults.Crash, Probability: 0.5,
	})
	d, _, err := openDisk(dir, 1000, clk, inj, mem, &m)
	if err != nil {
		t.Fatal(err)
	}
	okBefore := 0
	for i := 0; i < 10 && !d.crashed(); i++ {
		k := "/k" + strings.Repeat("x", i)
		d.appendFill(cache.Entry{Key: k, Body: []byte("body " + k)})
		if !d.crashed() {
			okBefore++
		}
	}
	if !d.crashed() {
		t.Fatal("injected crash did not fire in 10 appends")
	}
	d.close()

	mem2 := cache.New(cache.Config{Clock: clk})
	var m2 metrics
	d2, info, err := openDisk(dir, 1000, clk, nil, mem2, &m2)
	if err != nil {
		t.Fatal(err)
	}
	if info.ColdStart {
		t.Fatalf("torn tail must recover warm, got cold start: %+v", info)
	}
	if mem2.Len() != okBefore {
		t.Fatalf("recovered %d entries, want %d (acknowledged before the tear)", mem2.Len(), okBefore)
	}
	for _, k := range mem2.Keys() {
		e, _ := mem2.Get(k)
		if string(e.Body) != "body "+k {
			t.Fatalf("entry %s corrupted: %q", k, e.Body)
		}
	}
	d2.close()
}

// TestDiskTierMidLogCorruptionColdStarts flips bytes in the middle of a
// sealed segment: recovery must refuse the log and start cold.
func TestDiskTierMidLogCorruptionColdStarts(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewSimulated(time.Unix(1000, 0))
	mem := cache.New(cache.Config{Clock: clk})
	var m metrics
	d, _, err := openDisk(dir, 1000, clk, nil, mem, &m)
	if err != nil {
		t.Fatal(err)
	}
	// Damage in the LAST segment is the torn-tail signature and recovers
	// warm; mid-log corruption means a broken frame in a NON-final
	// segment. Write enough to rotate segments (default threshold
	// 1 MiB), then flip bytes in the first one.
	big := strings.Repeat("x", 300_000)
	for _, k := range []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"} {
		d.appendFill(cache.Entry{Key: k, Body: []byte(big)})
	}
	d.close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*"))
	sort.Strings(segs)
	if len(segs) < 2 {
		t.Fatalf("need >=2 wal segments to model mid-log damage, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 3; i < len(data)/3+16 && i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	mem2 := cache.New(cache.Config{Clock: clk})
	var m2 metrics
	d2, info, err := openDisk(dir, 1000, clk, nil, mem2, &m2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ColdStart {
		t.Fatalf("mid-log corruption must cold start: %+v", info)
	}
	if mem2.Len() != 0 {
		t.Fatalf("cold start kept %d entries", mem2.Len())
	}
	// The wiped tier accepts new work.
	d2.appendFill(cache.Entry{Key: "/fresh", Body: []byte("fresh")})
	d2.close()
}

// TestProxyRestartServesIdenticalBodies is the in-process version of the
// smoke gate's crash assertion: fill through one proxy, restart over the
// same directory, and the recovered proxy serves byte-identical bodies
// without touching the upstream.
func TestProxyRestartServesIdenticalBodies(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "persistent body", 1)
	dir := t.TempDir()

	p1, _, err := New(Options{Upstream: u.srv.URL, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := get(t, p1, "/v1/page?path=/p", nil)
	want := w.Body.String()
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, info, err := New(Options{Upstream: u.srv.URL, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if info.Entries != 1 {
		t.Fatalf("recovered entries = %d: %+v", info.Entries, info)
	}
	w = get(t, p2, "/v1/page?path=/p", nil)
	if w.Body.String() != want || w.Header().Get("X-Edge-Cache") != "hit" {
		t.Fatalf("restart: state=%q body=%q want=%q", w.Header().Get("X-Edge-Cache"), w.Body.String(), want)
	}
	if n := u.fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d, want 1 (recovered hit)", n)
	}
}

// TestDiskTierConcurrentAppend hammers the tier from many goroutines
// with a snapshot cadence low enough that snapshots race appends; run
// under -race this is the regression test for the unguarded
// sinceSnap/dead/snapLSN fields and overlapping snapshot() writers.
func TestDiskTierConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewSimulated(time.Unix(1000, 0))
	mem := cache.New(cache.Config{Clock: clk})
	var m metrics
	d, _, err := openDisk(dir, 4, clk, nil, mem, &m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("/g%d/i%d", g, i)
				d.appendFill(cache.Entry{Key: k, Body: []byte("body")})
				if i%5 == 0 {
					d.appendPurge(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	// Everything journaled must survive recovery intact.
	mem2 := cache.New(cache.Config{Clock: clk})
	var m2 metrics
	d2, _, err := openDisk(dir, 1000, clk, nil, mem2, &m2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.close()
	if mem2.Len() != mem.Len() {
		t.Fatalf("recovered %d entries, want %d", mem2.Len(), mem.Len())
	}
}
