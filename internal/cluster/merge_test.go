package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// frameFor builds a valid DeltaFrame for member at gen containing keys.
func frameFor(t *testing.T, mg *Merger, member string, gen uint64, keys ...string) DeltaFrame {
	t.Helper()
	m, k := mg.Params()
	f := bloom.NewFilter(m, k)
	for _, key := range keys {
		f.Add(key)
	}
	body, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return DeltaFrame{Node: member, Generation: gen, Sketch: body}
}

func newTestMerger(clk clock.Clock, members ...string) *Merger {
	return NewMerger(MergerConfig{
		Members:  members,
		Capacity: 512,
		Clock:    clk,
	})
}

// TestMergerServesSaturatedUntilComplete: before every member's frame is
// folded, the merged sketch must be the all-stale filter — a client may
// never install a merge missing a shard's writes.
func TestMergerServesSaturatedUntilComplete(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := newTestMerger(clk, "a", "b")

	snap := mg.Snapshot()
	if !snap.MightBeStale("anything") {
		t.Fatal("incomplete merge served a non-saturated sketch")
	}

	if err := mg.Fold(frameFor(t, mg, "a", 1, "k1")); err != nil {
		t.Fatalf("fold a: %v", err)
	}
	snap = mg.Snapshot()
	if !snap.MightBeStale("never-written") {
		t.Fatal("merge with member b missing served a non-saturated sketch")
	}

	if err := mg.Fold(frameFor(t, mg, "b", 2, "k2")); err != nil {
		t.Fatalf("fold b: %v", err)
	}
	snap = mg.Snapshot()
	if !snap.MightBeStale("k1") || !snap.MightBeStale("k2") {
		t.Fatal("merged sketch lost a shard's keys")
	}
	if snap.MightBeStale("never-written") {
		t.Fatal("complete merge still saturated")
	}
}

// TestMergerGenerationMonotone drives the merger through fold, degrade,
// and recover cycles and asserts the merged generation never regresses —
// the invariant Client.Install relies on.
func TestMergerGenerationMonotone(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := NewMerger(MergerConfig{
		Members:     []string{"a", "b"},
		Capacity:    512,
		Clock:       clk,
		MaxFrameAge: time.Minute,
	})
	last := uint64(0)
	check := func(stage string) {
		t.Helper()
		snap := mg.Snapshot()
		if snap.Generation < last {
			t.Fatalf("%s: generation regressed %d -> %d", stage, last, snap.Generation)
		}
		last = snap.Generation
	}
	check("initial saturated")
	_ = mg.Fold(frameFor(t, mg, "a", 3, "k1"))
	check("half folded")
	_ = mg.Fold(frameFor(t, mg, "b", 5, "k2"))
	check("complete")            // transition saturated -> merged bumps
	clk.Advance(2 * time.Minute) // both frames age out
	check("aged out")            // transition merged -> saturated bumps
	_ = mg.Fold(frameFor(t, mg, "a", 3, "k1"))
	_ = mg.Fold(frameFor(t, mg, "b", 5, "k2"))
	check("refolded same generations") // must still advance past the saturated serve
	_ = mg.Fold(frameFor(t, mg, "b", 9, "k2", "k3"))
	check("b advanced")
}

// TestMergerEqualGenerationMeansEqualFilter: two merged snapshots with
// the same generation must hold identical filters (the single-node
// snapshot contract, preserved by the Σ-of-monotone-terms rule).
func TestMergerEqualGenerationMeansEqualFilter(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := newTestMerger(clk, "a", "b")
	_ = mg.Fold(frameFor(t, mg, "a", 1, "k1"))
	_ = mg.Fold(frameFor(t, mg, "b", 1, "k2"))
	s1 := mg.Snapshot()
	// Refold identical frames; generation and contents must not move.
	_ = mg.Fold(frameFor(t, mg, "a", 1, "k1"))
	s2 := mg.Snapshot()
	if s1.Generation != s2.Generation {
		t.Fatalf("idempotent refold moved generation %d -> %d", s1.Generation, s2.Generation)
	}
	b1, _ := s1.Marshal()
	b2, _ := s2.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatal("equal generations with different filters")
	}
}

// TestMergerStaleFrameIgnored: an older generation must not overwrite a
// newer held frame (exchange rounds can arrive reordered).
func TestMergerStaleFrameIgnored(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := newTestMerger(clk, "a")
	_ = mg.Fold(frameFor(t, mg, "a", 5, "new-key"))
	if err := mg.Fold(frameFor(t, mg, "a", 3, "old-only")); err != nil {
		t.Fatalf("stale fold errored: %v", err)
	}
	snap := mg.Snapshot()
	if !snap.MightBeStale("new-key") {
		t.Fatal("stale frame overwrote the newer one")
	}
	if mg.Stats().StaleFolds != 1 {
		t.Fatalf("StaleFolds = %d, want 1", mg.Stats().StaleFolds)
	}
}

// TestMergerRejectsBadFrames tables the rejection paths: unknown member,
// mismatched Bloom parameters (typed error), undecodable sketch.
func TestMergerRejectsBadFrames(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := newTestMerger(clk, "a")

	t.Run("unknown member", func(t *testing.T) {
		err := mg.Fold(frameFor(t, mg, "stranger", 1, "k"))
		if !errors.Is(err, ErrUnknownMember) {
			t.Fatalf("err = %v, want ErrUnknownMember", err)
		}
	})
	t.Run("param mismatch", func(t *testing.T) {
		wrong := bloom.NewFilter(64, 1)
		wrong.Add("k")
		body, _ := wrong.MarshalBinary()
		err := mg.Fold(DeltaFrame{Node: "a", Generation: 1, Sketch: body})
		if !errors.Is(err, bloom.ErrParamMismatch) {
			t.Fatalf("err = %v, want bloom.ErrParamMismatch", err)
		}
	})
	t.Run("garbage sketch", func(t *testing.T) {
		err := mg.Fold(DeltaFrame{Node: "a", Generation: 1, Sketch: []byte("nonsense")})
		if err == nil {
			t.Fatal("garbage sketch folded without error")
		}
	})
	if got := mg.Stats().Rejected; got != 3 {
		t.Fatalf("Rejected = %d, want 3", got)
	}
	// None of the rejects count as folds; the merge must still be degraded.
	if !mg.Snapshot().MightBeStale("x") {
		t.Fatal("rejected frames were folded")
	}
}

// TestMergerFrameAging: a partitioned member's aging frame degrades the
// merge back to saturated within MaxFrameAge.
func TestMergerFrameAging(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := NewMerger(MergerConfig{
		Members:     []string{"a", "b"},
		Capacity:    512,
		Clock:       clk,
		MaxFrameAge: 30 * time.Second,
	})
	_ = mg.Fold(frameFor(t, mg, "a", 1, "k1"))
	_ = mg.Fold(frameFor(t, mg, "b", 1, "k2"))
	if mg.Snapshot().MightBeStale("fresh-unwritten") {
		t.Fatal("complete fresh merge saturated")
	}
	clk.Advance(31 * time.Second)
	// b re-syncs, a stays partitioned: its frame is now too old.
	_ = mg.Fold(frameFor(t, mg, "b", 1, "k2"))
	if !mg.Snapshot().MightBeStale("fresh-unwritten") {
		t.Fatal("aged-out frame did not degrade the merge")
	}
}

// TestMergerExportDeterministic: two mergers driven through the same fold
// sequence export byte-identical merged sketches — the twin-run check the
// cluster gate builds on.
func TestMergerExportDeterministic(t *testing.T) {
	run := func() []byte {
		clk := clock.NewSimulated(epoch)
		mg := newTestMerger(clk, "a", "b", "c")
		_ = mg.Fold(frameFor(t, mg, "a", 2, "k1", "k2"))
		_ = mg.Fold(frameFor(t, mg, "b", 7, "k3"))
		_ = mg.Fold(frameFor(t, mg, "c", 1))
		out, err := mg.Export()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("twin fold sequences exported different bytes")
	}
}

// TestMergerSnapshotInstallsIntoClient closes the loop with the protocol
// client: merged snapshots must install and answer Check like single-node
// ones, including across a degrade (generation keeps advancing).
func TestMergerSnapshotInstallsIntoClient(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	mg := NewMerger(MergerConfig{
		Members:     []string{"a", "b"},
		Capacity:    512,
		Clock:       clk,
		MaxFrameAge: time.Minute,
	})
	client := cachesketch.NewClient(clk, time.Minute)
	client.Install(mg.Snapshot())
	if d := client.Check("k1"); d != cachesketch.Revalidate {
		t.Fatalf("saturated install: Check(k1) = %v, want Revalidate", d)
	}
	_ = mg.Fold(frameFor(t, mg, "a", 1, "k1"))
	_ = mg.Fold(frameFor(t, mg, "b", 1))
	client.Install(mg.Snapshot())
	if d := client.Check("k1"); d != cachesketch.Revalidate {
		t.Fatalf("merged sketch lost k1: Check = %v", d)
	}
	if d := client.Check("unwritten"); d != cachesketch.ServeFromCache {
		t.Fatalf("merged sketch still flags unwritten keys: Check = %v", d)
	}
}
