package invalidb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// referenceMatch is the unsharded matcher: classify every registration
// against the event, no partitioning, no merge path. The sharded engine
// must produce exactly this event→query set for every event.
func referenceMatch(regs map[string]query.Query, ev storage.ChangeEvent) []hit {
	var hits []hit
	for id, q := range regs {
		var kind MatchKind
		var ok bool
		if q.Collection == "" {
			kind, ok = classifyImages(q, ev)
		} else {
			kind, ok = classify(q, ev)
		}
		if ok {
			hits = append(hits, hit{id: id, kind: kind})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].id < hits[j].id })
	return hits
}

func randomEvent(rng *rand.Rand, collections int) storage.ChangeEvent {
	doc := func() map[string]any {
		return map[string]any{
			"price": float64(rng.Intn(200)),
			"cat":   []string{"a", "b", "c"}[rng.Intn(3)],
		}
	}
	ev := storage.ChangeEvent{
		Collection: fmt.Sprintf("coll-%d", rng.Intn(collections)),
		ID:         fmt.Sprintf("doc-%d", rng.Intn(50)),
		Version:    uint64(rng.Intn(1000) + 1),
	}
	switch rng.Intn(3) {
	case 0:
		ev.Kind = storage.ChangeInsert
		ev.After = doc()
	case 1:
		ev.Kind = storage.ChangeUpdate
		ev.Before, ev.After = doc(), doc()
	default:
		ev.Kind = storage.ChangeDelete
		ev.Before = doc()
	}
	return ev
}

// The exact-equivalence property behind the sharding optimization: for
// every shard count (including non-powers of two, which round up), the
// sharded engine invalidates exactly the same (registration, kind) set as
// the brute-force unsharded matcher — partitioning by collection hash can
// never gain or lose a match because classify rejects cross-collection
// pairs anyway.
func TestShardedMatchesUnshardedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const collections = 13
	for _, shards := range []int{1, 2, 3, 4, 8} {
		regs := make(map[string]query.Query)
		engine := New(Config{Shards: shards})
		for i := 0; i < 150; i++ {
			id := fmt.Sprintf("/q/%d", i)
			var q query.Query
			switch rng.Intn(4) {
			case 0:
				q = query.New(fmt.Sprintf("coll-%d", rng.Intn(collections)), nil)
			case 1:
				q = query.New(fmt.Sprintf("coll-%d", rng.Intn(collections)),
					query.Gte("price", float64(rng.Intn(150))))
			case 2:
				q = query.New(fmt.Sprintf("coll-%d", rng.Intn(collections)),
					query.Eq("cat", []string{"a", "b", "c"}[rng.Intn(3)]))
			default:
				// Cross-collection predicate: empty collection, filter only.
				q = query.New("", query.Gte("price", float64(rng.Intn(150))))
			}
			regs[id] = q
			engine.Register(id, q)
		}
		for trial := 0; trial < 300; trial++ {
			ev := randomEvent(rng, collections)
			want := referenceMatch(regs, ev)
			got := engine.Process(ev)
			if len(got) != len(want) {
				t.Fatalf("shards=%d: %d hits, reference %d (event %+v)",
					shards, len(got), len(want), ev)
			}
			for i := range got {
				if got[i].RegistrationID != want[i].id || got[i].Kind != want[i].kind {
					t.Fatalf("shards=%d hit %d: got (%s,%v), reference (%s,%v)",
						shards, i, got[i].RegistrationID, got[i].Kind, want[i].id, want[i].kind)
				}
			}
		}
		// Identical registration set must report identically too.
		if engine.Registered() != len(regs) {
			t.Fatalf("shards=%d: registered %d, want %d", shards, engine.Registered(), len(regs))
		}
	}
}

// Cross-collection predicates (empty Collection) ride the merge path:
// they match events of any collection by filter alone, and their hits
// merge sorted with the owning shard's.
func TestCrossCollectionMergePath(t *testing.T) {
	e := New(Config{Shards: 4})
	e.Register("/audit", query.New("", query.Gte("price", 100.0)))
	e.Register("/pricey-products", query.MustParse(`products WHERE price >= 100`))

	ev := storage.ChangeEvent{Collection: "products", ID: "p1",
		Kind: storage.ChangeInsert, After: map[string]any{"price": 150.0}}
	invs := e.Process(ev)
	if len(invs) != 2 {
		t.Fatalf("hits = %d, want shard hit + merged global hit", len(invs))
	}
	if invs[0].RegistrationID != "/audit" || invs[1].RegistrationID != "/pricey-products" {
		t.Fatalf("merge order = %s, %s", invs[0].RegistrationID, invs[1].RegistrationID)
	}
	// A different collection still trips the cross-collection predicate.
	ev2 := storage.ChangeEvent{Collection: "users", ID: "u1",
		Kind: storage.ChangeInsert, After: map[string]any{"price": 200.0}}
	invs = e.Process(ev2)
	if len(invs) != 1 || invs[0].RegistrationID != "/audit" {
		t.Fatalf("global-only match = %v", invs)
	}
	// But not below its filter.
	ev3 := storage.ChangeEvent{Collection: "users", ID: "u2",
		Kind: storage.ChangeInsert, After: map[string]any{"price": 10.0}}
	if invs := e.Process(ev3); len(invs) != 0 {
		t.Fatalf("filter ignored on merge path: %v", invs)
	}
}

// Re-registering an ID under a different collection must move it between
// shards — the old shard may not keep matching the stale query.
func TestRegisterMovesShardOnCollectionChange(t *testing.T) {
	e := New(Config{Shards: 8})
	e.Register("/x", query.New("products", nil))
	e.Register("/x", query.New("users", nil))
	if e.Registered() != 1 {
		t.Fatalf("registered = %d, want 1", e.Registered())
	}
	ev := storage.ChangeEvent{Collection: "products", ID: "p1",
		Kind: storage.ChangeInsert, After: map[string]any{}}
	if invs := e.Process(ev); len(invs) != 0 {
		t.Fatalf("stale shard still matches: %v", invs)
	}
	ev2 := storage.ChangeEvent{Collection: "users", ID: "u1",
		Kind: storage.ChangeInsert, After: map[string]any{}}
	if invs := e.Process(ev2); len(invs) != 1 {
		t.Fatalf("moved registration not matching: %v", invs)
	}
	if !e.Unregister("/x") {
		t.Fatal("unregister after move failed")
	}
	if invs := e.Process(ev2); len(invs) != 0 {
		t.Fatalf("unregistered query still matching: %v", invs)
	}
}

// Shard counts round up to powers of two so the shard index is a mask.
func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}} {
		if got := New(Config{Shards: c.in}).Shards(); got != c.want {
			t.Fatalf("Shards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// The per-shard match loop is //speedkit:hotpath: with the destination
// owned by the caller it must allocate nothing, whether rejecting or
// collecting.
func TestMatchIntoZeroAlloc(t *testing.T) {
	regs := make(map[string]query.Query)
	for i := 0; i < 64; i++ {
		regs[fmt.Sprintf("/q/%d", i)] = query.New("products", query.Gte("price", float64(i)))
	}
	dst := make([]hit, len(regs))
	match := storage.ChangeEvent{Collection: "products", ID: "p1",
		Kind: storage.ChangeInsert, After: map[string]any{"price": 200.0}}
	reject := storage.ChangeEvent{Collection: "users", ID: "u1",
		Kind: storage.ChangeInsert, After: map[string]any{"price": 200.0}}
	if n := testing.AllocsPerRun(1000, func() {
		if matchInto(regs, match, false, dst) == 0 {
			t.Fatal("no hits on matching event")
		}
	}); n != 0 {
		t.Fatalf("matchInto (hits) allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if matchInto(regs, reject, false, dst) != 0 {
			t.Fatal("hits on foreign collection")
		}
	}); n != 0 {
		t.Fatalf("matchInto (reject) allocates %.1f per run, want 0", n)
	}
}

// Kinds must flow through the sharded path unchanged.
func TestShardedKindClassification(t *testing.T) {
	e := New(Config{Shards: 8})
	e.Register("/q", query.MustParse(`products WHERE price < 100`))
	cases := []struct {
		before, after map[string]any
		want          MatchKind
	}{
		{nil, map[string]any{"price": 50.0}, Entered},
		{map[string]any{"price": 50.0}, map[string]any{"price": 150.0}, Left},
		{map[string]any{"price": 50.0}, map[string]any{"price": 60.0}, Changed},
	}
	for i, c := range cases {
		ev := storage.ChangeEvent{Collection: "products", ID: "p1",
			Kind: storage.ChangeUpdate, Before: c.before, After: c.after}
		invs := e.Process(ev)
		if len(invs) != 1 || invs[0].Kind != c.want {
			t.Fatalf("case %d: invs = %v, want one %v", i, invs, c.want)
		}
	}
	if !reflect.DeepEqual(e.Stats(), Stats{EventsProcessed: 3, Matches: 3, Registered: 1}) {
		t.Fatalf("stats = %+v", e.Stats())
	}
}
