// Package netsim models wide-area network latency for the field
// experiments. Speed Kit's value proposition depends on geography: a
// client far from the origin pays hundreds of milliseconds per round trip,
// while a nearby CDN edge answers in tens. This package reproduces those
// regimes with a deterministic, seedable latency model: each link has a
// base round-trip time, log-normal jitter, a bandwidth term for payload
// transfer, and a loss probability that adds retransmission penalties.
//
// Nothing here sleeps. Links return durations; the simulation harness adds
// them to virtual time, which is how 30 days of traffic replay in
// milliseconds of wall-clock.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Region is a coarse client/server location.
type Region string

// Canonical regions used by the field benchmarks.
const (
	EU   Region = "eu"
	US   Region = "us"
	APAC Region = "apac"
)

// Regions lists the canonical regions in report order.
func Regions() []Region { return []Region{EU, US, APAC} }

// Link models one network path.
type Link struct {
	// RTT is the median round-trip time.
	RTT time.Duration
	// Jitter is the sigma of the log-normal multiplier applied to RTT.
	// 0.15–0.35 matches wide-area measurements; 0 disables jitter.
	Jitter float64
	// Bandwidth is the transfer rate in bytes/second used for the payload
	// serialization term. 0 means infinite (no size term).
	Bandwidth float64
	// Loss is the probability that a round trip must be retried once,
	// adding a full extra RTT (a first-order TCP retransmission model).
	Loss float64
}

// Sample draws the duration of one request/response exchange carrying
// payloadBytes of response body.
func (l Link) Sample(rng *rand.Rand, payloadBytes int) time.Duration {
	rtt := float64(l.RTT)
	if l.Jitter > 0 {
		rtt *= math.Exp(rng.NormFloat64() * l.Jitter)
	}
	d := rtt
	if l.Bandwidth > 0 && payloadBytes > 0 {
		d += float64(payloadBytes) / l.Bandwidth * float64(time.Second)
	}
	if l.Loss > 0 && rng.Float64() < l.Loss {
		d += rtt // one retransmission
	}
	return time.Duration(d)
}

// Network is a topology of named links with a shared deterministic RNG.
// Safe for concurrent use.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]Link
}

// NewNetwork creates an empty topology seeded deterministically.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[string]Link),
	}
}

func linkKey(from, to string) string { return from + "->" + to }

// SetLink installs the link for the (from, to) pair.
func (n *Network) SetLink(from, to string, l Link) {
	n.mu.Lock()
	n.links[linkKey(from, to)] = l
	n.mu.Unlock()
}

// Link returns the configured link and whether it exists.
func (n *Network) Link(from, to string) (Link, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[linkKey(from, to)]
	return l, ok
}

// Latency samples one exchange over the (from, to) link. Unknown links
// fall back to a conservative intercontinental default so that a topology
// misconfiguration shows up as slowness rather than a crash.
func (n *Network) Latency(from, to string, payloadBytes int) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[linkKey(from, to)]
	if !ok {
		l = Link{RTT: 300 * time.Millisecond, Jitter: 0.3, Bandwidth: 2e6, Loss: 0.02}
	}
	return l.Sample(n.rng, payloadBytes)
}

// Node names used by the default topology. Clients are addressed as
// ClientNode(region), edges as EdgeNode(region); the origin is a single
// node in the EU, matching the single-region deployment the paper's
// e-commerce customers run.
const (
	OriginNode = "origin"
)

// ClientNode returns the node name for a client in region r.
func ClientNode(r Region) string { return fmt.Sprintf("client-%s", r) }

// EdgeNode returns the node name for the CDN edge serving region r.
func EdgeNode(r Region) string { return fmt.Sprintf("edge-%s", r) }

// DefaultTopology builds the field-study topology: one origin in the EU,
// one CDN edge per region ~15 ms from its clients, and client→origin
// paths whose RTT grows with distance. Bandwidths model last-mile
// connections (clients) and well-peered data-center paths (edges).
func DefaultTopology(seed int64) *Network {
	n := NewNetwork(seed)
	clientBW := 4e6   // 4 MB/s last mile
	backboneBW := 5e7 // 50 MB/s DC-to-DC

	edgeRTT := map[Region]time.Duration{EU: 12 * time.Millisecond, US: 16 * time.Millisecond, APAC: 22 * time.Millisecond}
	originRTT := map[Region]time.Duration{EU: 35 * time.Millisecond, US: 110 * time.Millisecond, APAC: 260 * time.Millisecond}

	for _, r := range Regions() {
		// Client to local edge: short, low-jitter.
		n.SetLink(ClientNode(r), EdgeNode(r), Link{RTT: edgeRTT[r], Jitter: 0.2, Bandwidth: clientBW, Loss: 0.005})
		// Client direct to origin: distance-dependent.
		n.SetLink(ClientNode(r), OriginNode, Link{RTT: originRTT[r], Jitter: 0.3, Bandwidth: clientBW, Loss: 0.01})
		// Edge to origin: backbone quality.
		n.SetLink(EdgeNode(r), OriginNode, Link{RTT: originRTT[r] - edgeRTT[r]/2, Jitter: 0.15, Bandwidth: backboneBW, Loss: 0.002})
	}
	return n
}

// DeviceLatency models on-device work that needs no network: service
// worker cache lookups and dynamic-block assembly. Returned durations are
// sub-millisecond with light jitter.
func (n *Network) DeviceLatency() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	base := 300 * time.Microsecond
	return base + time.Duration(n.rng.Int63n(int64(400*time.Microsecond)))
}
