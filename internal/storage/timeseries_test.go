package storage

import (
	"testing"
	"time"

	"speedkit/internal/clock"
)

func newTestTS() (*TimeSeries, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	return NewTimeSeries(clk), clk
}

func TestTSAppendRange(t *testing.T) {
	ts, clk := newTestTS()
	start := clk.Now()
	for i := 0; i < 10; i++ {
		ts.Append("reads", float64(i))
		clk.Advance(time.Second)
	}
	pts := ts.Range("reads", start.Add(2*time.Second), start.Add(5*time.Second))
	if len(pts) != 4 {
		t.Fatalf("range len = %d, want 4", len(pts))
	}
	if pts[0].Value != 2 || pts[3].Value != 5 {
		t.Fatalf("range values = %v..%v", pts[0].Value, pts[3].Value)
	}
}

func TestTSRangeMissingSeries(t *testing.T) {
	ts, _ := newTestTS()
	if pts := ts.Range("ghost", time.Unix(0, 0), time.Unix(100, 0)); pts != nil {
		t.Fatalf("ghost range = %v", pts)
	}
	if ts.Len("ghost") != 0 {
		t.Fatal("ghost len nonzero")
	}
}

func TestTSOutOfOrderAppends(t *testing.T) {
	ts, clk := newTestTS()
	base := clk.Now()
	ts.AppendAt("s", base.Add(3*time.Second), 3)
	ts.AppendAt("s", base.Add(1*time.Second), 1)
	ts.AppendAt("s", base.Add(2*time.Second), 2)
	pts := ts.Range("s", base, base.Add(10*time.Second))
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i+1) {
			t.Fatalf("point %d = %v, not sorted", i, p.Value)
		}
	}
}

func TestTSCountSinceAndRate(t *testing.T) {
	ts, clk := newTestTS()
	for i := 0; i < 60; i++ {
		ts.Append("writes", 1)
		clk.Advance(time.Second)
	}
	// Window [now-30s, now]: appends at seconds 30..59 fall inside.
	if n := ts.CountSince("writes", 30*time.Second); n != 30 {
		t.Fatalf("CountSince = %d, want 30", n)
	}
	if r := ts.RatePerSecond("writes", 30*time.Second); r != 1 {
		t.Fatalf("rate = %v, want 1", r)
	}
	if r := ts.RatePerSecond("writes", 0); r != 0 {
		t.Fatalf("zero-window rate = %v", r)
	}
}

func TestTSLast(t *testing.T) {
	ts, clk := newTestTS()
	if _, ok := ts.Last("s"); ok {
		t.Fatal("Last on empty series ok")
	}
	ts.Append("s", 1)
	clk.Advance(time.Second)
	ts.Append("s", 2)
	p, ok := ts.Last("s")
	if !ok || p.Value != 2 {
		t.Fatalf("Last = %v, %v", p, ok)
	}
}

func TestTSDownsample(t *testing.T) {
	ts, clk := newTestTS()
	start := clk.Now()
	// 1 point per second, values 0..59
	for i := 0; i < 60; i++ {
		ts.Append("s", float64(i))
		clk.Advance(time.Second)
	}
	buckets := ts.Downsample("s", start, start.Add(59*time.Second), 10*time.Second)
	if len(buckets) != 6 {
		t.Fatalf("buckets = %d, want 6", len(buckets))
	}
	// First bucket covers values 0..9, mean 4.5.
	if buckets[0].Value != 4.5 {
		t.Fatalf("bucket 0 mean = %v, want 4.5", buckets[0].Value)
	}
	if !buckets[1].Time.Equal(start.Add(10 * time.Second)) {
		t.Fatalf("bucket 1 time = %v", buckets[1].Time)
	}
}

func TestTSDownsampleSparse(t *testing.T) {
	ts, clk := newTestTS()
	start := clk.Now()
	ts.AppendAt("s", start, 10)
	ts.AppendAt("s", start.Add(35*time.Second), 20)
	buckets := ts.Downsample("s", start, start.Add(60*time.Second), 10*time.Second)
	// Only two non-empty buckets expected.
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if buckets[1].Value != 20 {
		t.Fatalf("bucket values = %v", buckets)
	}
}

func TestTSDownsampleDegenerate(t *testing.T) {
	ts, _ := newTestTS()
	if b := ts.Downsample("s", time.Unix(0, 0), time.Unix(10, 0), 0); b != nil {
		t.Fatal("zero width accepted")
	}
	if b := ts.Downsample("ghost", time.Unix(0, 0), time.Unix(10, 0), time.Second); b != nil {
		t.Fatal("ghost series downsampled")
	}
}

func TestTSRetention(t *testing.T) {
	ts, clk := newTestTS()
	ts.Retention = 10 * time.Second
	start := clk.Now()
	for i := 0; i < 100; i++ {
		ts.Append("s", float64(i))
		clk.Advance(time.Second)
	}
	// Trigger compaction via a read.
	ts.Range("s", start, clk.Now())
	if n := ts.Len("s"); n > 12 {
		t.Fatalf("retention kept %d points, want ~11", n)
	}
	// Recent points survive.
	if n := ts.CountSince("s", 5*time.Second); n == 0 {
		t.Fatal("retention dropped recent points")
	}
}

func TestTSSeriesList(t *testing.T) {
	ts, _ := newTestTS()
	ts.Append("b", 1)
	ts.Append("a", 1)
	names := ts.Series()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("series = %v", names)
	}
}
