package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/clock"
)

// Store is the concrete Cache implementation shared by all tiers. It
// bounds both entry count and total bytes; whichever limit is hit first
// triggers eviction according to the configured policy. Safe for
// concurrent use.
//
// Internally the store is lock-striped into a power-of-2 number of
// shards, each with its own mutex, hash-map, and eviction list, so that
// concurrent readers on different keys never contend on one global lock.
// Capacity limits are enforced per shard (an even split of the
// configured totals), which is the standard sharded-LRU trade-off: the
// aggregate bound holds exactly, but a pathologically skewed key
// distribution can evict from a hot shard while a cold shard has room.
// Single-shard stores (the default whenever a capacity bound is set, and
// always available via Config.Shards = 1) keep the exact global eviction
// order of a classic LRU/LFU/FIFO.
//
// Unbounded stores (no MaxItems and no MaxBytes) additionally keep a
// lock-free read mirror: eviction can never fire, so a Get does not need
// the eviction bookkeeping at all and is served from an open-addressed
// atomic table (see lfTable) that writers maintain under the shard
// locks. On that path a hit is one inline hash, an atomic slot load, an
// expiry check against the coarse clock, and an atomic counter — no
// mutex, no allocation. The trade-off is that uses
// do not reorder the (unobservable) eviction order of unbounded stores:
// Keys reports insertion order for them.
type Store struct {
	// shards is immutable after New; each shard synchronizes itself.
	shards []*shard
	mask   uint64
	clk    clock.Clock

	// readMap is the lock-free read mirror, non-nil only for unbounded
	// stores. Writers update it while holding the owning shard's lock, so
	// updates for one key are totally ordered; readers load it with no
	// lock. The pointer itself is immutable after New.
	readMap *lfTable

	// Read-side counters for the lock-free path (bounded stores count in
	// their shard's Stats instead; exactly one set is ever non-zero).
	fastHits        atomic.Uint64
	fastMisses      atomic.Uint64
	fastExpirations atomic.Uint64
}

// shard is one lock stripe of the store: a self-contained bounded cache.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*list.Element // guarded by mu
	order    *list.List               // guarded by mu; front = next eviction candidate
	stats    Stats                    // guarded by mu
	policy   Policy
	maxItems int
	maxBytes int
	// readMap aliases the store's lock-free read mirror (nil for bounded
	// stores). Writers keep it in sync while holding mu.
	readMap *lfTable
}

type storedEntry struct {
	entry Entry
	freq  uint64 // LFU use count
	size  int
}

// Config sizes and parameterizes a Store.
type Config struct {
	// MaxItems bounds the entry count; 0 means unlimited.
	MaxItems int
	// MaxBytes bounds the accounted size; 0 means unlimited.
	MaxBytes int
	// Policy selects the eviction policy (default LRU).
	Policy Policy
	// Clock supplies time for expiration (default coarse system clock).
	Clock clock.Clock
	// Shards is the number of lock stripes, rounded up to a power of two
	// and capped at 256. 0 selects the default: 1 shard when a capacity
	// bound is set (exact global eviction order), 16 otherwise (striped
	// writes; unbounded reads are lock-free regardless). Bounded stores
	// that want striping set Shards explicitly and accept per-shard
	// capacity enforcement.
	Shards int
}

// defaultShards is the stripe count for unbounded stores.
const defaultShards = 16

// maxShards caps explicit shard requests.
const maxShards = 256

// shardCount resolves cfg into a power-of-2 stripe count.
func (cfg Config) shardCount() int {
	n := cfg.Shards
	if n <= 0 {
		if cfg.MaxItems > 0 || cfg.MaxBytes > 0 {
			return 1
		}
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so key routing is a mask, not a modulo.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a Store from cfg.
func New(cfg Config) *Store {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.CoarseSystem
	}
	n := cfg.shardCount()
	// Split capacity evenly; every shard gets at least one slot so a
	// bounded sharded store can always hold something per stripe.
	perItems, perBytes := cfg.MaxItems, cfg.MaxBytes
	if n > 1 {
		if perItems > 0 {
			if perItems = cfg.MaxItems / n; perItems == 0 {
				perItems = 1
			}
		}
		if perBytes > 0 {
			if perBytes = cfg.MaxBytes / n; perBytes == 0 {
				perBytes = 1
			}
		}
	}
	s := &Store{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		clk:    clk,
	}
	if cfg.MaxItems == 0 && cfg.MaxBytes == 0 {
		s.readMap = newLFTable()
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			entries:  make(map[string]*list.Element),
			order:    list.New(),
			policy:   cfg.Policy,
			maxItems: perItems,
			maxBytes: perBytes,
			readMap:  s.readMap,
		}
	}
	return s
}

// FNV-1a, inlined so that routing a key to its shard costs one register
// loop and no allocation (mirrors internal/bloom's probe hashing).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (s *Store) shardFor(key string) *shard {
	if s.mask == 0 {
		return s.shards[0]
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	// Fold the high half in: the low bits of raw FNV are weak for short
	// keys with shared prefixes, and the mask only looks at low bits.
	return s.shards[(h^h>>32)&s.mask]
}

// Get implements Cache.
func (s *Store) Get(key string) (Entry, bool) {
	if s.readMap != nil {
		if e := s.fastGet(key); e != nil {
			return *e, true
		}
		return Entry{}, false
	}
	now := s.clk.Now()
	return s.shardFor(key).get(key, now)
}

// fastGet is the lock-free hit path for unbounded stores: one mirror
// load, an expiry check (skipping the clock read entirely for entries
// that never expire), and an atomic counter. Expired entries divert to a
// locked removal so the authoritative structures stay in sync. It
// returns a pointer into the immutable mirror so the caller pays for a
// single Entry copy, on the hit path only.
//
//speedkit:hotpath
func (s *Store) fastGet(key string) *Entry {
	e := s.readMap.load(key)
	if e == nil {
		s.fastMisses.Add(1)
		return nil
	}
	if !e.ExpiresAt.IsZero() && !s.clk.Now().Before(e.ExpiresAt) {
		s.expireFast(key)
		s.fastMisses.Add(1)
		return nil
	}
	s.fastHits.Add(1)
	return e
}

// expireFast removes an entry a lock-free reader observed as expired. It
// re-checks under the shard lock: a racing Put may have replaced the
// entry with a fresh one, in which case nothing is removed (the reader's
// miss is still correct — it linearizes before the Put).
func (s *Store) expireFast(key string) {
	sh := s.shardFor(key)
	now := s.clk.Now()
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		se := el.Value.(*storedEntry)
		if se.entry.Expired(now) {
			sh.removeLocked(key, el)
			s.fastExpirations.Add(1)
		}
	}
	sh.mu.Unlock()
}

func (sh *shard) get(key string, now time.Time) (Entry, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		sh.stats.Misses++
		return Entry{}, false
	}
	se := el.Value.(*storedEntry)
	if se.entry.Expired(now) {
		sh.removeLocked(key, el)
		sh.stats.Expirations++
		sh.stats.Misses++
		return Entry{}, false
	}
	sh.promoteLocked(el, se)
	sh.stats.Hits++
	return se.entry, true
}

// Peek implements Cache.
func (s *Store) Peek(key string) (Entry, bool) {
	now := s.clk.Now()
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return Entry{}, false
	}
	se := el.Value.(*storedEntry)
	if se.entry.Expired(now) {
		return Entry{}, false
	}
	return se.entry, true
}

// PeekAny returns the stored entry under key even if it has expired.
// Revalidation uses this: an expired copy cannot be served, but its
// version still makes a conditional request possible, saving the body
// transfer when the resource is unchanged.
func (s *Store) PeekAny(key string) (Entry, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(*storedEntry).entry, true
}

// promoteLocked updates eviction order after a use.
func (sh *shard) promoteLocked(el *list.Element, se *storedEntry) {
	switch sh.policy {
	case LRU:
		sh.order.MoveToBack(el)
	case LFU:
		se.freq++
		sh.repositionLFULocked(el, se)
	case FIFO:
		// Insertion order is eviction order; uses don't promote.
	}
}

// repositionLFULocked bubbles el toward the back past entries with
// lower-or-equal frequency, keeping the front the least-frequently-used.
func (sh *shard) repositionLFULocked(el *list.Element, se *storedEntry) {
	for next := el.Next(); next != nil; next = el.Next() {
		if next.Value.(*storedEntry).freq > se.freq {
			break
		}
		sh.order.MoveAfter(el, next)
	}
}

// Put implements Cache.
func (s *Store) Put(e Entry) {
	if e.StoredAt.IsZero() {
		e.StoredAt = s.clk.Now()
	}
	s.shardFor(e.Key).put(e, s.clk)
}

func (sh *shard) put(e Entry, clk clock.Clock) {
	size := e.Size()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.readMap != nil {
		// Publish an immutable copy for lock-free readers. Per-key order
		// is total because every write to this key holds sh.mu.
		ec := e
		sh.readMap.store(e.Key, &ec)
	}
	if el, ok := sh.entries[e.Key]; ok {
		se := el.Value.(*storedEntry)
		sh.stats.BytesUsed += size - se.size
		se.entry = e
		se.size = size
		sh.promoteLocked(el, se)
	} else {
		se := &storedEntry{entry: e, size: size, freq: 1}
		var el *list.Element
		if sh.policy == LFU {
			// New entries start at the front and bubble past freq-1 peers
			// so ties break by recency (older same-frequency entries are
			// evicted first).
			el = sh.order.PushFront(se)
			sh.repositionLFULocked(el, se)
		} else {
			el = sh.order.PushBack(se)
		}
		sh.entries[e.Key] = el
		sh.stats.BytesUsed += size
	}
	sh.stats.Puts++
	sh.evictLocked(clk)
}

// evictLocked enforces both capacity limits. Expired entries are evicted
// first (they are free wins), then the policy's victim order applies.
func (sh *shard) evictLocked(clk clock.Clock) {
	over := func() bool {
		if sh.maxItems > 0 && len(sh.entries) > sh.maxItems {
			return true
		}
		if sh.maxBytes > 0 && sh.stats.BytesUsed > sh.maxBytes {
			return true
		}
		return false
	}
	if !over() {
		return
	}
	// First pass: drop expired entries.
	now := clk.Now()
	for el := sh.order.Front(); el != nil && over(); {
		next := el.Next()
		se := el.Value.(*storedEntry)
		if se.entry.Expired(now) {
			sh.removeLocked(se.entry.Key, el)
			sh.stats.Expirations++
		}
		el = next
	}
	// Second pass: policy order from the front.
	for over() {
		el := sh.order.Front()
		if el == nil {
			return
		}
		se := el.Value.(*storedEntry)
		sh.removeLocked(se.entry.Key, el)
		sh.stats.Evictions++
	}
}

// removeLocked drops el from the shard. The caller must hold sh.mu.
func (sh *shard) removeLocked(key string, el *list.Element) {
	sh.order.Remove(el)
	delete(sh.entries, key)
	if sh.readMap != nil {
		sh.readMap.delete(key)
	}
	sh.stats.BytesUsed -= el.Value.(*storedEntry).size
}

// Delete implements Cache.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return false
	}
	sh.removeLocked(key, el)
	sh.stats.Invalidations++
	return true
}

// Clear implements Cache.
func (s *Store) Clear() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.readMap != nil {
			// Delete key by key under the owning shard's lock so a clear
			// cannot erase entries a concurrent Put just published.
			for k := range sh.entries {
				sh.readMap.delete(k)
			}
		}
		sh.entries = make(map[string]*list.Element)
		sh.order.Init()
		sh.stats.BytesUsed = 0
		sh.mu.Unlock()
	}
}

// Len implements Cache.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the number of lock stripes (for tests and reports).
func (s *Store) Shards() int { return len(s.shards) }

// Stats implements Cache. Each shard's counters are read under that
// shard's lock, so every per-shard snapshot is internally consistent and
// — because the counters are monotone — sums across successive Stats
// calls never go backwards, even with concurrent traffic.
func (s *Store) Stats() Stats {
	var total Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.stats
		sh.mu.Unlock()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Puts += st.Puts
		total.Evictions += st.Evictions
		total.Expirations += st.Expirations
		total.Invalidations += st.Invalidations
		total.BytesUsed += st.BytesUsed
	}
	// Lock-free read-path counters (only non-zero for unbounded stores).
	// Atomic loads of monotone counters keep the never-backwards guarantee.
	total.Hits += s.fastHits.Load()
	total.Misses += s.fastMisses.Load()
	total.Expirations += s.fastExpirations.Load()
	return total
}

// Sweep removes all expired entries eagerly and returns the count reaped.
func (s *Store) Sweep() int {
	now := s.clk.Now()
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; {
			next := el.Next()
			se := el.Value.(*storedEntry)
			if se.entry.Expired(now) {
				sh.removeLocked(se.entry.Key, el)
				sh.stats.Expirations++
				n++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	return n
}

// Keys returns the keys of live (unexpired) entries in eviction order,
// front (next victim) first, shard by shard. For single-shard stores this
// is the exact global eviction order. For unbounded stores — where
// eviction cannot fire and Gets take the lock-free path — the order is
// insertion order. Primarily for tests and debugging.
func (s *Store) Keys() []string {
	now := s.clk.Now()
	out := make([]string, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			se := el.Value.(*storedEntry)
			if !se.entry.Expired(now) {
				out = append(out, se.entry.Key)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

var _ Cache = (*Store)(nil)

// TTLEntry is a convenience constructor for an entry expiring ttl from now
// according to clk.
func TTLEntry(clk clock.Clock, key string, body []byte, version uint64, ttl time.Duration) Entry {
	if clk == nil {
		clk = clock.System
	}
	now := clk.Now()
	e := Entry{Key: key, Body: body, Version: version, StoredAt: now}
	if ttl > 0 {
		e.ExpiresAt = now.Add(ttl)
	}
	return e
}
