package bloom

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomKeys returns n distinct-ish keys drawn from rng, with lengths
// varied so batch chunk boundaries and the hash loop both get exercised.
func randomKeys(rng *rand.Rand, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("/k/%d/%x", rng.Intn(n*4), rng.Uint64()>>uint(rng.Intn(40)))
	}
	return keys
}

// The batched insert path must leave the filter in a byte-for-byte
// identical state to sequential per-key Add — pinned via MarshalBinary so
// any divergence in probe derivation, chunking, or bit indexing shows up
// no matter which words it lands in. Sizes straddle BatchSize multiples
// to cover full chunks, a ragged tail, and the empty batch.
func TestAddBatchStateMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, BatchSize - 1, BatchSize, BatchSize + 1, 3 * BatchSize, 100} {
		keys := randomKeys(rng, n+1)[:n]
		seq := NewFilterForCapacity(256, 0.01)
		for _, k := range keys {
			seq.Add(k)
		}
		bat := NewFilterForCapacity(256, 0.01)
		bat.AddBatch(keys)
		sb, err := seq.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := bat.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, bb) {
			t.Fatalf("n=%d: AddBatch state diverges from sequential Add", n)
		}
	}
}

// ContainsBatch must answer exactly what per-key Contains answers — for
// present keys (always true), absent keys (usually false), and false
// positives (where both paths must agree, since they share probe math).
// Property-tested over random key sets and batch sizes.
func TestContainsBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		f := NewFilterForCapacity(128, 0.05)
		present := randomKeys(rng, 1+rng.Intn(200))
		for _, k := range present {
			f.Add(k)
		}
		// Query a mix of inserted keys and fresh ones.
		queries := append(randomKeys(rng, 1+rng.Intn(3*BatchSize)), present[:rng.Intn(len(present)+1)]...)
		rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
		hits := make([]bool, len(queries))
		f.ContainsBatch(queries, hits)
		for i, q := range queries {
			if want := f.Contains(q); hits[i] != want {
				t.Fatalf("trial %d: ContainsBatch(%q) = %v, Contains = %v", trial, q, hits[i], want)
			}
		}
		// No false negatives through the batch path.
		ph := make([]bool, len(present))
		f.ContainsBatch(present, ph)
		for i, ok := range ph {
			if !ok {
				t.Fatalf("trial %d: batch path lost inserted key %q", trial, present[i])
			}
		}
	}
}

// ProbesForBatch must derive the same digests ProbesFor does, including
// when handed fewer keys than BatchSize (stale dst slots beyond the key
// count are simply not written).
func TestProbesForBatchMatchesProbesFor(t *testing.T) {
	keys := []string{"", "a", "/products/42", "/baskets/u17", "x", "yy", "zzz", "w"}
	var pb [BatchSize]Probes
	ProbesForBatch(keys, &pb)
	for i, k := range keys {
		if pb[i] != ProbesFor(k) {
			t.Fatalf("ProbesForBatch[%d] = %+v, ProbesFor(%q) = %+v", i, pb[i], k, ProbesFor(k))
		}
	}
	short := keys[:3]
	var pb2 [BatchSize]Probes
	ProbesForBatch(short, &pb2)
	for i, k := range short {
		if pb2[i] != ProbesFor(k) {
			t.Fatalf("short batch slot %d wrong for %q", i, k)
		}
	}
}

// The batched probe paths are //speedkit:hotpath: beyond the analyzer's
// static check, pin at runtime that steady-state batch queries allocate
// nothing (the probe array lives on the stack, chunking reslices only).
func TestContainsBatchZeroAlloc(t *testing.T) {
	f := NewFilterForCapacity(1024, 0.01)
	keys := randomKeys(rand.New(rand.NewSource(3)), 3*BatchSize+5)
	f.AddBatch(keys[:10])
	hits := make([]bool, len(keys))
	if n := testing.AllocsPerRun(1000, func() {
		f.ContainsBatch(keys, hits)
	}); n != 0 {
		t.Fatalf("ContainsBatch allocates %.1f per run, want 0", n)
	}
	var pb [BatchSize]Probes
	if n := testing.AllocsPerRun(1000, func() {
		ProbesForBatch(keys[:BatchSize], &pb)
	}); n != 0 {
		t.Fatalf("ProbesForBatch allocates %.1f per run, want 0", n)
	}
}
