package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestSuppressionDirectives(t *testing.T) {
	src := `package p

//lint:ignore fake reason here
var a int

//lint:ignore fake
var b int

var c int //lint:ignore other trailing reason
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
	at := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "s.go", Line: line}, Analyzer: analyzer, Message: "m"}
	}
	diags := []Diagnostic{
		at(4, "fake"),  // suppressed: directive on the line above, with reason
		at(7, "fake"),  // kept: the line-6 directive has no reason and is inert
		at(9, "other"), // suppressed: trailing directive on the same line
		at(9, "fake"),  // kept: analyzer name does not match
	}
	got := filterSuppressed([]*Package{pkg}, diags)
	if len(got) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(got), got)
	}
	if got[0].Pos.Line != 7 || got[0].Analyzer != "fake" {
		t.Errorf("kept[0] = %+v, want line 7 fake", got[0])
	}
	if got[1].Pos.Line != 9 || got[1].Analyzer != "fake" {
		t.Errorf("kept[1] = %+v, want line 9 fake", got[1])
	}
}
