package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocFinding is one allocation (or scheduling construct) observable
// from a function: either directly in its body, or transitively through
// a module-local callee.
type AllocFinding struct {
	// Pos is where the construct (or the call leading to it) appears.
	Pos token.Pos
	// Reason describes the construct ("heap allocation (make)",
	// "interface boxing", "defer", ...).
	Reason string
	// Chain is the call path to the allocation for transitive findings;
	// empty for constructs directly in the function body.
	Chain []string
}

// maxAllocReasons bounds a function's allocation summary; beyond this
// the summary is already damning enough.
const maxAllocReasons = 8

// maxAllocChain bounds the call-chain depth recorded per reason.
const maxAllocChain = 4

// allocReason is a summary entry: a reason plus the chain to it, with a
// stable dedup key.
type allocReason struct {
	reason string
	chain  []string
}

func (r allocReason) key() string { return r.reason + "|" + strings.Join(r.chain, ">") }

// AllocAnalysis computes, bottom-up over the call graph, whether each
// function allocates (or defers / spawns) — directly or via
// module-local callees — so clients can flag calls that break an
// annotated hot path without whole-program escape analysis.
type AllocAnalysis struct {
	prog *Program
	sums map[*FuncInfo][]allocReason
}

// NewAllocAnalysis computes allocation summaries for every function.
func NewAllocAnalysis(prog *Program) *AllocAnalysis {
	aa := &AllocAnalysis{prog: prog, sums: map[*FuncInfo][]allocReason{}}
	prog.BottomUp(func(fi *FuncInfo) bool {
		return aa.computeSummary(fi)
	})
	return aa
}

// Allocates reports whether the function's converged summary contains
// any allocation reasons.
func (aa *AllocAnalysis) Allocates(fi *FuncInfo) bool { return len(aa.sums[fi]) > 0 }

func (aa *AllocAnalysis) computeSummary(fi *FuncInfo) bool {
	seen := map[string]bool{}
	var next []allocReason
	aa.scan(fi, func(f AllocFinding) {
		if len(next) >= maxAllocReasons {
			return
		}
		r := allocReason{reason: f.Reason, chain: f.Chain}
		if !seen[r.key()] {
			seen[r.key()] = true
			next = append(next, r)
		}
	})
	prev, had := aa.sums[fi]
	aa.sums[fi] = next
	if !had || len(next) != len(prev) {
		return true
	}
	for i := range next {
		if next[i].key() != prev[i].key() {
			return true
		}
	}
	return false
}

// Findings reports every allocation observable from fi, positions
// included, in source order. Clients call this only for functions they
// police (e.g. //speedkit:hotpath).
func (aa *AllocAnalysis) Findings(fi *FuncInfo) []AllocFinding {
	var out []AllocFinding
	seen := map[string]bool{}
	aa.scan(fi, func(f AllocFinding) {
		key := fmt.Sprintf("%d|%s|%s", f.Pos, f.Reason, strings.Join(f.Chain, ">"))
		if !seen[key] {
			seen[key] = true
			out = append(out, f)
		}
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// scan walks fi's body and emits every allocation construct plus every
// call whose (already computed) callee summary allocates.
func (aa *AllocAnalysis) scan(fi *FuncInfo, emit func(AllocFinding)) {
	info := fi.Pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			emit(AllocFinding{Pos: n.Pos(), Reason: "defer in hot path (defer record + delayed work)"})
		case *ast.GoStmt:
			emit(AllocFinding{Pos: n.Pos(), Reason: "goroutine spawn in hot path"})
		case *ast.FuncLit:
			// The closure value itself allocates; its body runs under its
			// own budget, so one finding and no descent.
			emit(AllocFinding{Pos: n.Pos(), Reason: "closure allocation (func literal)"})
			return false
		case *ast.CompositeLit:
			aa.compositeLit(fi, n, emit)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(AllocFinding{Pos: n.Pos(), Reason: "heap allocation (&T{...} escapes)"})
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info, n.X) {
				emit(AllocFinding{Pos: n.Pos(), Reason: "string concatenation allocates"})
			}
		case *ast.CallExpr:
			aa.callExpr(fi, n, emit)
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			aa.boxingAssign(fi, as, emit)
		}
		if rs, ok := n.(*ast.ReturnStmt); ok {
			aa.boxingReturn(fi, rs, emit)
		}
		return true
	}
	ast.Inspect(fi.Decl.Body, walk)
}

func (aa *AllocAnalysis) compositeLit(fi *FuncInfo, lit *ast.CompositeLit, emit func(AllocFinding)) {
	tv, ok := fi.Pkg.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		emit(AllocFinding{Pos: lit.Pos(), Reason: "heap allocation (map literal)"})
	case *types.Slice:
		emit(AllocFinding{Pos: lit.Pos(), Reason: "heap allocation (slice literal)"})
	}
	// Plain struct/array literals stay stack-allocated unless they
	// escape; the &T{...} case is caught at the UnaryExpr.
}

func (aa *AllocAnalysis) callExpr(fi *FuncInfo, call *ast.CallExpr, emit func(AllocFinding)) {
	info := fi.Pkg.Info

	// Conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.Types[call.Args[0]].Type
		if src != nil {
			if isString(dst) && isByteOrRuneSlice(src.Underlying()) {
				emit(AllocFinding{Pos: call.Pos(), Reason: "string([]byte) conversion allocates"})
			} else if isByteOrRuneSlice(dst) && isString(src.Underlying()) {
				emit(AllocFinding{Pos: call.Pos(), Reason: "[]byte(string) conversion allocates"})
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				emit(AllocFinding{Pos: call.Pos(), Reason: "heap allocation (make)"})
			case "new":
				emit(AllocFinding{Pos: call.Pos(), Reason: "heap allocation (new)"})
			case "append":
				emit(AllocFinding{Pos: call.Pos(), Reason: "append may grow and allocate"})
			}
			return
		}
	}

	// Interface boxing at argument positions.
	aa.boxingArgs(fi, call, emit)

	// Transitive: module-local callee whose summary allocates.
	if callee := aa.prog.CalleeOf(fi.Pkg, call); callee != nil && callee != fi {
		for _, r := range aa.sums[callee] {
			chain := append([]string{callee.Name()}, r.chain...)
			if len(chain) > maxAllocChain {
				chain = chain[:maxAllocChain]
			}
			emit(AllocFinding{Pos: call.Pos(), Reason: r.reason, Chain: chain})
		}
	}
}

// boxingArgs flags concrete non-pointer-shaped values passed to
// interface parameters — each such pass boxes the value on the heap.
func (aa *AllocAnalysis) boxingArgs(fi *FuncInfo, call *ast.CallExpr, emit func(AllocFinding)) {
	info := fi.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if at := info.Types[arg].Type; at != nil && boxes(at) {
			emit(AllocFinding{Pos: arg.Pos(), Reason: "interface boxing (concrete value passed as " + pt.String() + ")"})
		}
	}
}

// boxingAssign flags assignments of concrete non-pointer-shaped values
// into interface-typed variables.
func (aa *AllocAnalysis) boxingAssign(fi *FuncInfo, as *ast.AssignStmt, emit func(AllocFinding)) {
	info := fi.Pkg.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.Types[lhs].Type
		rt := info.Types[as.Rhs[i]].Type
		if lt != nil && rt != nil && types.IsInterface(lt) && boxes(rt) {
			emit(AllocFinding{Pos: as.Rhs[i].Pos(), Reason: "interface boxing (assignment to " + lt.String() + ")"})
		}
	}
}

// boxingReturn flags concrete non-pointer-shaped values returned as
// interface results.
func (aa *AllocAnalysis) boxingReturn(fi *FuncInfo, rs *ast.ReturnStmt, emit func(AllocFinding)) {
	sig := fi.Obj.Type().(*types.Signature)
	results := sig.Results()
	if len(rs.Results) != results.Len() {
		return
	}
	info := fi.Pkg.Info
	for i, r := range rs.Results {
		dst := results.At(i).Type()
		if !types.IsInterface(dst) {
			continue
		}
		if rt := info.Types[r].Type; rt != nil && boxes(rt) {
			emit(AllocFinding{Pos: r.Pos(), Reason: "interface boxing (returned as " + dst.String() + ")"})
		}
	}
}

// boxes reports whether storing a value of type t into an interface
// allocates: true for concrete types that are not pointer-shaped (a
// pointer, chan, map, func, or unsafe.Pointer fits in the interface
// word directly). Untyped nil never boxes.
func boxes(t types.Type) bool {
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return false
		case types.UntypedBool, types.UntypedInt, types.UntypedRune,
			types.UntypedFloat, types.UntypedComplex, types.UntypedString:
			// Untyped constants box via their default type; small ints
			// often hit the runtime's static cells, but that is an
			// implementation detail — flag them.
			return true
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
