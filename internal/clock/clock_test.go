package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowProgresses(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestSimulatedDefaultsToFixedEpoch(t *testing.T) {
	a := NewSimulated(time.Time{})
	b := NewSimulated(time.Time{})
	if !a.Now().Equal(b.Now()) {
		t.Fatalf("default epochs differ: %v vs %v", a.Now(), b.Now())
	}
}

func TestSimulatedAdvance(t *testing.T) {
	c := NewSimulated(time.Unix(100, 0))
	c.Advance(5 * time.Second)
	if got := c.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Fatalf("now = %v, want 105s", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Fatalf("negative advance moved clock: %v", got)
	}
}

func TestSimulatedSetNeverBackwards(t *testing.T) {
	c := NewSimulated(time.Unix(100, 0))
	c.Set(time.Unix(50, 0))
	if !c.Now().Equal(time.Unix(100, 0)) {
		t.Fatalf("Set moved clock backwards to %v", c.Now())
	}
	c.Set(time.Unix(200, 0))
	if !c.Now().Equal(time.Unix(200, 0)) {
		t.Fatalf("Set failed to move forward: %v", c.Now())
	}
}

func TestSince(t *testing.T) {
	c := NewSimulated(time.Unix(100, 0))
	start := c.Now()
	c.Advance(90 * time.Second)
	if got := Since(c, start); got != 90*time.Second {
		t.Fatalf("Since = %v, want 90s", got)
	}
}

func TestStopwatchElapsedAndReset(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	sw := NewStopwatch(c)
	c.Advance(3 * time.Second)
	if got := sw.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed = %v, want 3s", got)
	}
	sw.Reset()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed after Reset = %v, want 0", got)
	}
	c.Advance(time.Second)
	if got := sw.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed after Reset+Advance = %v, want 1s", got)
	}
}

func TestStopwatchNilClockDefaultsToSystem(t *testing.T) {
	sw := NewStopwatch(nil)
	if sw.Elapsed() < 0 {
		t.Fatal("system stopwatch ran backwards")
	}
}

func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(time.Unix(8, 0)) {
		t.Fatalf("now = %v, want 8s", got)
	}
}
