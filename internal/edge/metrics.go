package edge

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics holds the edge's own counters. The edge is shared
// infrastructure under the GDPR boundary: it may not import
// internal/obs (whose registry lives on the identity-bearing side of
// the fence), so it owns a minimal atomic counter set and renders the
// Prometheus exposition itself. Names live under speedkit.edge.* —
// the same namespace convention the rest of the system uses — and the
// rendering order is fixed, so two scrapes of identical state are
// byte-identical (golden-testable, diffable).
type metrics struct {
	hits             atomic.Uint64
	misses           atomic.Uint64
	revalidated      atomic.Uint64
	notModified      atomic.Uint64
	coalescedWaiters atomic.Uint64
	purges           atomic.Uint64
	rangeRequests    atomic.Uint64
	rangeRejected    atomic.Uint64
	bypass           atomic.Uint64
	upstreamErrors   atomic.Uint64
	servedStale      atomic.Uint64
	bytesServed      atomic.Uint64
	diskFills        atomic.Uint64
	diskPurges       atomic.Uint64
	snapshots        atomic.Uint64
	sketchRefreshes  atomic.Uint64
}

// Stats is a point-in-time copy of the edge counters.
type Stats struct {
	// Hits served straight from cache without touching the upstream.
	Hits uint64
	// Misses that went to the upstream for a full body (fill leaders).
	Misses uint64
	// Revalidated entries renewed by an upstream 304.
	Revalidated uint64
	// NotModified 304s answered downstream on If-None-Match.
	NotModified uint64
	// CoalescedWaiters attached to another request's in-flight fill.
	CoalescedWaiters uint64
	// Purges applied (pipeline notifications and manual).
	Purges uint64
	// RangeRequests served as 206 partial content.
	RangeRequests uint64
	// RangeRejected answered 416 (unsatisfiable).
	RangeRejected uint64
	// Bypass requests proxied through uncached.
	Bypass uint64
	// UpstreamErrors on fetch or revalidation.
	UpstreamErrors uint64
	// ServedStale hits answered from an expired copy because the
	// upstream was unreachable.
	ServedStale uint64
	// BytesServed counts response body bytes from the cache path.
	BytesServed uint64
	// DiskFills / DiskPurges are WAL records appended to the disk tier.
	DiskFills  uint64
	DiskPurges uint64
	// Snapshots taken of the disk tier.
	Snapshots uint64
	// SketchRefreshes pulled from the upstream.
	SketchRefreshes uint64
}

func (m *metrics) stats() Stats {
	return Stats{
		Hits:             m.hits.Load(),
		Misses:           m.misses.Load(),
		Revalidated:      m.revalidated.Load(),
		NotModified:      m.notModified.Load(),
		CoalescedWaiters: m.coalescedWaiters.Load(),
		Purges:           m.purges.Load(),
		RangeRequests:    m.rangeRequests.Load(),
		RangeRejected:    m.rangeRejected.Load(),
		Bypass:           m.bypass.Load(),
		UpstreamErrors:   m.upstreamErrors.Load(),
		ServedStale:      m.servedStale.Load(),
		BytesServed:      m.bytesServed.Load(),
		DiskFills:        m.diskFills.Load(),
		DiskPurges:       m.diskPurges.Load(),
		Snapshots:        m.snapshots.Load(),
		SketchRefreshes:  m.sketchRefreshes.Load(),
	}
}

// write renders the Prometheus text exposition. The row order is the
// declaration order below — fixed, so the output is deterministic.
func (m *metrics) write(w io.Writer) {
	s := m.stats()
	rows := []struct {
		name  string
		value uint64
	}{
		{"speedkit_edge_hits_total", s.Hits},
		{"speedkit_edge_misses_total", s.Misses},
		{"speedkit_edge_revalidated_total", s.Revalidated},
		{"speedkit_edge_not_modified_total", s.NotModified},
		{"speedkit_edge_coalesced_waiters_total", s.CoalescedWaiters},
		{"speedkit_edge_purges_total", s.Purges},
		{"speedkit_edge_range_requests_total", s.RangeRequests},
		{"speedkit_edge_range_rejected_total", s.RangeRejected},
		{"speedkit_edge_bypass_total", s.Bypass},
		{"speedkit_edge_upstream_errors_total", s.UpstreamErrors},
		{"speedkit_edge_served_stale_total", s.ServedStale},
		{"speedkit_edge_bytes_served_total", s.BytesServed},
		{"speedkit_edge_disk_fills_total", s.DiskFills},
		{"speedkit_edge_disk_purges_total", s.DiskPurges},
		{"speedkit_edge_snapshots_total", s.Snapshots},
		{"speedkit_edge_sketch_refreshes_total", s.SketchRefreshes},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", r.name, r.name, r.value)
	}
}
