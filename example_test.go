package speedkit_test

import (
	"context"
	"fmt"
	"log"

	"speedkit"
)

// Example shows the complete lifecycle: boot a deployment, load a page
// through a device (cold, then from the device cache), and drive the
// invalidation pipeline with a write.
func Example() {
	svc, err := speedkit.New(speedkit.WithProducts(100))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	user := speedkit.NewUsers(1, 1)[0]
	device := svc.NewDevice(user, speedkit.RegionEU)

	page, _ := device.Load(context.Background(), "/product/p00042")
	fmt.Println("first load served by:", page.Source)

	page, _ = device.Load(context.Background(), "/product/p00042")
	fmt.Println("second load served by:", page.Source)

	_ = svc.Docs().Patch("products", "p00042", map[string]any{"price": 1.99})
	fmt.Println("tracked as potentially stale:", svc.SketchServer().Contains("/product/p00042"))

	// Output:
	// first load served by: origin
	// second load served by: device
	// tracked as potentially stale: true
}

// ExampleParseQuery demonstrates the query syntax used for listing pages
// and continuous invalidation queries.
func ExampleParseQuery() {
	q, err := speedkit.ParseQuery(`products WHERE category = "shoes" AND price < 100 ORDER BY price LIMIT 24`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Match(map[string]any{"category": "shoes", "price": 59.0}))
	fmt.Println(q.Match(map[string]any{"category": "shoes", "price": 159.0}))
	// Output:
	// true
	// false
}

// ExampleNewService builds a custom (non-storefront) deployment from the
// lower-level pieces.
func ExampleNewService() {
	docs := speedkit.NewDocumentStore()
	_ = docs.Insert("articles", "a1", map[string]any{"title": "Hello", "section": "news"})

	org := speedkit.NewOrigin(docs)
	defer org.Close()
	org.RegisterProducts("/article/", "articles")
	q, _ := speedkit.ParseQuery(`articles WHERE section = "news"`)
	org.RegisterQueryPage("/news", "News", q)

	svc := speedkit.NewService(speedkit.ServiceConfig{Seed: 1}, docs, org)
	defer svc.Close()

	device := svc.NewDevice(nil, speedkit.RegionUS)
	page, _ := device.Load(context.Background(), "/news")
	fmt.Println("loaded /news, version", page.Version)
	// Output:
	// loaded /news, version 1
}
