package obs

import (
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/tracectx"
)

// The acceptance bar for telemetry on the request path: tracing that is
// disabled, nil, or simply did not draw this request allocates nothing,
// and pre-resolved metric handles record without allocating. These tests
// are the hard gate behind the hot-path obs benchmarks.

func TestDisabledTracerStartAllocsFree(t *testing.T) {
	off := NewTracer(clock.NewSimulated(time.Time{}), 0, 8)
	if n := testing.AllocsPerRun(1000, func() {
		if tr := off.Start("page_load", "/p"); tr != nil {
			t.Fatal("disabled tracer sampled")
		}
	}); n != 0 {
		t.Fatalf("disabled Start allocates %v per run, want 0", n)
	}
}

func TestNilTracerStartAllocsFree(t *testing.T) {
	var nilT *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		if tr := nilT.Start("page_load", "/p"); tr != nil {
			t.Fatal("nil tracer sampled")
		}
		nilT.Finish(nil)
	}); n != 0 {
		t.Fatalf("nil tracer path allocates %v per run, want 0", n)
	}
}

func TestUnsampledStartAllocsFree(t *testing.T) {
	// Sampling enabled but this request never drawn: 1-in-2^30.
	tcr := NewTracer(clock.NewSimulated(time.Time{}), 1<<30, 8)
	if n := testing.AllocsPerRun(1000, func() {
		if tr := tcr.Start("page_load", "/p"); tr != nil {
			t.Fatal("unexpected sample")
		}
	}); n != 0 {
		t.Fatalf("unsampled Start allocates %v per run, want 0", n)
	}
}

func TestUnsampledRemoteStartAllocsFree(t *testing.T) {
	// A propagated parent whose head decided NOT to sample: StartRemote
	// must honor the decision with zero allocations — this is the common
	// path on every server request from an untraced client.
	tcr := NewTracer(clock.NewSimulated(time.Time{}), 1, 8)
	src := tracectx.NewIDSource(9)
	parent := tracectx.SpanContext{TraceID: src.TraceID(), SpanID: src.SpanID(), Sampled: false}
	if n := testing.AllocsPerRun(1000, func() {
		if tr := tcr.StartRemote("http.page", "/p", parent); tr != nil {
			t.Fatal("unsampled parent was recorded")
		}
	}); n != 0 {
		t.Fatalf("unsampled StartRemote allocates %v per run, want 0", n)
	}
}

func TestNilTracerStartRemoteAllocsFree(t *testing.T) {
	var nilT *Tracer
	src := tracectx.NewIDSource(9)
	parent := tracectx.SpanContext{TraceID: src.TraceID(), SpanID: src.SpanID(), Sampled: true}
	if n := testing.AllocsPerRun(1000, func() {
		if tr := nilT.StartRemote("http.page", "/p", parent); tr != nil {
			t.Fatal("nil tracer sampled")
		}
	}); n != 0 {
		t.Fatalf("nil StartRemote allocates %v per run, want 0", n)
	}
}

func TestNilTraceMethodsAllocFree(t *testing.T) {
	var tr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		tr.AddSpan("shell.fetch", "cdn", time.Millisecond)
		tr.SetSource("cdn")
		tr.SetSketch(1, time.Second, time.Minute)
		tr.SetBlocks(1, time.Millisecond)
		tr.SetTotal(time.Millisecond)
		tr.MarkRevalidated()
	}); n != 0 {
		t.Fatalf("nil trace methods allocate %v per run, want 0", n)
	}
}

func TestResolvedHandlesRecordAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("speedkit.test.total", L("source", "cdn"))
	g := r.Gauge("speedkit.test.inflight")
	h := r.Histogram("speedkit.test.lat_us")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(125)
	}); n != 0 {
		t.Fatalf("pre-resolved handles allocate %v per run, want 0", n)
	}
}
