package cachesketch

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
)

// protocolSim wires a complete client/server protocol instance over a
// simulated clock: an origin with versioned resources, a client-side
// expiration cache, the sketch server, and a sketch client enforcing Δ.
// It is the reference implementation of the request flow that the
// higher-level proxy/core packages reproduce with real components.
type protocolSim struct {
	clk       *clock.Simulated
	origin    map[string]uint64 // current version per key
	log       *VersionLog
	server    *Server
	client    *Client
	store     *cache.Store
	ttl       time.Duration
	useSketch bool

	served      int
	cacheHits   int
	staleReads  int
	maxStale    time.Duration
	revalidates int
}

func newProtocolSim(delta, ttl time.Duration, useSketch bool) *protocolSim {
	clk := clock.NewSimulated(time.Time{})
	return &protocolSim{
		clk:       clk,
		origin:    make(map[string]uint64),
		log:       NewVersionLog(),
		server:    NewServer(ServerConfig{Capacity: 5000, FalsePositiveRate: 0.01, Clock: clk}),
		client:    NewClient(clk, delta),
		store:     cache.New(cache.Config{Clock: clk}),
		ttl:       ttl,
		useSketch: useSketch,
	}
}

func (s *protocolSim) write(key string) {
	v := s.origin[key] + 1
	s.origin[key] = v
	s.log.RecordWrite(key, v, s.clk.Now())
	s.server.ReportWrite(key)
}

// fetchFromOrigin pulls the current version, caches it, and reports the
// cache fill to the sketch server.
func (s *protocolSim) fetchFromOrigin(key string) uint64 {
	v := s.origin[key]
	e := cache.TTLEntry(s.clk, key, nil, v, s.ttl)
	s.store.Put(e)
	s.server.ReportCachedRead(key, e.ExpiresAt)
	return v
}

// read performs one protocol-governed read and records staleness.
func (s *protocolSim) read(key string) {
	now := s.clk.Now()
	var served uint64
	switch {
	case !s.useSketch:
		// TTL-only baseline: serve any unexpired copy blindly.
		if e, ok := s.store.Get(key); ok {
			served = e.Version
			s.cacheHits++
		} else {
			served = s.fetchFromOrigin(key)
		}
	default:
		decision := s.client.Check(key)
		if decision == RefreshSketch {
			s.client.Install(s.server.Snapshot())
			decision = s.client.Check(key)
		}
		switch decision {
		case Revalidate:
			s.revalidates++
			served = s.fetchFromOrigin(key)
		case ServeFromCache:
			if e, ok := s.store.Get(key); ok {
				served = e.Version
				s.cacheHits++
			} else {
				served = s.fetchFromOrigin(key)
			}
		}
	}
	s.served++
	if st := s.log.Staleness(key, served, now); st > 0 {
		s.staleReads++
		if st > s.maxStale {
			s.maxStale = st
		}
	}
}

// run drives a random workload: nKeys resources, readers and writers
// interleaved, time advancing in small random steps.
func (s *protocolSim) run(rng *rand.Rand, ops, nKeys int, writeFrac float64) {
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("/r/%d", i)
		s.write(keys[i]) // version 1
	}
	for i := 0; i < ops; i++ {
		key := keys[rng.Intn(nKeys)]
		if rng.Float64() < writeFrac {
			s.write(key)
		} else {
			s.read(key)
		}
		s.clk.Advance(time.Duration(rng.Intn(500)) * time.Millisecond)
	}
}

func TestDeltaAtomicityHoldsUnderRandomInterleavings(t *testing.T) {
	// The central invariant: with the sketch protocol active, no read may
	// be staler than Δ, across several seeds, deltas, and write mixes.
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, delta := range []time.Duration{time.Second, 5 * time.Second, 30 * time.Second} {
			sim := newProtocolSim(delta, 60*time.Second, true)
			sim.run(rand.New(rand.NewSource(seed)), 4000, 50, 0.15)
			if sim.maxStale > delta {
				t.Errorf("seed=%d Δ=%v: max staleness %v exceeds Δ", seed, delta, sim.maxStale)
			}
			if sim.served == 0 || sim.cacheHits == 0 {
				t.Errorf("seed=%d Δ=%v: vacuous run (served=%d hits=%d)", seed, delta, sim.served, sim.cacheHits)
			}
		}
	}
}

func TestTTLOnlyBaselineViolatesDelta(t *testing.T) {
	// Shape check for Table 2: with a 60 s TTL and no sketch, staleness
	// approaches the TTL — far beyond a 1 s Δ. This is the failure mode
	// the protocol exists to fix.
	sim := newProtocolSim(time.Second, 60*time.Second, false)
	sim.run(rand.New(rand.NewSource(42)), 4000, 50, 0.15)
	if sim.maxStale <= time.Second {
		t.Fatalf("TTL-only baseline suspiciously consistent: max stale %v", sim.maxStale)
	}
	if sim.staleReads == 0 {
		t.Fatal("TTL-only baseline produced no stale reads under 15% writes")
	}
}

func TestSketchReducesStaleReadsVsBaseline(t *testing.T) {
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	withSketch := newProtocolSim(2*time.Second, 60*time.Second, true)
	withSketch.run(rngA, 3000, 30, 0.2)
	baseline := newProtocolSim(2*time.Second, 60*time.Second, false)
	baseline.run(rngB, 3000, 30, 0.2)

	// The sketch should cut stale reads by a large factor while keeping a
	// substantial share of cache hits.
	if withSketch.staleReads*5 > baseline.staleReads {
		t.Fatalf("sketch stale=%d vs baseline stale=%d — reduction too small",
			withSketch.staleReads, baseline.staleReads)
	}
	if withSketch.cacheHits == 0 {
		t.Fatal("sketch killed all cache hits")
	}
}

func TestFalsePositivesOnlyCostRevalidations(t *testing.T) {
	// With a deliberately tiny (high-FPR) sketch the protocol must still
	// hold the Δ bound — false positives are a performance tax, never a
	// correctness loss.
	clk := clock.NewSimulated(time.Time{})
	sim := &protocolSim{
		clk:       clk,
		origin:    make(map[string]uint64),
		log:       NewVersionLog(),
		server:    NewServer(ServerConfig{Capacity: 10, FalsePositiveRate: 0.5, Clock: clk}),
		client:    NewClient(clk, 2*time.Second),
		store:     cache.New(cache.Config{Clock: clk}),
		ttl:       60 * time.Second,
		useSketch: true,
	}
	sim.run(rand.New(rand.NewSource(11)), 3000, 200, 0.2)
	if sim.maxStale > 2*time.Second {
		t.Fatalf("undersized sketch broke Δ-atomicity: %v", sim.maxStale)
	}
	if sim.revalidates == 0 {
		t.Fatal("expected revalidations under a high-FPR sketch")
	}
}

func TestZeroWriteWorkloadNeverRevalidates(t *testing.T) {
	sim := newProtocolSim(5*time.Second, time.Hour, true)
	rng := rand.New(rand.NewSource(3))
	// Seed one version for each key, then read-only traffic.
	sim.run(rng, 2000, 20, 0)
	if sim.staleReads != 0 {
		t.Fatal("stale reads without writes")
	}
	// All sketch checks should pass (no writes → empty sketch → no
	// revalidations beyond cold misses).
	if sim.revalidates != 0 {
		t.Fatalf("revalidates = %d in write-free run", sim.revalidates)
	}
	if sim.cacheHits == 0 {
		t.Fatal("no cache hits in read-only run")
	}
}

func BenchmarkProtocolReadPath(b *testing.B) {
	clk := clock.NewSimulated(time.Time{})
	srv := NewServer(ServerConfig{Capacity: 10000, Clock: clk})
	cl := NewClient(clk, time.Minute)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("/r/%d", i)
		srv.ReportCachedRead(key, clk.Now().Add(time.Hour))
		if i%10 == 0 {
			srv.ReportWrite(key)
		}
	}
	cl.Install(srv.Snapshot())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Check(fmt.Sprintf("/r/%d", i%1000))
	}
}

func BenchmarkServerSnapshot(b *testing.B) {
	clk := clock.NewSimulated(time.Time{})
	srv := NewServer(ServerConfig{Capacity: 50000, Clock: clk})
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("/r/%d", i)
		srv.ReportCachedRead(key, clk.Now().Add(time.Hour))
		srv.ReportWrite(key)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Snapshot()
	}
}
