package bent

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Suite is one named benchmark suite from the checked-in registry: the
// benchmarks to run, where to run them, and how to judge the result
// against the committed baseline.
//
// Suite-file format (one suite per "<name>.suite" file, "key: value"
// lines, '#' comments and blank lines ignored):
//
//	name:       wal-append              # suite name (must match filename)
//	package:    ./internal/wal          # go test package path
//	bench:      ^BenchmarkWALAppend$    # -bench regexp
//	baseline:   BENCH_wal.json          # committed baseline, repo-relative
//	benchtime:  300x                    # default -benchtime for full runs
//	cpu:        4                       # optional -cpu value
//	noise:      0.60                    # allowed fractional ns/op growth
//	alloc-noise: 0                      # allowed allocs/op growth
//	note:       free-form provenance text
//
// noise is the suite's noise band: a benchmark regresses when its ns/op
// exceeds baseline*(1+noise*scale) (scale is the runner's -noise-scale).
// alloc-noise bounds allocs/op growth in absolute allocations and is NOT
// scaled — the zero-alloc gates stay tight no matter how noisy the box.
type Suite struct {
	Name       string
	Package    string
	Bench      string
	Baseline   string
	Benchtime  string
	CPU        string
	Noise      float64
	AllocNoise uint64
	Note       string
}

// defaultNoise is the noise band for suites that do not declare one:
// ±30% before scaling, roughly what a quiet shared box shows run-to-run
// for microsecond-scale benchmarks.
const defaultNoise = 0.30

// ParseSuite parses one suite file.
func ParseSuite(path string, data []byte) (Suite, error) {
	s := Suite{Noise: defaultNoise}
	for ln, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return Suite{}, fmt.Errorf("%s:%d: not a 'key: value' line: %q", path, ln+1, raw)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "name":
			s.Name = val
		case "package":
			s.Package = val
		case "bench":
			s.Bench = val
		case "baseline":
			s.Baseline = val
		case "benchtime":
			s.Benchtime = val
		case "cpu":
			s.CPU = val
		case "noise":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return Suite{}, fmt.Errorf("%s:%d: bad noise %q", path, ln+1, val)
			}
			s.Noise = f
		case "alloc-noise":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Suite{}, fmt.Errorf("%s:%d: bad alloc-noise %q", path, ln+1, val)
			}
			s.AllocNoise = n
		case "note":
			s.Note = val
		default:
			return Suite{}, fmt.Errorf("%s:%d: unknown key %q", path, ln+1, key)
		}
	}
	if s.Name == "" || s.Package == "" || s.Bench == "" {
		return Suite{}, fmt.Errorf("%s: name, package and bench are required", path)
	}
	if want := strings.TrimSuffix(filepath.Base(path), ".suite"); s.Name != want {
		return Suite{}, fmt.Errorf("%s: suite name %q does not match filename", path, s.Name)
	}
	return s, nil
}

// LoadSuites reads every *.suite file in dir, sorted by name.
func LoadSuites(dir string) ([]Suite, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.suite"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.suite files in %s", dir)
	}
	sort.Strings(paths)
	suites := make([]Suite, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		s, err := ParseSuite(p, data)
		if err != nil {
			return nil, err
		}
		suites = append(suites, s)
	}
	return suites, nil
}
