// Package metrics provides the measurement substrate used throughout the
// Speed Kit reproduction: streaming histograms with percentile queries,
// monotonic counters, rate meters, and labeled registries.
//
// Everything in this package is safe for concurrent use unless documented
// otherwise, and allocation-free on the hot recording path so that the
// instrumentation itself does not distort benchmark results.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a streaming histogram over non-negative values (typically
// durations in microseconds or sizes in bytes). It uses logarithmically
// sized buckets so that relative error is bounded (~5% per bucket) across
// nine orders of magnitude, which is the precision/footprint trade-off used
// by HdrHistogram-style recorders in production CDNs.
type Histogram struct {
	mu      sync.Mutex
	counts  []uint64
	total   uint64
	sum     float64
	min     float64
	max     float64
	growth  float64 // bucket growth factor
	logG    float64 // precomputed log(growth)
	nonZero bool
}

// defaultGrowth yields ~5% relative bucket width.
const defaultGrowth = 1.05

// numBuckets covers values up to ~1e9 with growth 1.05 plus a zero bucket.
const numBuckets = 512

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, numBuckets),
		growth: defaultGrowth,
		logG:   math.Log(defaultGrowth),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// bucketFor maps a value to its bucket index. Values <= 1 land in bucket 0.
func (h *Histogram) bucketFor(v float64) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Log(v)/h.logG) + 1
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// lowerBound is the smallest value that maps to bucket i.
func (h *Histogram) lowerBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Pow(h.growth, float64(i-1))
}

// Observe records a single value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.mu.Lock()
	h.counts[h.bucketFor(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.nonZero = true
	h.mu.Unlock()
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Microseconds()))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the running sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observed value, or 0 for an empty histogram.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.nonZero {
		return 0
	}
	return h.min
}

// Max returns the largest observed value, or 0 for an empty histogram.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.nonZero {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// bucket lower bound with linear interpolation within the bucket. Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total-1)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) > rank {
			lo := h.lowerBound(i)
			hi := h.lowerBound(i + 1)
			// Interpolate within the bucket by the fraction of rank covered.
			frac := (rank - float64(cum)) / float64(c)
			v := lo + (hi-lo)*frac
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Quantiles returns estimates for several quantiles in one pass under one
// lock acquisition. The qs slice need not be sorted.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}

// Snapshot returns an immutable copy of the histogram state for reporting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.total,
		Sum:   h.sum,
	}
	if h.nonZero {
		s.Min = h.min
		s.Max = h.max
	}
	if h.total > 0 {
		s.Mean = h.sum / float64(h.total)
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P95 = h.quantileLocked(0.95)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}

// Merge folds other into h. Both histograms must use the same bucketing,
// which is always true for histograms created by NewHistogram.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	// Take a consistent copy of other first to avoid holding two locks.
	other.mu.Lock()
	counts := make([]uint64, len(other.counts))
	copy(counts, other.counts)
	total, sum := other.total, other.sum
	omin, omax, ok := other.min, other.max, other.nonZero
	other.mu.Unlock()

	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.total += total
	h.sum += sum
	if ok {
		if omin < h.min {
			h.min = omin
		}
		if omax > h.max {
			h.max = omax
		}
		h.nonZero = true
	}
	h.mu.Unlock()
}

// Reset clears all recorded state.
func (h *Histogram) Reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.nonZero = false
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count               uint64
	Sum, Mean, Min, Max float64
	P50, P90, P95, P99  float64
}

// String renders the snapshot as a compact single line, with values assumed
// to be microseconds (the convention used across the benchmark harness).
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.0fµs p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// ExactQuantile computes the exact q-quantile of a sample slice. It is used
// by tests to bound the histogram's estimation error and by small-sample
// reports where exactness is cheap. The input slice is not modified.
func ExactQuantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + (s[lo+1]-s[lo])*frac
}
