package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"speedkit"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/httpapi"
	"speedkit/internal/httpclient"
	"speedkit/internal/netsim"
	"speedkit/internal/obs"
	"speedkit/internal/proxy"
	"speedkit/internal/tracectx"
)

// stitchEpoch anchors both simulated clocks so trace timestamps replay
// byte-identically across twin runs.
var stitchEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// stitchRun is what one device↔server round produced: the normalized
// golden export plus the identities the invariants are checked against.
type stitchRun struct {
	export   []byte
	pageTID  tracectx.TraceID
	writeTID tracectx.TraceID
	// kindsByTID records, per trace ID, the server-side trace kinds that
	// adopted it (oldest first).
	pageKinds  []string
	writeKinds []string
	// parentOK is the causal-chain check: every server trace on the page
	// load is parented by the device's page_load span, and the
	// invalidation trace is parented by the server's http.write span.
	parentOK bool
}

// runStitch is the -stitch gate: a device proxy and a server run as two
// causally independent tracer domains joined only by real HTTP requests
// over a loopback listener, and the gate asserts that one page load and
// one write each yield a single stitched trace — device and server spans
// sharing a 128-bit trace ID propagated via the W3C traceparent header —
// and that twin runs on the same seed export byte-identical trace JSON.
// Violations exit non-zero, so `make stitch` is a CI gate.
func runStitch(seed int64, delta time.Duration, products int) {
	a, err := stitchOnce(seed, delta, products)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stitch run 1: %v\n", err)
		os.Exit(1)
	}
	b, err := stitchOnce(seed, delta, products)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stitch run 2: %v\n", err)
		os.Exit(1)
	}

	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "STITCH VIOLATION: "+format+"\n", args...)
	}

	if a.pageTID.IsZero() || a.writeTID.IsZero() {
		fail("device traces drew zero trace IDs (page=%s write=%s)", a.pageTID, a.writeTID)
	}
	if a.pageTID == a.writeTID {
		fail("page load and write collapsed onto one trace ID %s", a.pageTID)
	}
	wantPage := []string{"http.sketch", "http.page"}
	if !equalStrings(a.pageKinds, wantPage) {
		fail("server traces on the page-load ID: got %v, want %v", a.pageKinds, wantPage)
	}
	// One write invalidates the product page and its category listing —
	// two pipeline runs, both finished inside the write handler, so they
	// precede http.write in ring order.
	wantWrite := []string{"invalidation", "invalidation", "http.write"}
	if !equalStrings(a.writeKinds, wantWrite) {
		fail("server traces on the write ID: got %v, want %v", a.writeKinds, wantWrite)
	}
	if !a.parentOK {
		fail("causal parentage broken: server spans are not parented by the device spans that caused them")
	}
	if !bytes.Equal(a.export, b.export) {
		fail("twin runs on seed %d exported different trace bytes (%d vs %d)", seed, len(a.export), len(b.export))
	}

	fmt.Printf("%s\n\n", a.export)
	fmt.Printf("stitch: device page_load %s stitched to server %v\n", a.pageTID, a.pageKinds)
	fmt.Printf("stitch: device admin.write %s stitched to server %v\n", a.writeTID, a.writeKinds)
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "\nstitch: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Printf("stitch: all invariants hold — twin runs byte-identical (%d bytes, seed %d)\n",
		len(a.export), seed)
}

// stitchOnce runs one device↔server round over a fresh loopback server
// and returns the normalized export plus the stitching evidence.
func stitchOnce(seed int64, delta time.Duration, products int) (stitchRun, error) {
	var run stitchRun

	// Server process: its own simulated clock and its own identity seed
	// (devices root from seed 1), so any locally rooted server trace is
	// distinguishable from an adopted one.
	srvClk := clock.NewSimulated(stitchEpoch)
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock:  srvClk,
			Delta:  delta,
			Tracer: obs.NewTracerSeeded(srvClk, 1, 256, seed+1),
			SLO:    obs.NewDeltaSLO(obs.SLOConfig{Clock: srvClk, Registry: obs.NewRegistry()}),
			Obs:    obs.NewRegistry(),
		},
		Products: products,
	})
	if err != nil {
		return run, err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return run, err
	}
	hs := &http.Server{Handler: httpapi.New(svc, speedkit.NewUsers(seed, 10)).Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed below; Serve's shutdown error is expected
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Device process: full client proxy over the real HTTP transport.
	devClk := clock.NewSimulated(stitchEpoch)
	devTracer := obs.NewTracerSeeded(devClk, 1, 64, seed)
	dev := proxy.New(proxy.Config{
		Region: netsim.EU,
		Delta:  delta,
		Clock:  devClk,
		Tracer: devTracer,
	}, httpclient.New(base, nil))

	// One page load: the sketch bootstrap and the shell fetch both cross
	// the wire carrying the page_load span context.
	if _, err := dev.Load(context.Background(), "/product/p00042"); err != nil {
		return run, fmt.Errorf("page load: %w", err)
	}
	pages := devTracer.Recent(1)
	if len(pages) == 0 {
		return run, fmt.Errorf("device tracer sampled nothing")
	}
	page := pages[0]
	run.pageTID = page.TraceID

	// One write, rooted on the device side the way an admin CLI would:
	// the traceparent header makes the server's write span — and the
	// invalidation-pipeline run the patch triggers — children of it.
	wtr := devTracer.Start("admin.write", "/product/p00042")
	if wtr == nil {
		return run, fmt.Errorf("device tracer declined the write trace")
	}
	run.writeTID = wtr.TraceID
	req, err := http.NewRequest(http.MethodPost, base+"/admin/write?product=p00042&price=19.99", nil)
	if err != nil {
		return run, err
	}
	req.Header.Set(tracectx.Header, wtr.SpanContext().Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return run, fmt.Errorf("write: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return run, fmt.Errorf("write: HTTP %d", resp.StatusCode)
	}
	devTracer.Finish(wtr)

	// The server finishes a trace just before the response body is
	// written, so an observer racing the response can miss the newest
	// entry by a scheduler tick; bounded retry, then judge.
	var srvPage, srvWrite []*obs.Trace
	for wait := 0; wait < 200; wait++ {
		srvPage = svc.Tracer().ByTraceID(run.pageTID)
		srvWrite = svc.Tracer().ByTraceID(run.writeTID)
		if len(srvPage) >= 2 && len(srvWrite) >= 3 {
			break
		}
		clock.Sleep(clock.System, 5*time.Millisecond)
	}
	for _, tr := range srvPage {
		run.pageKinds = append(run.pageKinds, tr.Kind)
	}
	for _, tr := range srvWrite {
		run.writeKinds = append(run.writeKinds, tr.Kind)
	}

	// Causal parentage: the device span that carried the header must be
	// the parent the server recorded.
	run.parentOK = true
	for _, tr := range srvPage {
		if !tr.Remote || tr.ParentSpanID != page.SpanID {
			run.parentOK = false
		}
	}
	var writeSpan tracectx.SpanID
	for _, tr := range srvWrite {
		if tr.Kind == "http.write" {
			writeSpan = tr.SpanID
			if !tr.Remote || tr.ParentSpanID != wtr.SpanID {
				run.parentOK = false
			}
		}
	}
	for _, tr := range srvWrite {
		if tr.Kind == "invalidation" && tr.ParentSpanID != writeSpan {
			run.parentOK = false
		}
	}

	// The golden export: device root first, then the server traces it
	// caused, for each of the two stitched requests. Wall-clock costs
	// (the only nondeterminism — loopback TCP is real) are zeroed;
	// identity, structure, ordering, and simulated timestamps must
	// replay exactly.
	all := append(devTracer.ByTraceID(run.pageTID), srvPage...)
	all = append(all, devTracer.ByTraceID(run.writeTID)...)
	all = append(all, srvWrite...)
	run.export, err = obs.ExportTraces(normalizeDurations(all))
	return run, err
}

// normalizeDurations deep-copies traces with every measured cost zeroed,
// leaving identity, parentage, structure, and event ordering — the parts
// the golden comparison is about — untouched.
func normalizeDurations(in []*obs.Trace) []*obs.Trace {
	out := make([]*obs.Trace, len(in))
	for i, tr := range in {
		c := *tr
		c.Total = 0
		c.BlockLatency = 0
		c.SketchAge = 0
		c.DeltaBudget = 0
		c.Spans = append([]obs.Span(nil), tr.Spans...)
		for j := range c.Spans {
			c.Spans[j].Duration = 0
		}
		c.Events = append([]obs.Event(nil), tr.Events...)
		out[i] = &c
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
