// Package clockexempt is loaded under a synthetic import path inside
// internal/clock; direct wall-clock reads are allowed there, so the
// fixture test asserts zero findings.
package clockexempt

import "time"

// Wall reads time.Now directly; this package plays the clock itself.
func Wall() time.Time { return time.Now() }
