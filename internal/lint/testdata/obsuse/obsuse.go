// Package obsuse seeds obslabels violations. The fixture test loads it
// under the synthetic import path "fixture/obsuse" — device-side code,
// where importing obs and session together is legal but labeling
// telemetry with identity is not.
package obsuse

import (
	"speedkit/internal/obs"
	"speedkit/internal/session"
)

const tierKey = "tier" // PII-classified: loyalty tier reveals account state

// Instrument shows every shape the analyzer must catch — and the clean
// forms it must leave alone.
func Instrument(r *obs.Registry, u *session.User, source string) {
	// Clean: a bounded, anonymous label.
	r.Counter("fixture.loads.total", obs.L("source", source)).Inc()

	// PII-classified constant keys, literal and via a named constant.
	r.Counter("fixture.bad.total", obs.L("email", "x")).Inc()   // want "PII-classified field name"
	r.Counter("fixture.bad.total", obs.L(tierKey, "x")).Inc()   // want "PII-classified field name"
	r.Counter("fixture.bad.total", obs.L("user_id", "x")).Inc() // want "PII-classified field name"

	// Identity-derived label values behind a clean key.
	r.Counter("fixture.bad.total", obs.L("segment", u.ID)).Inc()     // want "identity-bearing type"
	r.Counter("fixture.bad.total", obs.L("segment", ident(u))).Inc() // want "identity-bearing value"

	// The composite-literal spelling gets the same scrutiny.
	_ = obs.Label{Key: "email", Value: "x"}      // want "PII-classified field name"
	_ = obs.Label{Key: "segment", Value: u.Name} // want "identity-bearing type"
	_ = obs.Label{Key: "region", Value: source}
}

func ident(u *session.User) string { return u.ID }
