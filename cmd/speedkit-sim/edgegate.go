package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"speedkit"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/edge"
	"speedkit/internal/faults"
	"speedkit/internal/httpapi"
)

// runEdge is the -edge gate: a real speedkit-server and a speedkit edge
// proxy joined only by HTTP over loopback listeners, exercised through
// the edge's public surface the way a POP deployment would be. The gate
// asserts, in order:
//
//  1. Coalescing — a client stampede on one cold path reaches the
//     origin exactly once, and every response body is byte-identical.
//  2. Purge propagation — a backend write flows through the
//     invalidation pipeline to an edge purge, and the next edge read is
//     a miss serving the new version.
//  3. Crash durability — with seed-pinned kills armed on the disk
//     tier's WAL append path, a mid-fill tear is recovered warm by an
//     in-process restart over the same directory: every entry
//     acknowledged before the tear is served byte-identical, without
//     touching the origin.
//  4. GDPR — no PII field name and no simulated user identity appears
//     in any byte the edge persisted, scanned over both cache
//     directories exactly like the -crash gate scans the durability
//     tier.
//
// Violations exit non-zero, so `make edge` is a CI gate, not a demo.
func runEdge(seed int64, products int) {
	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "EDGE VIOLATION: "+format+"\n", args...)
	}

	// Origin: a real storefront behind the HTTP API, wrapped in a
	// middleware counting page fetches so coalescing is observable. The
	// system clock (what cmd/speedkit-server runs on) matters here: the
	// default frozen simulated clock would keep the CDN's 10 ms purge
	// propagation deadline from ever coming due.
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config:   core.Config{Delta: 30 * time.Second, Clock: clock.System},
		Products: products,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: storefront: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()
	users := speedkit.NewUsers(seed, 10)
	api := httpapi.New(svc, users).Handler()
	counter := &pageCounter{next: api}
	origin, originBase := serveLoopback(counter)
	defer origin.Close()

	// --- Phase A: coalescing + purge propagation (no faults) ---------

	dirA, err := os.MkdirTemp("", "speedkit-edge-a-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: scratch dir: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dirA)
	pa, _, err := edge.New(edge.Options{Upstream: originBase, CacheDir: dirA})
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: proxy A: %v\n", err)
		os.Exit(1)
	}
	edgeSrvA, edgeBaseA := serveLoopback(pa.Handler())

	// Invalidations flow to edge purges the way cmd/speedkit-server's
	// -notify-edge does, but synchronously so the gate is deterministic.
	cancel := svc.OnPurge(func(path string) {
		resp, err := http.Post(edgeBaseA+"/v1/purge?path="+url.QueryEscape(path), "", nil)
		if err == nil {
			resp.Body.Close()
		}
	})

	// 1. Stampede: 100 clients race one cold path.
	const stampede = 100
	hot := "/product/p00042"
	before := counter.pages.Load()
	bodies := make([]string, stampede)
	etags := make([]string, stampede)
	var wg sync.WaitGroup
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, hdr, status, err := edgeGet(edgeBaseA, hot, "")
			if err != nil || status != http.StatusOK {
				bodies[i] = fmt.Sprintf("error: status=%d err=%v", status, err)
				return
			}
			bodies[i] = body
			etags[i] = hdr.Get("ETag")
		}(i)
	}
	wg.Wait()
	for i := 1; i < stampede; i++ {
		if bodies[i] != bodies[0] {
			fail("stampede response %d diverged: %.60q vs %.60q", i, bodies[i], bodies[0])
			break
		}
	}
	if fetched := counter.pages.Load() - before; fetched != 1 {
		fail("stampede of %d reached the origin %d times, want exactly 1", stampede, fetched)
	}
	if s := pa.Stats(); s.CoalescedWaiters == 0 {
		fail("stampede coalesced no waiters (stats %+v)", s)
	} else {
		fmt.Printf("edge: stampede of %d -> 1 origin fetch, %d waiters coalesced\n",
			stampede, s.CoalescedWaiters)
	}

	// 2. Purge propagation: a backend write must invalidate the edge
	// copy; the next read is a miss serving a new version. The simulated
	// CDN inside the origin applies its own purges after a propagation
	// delay (10 ms default), so outwait it — otherwise the refetch can
	// legitimately pick up the pre-purge POP copy, the residual
	// staleness the sketch bounds within Δ.
	if err := svc.Docs().Patch("products", "p00042", map[string]any{"price": 49.99}); err != nil {
		fail("backend write: %v", err)
	}
	clock.Sleep(clock.System, 50*time.Millisecond)
	body2, hdr2, status2, err := edgeGet(edgeBaseA, hot, "")
	if err != nil || status2 != http.StatusOK {
		fail("post-purge read: status=%d err=%v", status2, err)
	}
	if state := hdr2.Get("X-Edge-Cache"); state != "miss" {
		fail("post-purge read state %q, want miss (purge did not reach the edge)", state)
	}
	if hdr2.Get("ETag") == etags[0] {
		fail("post-purge read served the old version %s", etags[0])
	} else {
		fmt.Printf("edge: write purged %s, edge refetched %s -> %s\n", hot, etags[0], hdr2.Get("ETag"))
	}
	_ = body2

	// Personalized fragments must bypass the cache entirely: the PII
	// scan below then proves nothing of this response was persisted.
	resp, err := http.Get(edgeBaseA + "/v1/blocks?names=cart,recommendations&user=" + url.QueryEscape(users[0].ID))
	if err != nil {
		fail("blocks through edge: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for keep-alive only
		resp.Body.Close()
		if state := resp.Header.Get("X-Edge-Cache"); state != "bypass" {
			fail("personalized blocks served with state %q, want bypass", state)
		}
	}
	cancel()
	edgeSrvA.Close()
	if err := pa.Close(); err != nil {
		fail("proxy A close: %v", err)
	}

	// --- Phase B: kill mid-fill, restart, serve byte-identical -------

	dirB, err := os.MkdirTemp("", "speedkit-edge-b-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: scratch dir: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dirB)
	inj := faults.New(clock.System, seed, faults.Rule{
		Component: faults.WALAppend, Kind: faults.Crash, Probability: 0.15,
	})
	pb, _, err := edge.New(edge.Options{Upstream: originBase, CacheDir: dirB, Faults: inj})
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: proxy B: %v\n", err)
		os.Exit(1)
	}
	edgeSrvB, edgeBaseB := serveLoopback(pb.Handler())

	// Fill distinct pages until the injected kill tears a WAL frame.
	// Entries acknowledged before the tear are the durable set.
	durable := map[string]string{}
	crashedAt := ""
	for i := 1; i <= 60 && crashedAt == ""; i++ {
		path := fmt.Sprintf("/product/p%05d", i)
		body, _, status, err := edgeGet(edgeBaseB, path, "")
		if err != nil || status != http.StatusOK {
			fail("fill %s: status=%d err=%v", path, status, err)
			break
		}
		if pb.Crashed() {
			crashedAt = path
		} else {
			durable[path] = body
		}
	}
	if crashedAt == "" {
		fail("injected kill did not fire in 60 fills (seed %d) — pick another seed", seed)
	} else {
		fmt.Printf("edge: kill tore the WAL mid-fill at %s; %d entries acknowledged before it\n",
			crashedAt, len(durable))
	}
	edgeSrvB.Close()
	if err := pb.Close(); err != nil {
		fail("proxy B close: %v", err)
	}

	// In-process restart over the same directory: recovery must be warm
	// (a torn tail truncates; it never cold-starts) and complete.
	pb2, rec, err := edge.New(edge.Options{Upstream: originBase, CacheDir: dirB})
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: proxy B restart: %v\n", err)
		os.Exit(1)
	}
	edgeSrvB2, edgeBaseB2 := serveLoopback(pb2.Handler())
	if rec.ColdStart {
		fail("torn-tail restart cold-started: %+v", rec)
	}
	if rec.Entries != len(durable) {
		fail("restart recovered %d entries, want %d acknowledged before the tear", rec.Entries, len(durable))
	}
	before = counter.pages.Load()
	for path, want := range durable {
		body, hdr, status, err := edgeGet(edgeBaseB2, path, "")
		if err != nil || status != http.StatusOK {
			fail("recovered read %s: status=%d err=%v", path, status, err)
			continue
		}
		if body != want {
			fail("recovered body for %s diverged from the pre-crash fill", path)
		}
		if state := hdr.Get("X-Edge-Cache"); state != "hit" {
			fail("recovered read %s state %q, want hit", path, state)
		}
	}
	if refetched := counter.pages.Load() - before; refetched != 0 {
		fail("recovered reads reached the origin %d times, want 0", refetched)
	} else if violations == 0 {
		fmt.Printf("edge: restart recovered %d entries warm, served byte-identical, 0 origin fetches\n",
			len(durable))
	}
	edgeSrvB2.Close()
	if err := pb2.Close(); err != nil {
		fail("proxy B2 close: %v", err)
	}

	// 4. GDPR: no user identity in any byte the edge persisted. The
	// cache holds the anonymous shared shell verbatim, so the scan looks
	// for identity values — IDs, names, emails of the simulated
	// population — not field names (shell markup legitimately contains
	// words like "cart" that collide with the field-name needles the
	// -crash gate uses over structured durability records).
	idents := []string{}
	for _, u := range users {
		for _, v := range []string{u.ID, u.Name, u.Email} {
			if v != "" {
				idents = append(idents, v)
			}
		}
	}
	for _, dir := range []string{dirA, dirB} {
		hits, err := scanBytes(dir, idents)
		if err != nil {
			fail("PII scan over %s: %v", dir, err)
		}
		for _, h := range hits {
			fail("%s in edge-persisted bytes under %s", h, dir)
		}
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "\nedge: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("edge: all invariants hold — coalescing, purge propagation, crash recovery, zero persisted PII")
}

// pageCounter counts page fetches reaching the origin, so the gate can
// assert how many requests the edge let through.
type pageCounter struct {
	next  http.Handler
	pages atomic.Int64
}

func (c *pageCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/page" || r.URL.Path == "/page" {
		c.pages.Add(1)
	}
	c.next.ServeHTTP(w, r)
}

// serveLoopback serves h on an ephemeral loopback listener and returns
// the server handle plus its base URL.
func serveLoopback(h http.Handler) (*http.Server, string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "edge: listen: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln) //nolint:errcheck // closed by the caller; Serve's shutdown error is expected
	return hs, "http://" + ln.Addr().String()
}

// edgeGet fetches one page through the edge surface and returns the
// body, headers, and status.
func edgeGet(base, path, inm string) (string, http.Header, int, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/page?path="+url.QueryEscape(path), nil)
	if err != nil {
		return "", nil, 0, err
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", resp.Header, resp.StatusCode, err
	}
	return string(b), resp.Header, resp.StatusCode, nil
}
