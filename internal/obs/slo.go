package obs

import (
	"sort"
	"sync"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/metrics"
	"speedkit/internal/tracectx"
)

// The Δ-budget SLO: the paper's bounded-staleness promise, folded into
// operable telemetry. Every page load that consulted a sketch snapshot
// observes the fraction of the Δ staleness budget that snapshot had
// consumed (SketchAge/Δ). The SLO says a target fraction of loads stay
// within budget (frac <= 1.0); everything here — per-source budget
// histograms, trace-ID exemplars on the tail buckets, multi-window
// burn rates — exists to answer "which requests are burning the budget,
// how fast, and where is the trace that shows why".

// budgetBuckets are the upper bounds (inclusive) of the Δ-budget
// histogram, as fractions of Δ. Observations above the last bound land
// in the +Inf overflow bucket — those are the loads that breached the
// staleness budget outright.
var budgetBuckets = [...]float64{0.10, 0.25, 0.50, 0.75, 0.90, 1.00}

// sloMinute aggregates one minute of observations for burn-rate math.
type sloMinute struct {
	epochMin int64
	total    uint64
	breached uint64
}

// burnRingMinutes bounds the burn-rate lookback: the longest default
// window (6h) plus the in-progress minute.
const burnRingMinutes = 6*60 + 1

// Exemplar links a tail observation to the trace that produced it: the
// join key from an SLO dashboard to /debug/traces/<id>. It carries the
// anonymous trace identity only — no user, no session.
type Exemplar struct {
	TraceID tracectx.TraceID `json:"trace_id"`
	Source  string           `json:"source"`
	Budget  float64          `json:"budget"`
}

// SLOConfig configures NewDeltaSLO. The zero value works.
type SLOConfig struct {
	// Clock drives burn-rate windowing; default the coarse system clock.
	Clock clock.Clock
	// Registry receives the mirrored instruments; default obs.Default.
	Registry *Registry
	// Objective is the target fraction of loads within Δ budget.
	// Default 0.999.
	Objective float64
	// Windows are the burn-rate lookbacks, each at most 6h.
	// Default 5m, 30m, 6h.
	Windows []time.Duration
	// ExemplarTail is the budget fraction at and above which an
	// observation donates its trace ID as an exemplar. Default 0.75.
	ExemplarTail float64
	// ExemplarCap bounds retained exemplars (a ring, newest wins).
	// Default 32.
	ExemplarCap int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Clock == nil {
		c.Clock = clock.CoarseSystem
	}
	if c.Registry == nil {
		c.Registry = Default
	}
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Minute, 30 * time.Minute, 6 * time.Hour}
	}
	if c.ExemplarTail <= 0 {
		c.ExemplarTail = 0.75
	}
	if c.ExemplarCap <= 0 {
		c.ExemplarCap = 32
	}
	return c
}

// sloSource is the per-serving-tier staleness histogram. counts has one
// slot per budgetBuckets bound plus the +Inf overflow.
type sloSource struct {
	counts [len(budgetBuckets) + 1]uint64
	total  uint64
	sum    float64
	// permil mirrors the distribution into the registry (summary shape,
	// Δ-budget in thousandths) so /metrics carries it too.
	permil *metrics.Histogram
}

// DeltaSLO tracks the Δ-staleness SLO. A nil *DeltaSLO is fully
// disabled — Observe is a nil-check no-op — matching the *Tracer and
// *Logger contracts, so the proxy takes one without caring whether SLO
// telemetry is deployed.
type DeltaSLO struct {
	cfg SLOConfig

	mu        sync.Mutex
	sources   map[string]*sloSource
	ring      [burnRingMinutes]sloMinute
	exemplars []Exemplar
	exemNext  int

	burnGauges []*metrics.Gauge // one per cfg.Windows entry
}

// NewDeltaSLO creates the SLO tracker and registers its instruments:
// speedkit.slo.delta_budget_permil{source=...} (summary),
// speedkit.slo.burn_rate_millis{window=...} (gauge, burn rate x1000),
// and speedkit.slo.objective_millis (gauge).
func NewDeltaSLO(cfg SLOConfig) *DeltaSLO {
	cfg = cfg.withDefaults()
	s := &DeltaSLO{
		cfg:       cfg,
		sources:   make(map[string]*sloSource),
		exemplars: make([]Exemplar, 0, cfg.ExemplarCap),
	}
	for _, w := range cfg.Windows {
		s.burnGauges = append(s.burnGauges,
			cfg.Registry.Gauge("speedkit.slo.burn_rate_millis", L("window", w.String())))
	}
	cfg.Registry.Gauge("speedkit.slo.objective_millis").Set(int64(cfg.Objective * 1000))
	return s
}

// Observe records one page load: which tier served it, what fraction of
// the Δ budget the consulted snapshot had burned, and the trace that
// can explain it (zero TraceID when the load was unsampled — the
// observation still counts, it just cannot donate an exemplar).
func (s *DeltaSLO) Observe(source string, frac float64, tid tracectx.TraceID) {
	if s == nil {
		return
	}
	if frac < 0 {
		frac = 0
	}
	now := s.cfg.Clock.Now()

	s.mu.Lock()
	src, ok := s.sources[source]
	if !ok {
		src = &sloSource{
			permil: s.cfg.Registry.Histogram("speedkit.slo.delta_budget_permil", L("source", source)),
		}
		s.sources[source] = src
	}
	src.counts[bucketFor(frac)]++
	src.total++
	src.sum += frac

	min := now.Unix() / 60
	slot := &s.ring[int(min%burnRingMinutes+burnRingMinutes)%burnRingMinutes]
	if slot.epochMin != min {
		*slot = sloMinute{epochMin: min}
	}
	slot.total++
	breached := frac > 1.0
	if breached {
		slot.breached++
	}

	if frac >= s.cfg.ExemplarTail && !tid.IsZero() {
		ex := Exemplar{TraceID: tid, Source: source, Budget: frac}
		if len(s.exemplars) < s.cfg.ExemplarCap {
			s.exemplars = append(s.exemplars, ex)
		} else {
			s.exemplars[s.exemNext] = ex
		}
		s.exemNext = (s.exemNext + 1) % s.cfg.ExemplarCap
	}
	s.mu.Unlock()

	// Outside the lock: the registry instrument is itself thread-safe.
	src.permil.Observe(frac * 1000)
}

func bucketFor(frac float64) int {
	for i, ub := range budgetBuckets {
		if frac <= ub {
			return i
		}
	}
	return len(budgetBuckets)
}

// burnAt computes the burn rate over the trailing window ending at now:
// (breached/total) / (1 - objective). 1.0 means the error budget burns
// exactly as fast as it accrues; 0 when the window saw no traffic.
func (s *DeltaSLO) burnAt(nowMin int64, window time.Duration) (rate float64, total, breached uint64) {
	minutes := int64(window / time.Minute)
	if minutes < 1 {
		minutes = 1
	}
	for i := range s.ring {
		m := &s.ring[i]
		if m.epochMin > nowMin-minutes && m.epochMin <= nowMin && m.total > 0 {
			total += m.total
			breached += m.breached
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return (float64(breached) / float64(total)) / (1 - s.cfg.Objective), total, breached
}

// SLOWindow is one burn-rate window in a snapshot.
type SLOWindow struct {
	Window   string  `json:"window"`
	Total    uint64  `json:"total"`
	Breached uint64  `json:"breached"`
	BurnRate float64 `json:"burn_rate"`
}

// SLOSource is one serving tier's staleness distribution in a snapshot.
type SLOSource struct {
	Source string `json:"source"`
	// Buckets are cumulative counts per upper bound, +Inf last —
	// Prometheus histogram convention, so `le` math ports directly.
	Buckets []SLOBucket `json:"buckets"`
	Total   uint64      `json:"total"`
	Sum     float64     `json:"sum"`
}

// SLOBucket is one cumulative histogram bucket.
type SLOBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// SLOSnapshot is the /debug/slo JSON shape: everything deterministic —
// sources sorted, exemplars oldest-first, bucket bounds fixed.
type SLOSnapshot struct {
	Objective float64     `json:"objective"`
	Windows   []SLOWindow `json:"windows"`
	Sources   []SLOSource `json:"sources"`
	Exemplars []Exemplar  `json:"exemplars"`
}

// Snapshot captures the SLO state and refreshes the burn-rate gauges in
// the registry (burn x1000, clamped into int64), so a /metrics scrape
// preceded by a Snapshot — which is how the HTTP layer orders it — sees
// current burn. Safe for concurrent use; nil returns the zero snapshot.
func (s *DeltaSLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	nowMin := s.cfg.Clock.Now().Unix() / 60

	s.mu.Lock()
	defer s.mu.Unlock()

	snap := SLOSnapshot{Objective: s.cfg.Objective}
	for i, w := range s.cfg.Windows {
		rate, total, breached := s.burnAt(nowMin, w)
		snap.Windows = append(snap.Windows, SLOWindow{
			Window: w.String(), Total: total, Breached: breached, BurnRate: rate,
		})
		s.burnGauges[i].Set(int64(rate * 1000))
	}

	names := make([]string, 0, len(s.sources))
	for name := range s.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := s.sources[name]
		out := SLOSource{Source: name, Total: src.total, Sum: src.sum}
		var cum uint64
		for i, ub := range budgetBuckets {
			cum += src.counts[i]
			out.Buckets = append(out.Buckets, SLOBucket{LE: formatBound(ub), Count: cum})
		}
		cum += src.counts[len(budgetBuckets)]
		out.Buckets = append(out.Buckets, SLOBucket{LE: "+Inf", Count: cum})
		snap.Sources = append(snap.Sources, out)
	}

	// Exemplars oldest-first: replay order, deterministic under the
	// simulated clock.
	if len(s.exemplars) < s.cfg.ExemplarCap {
		snap.Exemplars = append(snap.Exemplars, s.exemplars...)
	} else {
		snap.Exemplars = append(snap.Exemplars, s.exemplars[s.exemNext:]...)
		snap.Exemplars = append(snap.Exemplars, s.exemplars[:s.exemNext]...)
	}
	if snap.Exemplars == nil {
		snap.Exemplars = []Exemplar{}
	}
	return snap
}

func formatBound(ub float64) string {
	// The fixed bounds are all two-decimal fractions; render them
	// stably without pulling in strconv float formatting subtleties.
	switch ub {
	case 0.10:
		return "0.10"
	case 0.25:
		return "0.25"
	case 0.50:
		return "0.50"
	case 0.75:
		return "0.75"
	case 0.90:
		return "0.90"
	case 1.00:
		return "1.00"
	}
	return "+Inf"
}
