package bench

import (
	"strings"
	"testing"
	"time"

	"speedkit/internal/proxy"
	"speedkit/internal/workload"
)

// testScale keeps experiment tests fast; the bench harness uses 1.0.
const testScale = Scale(0.05)

func TestRunFieldSpeedKitBasics(t *testing.T) {
	r, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: 1, Ops: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Loads == 0 {
		t.Fatal("no loads")
	}
	if r.HitRatio() < 0.5 {
		t.Fatalf("hit ratio %.2f too low for a Zipf workload", r.HitRatio())
	}
	if r.MaxStaleness > 60*time.Second {
		t.Fatalf("staleness %v exceeds default Δ", r.MaxStaleness)
	}
	if r.SketchRefreshes == 0 || r.SketchBytes == 0 {
		t.Fatal("sketch not exercised")
	}
	if r.SimulatedDuration <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestRunFieldDirectNeverCaches(t *testing.T) {
	r, err := RunField(FieldConfig{Mode: ModeDirect, Seed: 1, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if r.TierCounts[proxy.SourceDevice] != 0 || r.TierCounts[proxy.SourceCDN] != 0 {
		t.Fatalf("direct mode used caches: %+v", r.TierCounts)
	}
	if r.StaleReads != 0 {
		t.Fatal("direct mode served stale content")
	}
}

func TestRunFieldDeterministic(t *testing.T) {
	a, _ := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: 9, Ops: 2000})
	b, _ := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: 9, Ops: 2000})
	if a.Loads != b.Loads || a.StaleReads != b.StaleReads ||
		a.TierCounts[proxy.SourceDevice] != b.TierCounts[proxy.SourceDevice] ||
		a.Latency.Sum() != b.Latency.Sum() {
		t.Fatal("same-seed field runs diverged")
	}
}

// TestSustainedWritesKeepCDNCarryingTraffic is the performance-shape
// regression guard for the revalidation routing: under sustained writes,
// flagged-path traffic must be carried predominantly by the purge-
// maintained edge, not forwarded wholesale to the origin. (An earlier
// revision routed every revalidation to the origin and collapsed the hit
// ratio from ~67% to ~24% at full scale — this test pins the fix.)
func TestSustainedWritesKeepCDNCarryingTraffic(t *testing.T) {
	r, err := RunField(FieldConfig{
		Mode: ModeSpeedKit, Seed: 5, Ops: 8000, WriteFraction: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hr := r.HitRatio(); hr < 0.55 {
		t.Fatalf("hit ratio %.2f under 5%% writes — revalidations flooding the origin?", hr)
	}
	if cdn, origin := r.TierCounts[proxy.SourceCDN], r.TierCounts[proxy.SourceOrigin]; cdn <= origin {
		t.Fatalf("cdn %d <= origin %d under sustained writes", cdn, origin)
	}
	if r.Revalidations == 0 {
		t.Fatal("no revalidations recorded — vacuous guard")
	}
}

func TestTraceReplayMatchesLiveRun(t *testing.T) {
	// Recording the generator's stream and replaying it must reproduce a
	// live run exactly (RunField derives its generator seed as Seed+100).
	gen := workload.NewGenerator(workload.Config{
		Seed: 101, Products: 500, Users: 90, WriteFraction: 0.02,
	})
	trace := gen.Take(2000)

	live, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: 1, Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: 1, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if live.Loads != replayed.Loads || live.StaleReads != replayed.StaleReads ||
		live.Checkouts != replayed.Checkouts || live.Latency.Sum() != replayed.Latency.Sum() {
		t.Fatalf("replay diverged: live loads=%d stale=%d sum=%v; replay loads=%d stale=%d sum=%v",
			live.Loads, live.StaleReads, live.Latency.Sum(),
			replayed.Loads, replayed.StaleReads, replayed.Latency.Sum())
	}
}

func TestTraceReplayRejectsOversizedUserIdx(t *testing.T) {
	trace := []workload.Op{{Kind: workload.ViewHome, UserIdx: 999, Path: "/"}}
	if _, err := RunField(FieldConfig{Mode: ModeSpeedKit, Seed: 1, Users: 10, Trace: trace}); err == nil {
		t.Fatal("out-of-range user accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := RunTable1(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var shareSum float64
	for _, r := range res.Rows {
		shareSum += r.Share
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("shares sum to %v", shareSum)
	}
	// Latency ordering across tiers.
	device, cdnRow, origin := res.Rows[0], res.Rows[1], res.Rows[2]
	if !(device.P50ms < cdnRow.P50ms && cdnRow.P50ms < origin.P50ms) {
		t.Fatalf("tier latency ordering violated: %v / %v / %v",
			device.P50ms, cdnRow.P50ms, origin.P50ms)
	}
	// The cached tiers must dominate under Zipf traffic.
	if device.Share+cdnRow.Share < 0.5 {
		t.Fatalf("cached share only %.2f", device.Share+cdnRow.Share)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := RunTable2(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	baseline := res.Rows[0]
	if baseline.StaleRate == 0 {
		t.Fatal("TTL-only baseline shows no staleness — vacuous comparison")
	}
	for _, r := range res.Rows[1:] {
		if r.MaxStaleness > r.Delta {
			t.Fatalf("Δ=%v: max staleness %v exceeds bound", r.Delta, r.MaxStaleness)
		}
		if r.StaleRate > baseline.StaleRate {
			t.Fatalf("sketch (Δ=%v) staler than TTL-only baseline", r.Delta)
		}
	}
	// The baseline's worst case must dwarf the tightest sketch bound.
	if baseline.MaxStaleness < 2*res.Rows[1].MaxStaleness && baseline.MaxStaleness < 5*time.Second {
		t.Fatalf("baseline max staleness %v suspiciously low", baseline.MaxStaleness)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Fatal("render missing title")
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := RunTable3(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	legacy, sk := res.Rows[0], res.Rows[1]
	if legacy.Compliant || legacy.CDNPIIFields == 0 {
		t.Fatalf("legacy arm shows no leakage: %+v", legacy)
	}
	if !sk.Compliant || sk.CDNPIIFields != 0 {
		t.Fatalf("speedkit arm leaks: %+v", sk)
	}
	if sk.CDNRequests == 0 {
		t.Fatal("speedkit arm had no CDN traffic")
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Fatal("render missing title")
	}
}

func TestFigure4Shapes(t *testing.T) {
	res, err := RunFigure4(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 { // 3 systems × 3 regions
		t.Fatalf("points = %d", len(res.Points))
	}
	get := func(sys ClientMode, region string) Figure4Point {
		for _, p := range res.Points {
			if p.System == sys && string(p.Region) == region {
				return p
			}
		}
		t.Fatalf("missing point %v/%s", sys, region)
		return Figure4Point{}
	}
	for _, region := range []string{"eu", "us", "apac"} {
		direct := get(ModeDirect, region)
		sk := get(ModeSpeedKit, region)
		if sk.P50ms >= direct.P50ms {
			t.Fatalf("%s: speedkit p50 %.1f not faster than direct %.1f",
				region, sk.P50ms, direct.P50ms)
		}
	}
	// The win grows with distance from the origin.
	euGain := get(ModeDirect, "eu").P50ms / get(ModeSpeedKit, "eu").P50ms
	apacGain := get(ModeDirect, "apac").P50ms / get(ModeSpeedKit, "apac").P50ms
	if apacGain <= euGain {
		t.Fatalf("speedup should grow with RTT: eu %.2fx vs apac %.2fx", euGain, apacGain)
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Fatal("render missing title")
	}
}

func TestFigure5Shapes(t *testing.T) {
	res, err := RunFigure5(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MaxStaleness > p.Delta {
			t.Fatalf("Δ=%v violated: %v", p.Delta, p.MaxStaleness)
		}
	}
	// Larger Δ must mean fewer sketch fetches.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.SketchRefreshes >= first.SketchRefreshes {
		t.Fatalf("sketch traffic did not fall with Δ: %d -> %d",
			first.SketchRefreshes, last.SketchRefreshes)
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Fatal("render missing title")
	}
}

func TestFigure6Shapes(t *testing.T) {
	res := RunFigure6(testScale)
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, p := range res.Points {
		if p.MeasuredFPR > res.TargetFPR*2.5 {
			t.Fatalf("entries=%d FPR %.3f far above target", p.Entries, p.MeasuredFPR)
		}
		// Bits per key is constant for a fixed FPR (~6.24 at 5%).
		if p.BitsPerKey < 5 || p.BitsPerKey > 8 {
			t.Fatalf("bits/key = %v", p.BitsPerKey)
		}
		if i > 0 && p.SketchBytes <= res.Points[i-1].SketchBytes {
			t.Fatal("sketch size not growing with entries")
		}
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Fatal("render missing title")
	}
}

func TestFigure7Shapes(t *testing.T) {
	res, err := RunFigure7(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure7Point{}
	for _, p := range res.Points {
		byName[p.Policy] = p
	}
	// Long static TTLs cache better but cost more invalidations than
	// short ones; adaptive must beat static-10s on hit ratio.
	if byName["static-1h"].HitRatio <= byName["static-10s"].HitRatio {
		t.Fatal("longer TTL did not raise hit ratio")
	}
	if byName["static-1h"].Invalidations <= byName["static-10s"].Invalidations {
		t.Fatal("longer TTL did not raise invalidation load")
	}
	if byName["adaptive"].HitRatio <= byName["static-10s"].HitRatio {
		t.Fatalf("adaptive (%.2f) no better than static-10s (%.2f)",
			byName["adaptive"].HitRatio, byName["static-10s"].HitRatio)
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Fatal("render missing title")
	}
}

func TestFigure8Shapes(t *testing.T) {
	res := RunFigure8(Scale(0.02))
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Queries <= res.Points[i-1].Queries {
			t.Fatal("query counts not increasing")
		}
		if res.Points[i].EventsPerS <= 0 {
			t.Fatal("nonpositive throughput")
		}
	}
	// More queries must cost more per event (eventually).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.MeanLatency <= first.MeanLatency {
		t.Fatalf("latency flat across 100x queries: %v vs %v", first.MeanLatency, last.MeanLatency)
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Fatal("render missing title")
	}
}

func TestFigure9Shapes(t *testing.T) {
	res, err := RunFigure9(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	direct, sk := res.Arms[0], res.Arms[1]
	if sk.P50ms >= direct.P50ms {
		t.Fatalf("speedkit arm not faster: %.1f vs %.1f", sk.P50ms, direct.P50ms)
	}
	if sk.BounceRate >= direct.BounceRate {
		t.Fatalf("speedkit arm bounces more: %.3f vs %.3f", sk.BounceRate, direct.BounceRate)
	}
	if res.CheckoutUplift <= 0 {
		t.Fatalf("no conversion uplift: %+.3f", res.CheckoutUplift)
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Fatal("render missing title")
	}
}

func TestAblationA1Shapes(t *testing.T) {
	res, err := RunAblationA1(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	device, originBlocks, legacy := res.Rows[0], res.Rows[1], res.Rows[2]
	// On-device blocks avoid the per-load origin round trip.
	if device.P50ms >= originBlocks.P50ms {
		t.Fatalf("device blocks (%.1f) not faster than origin blocks (%.1f)",
			device.P50ms, originBlocks.P50ms)
	}
	// Both shell strategies beat the fragmenting legacy render on hits.
	if device.HitRatio <= legacy.HitRatio {
		t.Fatalf("shell hit ratio %.2f not above legacy %.2f", device.HitRatio, legacy.HitRatio)
	}
	if !strings.Contains(res.String(), "Ablation A1") {
		t.Fatal("render missing title")
	}
}

func TestAblationA2Shapes(t *testing.T) {
	res := RunAblationA2(Scale(0.05))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	counting, rebuild := res.Rows[0], res.Rows[1]
	if counting.NsPerOp >= rebuild.NsPerOp {
		t.Fatalf("counting filter (%.0f ns) not cheaper than rebuild (%.0f ns)",
			counting.NsPerOp, rebuild.NsPerOp)
	}
	// Counting cells cost 16× a bit; size trade-off must be visible.
	if counting.Bytes <= rebuild.Bytes {
		t.Fatal("counting filter reported smaller than plain filter")
	}
	if !strings.Contains(res.String(), "Ablation A2") {
		t.Fatal("render missing title")
	}
}

func TestAblationA3Shapes(t *testing.T) {
	res := RunAblationA3(Scale(0.05))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	scan, indexed := res.Rows[0], res.Rows[1]
	// The index must win by a wide margin on a selective query over 20k docs.
	if indexed.NsPerEval*5 > scan.NsPerEval {
		t.Fatalf("index win too small: scan %.0f vs indexed %.0f ns/eval",
			scan.NsPerEval, indexed.NsPerEval)
	}
	if !strings.Contains(res.String(), "Ablation A3") {
		t.Fatal("render missing title")
	}
}

func TestAblationA4Shapes(t *testing.T) {
	res, err := RunAblationA4(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	off, on := res.Rows[0], res.Rows[1]
	if on.DeviceShare <= off.DeviceShare {
		t.Fatalf("prefetch did not raise device share: %.3f -> %.3f",
			off.DeviceShare, on.DeviceShare)
	}
	if on.ServiceLoad <= off.ServiceLoad {
		t.Fatalf("prefetch traffic cost invisible: %d -> %d", off.ServiceLoad, on.ServiceLoad)
	}
	if !strings.Contains(res.String(), "Ablation A4") {
		t.Fatal("render missing title")
	}
}

func TestClientModeString(t *testing.T) {
	for _, m := range []ClientMode{ModeSpeedKit, ModeDirect, ModeLegacy, ModeTTLOnly} {
		if m.String() == "unknown" {
			t.Fatalf("mode %d unnamed", m)
		}
	}
	if ClientMode(9).String() != "unknown" {
		t.Fatal("unknown mode named")
	}
}

func TestScaleOpsFloor(t *testing.T) {
	if Scale(0).ops(1000) != 1000 {
		t.Fatal("zero scale must default to 1.0")
	}
	if Scale(0.001).ops(1000) != 500 {
		t.Fatal("ops floor not applied")
	}
	if Scale(2).ops(1000) != 2000 {
		t.Fatal("scale up broken")
	}
}

func TestBounceProbabilityShape(t *testing.T) {
	if bounceProbability(100*time.Millisecond) != 0 {
		t.Fatal("fast load bounces")
	}
	mid := bounceProbability(800 * time.Millisecond)
	if mid <= 0 || mid >= 0.35 {
		t.Fatalf("mid bounce = %v", mid)
	}
	if bounceProbability(10*time.Second) != 0.35 {
		t.Fatal("bounce not capped")
	}
}
