// Package clusterflow is the fixture for the cluster delta-exchange sink
// group: resource IDs reported into the cluster become wire frames
// replicated to every node and journaled into each node's WAL, so a
// session-ID-derived key reaching a report writer is a cluster-wide
// identity broadcast — flagged; pseudonymized and anonymous keys pass.
package clusterflow

import (
	"time"

	"speedkit/internal/cluster"
	"speedkit/internal/gdpr"
	"speedkit/internal/session"
)

// cartKey is a pure transformer: taint rides through.
func cartKey(v string) string { return "/cart/" + v }

// forward is the hop that reaches the peer sink; reported at callers.
func forward(p *cluster.Peer, key string) { _ = p.ReportWrites([]string{key}) }

func LeakSessionIDIntoFrame(p *cluster.Peer, u *session.User) {
	forward(p, cartKey(u.ID)) // want "reaches cluster delta-exchange frame"
}

func LeakUserIDDirect(c *cluster.Cluster, u *session.User) {
	_ = c.ReportWrite(cartKey(u.ID)) // want "reaches cluster delta-exchange frame"
}

func LeakEmailIntoReadReport(p *cluster.Peer, u *session.User, exp time.Time) {
	_ = p.ReportCachedRead(cartKey(u.Email), exp) // want "reaches cluster delta-exchange frame"
}

// --- pseudonymized keys are clean ---

func CleanPseudonymizedKey(c *cluster.Cluster, u *session.User) {
	_ = c.ReportWrite(cartKey(gdpr.Pseudonymize(u.ID)))
}

// --- anonymous resource IDs never carry taint ---

func CleanAnonymousKey(p *cluster.Peer) {
	forward(p, cartKey("p00042"))
}
