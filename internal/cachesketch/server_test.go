package cachesketch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
)

func newTestServer() (*Server, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	s := NewServer(ServerConfig{Capacity: 1000, FalsePositiveRate: 0.01, Clock: clk})
	return s, clk
}

func TestWriteWithoutCachedCopyNotTracked(t *testing.T) {
	s, _ := newTestServer()
	if s.ReportWrite("/p/1") {
		t.Fatal("write to uncached resource entered sketch")
	}
	if s.Contains("/p/1") {
		t.Fatal("uncached write tracked")
	}
	if st := s.Stats(); st.WritesUncached != 1 || st.Adds != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteAfterCachedReadEntersSketchUntilExpiry(t *testing.T) {
	s, clk := newTestServer()
	s.ReportCachedRead("/p/1", clk.Now().Add(60*time.Second))
	clk.Advance(10 * time.Second)
	if !s.ReportWrite("/p/1") {
		t.Fatal("write to cached resource not tracked")
	}
	if !s.Contains("/p/1") {
		t.Fatal("not in sketch after write")
	}
	// Still tracked just before the copy expires...
	clk.Advance(49 * time.Second) // now = 59s
	if !s.Contains("/p/1") {
		t.Fatal("left sketch before copy expiry")
	}
	// ...and gone at/after expiry.
	clk.Advance(time.Second) // now = 60s
	if s.Contains("/p/1") {
		t.Fatal("still in sketch after last copy expired")
	}
	st := s.Stats()
	if st.Adds != 1 || st.Removes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteAfterCopyExpiredNotTracked(t *testing.T) {
	s, clk := newTestServer()
	s.ReportCachedRead("/p/1", clk.Now().Add(10*time.Second))
	clk.Advance(11 * time.Second)
	if s.ReportWrite("/p/1") {
		t.Fatal("write after copy expiry entered sketch")
	}
}

func TestMultipleCachedReadsTakeMaxExpiry(t *testing.T) {
	s, clk := newTestServer()
	now := clk.Now()
	s.ReportCachedRead("/p/1", now.Add(10*time.Second))
	s.ReportCachedRead("/p/1", now.Add(60*time.Second))
	s.ReportCachedRead("/p/1", now.Add(30*time.Second)) // must not shrink
	s.ReportWrite("/p/1")
	clk.Advance(30 * time.Second)
	if !s.Contains("/p/1") {
		t.Fatal("sketch dropped key before the longest-lived copy expired")
	}
	clk.Advance(30 * time.Second)
	if s.Contains("/p/1") {
		t.Fatal("sketch kept key after longest copy expired")
	}
}

func TestPastExpirationReportIgnored(t *testing.T) {
	s, clk := newTestServer()
	s.ReportCachedRead("/p/1", clk.Now().Add(-time.Second))
	if s.ReportWrite("/p/1") {
		t.Fatal("expired report enabled tracking")
	}
	if st := s.Stats(); st.TableSize != 0 {
		t.Fatalf("expiry table grew on past report: %+v", st)
	}
}

func TestSecondWriteExtendsResidency(t *testing.T) {
	s, clk := newTestServer()
	now := clk.Now()
	s.ReportCachedRead("/p/1", now.Add(20*time.Second))
	s.ReportWrite("/p/1")
	// A fresh copy of v2 gets cached with a longer TTL, then v3 is written.
	s.ReportCachedRead("/p/1", now.Add(90*time.Second))
	clk.Advance(10 * time.Second)
	s.ReportWrite("/p/1")
	st := s.Stats()
	if st.Adds != 1 || st.Extends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The first removal event (t=20s) must not evict the extended entry.
	clk.Advance(15 * time.Second) // now = 25s
	if !s.Contains("/p/1") {
		t.Fatal("stale removal event evicted an extended entry")
	}
	clk.Advance(65 * time.Second) // now = 90s
	if s.Contains("/p/1") {
		t.Fatal("extended entry never evicted")
	}
	if s.Stats().Removes != 1 {
		t.Fatalf("removes = %d, want exactly 1 (one add, one remove)", s.Stats().Removes)
	}
}

func TestSnapshotReflectsTrackedKeys(t *testing.T) {
	s, clk := newTestServer()
	now := clk.Now()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("/p/%d", i)
		s.ReportCachedRead(key, now.Add(time.Hour))
		s.ReportWrite(key)
	}
	sn := s.Snapshot()
	for i := 0; i < 50; i++ {
		if !sn.MightBeStale(fmt.Sprintf("/p/%d", i)) {
			t.Fatalf("snapshot missing tracked key /p/%d", i)
		}
	}
	// Generation versions the sketch contents: 50 adds happened.
	if sn.Generation != 50 {
		t.Fatalf("generation = %d, want 50 (one per add)", sn.Generation)
	}
	// A second snapshot with no intervening mutation shares the
	// generation and reuses the flattened filter (no second Flatten).
	sn2 := s.Snapshot()
	if sn2.Generation != sn.Generation {
		t.Fatalf("generation changed without mutation: %d -> %d", sn.Generation, sn2.Generation)
	}
	if sn2.Filter != sn.Filter {
		t.Fatal("unchanged generation did not reuse the flattened filter")
	}
	if st := s.Stats(); st.Flattens != 1 || st.Snapshots != 2 {
		t.Fatalf("flattens = %d snapshots = %d, want 1 flatten for 2 snapshots", st.Flattens, st.Snapshots)
	}
	if !sn2.TakenAt.Equal(clk.Now()) {
		t.Fatal("TakenAt wrong")
	}
	// A new write invalidates the cached flatten.
	s.ReportCachedRead("/p/new", clk.Now().Add(time.Hour))
	s.ReportWrite("/p/new")
	sn3 := s.Snapshot()
	if sn3.Generation != sn.Generation+1 || sn3.Filter == sn.Filter {
		t.Fatalf("mutation did not advance generation / re-flatten (gen %d -> %d)", sn.Generation, sn3.Generation)
	}
	if st := s.Stats(); st.Flattens != 2 {
		t.Fatalf("flattens = %d, want 2", st.Flattens)
	}
}

func TestSnapshotIsImmutableAgainstLaterWrites(t *testing.T) {
	s, clk := newTestServer()
	sn := s.Snapshot()
	s.ReportCachedRead("/late", clk.Now().Add(time.Hour))
	s.ReportWrite("/late")
	if sn.MightBeStale("/late") {
		t.Fatal("old snapshot sees later write")
	}
}

func TestSnapshotMarshal(t *testing.T) {
	s, _ := newTestServer()
	sn := s.Snapshot()
	data, err := sn.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != s.SketchBytes() {
		t.Fatalf("marshal len %d != SketchBytes %d", len(data), s.SketchBytes())
	}
}

func TestExpiryTableCleanedUp(t *testing.T) {
	s, clk := newTestServer()
	for i := 0; i < 100; i++ {
		s.ReportCachedRead(fmt.Sprintf("/p/%d", i), clk.Now().Add(10*time.Second))
	}
	if st := s.Stats(); st.TableSize != 100 {
		t.Fatalf("table size = %d", st.TableSize)
	}
	clk.Advance(11 * time.Second)
	if st := s.Stats(); st.TableSize != 0 {
		t.Fatalf("expiry table not cleaned: %d entries", st.TableSize)
	}
}

func TestServerConfigDefaults(t *testing.T) {
	s := NewServer(ServerConfig{})
	if s.cfg.Capacity != 10000 || s.cfg.FalsePositiveRate != 0.05 || s.cfg.Clock == nil {
		t.Fatalf("defaults = %+v", s.cfg)
	}
}

func TestServerConcurrent(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := NewServer(ServerConfig{Capacity: 10000, Clock: clk})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("/p/%d", (w*500+i)%100)
				s.ReportCachedRead(key, clk.Now().Add(time.Minute))
				s.ReportWrite(key)
				if i%50 == 0 {
					s.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Tracked == 0 {
		t.Fatal("nothing tracked after concurrent load")
	}
	clk.Advance(2 * time.Minute)
	if st := s.Stats(); st.Tracked != 0 {
		t.Fatalf("sketch not drained after all TTLs passed: %d", st.Tracked)
	}
}
