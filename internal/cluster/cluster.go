package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/invalidb"
	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// DeltaSource publishes one member's shard frame. *Node implements it
// in-process; *Peer implements it over the /v1 HTTP surface, which is how
// a deployment's merge layer pulls frames from real remote nodes.
type DeltaSource interface {
	Name() string
	Delta() (DeltaFrame, error)
}

// Config parameterizes a Cluster router.
type Config struct {
	// Seed fixes the consistent-hash ring; every router and node of a
	// deployment must share it.
	Seed int64
	// VirtualNodes per member (default DefaultVirtualNodes).
	VirtualNodes int
	// Clock supplies time (default system clock).
	Clock clock.Clock
	// Faults optionally perturbs the delta-exchange hop (component
	// faults.DeltaExchange: Blackhole partitions a member away from the
	// merge layer for the round, Error drops one pull).
	Faults *faults.Injector
	// Capacity / FalsePositiveRate must match the nodes' sketch sizing.
	Capacity          uint64
	FalsePositiveRate float64
	// MaxFrameAge passes through to the Merger: a member whose frame is
	// older degrades the merge to the saturated filter.
	MaxFrameAge time.Duration
}

// ClusterStats aggregates router activity.
type ClusterStats struct {
	RoutedWrites, RoutedReads, Broadcasts uint64
	// FailedRoutes counts operations refused because the owning node was
	// down — unacknowledged work that imposes no coherence obligation.
	FailedRoutes uint64
	// DroppedExchanges counts delta pulls lost to injected faults.
	DroppedExchanges uint64
	Merger           MergerStats
}

// Cluster routes coherence traffic across the node set and owns the
// merge layer. Resource reports go to the ring owner of their key;
// registrations go to the ring owner of their registration ID; change
// events broadcast to every node. Safe for concurrent use.
type Cluster struct {
	cfg    Config
	ring   *Ring
	merger *Merger

	mu      sync.Mutex
	nodes   map[string]*Node       // guarded by mu
	sources map[string]DeltaSource // guarded by mu; delta fetch per member
	stats   ClusterStats           // guarded by mu
}

// New assembles a router over the given nodes. The ring is derived from
// the seed and the node names, so every router built over the same
// deployment shards identically.
func New(cfg Config, nodes []*Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: need at least one node")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	names := make([]string, 0, len(nodes))
	byName := make(map[string]*Node, len(nodes))
	sources := make(map[string]DeltaSource, len(nodes))
	for _, n := range nodes {
		if _, dup := byName[n.Name()]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name())
		}
		names = append(names, n.Name())
		byName[n.Name()] = n
		sources[n.Name()] = n
	}
	c := &Cluster{
		cfg:  cfg,
		ring: NewRing(cfg.Seed, cfg.VirtualNodes, names),
		merger: NewMerger(MergerConfig{
			Members:           names,
			Capacity:          cfg.Capacity,
			FalsePositiveRate: cfg.FalsePositiveRate,
			Clock:             cfg.Clock,
			MaxFrameAge:       cfg.MaxFrameAge,
		}),
		nodes:   byName,
		sources: sources,
	}
	return c, nil
}

// Ring returns the routing ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Node returns the named member, or nil.
func (c *Cluster) Node(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// UseDeltaSource swaps the delta fetcher for one member — the deployment
// wiring point where an in-process handle is replaced by a Peer speaking
// real HTTP to the node's /v1/cluster/delta endpoint.
func (c *Cluster) UseDeltaSource(src DeltaSource) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[src.Name()]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, src.Name())
	}
	c.sources[src.Name()] = src
	return nil
}

// owner resolves the live node owning key.
func (c *Cluster) owner(key string) (*Node, error) {
	name := c.ring.Owner(key)
	c.mu.Lock()
	n := c.nodes[name]
	c.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	return n, nil
}

// ReportWrite routes one write report to its shard owner. A down owner
// returns ErrNodeDown: the write is unacknowledged, so no client may have
// observed it and no staleness obligation arises — identical to a
// single-node deployment refusing writes while crashed.
func (c *Cluster) ReportWrite(key string) error {
	return c.ReportWrites([]string{key})
}

// ReportWrites routes a batch of write reports, grouping keys by owner so
// each node pays one batched critical section. Returns the first routing
// error; keys owned by live nodes are still applied.
func (c *Cluster) ReportWrites(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	byOwner := make(map[string][]string)
	for _, key := range keys {
		name := c.ring.Owner(key)
		byOwner[name] = append(byOwner[name], key)
	}
	owners := make([]string, 0, len(byOwner))
	for name := range byOwner {
		owners = append(owners, name)
	}
	sort.Strings(owners)
	var firstErr error
	for _, name := range owners {
		c.mu.Lock()
		n := c.nodes[name]
		c.mu.Unlock()
		err := ErrNodeDown
		if n != nil {
			err = n.ReportWrites(byOwner[name])
		}
		c.mu.Lock()
		if err != nil {
			c.stats.FailedRoutes++
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: write shard %s: %w", name, err)
			}
		} else {
			c.stats.RoutedWrites += uint64(len(byOwner[name]))
		}
		c.mu.Unlock()
	}
	return firstErr
}

// ReportCachedRead routes a cache-fill report to its shard owner.
func (c *Cluster) ReportCachedRead(key string, expiresAt time.Time) error {
	n, err := c.owner(key)
	if err == nil {
		err = n.ReportCachedRead(key, expiresAt)
	}
	c.mu.Lock()
	if err != nil {
		c.stats.FailedRoutes++
	} else {
		c.stats.RoutedReads++
	}
	c.mu.Unlock()
	return err
}

// Register routes a continuous-query registration to the ring owner of
// its registration ID — the partitioning dimension that spreads the
// matching work, while events broadcast on the other dimension.
func (c *Cluster) Register(id string, q query.Query) error {
	n, err := c.owner(id)
	if err != nil {
		return err
	}
	return n.Register(id, q)
}

// ProcessEvent broadcasts one change event to every live node and unions
// the matches, sorted by registration ID like the single-node engine. The
// error (ErrNodeDown from any member) tells the caller some registration
// shard could not match — its owner's outage already degrades the merged
// sketch to saturated, so the miss cannot cause staleness. Matched
// registrations are then reported as writes to THEIR shard owners, which
// is what pushes query-result staleness into the merged sketch.
func (c *Cluster) ProcessEvent(ev storage.ChangeEvent) ([]invalidb.Invalidation, error) {
	c.mu.Lock()
	members := make([]*Node, 0, len(c.nodes))
	for _, name := range c.ring.Members() {
		members = append(members, c.nodes[name])
	}
	c.stats.Broadcasts++
	c.mu.Unlock()

	var all []invalidb.Invalidation
	var firstErr error
	for _, n := range members {
		invs, err := n.ProcessEvent(ev)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: matcher %s: %w", n.Name(), err)
			}
			continue
		}
		all = append(all, invs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].RegistrationID < all[j].RegistrationID })
	if len(all) > 0 {
		ids := make([]string, len(all))
		for i, inv := range all {
			ids[i] = inv.RegistrationID
		}
		if err := c.ReportWrites(ids); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return all, firstErr
}

// SyncDeltas runs one delta-exchange round: every member's frame is
// pulled from its DeltaSource and folded into the merge layer. Injected
// faults on the faults.DeltaExchange component drop individual pulls —
// the partition failure mode; the member's held frame then ages out and
// the merge degrades to saturated, never to a filter missing that shard's
// writes. Down members simply fail their pull with the same effect.
// Returns the first pull/fold error after completing the round.
func (c *Cluster) SyncDeltas() error {
	c.mu.Lock()
	srcs := make([]DeltaSource, 0, len(c.sources))
	for _, name := range c.ring.Members() {
		srcs = append(srcs, c.sources[name])
	}
	c.mu.Unlock()

	var firstErr error
	for _, src := range srcs {
		if d := c.cfg.Faults.Decide(faults.DeltaExchange); d.Faulted() {
			c.mu.Lock()
			c.stats.DroppedExchanges++
			c.mu.Unlock()
			if firstErr == nil && d.Err != nil {
				firstErr = fmt.Errorf("cluster: exchange with %s: %w", src.Name(), d.Err)
			}
			continue
		}
		frame, err := src.Delta()
		if err == nil {
			err = c.merger.Fold(frame)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: exchange with %s: %w", src.Name(), err)
		}
	}
	return firstErr
}

// Snapshot returns the merged client sketch (see Merger.Snapshot).
func (c *Cluster) Snapshot() *cachesketch.Snapshot {
	return c.merger.Snapshot()
}

// Export returns the deterministic merged-sketch export (see
// Merger.Export).
func (c *Cluster) Export() ([]byte, error) {
	return c.merger.Export()
}

// Merger exposes the merge layer.
func (c *Cluster) Merger() *Merger { return c.merger }

// Close closes every node cleanly.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, name := range c.ring.Members() {
		if err := c.nodes[name].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats returns a copy of the router counters (merge stats included).
func (c *Cluster) Stats() ClusterStats {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	st.Merger = c.merger.Stats()
	return st
}
