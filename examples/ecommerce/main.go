// E-commerce walkthrough: a full shopping session on the accelerated
// storefront — browsing with on-device personalization, a concurrent
// price update, and the coherence protocol keeping the session's view
// fresh within Δ while the GDPR auditor confirms no personal data ever
// reached the shared CDN.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"speedkit"
	"speedkit/internal/clock"
)

func main() {
	// A simulated clock lets the walkthrough jump through time.
	clk := clock.NewSimulated(time.Time{})
	svc, err := speedkit.New(
		speedkit.WithProducts(200),
		speedkit.WithClock(clk),
		speedkit.WithDelta(30*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	shopper := speedkit.NewUsers(7, 3)[0] // deterministic logged-in user
	shopper.Name, shopper.LoggedIn, shopper.ConsentPersonalization = "Dana", true, true
	device := svc.NewDevice(shopper, speedkit.RegionUS)

	step := func(format string, args ...any) { fmt.Printf("\n== "+format+"\n", args...) }

	step("Dana opens the home page")
	page := mustLoad(device, "/")
	fmt.Printf("   %s, %v — greeting: %q\n", page.Source, page.Latency.Round(time.Millisecond),
		extract(page.Body, "Welcome"))

	step("browses the shoes category and a product")
	page = mustLoad(device, "/category/shoes")
	fmt.Printf("   %s, %v\n", page.Source, page.Latency.Round(time.Millisecond))
	page = mustLoad(device, "/product/p00010")
	fmt.Printf("   %s, %v (version %d)\n", page.Source, page.Latency.Round(time.Millisecond), page.Version)

	step("adds two pairs to the cart — cart state never leaves the device")
	shopper.AddToCart("p00010", 2)
	page = mustLoad(device, "/product/p00010")
	fmt.Printf("   %s, %v — cart widget: %q\n", page.Source, page.Latency.Round(time.Millisecond),
		extract(page.Body, "items"))

	step("meanwhile, merchandising drops the price")
	if err := svc.Docs().Patch("products", "p00010", map[string]any{"price": 49.99}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   invalidation pipeline: sketch=%v, CDN purged\n",
		svc.SketchServer().Contains("/product/p00010"))

	step("within Δ, Dana may still see the cached version (bounded staleness)")
	page = mustLoad(device, "/product/p00010")
	stale := svc.VersionLog().Staleness("/product/p00010", page.Version, clk.Now())
	fmt.Printf("   version %d, staleness %v (bound Δ = %v)\n", page.Version, stale.Round(time.Millisecond), svc.Delta())

	step("Δ passes; the refreshed sketch forces revalidation")
	clk.Advance(31 * time.Second)
	page = mustLoad(device, "/product/p00010")
	fmt.Printf("   version %d, revalidated=%v — new price visible: %v\n",
		page.Version, page.Revalidated, strings.Contains(string(page.Body), "49.99"))

	step("GDPR audit after the whole session")
	fmt.Print(indent(svc.Auditor().String()))
	fmt.Printf("   compliant (zero PII at CDN): %v\n", svc.Auditor().Compliant())
}

func mustLoad(d *speedkit.Device, path string) speedkit.PageLoad {
	page, err := d.Load(context.Background(), path)
	if err != nil {
		log.Fatal(err)
	}
	return page
}

// extract returns the HTML fragment around the first occurrence of marker.
func extract(body []byte, marker string) string {
	s := string(body)
	i := strings.Index(s, marker)
	if i < 0 {
		return "(not found)"
	}
	end := i + len(marker) + 12
	if end > len(s) {
		end = len(s)
	}
	start := i - 8
	if start < 0 {
		start = 0
	}
	return s[start:end]
}

func indent(s string) string {
	return "   " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n   ") + "\n"
}
