// Package clock abstracts time so that every TTL, expiration, and Δ-bound
// in the Speed Kit reproduction can run against either the wall clock or a
// deterministic simulated clock. Simulated time is what lets the benchmark
// harness replay "30 days of production traffic" in milliseconds while
// keeping the coherence protocol's timing semantics exact.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// System is a shared wall-clock instance.
var System Clock = Real{}

// Since returns the time elapsed on c since t. It is the clock-disciplined
// replacement for time.Since.
func Since(c Clock, t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Sleeper is implemented by clocks that can block the caller for a real
// duration. Simulated clocks deliberately do not implement it: in a
// simulation the harness owns time, so a "sleep" is accounted as
// simulated latency by the caller rather than blocking the goroutine.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Sleep blocks for d on clocks that implement Sleeper (the wall clock)
// and returns immediately on all others. It is the clock-disciplined
// replacement for time.Sleep: backoff code calls it unconditionally and
// stays correct under both real and simulated time.
func Sleep(c Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if s, ok := c.(Sleeper); ok {
		s.Sleep(d)
	}
}

// Sleep blocks for d of wall-clock time.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Stopwatch measures elapsed time against a Clock. It is what benchmark
// harnesses use instead of time.Now/time.Since pairs, so that even
// wall-clock measurements flow through the injectable seam.
type Stopwatch struct {
	c     Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on c (defaulting to the system clock).
func NewStopwatch(c Clock) *Stopwatch {
	if c == nil {
		c = System
	}
	return &Stopwatch{c: c, start: c.Now()}
}

// Elapsed returns the time since the stopwatch started or was last reset.
func (s *Stopwatch) Elapsed() time.Duration {
	return s.c.Now().Sub(s.start)
}

// Reset restarts the stopwatch at the clock's current time.
func (s *Stopwatch) Reset() {
	s.start = s.c.Now()
}

// Coarse is a wall clock cached at a fixed resolution: Now is an atomic
// pointer load instead of a clock_gettime call. On the read hot path —
// cache lookups and sketch probes that consult the clock on every request
// — the vDSO time read is the single largest per-operation cost (~65 ns
// on the reference hardware, versus ~2 ns for the cached load), so the
// hot-path structures default to CoarseSystem when no clock is injected.
//
// The cached value lags the true wall clock by at most the resolution
// (plus scheduler delay under extreme load). Consumers therefore see
// freshness bounds slackened by ≤ resolution: a TTL cache may serve an
// entry that expired up to `res` ago, and the Δ-atomicity bound becomes
// Δ+res. With the default 500 µs resolution against Δ and TTL values
// measured in seconds, this is far below network-latency noise. Code that
// needs exact or simulated time injects a different Clock; only defaults
// use Coarse.
//
// The updater goroutine starts lazily on the first Now call (which
// primes the cache synchronously, so the first read is exact) and runs
// for the process lifetime, like the coarse-time tickers in nginx and
// fasthttp.
type Coarse struct {
	res   time.Duration
	start sync.Once
	now   atomic.Pointer[time.Time]
}

// NewCoarse returns a coarse clock with the given cache resolution
// (default 500 µs for zero or negative values).
func NewCoarse(res time.Duration) *Coarse {
	if res <= 0 {
		res = 500 * time.Microsecond
	}
	return &Coarse{res: res}
}

// Now returns the cached wall-clock time, at most one resolution old.
//
//speedkit:hotpath
func (c *Coarse) Now() time.Time {
	// The lazy-start closure runs exactly once per process; every later
	// call is the sync.Once fast path plus one atomic load.
	//lint:ignore hotpathalloc one-time lazy start of the updater goroutine
	c.start.Do(func() {
		t := time.Now()
		c.now.Store(&t)
		go c.tick()
	})
	return *c.now.Load()
}

// Resolution returns the cache refresh interval.
func (c *Coarse) Resolution() time.Duration { return c.res }

func (c *Coarse) tick() {
	for {
		time.Sleep(c.res)
		t := time.Now()
		c.now.Store(&t)
	}
}

// CoarseSystem is the shared coarse wall clock used as the default time
// source by the hot-path packages (cache, cdn, cachesketch). Its updater
// goroutine starts on first use.
var CoarseSystem Clock = NewCoarse(0)

// Simulated is a manually advanced clock. The zero value is not usable; use
// NewSimulated.
type Simulated struct {
	mu  sync.RWMutex
	now time.Time // guarded by mu
}

// NewSimulated returns a simulated clock starting at start. A zero start
// defaults to a fixed epoch so that tests are reproducible by default.
func NewSimulated(start time.Time) *Simulated {
	if start.IsZero() {
		start = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC) // ICDE 2020
	}
	return &Simulated{now: start}
}

// Now returns the current simulated time.
func (s *Simulated) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// simulated time never runs backwards.
func (s *Simulated) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Set jumps the clock to t if t is not before the current time.
func (s *Simulated) Set(t time.Time) {
	s.mu.Lock()
	if t.After(s.now) {
		s.now = t
	}
	s.mu.Unlock()
}
