// Package cache implements the expiration-based cache tiers of the Speed
// Kit architecture: the browser HTTP cache, the service-worker cache
// managed by the client proxy, and the building block used by each CDN
// edge. All tiers share the same semantics — entries carry an absolute
// expiration derived from their TTL, expired entries are treated as
// absent, and capacity pressure evicts according to a pluggable policy
// (LRU by default, with LFU and FIFO available for the ablation benches).
package cache

import (
	"time"
)

// Entry is one cached representation of a resource.
type Entry struct {
	// Key identifies the resource (a URL path or a query ID).
	Key string
	// Body is the cached payload.
	Body []byte
	// Version is the resource version this representation was rendered
	// from; the coherence protocol compares it against the origin version
	// to measure staleness.
	Version uint64
	// StoredAt is when the entry entered this cache.
	StoredAt time.Time
	// ExpiresAt is the absolute expiration instant; a cached copy may be
	// served without revalidation until then.
	ExpiresAt time.Time
	// Metadata carries small string annotations (content type, segment
	// markers for dynamic blocks).
	Metadata map[string]string
}

// Expired reports whether the entry is past its expiration at time now.
func (e *Entry) Expired(now time.Time) bool {
	return !e.ExpiresAt.IsZero() && !now.Before(e.ExpiresAt)
}

// FreshFor returns the remaining freshness lifetime at now (zero if
// expired or never-expiring).
func (e *Entry) FreshFor(now time.Time) time.Duration {
	if e.ExpiresAt.IsZero() {
		return 0
	}
	d := e.ExpiresAt.Sub(now)
	if d < 0 {
		return 0
	}
	return d
}

// Size returns the entry's accounting size in bytes: body plus a fixed
// overhead per entry plus key/metadata bytes. Using a stable formula keeps
// byte-capacity benchmarks reproducible.
func (e *Entry) Size() int {
	n := len(e.Body) + len(e.Key) + 64
	for k, v := range e.Metadata {
		n += len(k) + len(v)
	}
	return n
}

// Stats counts cache activity. Hit/miss classification: an expired entry
// found in the store counts as a miss and an expiration, not a hit.
type Stats struct {
	Hits, Misses, Puts, Evictions, Expirations, Invalidations uint64
	// BytesUsed is the current accounted size of live entries.
	BytesUsed int
}

// HitRatio returns hits/(hits+misses), or 0 when empty.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is an expiration-based cache tier.
type Cache interface {
	// Get returns the entry stored under key if present and unexpired.
	Get(key string) (Entry, bool)
	// Peek is Get without promoting the entry in the eviction order and
	// without recording hit/miss stats; used by coherence inspection.
	Peek(key string) (Entry, bool)
	// Put stores an entry, evicting as needed.
	Put(e Entry)
	// Delete removes the entry under key, reporting whether it existed.
	// Deletions are counted as invalidations.
	Delete(key string) bool
	// Clear drops everything.
	Clear()
	// Len returns the number of stored entries, including not-yet-reaped
	// expired ones.
	Len() int
	// Stats returns a copy of the counters.
	Stats() Stats
}

// Policy selects the eviction policy for New.
type Policy int

// Supported eviction policies.
const (
	// LRU evicts the least recently used entry. This is the default and
	// matches browser and CDN behaviour most closely.
	LRU Policy = iota
	// LFU evicts the least frequently used entry (ties broken by
	// recency). Used by the ablation benches.
	LFU
	// FIFO evicts the oldest-inserted entry regardless of use.
	FIFO
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case FIFO:
		return "fifo"
	}
	return "unknown"
}
