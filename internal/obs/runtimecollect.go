package obs

import (
	"runtime"

	"speedkit/internal/metrics"
)

// RuntimeCollector feeds Go runtime health into the registry:
// goroutine count, heap occupancy, and GC activity — the denominators
// every SLO investigation eventually needs ("was the tail latency us,
// or was it a GC pause?"). It is pull-based: Collect refreshes the
// gauges and the HTTP layer calls it at scrape time, so an idle process
// pays nothing between scrapes.
type RuntimeCollector struct {
	goroutines   *metrics.Gauge
	heapAlloc    *metrics.Gauge
	heapObjects  *metrics.Gauge
	gcCycles     *metrics.Gauge
	gcPauseTotal *metrics.Gauge
	lastPause    *metrics.Gauge
}

// NewRuntimeCollector registers the runtime gauges on r (default
// obs.Default) and returns the collector. A nil *RuntimeCollector is
// inert, as with every handle in this package.
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	if r == nil {
		r = Default
	}
	return &RuntimeCollector{
		goroutines:   r.Gauge("speedkit.runtime.goroutines"),
		heapAlloc:    r.Gauge("speedkit.runtime.heap_alloc_bytes"),
		heapObjects:  r.Gauge("speedkit.runtime.heap_objects"),
		gcCycles:     r.Gauge("speedkit.runtime.gc_cycles"),
		gcPauseTotal: r.Gauge("speedkit.runtime.gc_pause_total_ns"),
		lastPause:    r.Gauge("speedkit.runtime.gc_last_pause_ns"),
	}
}

// Collect refreshes every runtime gauge. ReadMemStats briefly
// stops the world, which is acceptable at scrape cadence and nowhere
// else — do not call this on a request path.
func (c *RuntimeCollector) Collect() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(int64(runtime.NumGoroutine()))
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapObjects.Set(int64(ms.HeapObjects))
	c.gcCycles.Set(int64(ms.NumGC))
	c.gcPauseTotal.Set(int64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		c.lastPause.Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}
