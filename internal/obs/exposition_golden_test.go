package obs

import (
	"strings"
	"testing"
)

// TestExpositionGolden pins the text exposition format byte for byte: a
// fixed registry state must render exactly this output — families sorted
// by name, series sorted by label signature, label values escaped,
// integral values without exponents. Any format drift breaks scrapers,
// so it must show up as a diff here first.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("speedkit.fetch.total", L("source", "cdn")).Add(42)
	r.Counter("speedkit.fetch.total", L("source", "origin")).Add(7)
	r.Counter("speedkit.invalidation.total").Inc()
	r.Gauge("speedkit.sketch.generation").Set(13)
	r.Gauge("speedkit.sketch.bytes").Set(12045)
	// A label value exercising every escape rule.
	r.Counter("speedkit.weird.total", L("path", "a\\b\"c\nd")).Add(3)
	h := r.Histogram("speedkit.load.latency_us", L("source", "device"))
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}

	const golden = `# TYPE speedkit_fetch_total counter
speedkit_fetch_total{source="cdn"} 42
speedkit_fetch_total{source="origin"} 7
# TYPE speedkit_invalidation_total counter
speedkit_invalidation_total 1
# TYPE speedkit_load_latency_us summary
speedkit_load_latency_us{source="device",quantile="0.5"} 100
speedkit_load_latency_us{source="device",quantile="0.9"} 100
speedkit_load_latency_us{source="device",quantile="0.95"} 100
speedkit_load_latency_us{source="device",quantile="0.99"} 100
speedkit_load_latency_us_sum{source="device"} 1000
speedkit_load_latency_us_count{source="device"} 10
# TYPE speedkit_sketch_bytes gauge
speedkit_sketch_bytes 12045
# TYPE speedkit_sketch_generation gauge
speedkit_sketch_generation 13
# TYPE speedkit_weird_total counter
speedkit_weird_total{path="a\\b\"c\nd"} 3
`

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if b.String() != golden {
		t.Errorf("exposition output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", b.String(), golden)
	}

	// Rendering twice is byte-identical: the writer has no hidden state.
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatalf("WriteText (second render): %v", err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of the same registry state differ")
	}
}
