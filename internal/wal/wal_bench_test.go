package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// BenchmarkWALAppend measures sustained append throughput with a fixed
// number of concurrent appenders sharing one log. This is the bench behind
// the committed BENCH_wal.json baseline (suite "wal-append"), in two modes:
//
//   - buffered: acknowledgement means "in the OS file" and fsyncs follow
//     the deferred group-commit policy, pinned wide (one per 4096 appends)
//     so the lines compare the framing/coordination/write-syscall path
//     rather than the disk's flush latency.
//
//   - durable: segments are opened O_DSYNC, so every acknowledged append
//     is synchronously on disk. This is the mode group commit exists for:
//     the per-write sync cost is flat in batch size, so the unbatched
//     baseline pays it once per append (durable/appenders-1, and the
//     pre-PR write path at any concurrency) while batched appenders share
//     one sync per cohort — throughput scales with the appender count.
//
// The group-commit batching work is judged by durable/appenders-8 and
// above against the pre-PR one-durable-write-per-append baseline, and by
// buffered/appenders-8 staying at zero allocations per append.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 64)
	modes := []struct {
		name      string
		dsync     bool
		appenders []int
	}{
		{"buffered", false, []int{1, 2, 4, 8, 16, 32, 64}},
		{"durable", true, []int{1, 8, 16, 32}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for _, n := range m.appenders {
				b.Run(fmt.Sprintf("appenders-%d", n), func(b *testing.B) {
					l, err := Open(Options{
						Dir:               b.TempDir(),
						SegmentMaxBytes:   1 << 30,
						GroupCommitWindow: 50 * time.Millisecond,
						GroupCommitMax:    4096,
						Dsync:             m.dsync,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer l.Close()
					b.ReportAllocs()
					b.ResetTimer()
					var wg sync.WaitGroup
					per, extra := b.N/n, b.N%n
					for g := 0; g < n; g++ {
						cnt := per
						if g < extra {
							cnt++
						}
						wg.Add(1)
						go func(cnt int) {
							defer wg.Done()
							for i := 0; i < cnt; i++ {
								if _, err := l.Append(payload); err != nil {
									b.Error(err)
									return
								}
							}
						}(cnt)
					}
					wg.Wait()
					b.StopTimer()
				})
			}
		})
	}
}
