package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"speedkit/internal/gdpr"
)

// ObsLabels guards the telemetry surface of the GDPR boundary. Metric
// labels are exported verbatim by /metrics — to operators, scrape agents,
// and whatever stores the time series — so a PII-derived label value is a
// personal-data leak through the monitoring side channel. The analyzer
// pins two invariants:
//
//   - shared-infrastructure packages never import internal/obs: obs
//     depends on internal/gdpr for its PII classification, so the import
//     would smuggle identity-bearing code across the boundary the
//     gdprboundary analyzer defends;
//   - no obs label is built from identity: constant label keys must not
//     be PII-classified field names, and label value expressions must
//     not touch values whose types come from internal/session or
//     internal/gdpr.
//
// The same discipline covers the structured log: slog field keys and
// values (Str, Int, Uint, Bool, Dur, Err, Msg, Named) are exported to
// whatever collects stderr, so they get the identical static fence —
// constant keys must not be PII-classified names, values must not read
// identity-bearing types. The runtime denied-key redaction in slog is
// the second line of defense, not a license to rely on it.
//
// Test files are exempt: the obs registry's own tests exercise the
// runtime PII rejection with deliberately illegal keys.
var ObsLabels = &Analyzer{
	Name: "obslabels",
	Doc: "shared infrastructure must not import internal/obs, and obs " +
		"label and slog field keys/values must not be PII-classified or " +
		"derived from identity-bearing types",
	Run: runObsLabels,
}

func runObsLabels(pass *Pass) {
	// The obs and slog packages host the runtime validation; analyzing
	// their internals (and deliberately illegal test inputs) adds nothing.
	if pathHasSegment(pass.Path, "internal/obs") || pathHasSegment(pass.Path, "internal/slog") {
		return
	}

	if isSharedInfraPass(pass) {
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if pathHasSegment(path, "internal/obs") {
					pass.Reportf(imp.Pos(),
						"shared-infrastructure package %s imports telemetry package %s (obs depends on internal/gdpr)",
						pass.Path, path)
				}
			}
		}
	}

	pii := map[string]bool{}
	for _, name := range gdpr.PIIFields() {
		pii[name] = true
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if key, value, ok := obsLabelCall(pass, n); ok {
					checkLabelKey(pass, pii, key, "obs label")
					checkLabelValue(pass, value, "obs label")
				}
				if key, value, ok := slogFieldCall(pass, n); ok {
					if key != nil {
						checkLabelKey(pass, pii, key, "log field")
					}
					if value != nil {
						checkLabelValue(pass, value, "log field")
					}
				}
			case *ast.CompositeLit:
				if key, value, ok := obsLabelLit(pass, n); ok {
					if key != nil {
						checkLabelKey(pass, pii, key, "obs label")
					}
					if value != nil {
						checkLabelValue(pass, value, "obs label")
					}
				}
			}
			return true
		})
	}
}

// obsLabelCall recognizes obs.L(key, value) calls and returns the two
// argument expressions.
func obsLabelCall(pass *Pass, call *ast.CallExpr) (key, value ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "L" || len(call.Args) != 2 {
		return nil, nil, false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || !pathHasSegment(obj.Pkg().Path(), "internal/obs") {
		return nil, nil, false
	}
	return call.Args[0], call.Args[1], true
}

// obsLabelLit recognizes obs.Label{...} composite literals and returns
// the key/value expressions (either may be nil when omitted).
func obsLabelLit(pass *Pass, lit *ast.CompositeLit) (key, value ast.Expr, ok bool) {
	tv, found := pass.Info.Types[lit]
	if !found {
		return nil, nil, false
	}
	named, isNamed := tv.Type.(*types.Named)
	if !isNamed || named.Obj().Name() != "Label" || named.Obj().Pkg() == nil ||
		!pathHasSegment(named.Obj().Pkg().Path(), "internal/obs") {
		return nil, nil, false
	}
	for i, el := range lit.Elts {
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			if ident, isIdent := kv.Key.(*ast.Ident); isIdent {
				switch ident.Name {
				case "Key":
					key = kv.Value
				case "Value":
					value = kv.Value
				}
			}
			continue
		}
		// Positional form: Label{key, value}.
		switch i {
		case 0:
			key = el
		case 1:
			value = el
		}
	}
	return key, value, true
}

// slogFieldCall recognizes method calls on the structured logger that
// place caller-controlled strings on the log record, and returns the
// key/value expressions to check (either may be nil: Msg/Err/Named
// carry only a value, and non-string field setters carry only keyed
// non-string data whose key still must not be a PII name).
func slogFieldCall(pass *Pass, call *ast.CallExpr) (key, value ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || !pathHasSegment(fn.Pkg().Path(), "internal/slog") {
		return nil, nil, false
	}
	switch fn.Name() {
	case "Str":
		if len(call.Args) == 2 {
			return call.Args[0], call.Args[1], true
		}
	case "Int", "Uint", "Bool", "Dur":
		if len(call.Args) == 2 {
			return call.Args[0], nil, true
		}
	case "Msg", "Err", "Named":
		if len(call.Args) == 1 {
			return nil, call.Args[0], true
		}
	}
	return nil, nil, false
}

// checkLabelKey reports constant label/field keys that name
// PII-classified fields. Non-constant keys are left to the runtime
// validation — a dynamic key is already rejected at registration (obs)
// or redacted at the sink (slog).
func checkLabelKey(pass *Pass, pii map[string]bool, expr ast.Expr, noun string) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if key := constant.StringVal(tv.Value); pii[key] {
		pass.Reportf(expr.Pos(), "%s key %q is a PII-classified field name", noun, key)
	}
}

// checkLabelValue reports label/field value expressions that read from
// identity-bearing values: any identifier or field selection whose type
// (or receiver type) comes from internal/session or internal/gdpr.
func checkLabelValue(pass *Pass, expr ast.Expr, noun string) {
	reported := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[n]; ok && isIdentityType(sel.Recv()) {
				pass.Reportf(n.Pos(),
					"%s value reads %s from identity-bearing type %s", noun, n.Sel.Name, sel.Recv())
				reported = true
				return false
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && isIdentityType(obj.Type()) {
				pass.Reportf(n.Pos(),
					"%s value uses identity-bearing value %s (%s)", noun, n.Name, obj.Type())
				reported = true
				return false
			}
		}
		return true
	})
}

// isIdentityType reports whether t (unwrapped of pointers, slices, and
// maps) is a named type declared in an identity-bearing package.
func isIdentityType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return false
			}
			path := named.Obj().Pkg().Path()
			for _, seg := range identityBearingSegments {
				if pathHasSegment(path, seg) {
					return true
				}
			}
			return false
		}
	}
}
