package bloom

import "testing"

// The sketch probe sits on every request of the client protocol, so the
// Bloom hot paths are required to be allocation-free: one escaped digest
// or hash.Hash64 per probe would turn the per-request cost from "a few
// bit tests" into GC pressure proportional to traffic. These tests pin
// that property so a refactor cannot silently reintroduce allocation.

func TestProbesForZeroAlloc(t *testing.T) {
	var p Probes
	if n := testing.AllocsPerRun(1000, func() {
		p = ProbesFor("/product/p01234")
	}); n != 0 {
		t.Fatalf("ProbesFor allocates %.1f per run, want 0", n)
	}
	_ = p
}

func TestFilterAddContainsZeroAlloc(t *testing.T) {
	f := NewFilterForCapacity(1024, 0.01)
	if n := testing.AllocsPerRun(1000, func() {
		f.Add("/product/p01234")
	}); n != 0 {
		t.Fatalf("Filter.Add allocates %.1f per run, want 0", n)
	}
	var hit bool
	if n := testing.AllocsPerRun(1000, func() {
		hit = f.Contains("/product/p01234")
	}); n != 0 {
		t.Fatalf("Filter.Contains allocates %.1f per run, want 0", n)
	}
	if !hit {
		t.Fatal("added key not contained")
	}
	// The miss path probes fewer bits but must be just as clean.
	if n := testing.AllocsPerRun(1000, func() {
		hit = f.Contains("/absent/key")
	}); n != 0 {
		t.Fatalf("Filter.Contains (miss) allocates %.1f per run, want 0", n)
	}
}

func TestCountingOpsZeroAlloc(t *testing.T) {
	c := NewCountingForCapacity(1024, 0.01)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add("/product/p01234")
	}); n != 0 {
		t.Fatalf("Counting.Add allocates %.1f per run, want 0", n)
	}
	var hit bool
	if n := testing.AllocsPerRun(1000, func() {
		hit = c.Contains("/product/p01234")
	}); n != 0 {
		t.Fatalf("Counting.Contains allocates %.1f per run, want 0", n)
	}
	if !hit {
		t.Fatal("added key not contained")
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add("/product/p01234")
		c.Remove("/product/p01234")
	}); n != 0 {
		t.Fatalf("Counting.Add+Remove allocates %.1f per run, want 0", n)
	}
}
