package obs

import (
	"strings"
	"testing"
)

func TestRegistryResolvesStableHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("speedkit.fetch.total", L("source", "cdn"))
	b := r.Counter("speedkit.fetch.total", L("source", "cdn"))
	if a != b {
		t.Fatal("same name+labels resolved two distinct counters")
	}
	c := r.Counter("speedkit.fetch.total", L("source", "origin"))
	if a == c {
		t.Fatal("distinct label values resolved the same counter")
	}
	a.Inc()
	a.Inc()
	c.Inc()
	if a.Value() != 2 || c.Value() != 1 {
		t.Fatalf("counter values = %d, %d; want 2, 1", a.Value(), c.Value())
	}
	if got := r.Families(); got != 1 {
		t.Fatalf("families = %d, want 1", got)
	}
}

func TestRegistryLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("speedkit.test.g", L("region", "eu"), L("source", "cdn"))
	b := r.Gauge("speedkit.test.g", L("source", "cdn"), L("region", "eu"))
	if a != b {
		t.Fatal("label order changed series identity; labels must be canonicalized")
	}
}

func TestRegistryRejectsPIILabelKeys(t *testing.T) {
	r := NewRegistry()
	for _, key := range []string{"user_id", "email", "cart", "tier"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PII label key %q was accepted", key)
				}
			}()
			r.Counter("speedkit.test.pii", L(key, "x"))
		}()
	}
}

func TestRegistryRejectsBadNamesAndLabels(t *testing.T) {
	r := NewRegistry()
	bad := []func(){
		func() { r.Counter("") },
		func() { r.Counter("Speedkit.Fetch") },
		func() { r.Counter("speedkit..fetch") },
		func() { r.Counter("speedkit.fetch", L("Bad-Key", "v")) },
		func() { r.Counter("speedkit.dup", L("k", "a"), L("k", "b")) },
		func() {
			r.Counter("speedkit.toomany",
				L("a", "1"), L("b", "1"), L("c", "1"), L("d", "1"),
				L("e", "1"), L("f", "1"), L("g", "1"))
		},
	}
	for i, fn := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid registration was accepted", i)
				}
			}()
			fn()
		}()
	}
}

func TestRegistryRejectsKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("speedkit.test.kind")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch was accepted")
		}
	}()
	r.Gauge("speedkit.test.kind")
}

func TestRegistrySeriesOverflowCollapses(t *testing.T) {
	r := NewRegistry()
	r.MaxSeriesPerFamily = 4
	for i := 0; i < 4; i++ {
		r.Counter("speedkit.test.cap", L("source", strings.Repeat("x", i+1))).Inc()
	}
	// Beyond the cap every new label set lands on one shared series.
	o1 := r.Counter("speedkit.test.cap", L("source", "overflow-a"))
	o2 := r.Counter("speedkit.test.cap", L("source", "overflow-b"))
	if o1 != o2 {
		t.Fatal("overflowing label sets did not collapse into one series")
	}
	o1.Inc()
	o1.Inc()
	// Existing series keep resolving exactly.
	if got := r.Counter("speedkit.test.cap", L("source", "x")).Value(); got != 1 {
		t.Fatalf("pre-overflow series value = %d, want 1", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || !snap[0].Overflowed {
		t.Fatalf("snapshot should mark the family overflowed: %+v", snap)
	}
	var found bool
	for _, s := range snap[0].Samples {
		for _, l := range s.Labels {
			if l.Key == "overflow" && l.Value == "true" && s.Value == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no overflow series with value 2 in %+v", snap[0].Samples)
	}
}

func TestHistogramExposedAsSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("speedkit.test.lat_us", L("source", "cdn"))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindSummary {
		t.Fatalf("snapshot = %+v, want one summary family", snap)
	}
	// 4 quantiles + sum + count.
	if len(snap[0].Samples) != 6 {
		t.Fatalf("samples = %d, want 6", len(snap[0].Samples))
	}
	last := snap[0].Samples[5]
	if last.Name != "speedkit_test_lat_us_count" || last.Value != 100 {
		t.Fatalf("count sample = %+v", last)
	}
	sum := snap[0].Samples[4]
	if sum.Name != "speedkit_test_lat_us_sum" || sum.Value != 5050 {
		t.Fatalf("sum sample = %+v", sum)
	}
}
