package bloom

import (
	"errors"
	"testing"
)

// TestFilterMergeParamMismatch tables every way two filters' parameters can
// disagree and asserts the typed sentinel comes back, with the receiver
// untouched.
func TestFilterMergeParamMismatch(t *testing.T) {
	cases := []struct {
		name    string
		a, b    *Filter
		wantErr error
	}{
		{"nil other", NewFilter(128, 4), nil, ErrNilFilter},
		{"m mismatch", NewFilter(128, 4), NewFilter(256, 4), ErrParamMismatch},
		{"k mismatch", NewFilter(128, 4), NewFilter(128, 5), ErrParamMismatch},
		{"m and k mismatch", NewFilter(128, 4), NewFilter(256, 5), ErrParamMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.a.Add("sentinel")
			before, _ := tc.a.MarshalBinary()
			err := tc.a.Merge(tc.b)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Merge err = %v, want errors.Is(err, %v)", err, tc.wantErr)
			}
			after, _ := tc.a.MarshalBinary()
			if string(before) != string(after) {
				t.Fatalf("failed Merge mutated the receiver")
			}
		})
	}
}

func TestFilterMergeUnions(t *testing.T) {
	a := NewFilter(512, 4)
	b := NewFilter(512, 4)
	a.Add("alpha")
	b.Add("beta")
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for _, key := range []string{"alpha", "beta"} {
		if !a.Contains(key) {
			t.Fatalf("merged filter missing %q", key)
		}
	}
}

func TestCountingMergeParamMismatch(t *testing.T) {
	cases := []struct {
		name    string
		a, b    *Counting
		wantErr error
	}{
		{"nil other", NewCounting(128, 4), nil, ErrNilFilter},
		{"m mismatch", NewCounting(128, 4), NewCounting(256, 4), ErrParamMismatch},
		{"k mismatch", NewCounting(128, 4), NewCounting(128, 5), ErrParamMismatch},
		{"m and k mismatch", NewCounting(128, 4), NewCounting(256, 5), ErrParamMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.a.Add("sentinel")
			nBefore := tc.a.Len()
			err := tc.a.Merge(tc.b)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Merge err = %v, want errors.Is(err, %v)", err, tc.wantErr)
			}
			if tc.a.Len() != nBefore {
				t.Fatalf("failed Merge mutated the receiver (n %d -> %d)", nBefore, tc.a.Len())
			}
		})
	}
}

// TestCountingMergeRoundTrip merges two shard sketches and checks the union
// behaves like the same adds applied to one filter: membership, removal
// bookkeeping, and flatten equivalence.
func TestCountingMergeRoundTrip(t *testing.T) {
	a := NewCounting(512, 4)
	b := NewCounting(512, 4)
	one := NewCounting(512, 4)
	for _, key := range []string{"p1", "p2", "shared"} {
		a.Add(key)
		one.Add(key)
	}
	for _, key := range []string{"p3", "shared"} {
		b.Add(key)
		one.Add(key)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != one.Len() {
		t.Fatalf("merged Len = %d, want %d", a.Len(), one.Len())
	}
	for _, key := range []string{"p1", "p2", "p3", "shared"} {
		if !a.Contains(key) {
			t.Fatalf("merged counting filter missing %q", key)
		}
	}
	// "shared" was added twice across shards; one Remove must keep it present.
	a.Remove("shared")
	if !a.Contains("shared") {
		t.Fatalf("double-added key vanished after a single Remove")
	}
	got, _ := a.Flatten().MarshalBinary()
	want, _ := one.Flatten().MarshalBinary()
	if string(got) != string(want) {
		t.Fatalf("merged flatten differs from single-filter flatten")
	}
}

// TestCountingMergeSaturates pins the per-cell ceiling: a merge can only
// push cells up to maxCell, never wrap, and the overflow is surfaced via
// Saturations.
func TestCountingMergeSaturates(t *testing.T) {
	a := NewCounting(64, 1)
	b := NewCounting(64, 1)
	for i := 0; i < maxCell; i++ {
		a.AddProbes(Probes{h1: 0, h2: 1})
		b.AddProbes(Probes{h1: 0, h2: 1})
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Saturations == 0 {
		t.Fatalf("expected saturation to be recorded")
	}
	if !a.Contains("") {
		// The probed cell must still read as set after saturating.
		p := Probes{h1: 0, h2: 1}
		if a.cells[p.bit(0, 64)] != maxCell {
			t.Fatalf("saturated cell not at ceiling")
		}
	}
}
