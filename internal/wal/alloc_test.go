package wal

import (
	"testing"
	"time"
)

// Steady-state appends must not allocate: the frame marshal indexes into
// the pooled staged buffer (see marshalFrame, //speedkit:hotpath) and the
// flusher recycles batch buffers through framePool, so once the pool is
// warm the only per-append costs are a CRC pass and two copies. This test
// pins the property the wal-append bench's allocs/op column reports.
func TestAppendZeroAllocSteadyState(t *testing.T) {
	l, err := Open(Options{
		Dir:               t.TempDir(),
		SegmentMaxBytes:   1 << 30,
		GroupCommitWindow: time.Hour,
		GroupCommitMax:    1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	// Warm the pooled buffer past its growth phase.
	for i := 0; i < 64; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Append allocates %.1f per run, want 0", n)
	}
}
