# Convenience targets; plain `go build ./...` / `go test ./...` work too.
# `make help` lists them.

GO ?= go

.PHONY: all help build test lint lint-sarif lint-baseline race cover bench bench-hotpath bench-obs chaos crash experiments fmt vet clean

all: build test lint

help:
	@echo "Targets:"
	@echo "  build          go build ./..."
	@echo "  test           go test ./..."
	@echo "  lint           repo-specific static analysis (speedkit-lint); fails only on"
	@echo "                 findings not recorded in lint.baseline.json"
	@echo "  lint-sarif     same run, also writes lint.sarif for CI artifact upload"
	@echo "  lint-baseline  regenerate lint.baseline.json from current findings"
	@echo "  race           go test -race ./..."
	@echo "  cover          coverage for internal/..."
	@echo "  bench          one benchmark per table/figure (reduced scale)"
	@echo "  bench-hotpath  parallel hot-path microbenchmarks -> BENCH_hotpath.json"
	@echo "  bench-obs      observability overhead benchmarks (0 allocs/op bar)"
	@echo "  chaos          seed-pinned fault-injection run asserting the resilience invariants"
	@echo "  crash          seed-pinned crash-recovery run asserting durability invariants"
	@echo "  experiments    regenerate every experiment at full scale"
	@echo "  fmt / vet / clean"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Repo-specific static analysis: GDPR boundary (import-, API-, and
# value-level), clock/lock/rand discipline, obs label hygiene, hot-path
# allocation budget. Exits non-zero only on findings absent from
# lint.baseline.json; baselined findings still print, marked as such.
lint:
	$(GO) run ./cmd/speedkit-lint ./...

# Same run, plus a SARIF 2.1.0 log (lint.sarif) for code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/speedkit-lint -sarif lint.sarif ./...

# Regenerate the baseline. Additions to it deserve the same review as a
# //lint:ignore directive; a shrinking baseline is progress.
lint-baseline:
	$(GO) run ./cmd/speedkit-lint -write-baseline ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# One testing.B benchmark per table/figure (reduced scale).
bench:
	$(GO) test -bench=. -benchmem .

# Hot-path concurrency microbenchmarks, recorded as BENCH_hotpath.json so
# the perf trajectory is tracked in version control. The baseline ns/op
# values were measured with this same harness on the pre-sharding tree
# (single-mutex Store/CDN/Client, commit 0a35725) at GOMAXPROCS=4; they
# are passed to the converter so the artifact records speedups explicitly.
HOTPATH_BENCHES = BenchmarkParallelCacheGet|BenchmarkParallelSketchCheck|BenchmarkSnapshotReuse|BenchmarkFilterContains|BenchmarkSnapshotMightBeStale
HOTPATH_BASELINE = BenchmarkParallelCacheGet=126.4,BenchmarkParallelSketchCheck=124.8,BenchmarkSnapshotReuse=1558958

bench-hotpath:
	$(GO) test -run '^$$' -bench '$(HOTPATH_BENCHES)' -benchmem -cpu 4 . | \
		$(GO) run ./cmd/speedkit-benchjson -out BENCH_hotpath.json \
		-baseline '$(HOTPATH_BASELINE)' \
		-note 'baseline = pre-sharding tree (commit 0a35725) at GOMAXPROCS=4 on the same host'
	@cat BENCH_hotpath.json

# Observability overhead microbenchmarks: disabled/unsampled tracing and
# pre-resolved counter increments must hold 0 allocs/op (the hard gates
# live in internal/obs/alloc_test.go; this target shows the ns/op).
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchmem -cpu 4 .

# Chaos gate: deterministic fault injection over a seed-pinned field run,
# executed twice and checked for identical fault schedules, Δ-atomicity of
# every connected load, ≥10% injected fault rates on the sketch and origin
# paths, and zero goroutine leaks. Non-zero exit on any violation.
CHAOS_SEED ?= 7
CHAOS_OPS ?= 20000

chaos:
	$(GO) run ./cmd/speedkit-sim -chaos -seed $(CHAOS_SEED) -ops $(CHAOS_OPS)

# Crash gate: seed-driven process kills torn into the WAL append/fsync and
# snapshot-write paths of a durable field run, executed as twin runs over
# separate data directories. Asserts every kill was recovered, Δ-atomicity
# of every connected load across recoveries, byte-identical recovered
# sketch state between the twins, and zero PII bytes in any persisted
# artifact. Non-zero exit on any violation.
CRASH_SEED ?= 3
CRASH_OPS ?= 5000

crash:
	$(GO) run ./cmd/speedkit-sim -crash -seed $(CRASH_SEED) -ops $(CRASH_OPS) -users 30 -products 100 -delta 30s

# Regenerate every experiment at full scale (minutes).
experiments:
	$(GO) run ./cmd/speedkit-bench

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
