// News portal: a custom (non-storefront) deployment built from the
// public API's lower-level pieces — your own collections, pages, and
// continuous queries. Breaking-news articles update every few seconds, so
// the portal runs a tight Δ = 5 s; the example shows cached section pages
// reacting to a breaking update within that bound while archive pages
// stay cheaply cacheable.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"speedkit"
	"speedkit/internal/clock"
)

func main() {
	clk := clock.NewSimulated(time.Time{})

	docs := speedkit.NewDocumentStore()
	seedArticles(docs)

	org := speedkit.NewOrigin(docs)
	defer org.Close()
	org.RegisterProducts("/article/", "articles")
	for _, section := range []string{"politics", "sports", "tech"} {
		q, err := speedkit.ParseQuery(fmt.Sprintf(
			`articles WHERE section = %q AND published = true ORDER BY rank DESC LIMIT 10`, section))
		if err != nil {
			log.Fatal(err)
		}
		org.RegisterQueryPage("/section/"+section, "Section: "+section, q)
	}
	breaking, _ := speedkit.ParseQuery(`articles WHERE breaking = true ORDER BY rank DESC LIMIT 5`)
	org.RegisterQueryPage("/breaking", "Breaking news", breaking)

	svc := speedkit.NewService(speedkit.ServiceConfig{
		Clock: clk,
		Delta: 5 * time.Second, // news demands a tight staleness bound
		Seed:  11,
	}, docs, org)
	defer svc.Close()

	reader := svc.NewDevice(nil, speedkit.RegionEU) // anonymous reader

	fmt.Println("== reader opens the breaking-news page")
	page, err := reader.Load(context.Background(), "/breaking")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s, %v, version %d\n", page.Source, page.Latency.Round(time.Millisecond), page.Version)

	fmt.Println("== a story breaks: article a3 is flagged breaking")
	if err := docs.Patch("articles", "a3", map[string]any{"breaking": true, "rank": int64(99)}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   /breaking invalidation-tracked: %v\n", svc.SketchServer().Contains("/breaking"))

	fmt.Println("== 6 seconds later (past Δ) the reader reloads")
	clk.Advance(6 * time.Second)
	page, err = reader.Load(context.Background(), "/breaking")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s, version %d, revalidated=%v\n", page.Source, page.Version, page.Revalidated)
	fmt.Printf("   story visible: %v\n", contains(page.Body, "Quantum breakthrough"))

	fmt.Println("== archive reads stay cached: two loads of /article/a1")
	p1, _ := reader.Load(context.Background(), "/article/a1")
	p2, _ := reader.Load(context.Background(), "/article/a1")
	fmt.Printf("   first: %s %v, second: %s %v\n",
		p1.Source, p1.Latency.Round(time.Millisecond), p2.Source, p2.Latency.Round(time.Millisecond))

	stale := svc.VersionLog().Staleness("/breaking", page.Version, clk.Now())
	fmt.Printf("\nmax observed staleness on /breaking: %v (Δ = 5s)\n", stale)
}

func seedArticles(docs *speedkit.DocumentStore) {
	articles := []struct {
		id, title, section string
		rank               int64
		breaking           bool
	}{
		{"a1", "Budget passes", "politics", 10, false},
		{"a2", "Cup final tonight", "sports", 20, false},
		{"a3", "Quantum breakthrough", "tech", 30, false},
		{"a4", "Transfer rumours", "sports", 15, false},
		{"a5", "Election preview", "politics", 25, false},
	}
	for _, a := range articles {
		err := docs.Insert("articles", a.id, map[string]any{
			"title": a.title, "section": a.section, "rank": a.rank,
			"breaking": a.breaking, "published": true,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}

func contains(body []byte, s string) bool {
	return len(body) > 0 && string(body) != "" && indexOf(body, s) >= 0
}

func indexOf(body []byte, s string) int {
	b := string(body)
	for i := 0; i+len(s) <= len(b); i++ {
		if b[i:i+len(s)] == s {
			return i
		}
	}
	return -1
}
