// Package proxy implements the client-side half of Speed Kit: the
// service-worker-style proxy installed in the user's device. It
// intercepts page requests and enforces two disciplines at once:
//
//   - Coherence: before serving anything from the device cache it
//     consults the Cache Sketch client (refreshing the sketch when older
//     than Δ), so every load is Δ-atomic.
//   - Compliance: requests toward shared infrastructure (the CDN) carry
//     only anonymous fields; all personalization happens on-device by
//     swapping dynamic-block placeholders for fragments rendered from
//     device-local session state, or fetched over the first-party origin
//     channel when the user has consented.
//
// The proxy accumulates simulated latency for every step so that the
// page-load experiments measure the full pipeline.
package proxy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/gdpr"
	"speedkit/internal/metrics"
	"speedkit/internal/netsim"
	"speedkit/internal/obs"
	"speedkit/internal/origin"
	"speedkit/internal/resilience"
	"speedkit/internal/session"
)

// Source identifies which tier served a page body.
type Source int

// Serving tiers.
const (
	// SourceDevice: the service-worker cache on the user's device.
	SourceDevice Source = iota
	// SourceCDN: a CDN edge.
	SourceCDN
	// SourceOrigin: a full origin fetch (CDN miss or revalidation).
	SourceOrigin
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceDevice:
		return "device"
	case SourceCDN:
		return "cdn"
	case SourceOrigin:
		return "origin"
	}
	return "unknown"
}

// Transport is the proxy's view of the Speed Kit service. The core
// package implements it over the CDN, sketch server, and origin. Every
// method takes the request context first; implementations must honor
// cancellation and propagate the ctx into any real network call.
//
// Error contract: implementations return ErrOffline (possibly wrapped)
// when the network is unreachable and wrap transient failures worth
// retrying (5xx, injected faults) with ErrUpstream; anything else is
// treated as an application error and surfaces unchanged.
type Transport interface {
	// FetchSketch returns the current sketch snapshot and the simulated
	// latency of transferring it from the nearest edge.
	FetchSketch(ctx context.Context, region netsim.Region) (*cachesketch.Snapshot, time.Duration, error)
	// Fetch returns the anonymous page representation via the CDN path,
	// the simulated latency, and whether the edge or the origin served it.
	Fetch(ctx context.Context, region netsim.Region, path string) (cache.Entry, time.Duration, Source, error)
	// Revalidate is the conditional variant of Fetch: the client holds a
	// copy at knownVersion. If that version is still current the
	// transport returns notModified=true with a fresh expiration and only
	// a header-sized transfer cost; otherwise it behaves like Fetch.
	Revalidate(ctx context.Context, region netsim.Region, path string, knownVersion uint64) (RevalidationResult, error)
	// FetchBlocks returns origin-rendered personalized fragments over the
	// first-party channel, with the simulated latency of that round trip.
	FetchBlocks(ctx context.Context, region netsim.Region, names []string, u *session.User) (map[string][]byte, time.Duration, error)
}

// RevalidationResult is the outcome of a conditional fetch.
type RevalidationResult struct {
	// NotModified reports that the client's copy is still current; Entry
	// then carries only the refreshed expiration (no body).
	NotModified bool
	// Entry is the new representation (full on modification, expiry-only
	// on a 304-equivalent).
	Entry   cache.Entry
	Latency time.Duration
	Source  Source
}

// Config parameterizes a device proxy.
type Config struct {
	// User owns the device (nil for an anonymous visitor).
	User *session.User
	// Region locates the device.
	Region netsim.Region
	// Delta is the staleness bound Δ enforced via sketch refreshes
	// (default 60s).
	Delta time.Duration
	// CacheItems bounds the service-worker cache (default 500 entries —
	// device caches are small).
	CacheItems int
	// Clock supplies time (default system).
	Clock clock.Clock
	// Network models device-local latencies.
	Network *netsim.Network
	// Auditor records data flows across trust boundaries (optional).
	Auditor *gdpr.Auditor
	// Consent is the consent ledger consulted before any personalized
	// origin fetch (optional; nil means rely on User.ConsentPersonalization).
	Consent *gdpr.ConsentLedger
	// OriginBlocks names the dynamic blocks whose fragments must be
	// fetched from the origin (server-side data). All other blocks render
	// on-device.
	OriginBlocks map[string]bool
	// LocalBlocks maps block names to on-device renderers. Defaults to
	// the origin package's built-ins for greeting/cart/reco/tier.
	LocalBlocks map[string]origin.BlockRenderer
	// DisableSketch turns off the coherence protocol: cached entries are
	// served purely by TTL. This is the "traditional expiration-based
	// caching" baseline of the consistency experiments — never use it in
	// production configurations.
	DisableSketch bool
	// PrefetchLinks warms the device cache with up to this many of each
	// loaded page's links (0 disables prefetching).
	PrefetchLinks int
	// Tracer samples page-load traces (nil disables tracing at zero
	// per-load cost).
	Tracer *obs.Tracer
	// SLO receives one Δ-budget observation per load — the fraction of
	// the staleness budget the consulted sketch snapshot had burned at
	// decision time — keyed by serving tier, with the load's trace ID as
	// exemplar when the load was sampled (nil disables).
	SLO *obs.DeltaSLO
	// Obs registers device-side metrics — loads by serving tier, load and
	// block-personalization latency — under the shared registry (nil
	// disables).
	Obs *obs.Registry
	// Resilience shapes retries, per-load budgets, and the per-upstream
	// circuit breakers. The zero value applies the documented defaults
	// (2 retries, no budget, breakers at 5 failures / 15s cooldown).
	Resilience ResilienceConfig
}

func (c *Config) applyDefaults() {
	if c.Delta <= 0 {
		c.Delta = 60 * time.Second
	}
	if c.CacheItems <= 0 {
		c.CacheItems = 500
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	if c.Network == nil {
		c.Network = netsim.DefaultTopology(1)
	}
	if c.LocalBlocks == nil {
		c.LocalBlocks = map[string]origin.BlockRenderer{
			"greeting": origin.GreetingBlock,
			"cart":     origin.CartBlock,
			"reco":     origin.RecommendationsBlock,
			"tier":     origin.TierPriceBlock,
		}
	}
	c.Resilience.applyDefaults()
}

// Stats counts proxy activity.
type Stats struct {
	Loads, DeviceHits, CDNHits, OriginFetches uint64
	SketchRefreshes, Revalidations            uint64
	// NotModified counts revalidations answered by a 304-equivalent
	// (version unchanged, no body transferred).
	NotModified uint64
	// OfflineServes counts loads answered from the device cache because
	// the network was unreachable.
	OfflineServes             uint64
	BlocksLocal, BlocksOrigin uint64
	// Prefetches counts background link fetches; PrefetchTime is their
	// accumulated (simulated) cost, accounted apart from page latency.
	Prefetches   uint64
	PrefetchTime time.Duration
	// Retries counts backed-off retry attempts against upstreams.
	Retries uint64
	// Degraded counts degradation decisions (a single load can record
	// more than one as it walks down the ladder).
	Degraded uint64
}

// Proxy is one device's service worker. Safe for concurrent use, though
// a device issues requests sequentially in practice.
type Proxy struct {
	cfg    Config
	sketch *cachesketch.Client
	store  *cache.Store
	tr     Transport
	stats  Stats
	// m holds metric handles resolved once at construction, so the load
	// path never does a registry lookup; nil when no registry is wired.
	m *proxyMetrics
	// rng drives backoff jitter; seeded from Resilience.Seed so retry
	// schedules replay deterministically.
	rng     *rand.Rand
	backoff resilience.Backoff
	// One breaker per upstream the device talks to.
	brSketch *resilience.Breaker
	brShell  *resilience.Breaker
	brBlocks *resilience.Breaker
}

// proxyMetrics are the device-side instruments, pre-resolved from the
// registry (see the metric catalog in DESIGN.md).
type proxyMetrics struct {
	loads           [3]*metrics.Counter // indexed by Source
	offlineServes   *metrics.Counter
	sketchRefreshes *metrics.Counter
	revalidations   *metrics.Counter
	retries         *metrics.Counter
	degraded        map[DegradeReason]*metrics.Counter
	loadLatency     *metrics.Histogram
	blockLatency    *metrics.Histogram
}

func newProxyMetrics(r *obs.Registry) *proxyMetrics {
	m := &proxyMetrics{
		offlineServes:   r.Counter("speedkit.device.offline_serves.total"),
		sketchRefreshes: r.Counter("speedkit.device.sketch_refreshes.total"),
		revalidations:   r.Counter("speedkit.device.revalidations.total"),
		retries:         r.Counter("speedkit.device.retries.total"),
		degraded:        make(map[DegradeReason]*metrics.Counter, len(degradeReasons)),
		loadLatency:     r.Histogram("speedkit.device.load_latency_us"),
		blockLatency:    r.Histogram("speedkit.device.block_latency_us"),
	}
	for _, src := range []Source{SourceDevice, SourceCDN, SourceOrigin} {
		m.loads[src] = r.Counter("speedkit.device.loads.total", obs.L("source", src.String()))
	}
	for _, reason := range degradeReasons {
		m.degraded[reason] = r.Counter("speedkit.device.degraded.total", obs.L("reason", string(reason)))
	}
	return m
}

// New creates a proxy bound to a transport.
func New(cfg Config, tr Transport) *Proxy {
	cfg.applyDefaults()
	p := &Proxy{
		cfg:    cfg,
		sketch: cachesketch.NewClient(cfg.Clock, cfg.Delta),
		store: cache.New(cache.Config{
			MaxItems: cfg.CacheItems,
			Clock:    cfg.Clock,
		}),
		tr:  tr,
		rng: rand.New(rand.NewSource(cfg.Resilience.Seed)),
		backoff: resilience.Backoff{
			Base:   cfg.Resilience.RetryBase,
			Max:    cfg.Resilience.RetryMaxDelay,
			Factor: 2,
			Jitter: cfg.Resilience.RetryJitter,
		},
	}
	brCfg := resilience.BreakerConfig{
		Clock:     cfg.Clock,
		Threshold: cfg.Resilience.BreakerThreshold,
		Cooldown:  cfg.Resilience.BreakerCooldown,
	}
	p.brSketch = resilience.NewBreaker(brCfg)
	p.brShell = resilience.NewBreaker(brCfg)
	p.brBlocks = resilience.NewBreaker(brCfg)
	if cfg.Obs != nil {
		p.m = newProxyMetrics(cfg.Obs)
	}
	return p
}

// PageLoad is the result of one intercepted page request.
type PageLoad struct {
	Path string
	// Body is the fully assembled, personalized page.
	Body []byte
	// Version is the content version of the anonymous shell served.
	Version uint64
	// Latency is the simulated end-to-end load time.
	Latency time.Duration
	// Source is the tier that served the shell.
	Source Source
	// Revalidated reports whether the sketch forced a revalidation.
	Revalidated bool
	// SketchRefreshed reports whether this load had to refresh the sketch.
	SketchRefreshed bool
	// BlocksPersonalized counts dynamic blocks filled for this load.
	BlocksPersonalized int
	// Offline reports that the network was unreachable and the page was
	// served from the device cache regardless of freshness or sketch
	// state. Offline responses may be arbitrarily stale — the Δ bound
	// resumes once connectivity returns.
	Offline bool
	// Degraded names the first degradation decision taken for this load
	// (DegradeNone when the full protocol ran). Except for the explicit
	// Offline mode, degraded responses still satisfy the Δ bound.
	Degraded DegradeReason
}

// auditCDN records an anonymous-only flow to the CDN boundary.
func (p *Proxy) auditCDN(fields ...string) {
	if p.cfg.Auditor != nil {
		p.cfg.Auditor.RecordFlow(gdpr.BoundaryCDN, fields)
	}
}

// Load intercepts one page request and runs the full pipeline. The ctx
// rides every transport call (cancellation is honored between retries
// and inside real HTTP transports); the simulated-latency budget, if
// configured, is enforced by the resilience layer.
func (p *Proxy) Load(ctx context.Context, path string) (PageLoad, error) {
	res := PageLoad{Path: path}
	p.stats.Loads++
	// Unsampled and disabled tracing both yield a nil trace; every trace
	// method below is a nil-safe no-op, so the untraced load pays one
	// atomic load here and nothing else. A sampled trace also rides the
	// ctx so the layers below — the resilience retry loop, and the HTTP
	// transport that propagates the W3C traceparent to the server — reach
	// it without new parameters; ContextWithTrace is a no-op for nil.
	trace := p.cfg.Tracer.Start("page_load", path)
	ctx = obs.ContextWithTrace(ctx, trace)

	// 1. Sketch freshness: refresh if older than Δ. The sketch itself is
	// an anonymous resource fetched from the edge. A failed refresh
	// (upstream fault, open breaker, exhausted budget) does not fail the
	// load; it pushes the shell decision onto the degradation ladder.
	sketchOK := !p.cfg.DisableSketch
	if !p.cfg.DisableSketch && p.sketch.NeedsRefresh() {
		var sn *cachesketch.Snapshot
		sketchStart := res.Latency
		err := p.withRetry(ctx, &res, p.brSketch, "sketch", func() error {
			s, lat, err := p.tr.FetchSketch(ctx, p.cfg.Region)
			if err != nil {
				return err
			}
			sn = s
			res.Latency += lat
			return nil
		})
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return PageLoad{}, err
		}
		if err == nil && sn != nil {
			p.sketch.Install(sn)
			res.SketchRefreshed = true
			p.stats.SketchRefreshes++
			p.auditCDN("sketch")
			trace.MarkSketchRefreshed()
			trace.AddSpan("sketch.fetch", "cdn", res.Latency-sketchStart)
		} else {
			// The snapshot we hold (if any) is older than Δ and can no
			// longer vouch for cached copies.
			sketchOK = false
		}
	}
	// Sketch state at decision time: how much of the Δ budget the held
	// snapshot had consumed when it vouched for this load. The fraction
	// feeds both the sampled trace and the SLO histogram (which counts
	// every load, sampled or not).
	budgetFrac := -1.0
	if !p.cfg.DisableSketch {
		age := p.sketch.Age()
		trace.SetSketch(p.sketch.Generation(), age, p.cfg.Delta)
		if p.cfg.Delta > 0 {
			budgetFrac = float64(age) / float64(p.cfg.Delta)
		}
	}

	// 2. Coherence decision for the shell. With the sketch disabled,
	// every unexpired cached copy is served blindly (TTL-only baseline).
	// With the sketch unreachable, the ladder keeps the Δ bound without
	// it: serve a held copy stored within the last Δ (its staleness
	// cannot exceed Δ — any invalidating write postdates StoredAt), else
	// force the version-conditioned revalidation path.
	decision := cachesketch.ServeFromCache
	var entry cache.Entry
	served := false
	if !p.cfg.DisableSketch {
		if sketchOK {
			decision = p.sketch.Check(path)
		} else if held, ok := p.heldWithinDelta(path); ok {
			entry = held
			served = true
			res.Source = SourceDevice
			res.Latency += p.cfg.Network.DeviceLatency()
			p.stats.DeviceHits++
			p.markDegraded(&res, trace, DegradeServeStale)
		} else {
			decision = cachesketch.Revalidate
			p.markDegraded(&res, trace, DegradeRevalidate)
		}
	}
	// orDegraded wraps a shell fetch with the fallback rungs. Offline:
	// any held device copy — fresh, flagged, or expired — beats a failed
	// page load (explicitly marked, Δ bound suspended). Resilience
	// refusals and exhausted retries: a copy stored within Δ still
	// satisfies the bound; without one the error propagates.
	orDegraded := func(e cache.Entry, err error) (cache.Entry, error) {
		if err == nil {
			return e, nil
		}
		if errors.Is(err, ErrOffline) {
			held, ok := p.store.PeekAny(path)
			if !ok {
				return cache.Entry{}, err
			}
			res.Offline = true
			res.Source = SourceDevice
			res.Latency += p.cfg.Network.DeviceLatency()
			p.stats.OfflineServes++
			p.markDegraded(&res, trace, DegradeOfflineShell)
			res.Degraded = DegradeOfflineShell // the terminal rung names the load
			return held, nil
		}
		var reason DegradeReason
		switch {
		case errors.Is(err, ErrCircuitOpen):
			reason = DegradeCircuitOpen
		case errors.Is(err, ErrBudgetExceeded):
			reason = DegradeBudget
		case errors.Is(err, ErrUpstream):
			reason = DegradeRetriesExhausted
		default:
			return cache.Entry{}, err // application error: propagate
		}
		held, ok := p.heldWithinDelta(path)
		if !ok {
			return cache.Entry{}, err
		}
		res.Source = SourceDevice
		res.Latency += p.cfg.Network.DeviceLatency()
		p.stats.DeviceHits++
		p.markDegraded(&res, trace, reason)
		return held, nil
	}

	var err error
	shellStart := res.Latency
	if !served {
		switch decision {
		case cachesketch.ServeFromCache:
			if e, ok := p.store.Get(path); ok {
				entry = e
				res.Source = SourceDevice
				res.Latency += p.cfg.Network.DeviceLatency()
				p.stats.DeviceHits++
			} else {
				entry, err = orDegraded(p.fetchShell(ctx, path, &res))
				if err != nil {
					return PageLoad{}, err
				}
			}
		case cachesketch.Revalidate:
			res.Revalidated = true
			p.stats.Revalidations++
			entry, err = orDegraded(p.revalidateShell(ctx, path, &res))
			if err != nil {
				return PageLoad{}, err
			}
		default:
			// The sketch was refreshed above, so RefreshSketch can only
			// recur if the transport returned a nil snapshot; degrade to a
			// direct fetch, which is always safe.
			res.Revalidated = true
			entry, err = orDegraded(p.fetchShell(ctx, path, &res))
			if err != nil {
				return PageLoad{}, err
			}
		}
	}

	trace.AddSpan("shell.fetch", res.Source.String(), res.Latency-shellStart)
	if res.Revalidated {
		trace.MarkRevalidated()
	}
	if res.Offline {
		trace.MarkOffline()
	}

	// 3. On-device personalization: swap placeholders for fragments.
	blockStart := res.Latency
	body, blocks, err := p.personalize(ctx, entry, &res, trace)
	if err != nil {
		return PageLoad{}, err
	}
	res.Body = body
	res.Version = entry.Version
	res.BlocksPersonalized = blocks
	blockLatency := res.Latency - blockStart
	if blocks > 0 {
		trace.AddSpan("personalize", "device", blockLatency)
	}
	trace.SetBlocks(blocks, blockLatency)

	// 4. Background prefetch of linked pages (never while offline or
	// degraded — a struggling upstream should not absorb warmup traffic).
	if !res.Offline && res.Degraded == DegradeNone {
		p.prefetch(ctx, entry)
	}

	trace.SetSource(res.Source.String())
	trace.SetTotal(res.Latency)
	p.cfg.Tracer.Finish(trace)
	if p.cfg.SLO != nil && budgetFrac >= 0 {
		// SpanContext is nil-safe: an unsampled load donates the zero
		// trace ID, so it counts toward the SLO but never as an exemplar.
		p.cfg.SLO.Observe(res.Source.String(), budgetFrac, trace.SpanContext().TraceID)
	}
	if p.m != nil {
		p.m.loads[res.Source].Inc()
		p.m.loadLatency.ObserveDuration(res.Latency)
		if blocks > 0 {
			p.m.blockLatency.ObserveDuration(blockLatency)
		}
		if res.SketchRefreshed {
			p.m.sketchRefreshes.Inc()
		}
		if res.Revalidated {
			p.m.revalidations.Inc()
		}
		if res.Offline {
			p.m.offlineServes.Inc()
		}
	}
	return res, nil
}

// fetchShell pulls the anonymous page via the CDN path (through the
// resilience layer) and fills the device cache.
func (p *Proxy) fetchShell(ctx context.Context, path string, res *PageLoad) (cache.Entry, error) {
	p.auditCDN("path")
	var entry cache.Entry
	var src Source
	err := p.withRetry(ctx, res, p.brShell, "shell", func() error {
		e, lat, s, err := p.tr.Fetch(ctx, p.cfg.Region, path)
		if err != nil {
			return err
		}
		entry, src = e, s
		res.Latency += lat
		return nil
	})
	if err != nil {
		return cache.Entry{}, fmt.Errorf("proxy: fetch %s: %w", path, err)
	}
	res.Source = src
	switch src {
	case SourceCDN:
		p.stats.CDNHits++
	default:
		p.stats.OriginFetches++
	}
	// The entry's ExpiresAt is absolute, so the device copy expires in
	// lockstep with every other cache of the same response — exactly the
	// assumption the server's expiration table depends on.
	p.store.Put(entry)
	return entry, nil
}

// revalidateShell refreshes a sketch-flagged page. When the device still
// holds a copy (even an expired one), it issues a conditional fetch with
// the held version: if the origin's version is unchanged, only the
// expiration is renewed and no body travels — the protocol's
// 304-equivalent. Without a held copy it degrades to a plain fetch.
func (p *Proxy) revalidateShell(ctx context.Context, path string, res *PageLoad) (cache.Entry, error) {
	// Without a held copy there is no version to condition on, but the
	// request must still travel the revalidation path (version 0 never
	// matches): a plain fetch could be answered by an edge still holding
	// the pre-purge copy inside the purge-propagation window.
	var knownVersion uint64
	held, ok := p.store.PeekAny(path)
	if ok {
		knownVersion = held.Version
	}
	p.auditCDN("path")
	var rr RevalidationResult
	err := p.withRetry(ctx, res, p.brShell, "shell", func() error {
		r, err := p.tr.Revalidate(ctx, p.cfg.Region, path, knownVersion)
		if err != nil {
			return err
		}
		rr = r
		return nil
	})
	if err != nil {
		return cache.Entry{}, fmt.Errorf("proxy: revalidate %s: %w", path, err)
	}
	res.Latency += rr.Latency
	res.Source = rr.Source
	switch rr.Source {
	case SourceCDN:
		p.stats.CDNHits++
	default:
		p.stats.OriginFetches++
	}
	if rr.NotModified && ok {
		p.stats.NotModified++
		held.ExpiresAt = rr.Entry.ExpiresAt
		held.StoredAt = rr.Entry.StoredAt
		p.store.Put(held)
		return held, nil
	}
	p.store.Put(rr.Entry)
	return rr.Entry, nil
}

// personalize replaces each block placeholder with its fragment. A
// failed origin-fragment fetch never fails the page: the device falls
// back to locally rendered variants (DegradeBlocksLocal).
func (p *Proxy) personalize(ctx context.Context, entry cache.Entry, res *PageLoad, trace *obs.Trace) ([]byte, int, error) {
	names := blockNames(entry)
	if len(names) == 0 {
		return entry.Body, 0, nil
	}

	consented := p.consented()
	var originNames []string
	fragments := make(map[string][]byte, len(names))
	renderLocal := func(name string) {
		// On-device rendering from local session state. Without consent,
		// render the anonymous variant by passing a nil user.
		r := p.cfg.LocalBlocks[name]
		if r == nil {
			fragments[name] = nil
			return
		}
		u := p.cfg.User
		if !consented {
			u = nil
		}
		fragments[name] = r(u)
		p.stats.BlocksLocal++
	}
	for _, name := range names {
		if p.cfg.OriginBlocks[name] && consented && !res.Offline {
			originNames = append(originNames, name)
			continue
		}
		renderLocal(name)
	}

	// Origin-sourced fragments travel over the first-party channel, one
	// batched round trip per page. PII crossing this boundary is lawful
	// (first-party, consented) but still audited.
	if len(originNames) > 0 {
		if p.cfg.Auditor != nil {
			p.cfg.Auditor.RecordFlow(gdpr.BoundaryOrigin, []string{"user_id", "path"})
		}
		var frs map[string][]byte
		err := p.withRetry(ctx, res, p.brBlocks, "blocks", func() error {
			f, lat, err := p.tr.FetchBlocks(ctx, p.cfg.Region, originNames, p.cfg.User)
			if err != nil {
				return err
			}
			frs = f
			res.Latency += lat
			return nil
		})
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, 0, err
			}
			// Degrade to local fallbacks for every origin-sourced block.
			p.markDegraded(res, trace, DegradeBlocksLocal)
			for _, name := range originNames {
				renderLocal(name)
			}
		}
		for name, fr := range frs {
			fragments[name] = fr
			p.stats.BlocksOrigin++
		}
	}

	res.Latency += p.cfg.Network.DeviceLatency() // assembly cost
	body := entry.Body
	count := 0
	for name, fr := range fragments {
		ph := []byte(origin.BlockPlaceholder(name))
		if bytes.Contains(body, ph) {
			body = bytes.ReplaceAll(body, ph, fr)
			count++
		}
	}
	return body, count, nil
}

// consented reports whether personalization is permitted for this device.
func (p *Proxy) consented() bool {
	u := p.cfg.User
	if u == nil || !u.LoggedIn {
		return false
	}
	if p.cfg.Consent != nil {
		return p.cfg.Consent.Allowed(u.ID, gdpr.PurposePersonalization)
	}
	return u.ConsentPersonalization
}

// blockNames extracts the dynamic block list from the entry metadata.
func blockNames(e cache.Entry) []string {
	raw := e.Metadata["blocks"]
	if raw == "" {
		return nil
	}
	return strings.Split(raw, ",")
}

// BlocksMetadata renders a page's block list into cache-entry metadata.
func BlocksMetadata(blocks []string) map[string]string {
	if len(blocks) == 0 {
		return nil
	}
	return map[string]string{"blocks": strings.Join(blocks, ",")}
}

// EntryMetadata renders a page's blocks and links into cache-entry
// metadata understood by the proxy (personalization and prefetching).
func EntryMetadata(blocks, links []string) map[string]string {
	if len(blocks) == 0 && len(links) == 0 {
		return nil
	}
	m := make(map[string]string, 2)
	if len(blocks) > 0 {
		m["blocks"] = strings.Join(blocks, ",")
	}
	if len(links) > 0 {
		m["links"] = strings.Join(links, ",")
	}
	return m
}

// linkNames extracts the prefetchable link list from entry metadata.
func linkNames(e cache.Entry) []string {
	raw := e.Metadata["links"]
	if raw == "" {
		return nil
	}
	return strings.Split(raw, ",")
}

// prefetch warms the device cache with the page's first K links that are
// not already held — plus held links the coherence sketch flags as
// possibly stale, which are refetched so the warm copy is coherent before
// the user navigates to it. The staleness verdicts for the whole link
// list come from one CheckBatch call (a single snapshot load and clock
// read); without a fresh sketch the verdict is RefreshSketch and held
// links are conservatively left alone. In production this runs
// asynchronously after the page is displayed, so its cost is accounted
// separately from the page load; the simulated latency is accumulated in
// Stats.PrefetchTime.
func (p *Proxy) prefetch(ctx context.Context, entry cache.Entry) {
	k := p.cfg.PrefetchLinks
	if k <= 0 {
		return
	}
	links := linkNames(entry)
	if len(links) == 0 {
		return
	}
	verdicts := make([]cachesketch.Decision, len(links))
	p.sketch.CheckBatch(links, verdicts)
	for i, link := range links {
		if k == 0 || ctx.Err() != nil {
			break
		}
		if _, held := p.store.Peek(link); held && verdicts[i] != cachesketch.Revalidate {
			continue
		}
		p.auditCDN("path")
		fetched, lat, _, err := p.tr.Fetch(ctx, p.cfg.Region, link)
		if err != nil {
			return // offline or server trouble: stop prefetching quietly
		}
		p.store.Put(fetched)
		p.stats.Prefetches++
		p.stats.PrefetchTime += lat
		k--
	}
}

// Stats returns a copy of the proxy counters.
func (p *Proxy) Stats() Stats { return p.stats }

// CacheStats exposes the device cache counters.
func (p *Proxy) CacheStats() cache.Stats { return p.store.Stats() }

// SketchStats exposes the sketch client counters.
func (p *Proxy) SketchStats() cachesketch.ClientStats { return p.sketch.Stats() }

// User returns the device owner (may be nil).
func (p *Proxy) User() *session.User { return p.cfg.User }

// Region returns the device region.
func (p *Proxy) Region() netsim.Region { return p.cfg.Region }
