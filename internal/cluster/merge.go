package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
)

// ErrUnknownMember is returned by Fold for a frame from a node outside
// the merger's member set — a misrouted or stale-deployment frame that
// must not contribute bits to the merged sketch.
var ErrUnknownMember = errors.New("cluster: delta frame from unknown member")

// MergerConfig parameterizes the merge layer.
type MergerConfig struct {
	// Members is the full node set whose frames make a complete merge.
	Members []string
	// Capacity and FalsePositiveRate must match every node's sketch
	// sizing; they fix the (m, k) parameters incoming frames are
	// validated against.
	Capacity          uint64
	FalsePositiveRate float64
	// Clock stamps folds and ages frames (default system clock).
	Clock clock.Clock
	// MaxFrameAge bounds how stale a held frame may be before the merge
	// degrades to the saturated filter. Zero means frames never age out —
	// only a missing member degrades the merge. Deployments set it below
	// their Δ sync budget so a partitioned node forces conservative
	// serving instead of silently masking its shard's writes.
	MaxFrameAge time.Duration
}

func (c *MergerConfig) applyDefaults() {
	if c.Capacity == 0 {
		c.Capacity = 10000
	}
	if c.FalsePositiveRate <= 0 || c.FalsePositiveRate >= 1 {
		c.FalsePositiveRate = 0.05
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
}

// heldFrame is the newest folded frame for one member.
type heldFrame struct {
	gen      uint64
	filter   *bloom.Filter
	cold     bool
	foldedAt time.Time
}

// MergerStats counts merge-layer activity.
type MergerStats struct {
	// Folds counts accepted frames; StaleFolds counts frames ignored for
	// carrying a generation older than the held one.
	Folds, StaleFolds uint64
	// Rejected counts frames refused outright (unknown member, parameter
	// mismatch, undecodable sketch).
	Rejected uint64
	// MergedServes and SaturatedServes split Snapshot calls by outcome.
	MergedServes, SaturatedServes uint64
}

// Merger folds per-node DeltaFrames into the single client-facing Bloom
// filter. Safe for concurrent use.
//
// The generation-merge rule: the merged generation is Σ(folded shard
// generations) + the saturation-transition counter. Each shard's folded
// generation is monotone (Fold ignores older frames), so the sum is
// monotone, and — because per-node generations advance exactly when that
// shard's contents change — two merged snapshots with equal generations
// hold identical filters, preserving the single-node snapshot contract.
// The merged (non-saturated) filter is served only while every member's
// frame is folded and fresh; any gap (a member never synced, a partition
// aged its frame out, a killed node) degrades to the saturated all-stale
// filter, and each degrade/recover transition bumps the counter so the
// generation watermark still advances strictly. Clients therefore never
// install a merged sketch that is missing a shard's writes: the filter
// can only err toward spurious revalidations, exactly like a single
// node's Bloom false positives, and Client.Check semantics carry over
// unchanged.
type Merger struct {
	cfg  MergerConfig
	m, k uint32
	// saturated is the immutable all-stale filter served while degraded.
	saturated *bloom.Filter

	mu         sync.Mutex
	frames     map[string]heldFrame // guarded by mu
	satBumps   uint64               // guarded by mu; transition counter folded into the generation
	servingSat bool                 // guarded by mu; current serve state (starts saturated)
	stats      MergerStats          // guarded by mu
}

// NewMerger creates a merge layer over the given member set.
func NewMerger(cfg MergerConfig) *Merger {
	cfg.applyDefaults()
	m, k := bloom.OptimalParams(cfg.Capacity, cfg.FalsePositiveRate)
	sat := bloom.NewFilter(m, k)
	sat.Saturate()
	mg := &Merger{
		cfg:       cfg,
		saturated: sat,
		frames:    make(map[string]heldFrame, len(cfg.Members)),
		// Before the first complete exchange the merger has zero trusted
		// history, so it starts in the saturated state for the same reason
		// crash recovery does.
		servingSat: true,
	}
	mg.m = sat.Bits()
	mg.k = sat.Hashes()
	return mg
}

// Params returns the (m, k) filter parameters frames must carry.
func (mg *Merger) Params() (m, k uint32) { return mg.m, mg.k }

// Fold ingests one member's frame. Frames from unknown members are
// rejected with ErrUnknownMember; frames whose filter parameters disagree
// with the cluster sizing are rejected with an error wrapping
// bloom.ErrParamMismatch; a frame older than the held one is ignored
// (nil error) — exchange rounds may arrive reordered.
func (mg *Merger) Fold(frame DeltaFrame) error {
	known := false
	for _, m := range mg.cfg.Members {
		if m == frame.Node {
			known = true
			break
		}
	}
	var f bloom.Filter
	decodeErr := f.UnmarshalBinary(frame.Sketch)

	mg.mu.Lock()
	defer mg.mu.Unlock()
	if !known {
		mg.stats.Rejected++
		return fmt.Errorf("%w: %q", ErrUnknownMember, frame.Node)
	}
	if decodeErr != nil {
		mg.stats.Rejected++
		return fmt.Errorf("cluster: frame from %q: %w", frame.Node, decodeErr)
	}
	if f.Bits() != mg.m || f.Hashes() != mg.k {
		mg.stats.Rejected++
		return fmt.Errorf("cluster: frame from %q: %w (m=%d,k=%d vs cluster m=%d,k=%d)",
			frame.Node, bloom.ErrParamMismatch, f.Bits(), f.Hashes(), mg.m, mg.k)
	}
	if held, ok := mg.frames[frame.Node]; ok && frame.Generation < held.gen {
		mg.stats.StaleFolds++
		return nil
	}
	mg.frames[frame.Node] = heldFrame{
		gen:      frame.Generation,
		filter:   &f,
		cold:     frame.Cold,
		foldedAt: mg.cfg.Clock.Now(),
	}
	mg.stats.Folds++
	return nil
}

// completeLocked reports whether every member's frame is folded and
// fresh. Caller holds mg.mu.
func (mg *Merger) completeLocked(now time.Time) bool {
	for _, m := range mg.cfg.Members {
		held, ok := mg.frames[m]
		if !ok {
			return false
		}
		if mg.cfg.MaxFrameAge > 0 && now.Sub(held.foldedAt) > mg.cfg.MaxFrameAge {
			return false
		}
	}
	return true
}

// Snapshot returns the cluster-wide client sketch under the
// generation-merge rule. It is shaped exactly like a single node's
// cachesketch.Snapshot, so clients install it unchanged.
func (mg *Merger) Snapshot() *cachesketch.Snapshot {
	now := mg.cfg.Clock.Now()
	mg.mu.Lock()
	defer mg.mu.Unlock()

	complete := mg.completeLocked(now)
	if complete == mg.servingSat {
		// Serve state flips (degraded -> merged or merged -> degraded):
		// bump the transition counter so the generation strictly advances
		// even when Σ(shard generations) is unchanged, keeping "equal
		// generation ⇒ interchangeable snapshot" true across the flip.
		mg.satBumps++
		mg.servingSat = !complete
	}
	gen := mg.satBumps
	for _, m := range mg.cfg.Members {
		gen += mg.frames[m].gen
	}
	if !complete {
		mg.stats.SaturatedServes++
		return &cachesketch.Snapshot{Filter: mg.saturated, Generation: gen, TakenAt: now}
	}
	merged := bloom.NewFilter(mg.m, mg.k)
	for _, m := range mg.cfg.Members {
		if err := merged.Merge(mg.frames[m].filter); err != nil {
			// Unreachable — Fold validated parameters — but if it ever
			// fires, degrade conservatively rather than serve a partial
			// union missing a shard's bits.
			mg.stats.SaturatedServes++
			mg.satBumps++
			mg.servingSat = true
			return &cachesketch.Snapshot{Filter: mg.saturated, Generation: gen + 1, TakenAt: now}
		}
	}
	mg.stats.MergedServes++
	return &cachesketch.Snapshot{Filter: merged, Generation: gen, TakenAt: now}
}

// Export serializes the merged sketch deterministically: magic, the
// merged generation, then the filter bytes. Twin seeded runs must produce
// byte-identical exports — the cluster gate's determinism check.
func (mg *Merger) Export() ([]byte, error) {
	snap := mg.Snapshot()
	body, err := snap.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 12+len(body))
	out = append(out, 'S', 'K', 'C', 'M')
	out = binary.BigEndian.AppendUint64(out, snap.Generation)
	out = append(out, body...)
	return out, nil
}

// Stats returns a copy of the merge counters.
func (mg *Merger) Stats() MergerStats {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.stats
}
