package httpclient

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"speedkit/internal/core"
	"speedkit/internal/httpapi"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
)

// newStack spins a full HTTP stack: storefront service (REAL clock, since
// HTTP clients measure wall time), httpapi server, and a device proxy
// driving the protocol over the wire.
func newStack(t *testing.T, u *session.User) (*proxy.Proxy, *core.Service, *httptest.Server) {
	t.Helper()
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock: realClock{},
			Delta: 30 * time.Second,
			Seed:  1,
		},
		Products: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	var users []*session.User
	if u != nil {
		users = []*session.User{u}
	}
	ts := httptest.NewServer(httpapi.New(svc, users).Handler())
	t.Cleanup(ts.Close)

	tr := New(ts.URL, ts.Client())
	dev := proxy.New(proxy.Config{
		User:   u,
		Region: netsim.EU,
		Delta:  30 * time.Second,
	}, tr)
	return dev, svc, ts
}

// realClock avoids importing clock in every call site.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func loggedInUser() *session.User {
	u := &session.User{ID: "u-wire", Name: "Wire", LoggedIn: true,
		Tier: "gold", ConsentPersonalization: true}
	u.AddToCart("p00001", 4)
	return u
}

func TestEndToEndOverHTTP(t *testing.T) {
	u := loggedInUser()
	dev, _, _ := newStack(t, u)

	res, err := dev.Load(context.Background(), "/product/p00003")
	if err != nil {
		t.Fatal(err)
	}
	if !res.SketchRefreshed {
		t.Fatal("cold load did not pull the sketch over HTTP")
	}
	if res.Source != proxy.SourceOrigin {
		t.Fatalf("cold source = %v", res.Source)
	}
	body := string(res.Body)
	if !strings.Contains(body, "4 items") {
		t.Fatalf("personalization lost over the wire: %s", body)
	}
	if strings.Contains(body, "<!--block:") {
		t.Fatal("placeholders survived")
	}

	// Second load: device cache, no network.
	res, err = dev.Load(context.Background(), "/product/p00003")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != proxy.SourceDevice {
		t.Fatalf("warm source = %v", res.Source)
	}
}

func TestWriteInvalidationVisibleOverHTTP(t *testing.T) {
	dev, svc, _ := newStack(t, nil)
	path := "/product/p00007"
	if _, err := dev.Load(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if err := svc.Docs().Patch("products", "p00007", map[string]any{"price": 2.22}); err != nil {
		t.Fatal(err)
	}
	// Let the CDN purge propagate (10 ms wall clock — this stack runs on
	// the real clock); inside that window a revalidation may legally be
	// answered by the pre-purge edge copy, with staleness bounded by the
	// propagation delay.
	time.Sleep(25 * time.Millisecond)

	// A brand-new device has no sketch yet → fetches the flagged one →
	// revalidates → sees v2 with the new price.
	dev2 := proxy.New(proxy.Config{Region: netsim.EU, Delta: 30 * time.Second},
		transportOf(t, svc))
	res, err := dev2.Load(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || !strings.Contains(string(res.Body), "2.22") {
		t.Fatalf("post-write load over HTTP: v%d", res.Version)
	}
}

// serverURLs memoizes one httptest server per service for helper use.
var serverURLs = map[*core.Service]string{}

func mustServerURL(t *testing.T, svc *core.Service) string {
	t.Helper()
	if u, ok := serverURLs[svc]; ok {
		return u
	}
	ts := httptest.NewServer(httpapi.New(svc, nil).Handler())
	t.Cleanup(ts.Close)
	serverURLs[svc] = ts.URL
	return ts.URL
}

func transportOf(t *testing.T, svc *core.Service) *Transport {
	return New(mustServerURL(t, svc), nil)
}

func TestConditionalRevalidationOverHTTP(t *testing.T) {
	u := loggedInUser()
	dev, svc, _ := newStack(t, u)
	path := "/product/p00009"
	if _, err := dev.Load(context.Background(), path); err != nil {
		t.Fatal(err)
	}

	// Flag the page WITHOUT a version change (false-positive scenario):
	// report + write on an unrelated colliding key is hard to force, so
	// report a cached copy and write, then revert the version by checking
	// the 304 directly through the transport.
	tr := transportOf(t, svc)
	rr, err := tr.Revalidate(context.Background(), netsim.EU, path, svc.Origin().Version(path))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.NotModified {
		t.Fatal("matching version not answered with 304 over HTTP")
	}
	if rr.Entry.ExpiresAt.IsZero() {
		t.Fatal("304 did not carry a renewed max-age")
	}

	// And a stale version gets the full new body.
	_ = svc.Docs().Patch("products", "p00009", map[string]any{"price": 8.88})
	rr, err = tr.Revalidate(context.Background(), netsim.EU, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr.NotModified || rr.Entry.Version != 2 {
		t.Fatalf("stale revalidation: %+v", rr)
	}
}

func TestOfflineWithFreshSketchNeedsNoNetwork(t *testing.T) {
	// Within Δ, a cached page is served entirely from the device — the
	// network may be down without the load even noticing.
	u := loggedInUser()
	dev, _, ts := newStack(t, u)
	if _, err := dev.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	res, err := dev.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("cached load failed after server shutdown: %v", err)
	}
	if res.Source != proxy.SourceDevice || res.Offline {
		t.Fatalf("expected silent device hit, got %+v", res)
	}
}

func TestOfflineModeOverHTTP(t *testing.T) {
	u := loggedInUser()
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config:   core.Config{Clock: realClock{}, Seed: 1},
		Products: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.New(svc, []*session.User{u}).Handler())
	defer ts.Close()

	// Δ of one nanosecond: every load must contact the sketch endpoint,
	// so a dead network is always noticed.
	dev := proxy.New(proxy.Config{
		User: u, Region: netsim.EU, Delta: time.Nanosecond,
	}, New(ts.URL, ts.Client()))

	if _, err := dev.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	ts.Close() // network gone

	res, err := dev.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("offline load failed: %v", err)
	}
	if !res.Offline {
		t.Fatal("load not marked offline")
	}
	if !strings.Contains(string(res.Body), "Wire") {
		t.Fatal("offline page lost personalization")
	}
}

func TestFetchUnknownPathOverHTTP(t *testing.T) {
	dev, _, _ := newStack(t, nil)
	if _, err := dev.Load(context.Background(), "/no/such/page"); err == nil {
		t.Fatal("unknown path loaded")
	}
}

func TestBlocksOverHTTPAnonymous(t *testing.T) {
	_, svc, _ := newStack(t, nil)
	tr := transportOf(t, svc)
	frs, lat, err := tr.FetchBlocks(context.Background(), netsim.EU, []string{"greeting"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("no latency measured")
	}
	if !strings.Contains(string(frs["greeting"]), "Welcome!") {
		t.Fatalf("greeting = %s", frs["greeting"])
	}
}

func TestParseMaxAge(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"public, max-age=60", time.Minute, true},
		{"max-age=0", 0, true},
		{"no-store", 0, false},
		{"max-age=abc", 0, false},
		{"max-age=-5", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseMaxAge(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseMaxAge(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestParseVersionETag(t *testing.T) {
	if parseVersionETag(`"v42"`) != 42 || parseVersionETag(`W/"v7"`) != 7 ||
		parseVersionETag(`"x"`) != 0 || parseVersionETag("") != 0 {
		t.Fatal("etag parsing wrong")
	}
}
