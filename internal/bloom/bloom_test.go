package bloom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilterForCapacity(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFilterFalsePositiveRateNearTarget(t *testing.T) {
	const n, target = 10000, 0.01
	f := NewFilterForCapacity(n, target)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*2.5 {
		t.Fatalf("observed FPR %.4f far above target %.4f", rate, target)
	}
}

func TestOptimalParams(t *testing.T) {
	m, k := OptimalParams(10000, 0.01)
	// Standard values: m ≈ 9.585 bits/entry, k ≈ 7.
	if m < 90000 || m > 100000 {
		t.Errorf("m = %d, want ~95851", m)
	}
	if k != 7 {
		t.Errorf("k = %d, want 7", k)
	}
	// Degenerate inputs fall back sanely.
	m, k = OptimalParams(0, -1)
	if m == 0 || k == 0 {
		t.Errorf("degenerate params m=%d k=%d", m, k)
	}
}

func TestFilterParamClamping(t *testing.T) {
	f := NewFilter(1, 0)
	if f.Bits() < 64 || f.Hashes() != 1 {
		t.Fatalf("clamping failed: m=%d k=%d", f.Bits(), f.Hashes())
	}
	f = NewFilter(128, 100)
	if f.Hashes() != 32 {
		t.Fatalf("k not clamped: %d", f.Hashes())
	}
}

func TestFilterClear(t *testing.T) {
	f := NewFilter(1024, 4)
	f.Add("x")
	f.Clear()
	if f.Contains("x") {
		t.Fatal("cleared filter still contains x")
	}
	if f.FillRatio() != 0 {
		t.Fatalf("fill after clear = %v", f.FillRatio())
	}
}

func TestFilterFillAndFPREstimates(t *testing.T) {
	f := NewFilterForCapacity(5000, 0.02)
	for i := 0; i < 5000; i++ {
		f.Add(fmt.Sprintf("k%d", i))
	}
	fill := f.FillRatio()
	// At design capacity, fill should be near 0.5 (optimal k keeps it there).
	if fill < 0.4 || fill > 0.6 {
		t.Errorf("fill at capacity = %v, want ~0.5", fill)
	}
	est := f.EstimatedFPR()
	if est < 0.005 || est > 0.06 {
		t.Errorf("estimated FPR = %v, want near 0.02", est)
	}
	card := f.EstimatedCardinality()
	if math.Abs(card-5000)/5000 > 0.1 {
		t.Errorf("estimated cardinality = %v, want ~5000", card)
	}
}

func TestFilterUnion(t *testing.T) {
	a := NewFilter(2048, 4)
	b := NewFilter(2048, 4)
	a.Add("only-a")
	b.Add("only-b")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("only-a") || !a.Contains("only-b") {
		t.Fatal("union lost members")
	}
}

func TestFilterUnionMismatch(t *testing.T) {
	a := NewFilter(2048, 4)
	if err := a.Union(nil); err == nil {
		t.Fatal("nil union accepted")
	}
	b := NewFilter(4096, 4)
	if err := a.Union(b); err == nil {
		t.Fatal("mismatched union accepted")
	}
	c := NewFilter(2048, 5)
	if err := a.Union(c); err == nil {
		t.Fatal("mismatched k union accepted")
	}
}

func TestFilterClone(t *testing.T) {
	a := NewFilter(1024, 3)
	a.Add("x")
	b := a.Clone()
	b.Add("y")
	if a.Contains("y") {
		t.Fatal("clone shares bit storage with original")
	}
	if !b.Contains("x") {
		t.Fatal("clone lost member")
	}
}

func TestFilterMarshalRoundTrip(t *testing.T) {
	a := NewFilterForCapacity(500, 0.05)
	for i := 0; i < 500; i++ {
		a.Add(fmt.Sprintf("rt-%d", i))
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Filter
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if b.Bits() != a.Bits() || b.Hashes() != a.Hashes() {
		t.Fatalf("params changed: m=%d k=%d", b.Bits(), b.Hashes())
	}
	for i := 0; i < 500; i++ {
		if !b.Contains(fmt.Sprintf("rt-%d", i)) {
			t.Fatalf("round-trip lost rt-%d", i)
		}
	}
}

func TestFilterUnmarshalRejectsGarbage(t *testing.T) {
	var f Filter
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("XXXX\x01aaaaaaaa"), // bad magic
		append([]byte("SKBF\x09"), make([]byte, 8)...),  // bad version
		append([]byte("SKBF\x01"), make([]byte, 8)...),  // m=0 => length mismatch handled
		append([]byte("SKBF\x01"), make([]byte, 20)...), // length mismatch
	}
	for i, data := range cases {
		if err := f.UnmarshalBinary(data); err == nil {
			// m=0 corner: nwords=0 means 13 bytes exactly would be valid;
			// our case 4 has 13 bytes with m=0 => valid but empty filter.
			m := f.Bits()
			if m != 0 {
				t.Errorf("case %d: garbage accepted with m=%d", i, m)
			}
		}
	}
}

func TestFilterMarshalSizeMatchesSizeBytes(t *testing.T) {
	f := NewFilter(4096, 5)
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 13+f.SizeBytes() {
		t.Fatalf("marshal size %d != header+payload %d", len(data), 13+f.SizeBytes())
	}
}

func TestHashKeyH2Odd(t *testing.T) {
	// h2 must be odd for full-cycle probing.
	for _, k := range []string{"", "a", "abc", "longer-key-with-more-entropy"} {
		_, h2 := hashKey(k)
		if h2%2 == 0 {
			t.Fatalf("h2 even for %q", k)
		}
	}
}

func TestFilterPropertyAddImpliesContains(t *testing.T) {
	// Property: a filter never forgets a key it was given, across random
	// key sets and filter sizes.
	f := func(keys []string, mSeed uint16, kSeed uint8) bool {
		fl := NewFilter(uint32(mSeed)+64, uint32(kSeed%8)+1)
		for _, k := range keys {
			fl.Add(k)
		}
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterPropertyMarshalPreservesMembership(t *testing.T) {
	f := func(keys []string) bool {
		fl := NewFilter(2048, 5)
		for _, k := range keys {
			fl.Add(k)
		}
		data, err := fl.MarshalBinary()
		if err != nil {
			return false
		}
		var fl2 Filter
		if err := fl2.UnmarshalBinary(data); err != nil {
			return false
		}
		for _, k := range keys {
			if !fl2.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := NewFilterForCapacity(uint64(b.N)+1, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(keys[i%len(keys)])
	}
}

func BenchmarkFilterContains(b *testing.B) {
	f := NewFilterForCapacity(100000, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%d", i)
		f.Add(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(keys[i%len(keys)])
	}
}
