# Convenience targets; plain `go build ./...` / `go test ./...` work too.

GO ?= go

.PHONY: all build test lint race cover bench experiments fmt vet clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Repo-specific static analysis: GDPR boundary, clock/lock/rand discipline.
lint:
	$(GO) run ./cmd/speedkit-lint ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# One testing.B benchmark per table/figure (reduced scale).
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every experiment at full scale (minutes).
experiments:
	$(GO) run ./cmd/speedkit-bench

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
