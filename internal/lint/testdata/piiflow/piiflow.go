// Package piiflow is the fixture for the value-level taint analyzer:
// interprocedural flows into WAL frames, metric labels, and CDN bodies,
// sanitizer cut-offs, struct-field sensitivity, and suppression.
package piiflow

import (
	"speedkit/internal/cache"
	"speedkit/internal/cdn"
	"speedkit/internal/gdpr"
	"speedkit/internal/obs"
	"speedkit/internal/session"
	"speedkit/internal/wal"
)

// --- interprocedural flow into a WAL frame (two hops) ---

// frame is hop zero: a pure transformer, keeps taint.
func frame(payload string) []byte { return []byte(payload) }

// journal is the hop that reaches the sink; reported at its callers.
func journal(l *wal.Log, payload []byte) {
	l.Append(payload)
}

func LeakWAL(l *wal.Log, u *session.User) {
	journal(l, frame(u.Email)) // want "reaches WAL append"
}

// --- interprocedural flow into an obs metric label (two hops) ---

func mkLabel(v string) obs.Label { return obs.L("segment", v) }

func relayLabel(v string) obs.Label { return mkLabel(v) }

func LeakLabel(u *session.User) obs.Label {
	return relayLabel(u.Tier) // want "reaches obs metric label"
}

// --- interprocedural flow into a CDN response body (two hops) ---

func entryFor(key string, body []byte) cache.Entry {
	return cache.Entry{Key: key, Body: body}
}

func fill(e *cdn.Edge, entry cache.Entry) {
	e.Fill(entry)
}

func LeakCDN(e *cdn.Edge, u *session.User) {
	entry := entryFor("/profile", frame(u.Name))
	fill(e, entry) // want "reaches CDN edge fill"
}

// --- direct (one-hop) sink calls are caught too ---

func LeakTrace(tr *obs.Trace, u *session.User) {
	tr.SetSource(u.ID) // want "reaches trace attribute"
}

// --- sanitizers cut the flow ---

func CleanPseudonymized(l *wal.Log, u *session.User) {
	journal(l, frame(gdpr.Pseudonymize(u.ID)))
}

func CleanStripped(u *session.User) {
	fields := map[string]string{"email": u.Email, "path": "/p"}
	clean, _ := gdpr.StripPII(fields)
	journalMap(clean)
}

func journalMap(m map[string]string) {
	for k := range m {
		obs.L("field", k)
	}
}

// --- struct-field sensitivity ---

type record struct {
	Email string // PII-classified slot
	Path  string // anonymous per the gdpr classification
}

func LeakField(l *wal.Log, u *session.User) {
	var r record
	r.Email = u.Email
	journal(l, frame(r.Email)) // want "reaches WAL append"
}

func CleanField(l *wal.Log, u *session.User) {
	var r record
	r.Email = u.Email
	// Only the untracked, anonymous field is journaled: clean.
	journal(l, frame(r.Path))
}

// --- anonymous fields of identity types do not leak the holder ---

func CleanRegionLabel(u *session.User) obs.Label {
	return relayLabel(string(u.Region))
}

// --- suppression: the directive carries an auditable reason ---

func SuppressedLeak(l *wal.Log, u *session.User) {
	//lint:ignore piiflow fixture demonstrates an audited exemption
	journal(l, frame(u.Email))
}
