package ttl

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
)

func newTestEstimator() (*Estimator, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	e := NewEstimator(Config{
		MinTTL:             10 * time.Second,
		MaxTTL:             time.Hour,
		InvalidationBudget: 0.2,
		Clock:              clk,
	})
	return e, clk
}

func TestUnknownResourceGetsMaxTTL(t *testing.T) {
	e, _ := newTestEstimator()
	if ttl := e.TTL("never-seen"); ttl != time.Hour {
		t.Fatalf("TTL = %v, want MaxTTL", ttl)
	}
}

func TestReadOnlyResourceGetsMaxTTL(t *testing.T) {
	e, clk := newTestEstimator()
	for i := 0; i < 10; i++ {
		e.RecordRead("static-asset")
		clk.Advance(time.Second)
	}
	if ttl := e.TTL("static-asset"); ttl != time.Hour {
		t.Fatalf("TTL = %v, want MaxTTL for write-free resource", ttl)
	}
}

func TestSingleWriteStillMaxTTL(t *testing.T) {
	e, _ := newTestEstimator()
	e.RecordWrite("r")
	// One write gives no inter-write gap — no rate estimate yet.
	if ttl := e.TTL("r"); ttl != time.Hour {
		t.Fatalf("TTL = %v, want MaxTTL before a write gap exists", ttl)
	}
}

func TestHotWrittenResourceGetsShortTTL(t *testing.T) {
	e, clk := newTestEstimator()
	// Writes every 5 s: λw = 0.2/s; t = -ln(0.8)/0.2 ≈ 1.1 s → floored to MinTTL.
	for i := 0; i < 20; i++ {
		e.RecordWrite("hot")
		clk.Advance(5 * time.Second)
	}
	if ttl := e.TTL("hot"); ttl != 10*time.Second {
		t.Fatalf("TTL = %v, want MinTTL floor", ttl)
	}
}

func TestModerateWriteRateTTLMatchesModel(t *testing.T) {
	e, clk := newTestEstimator()
	// Writes every 1000 s, no reads: t = -ln(0.8)·1000 ≈ 223 s.
	for i := 0; i < 20; i++ {
		e.RecordWrite("moderate")
		clk.Advance(1000 * time.Second)
	}
	got := e.TTL("moderate").Seconds()
	want := -math.Log(0.8) * 1000
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("TTL = %.1fs, want ≈%.1fs", got, want)
	}
}

func TestReadHeavyResourceGetsLongerTTL(t *testing.T) {
	e, clk := newTestEstimator()
	e2, clk2 := newTestEstimator()
	// Same write cadence on both; e2's resource also sees dense reads.
	for i := 0; i < 200; i++ {
		if i%100 == 0 {
			e.RecordWrite("r")
			e2.RecordWrite("r")
		}
		e2.RecordRead("r")
		clk.Advance(time.Second)
		clk2.Advance(time.Second)
	}
	plain := e.TTL("r")
	readHeavy := e2.TTL("r")
	if readHeavy <= plain {
		t.Fatalf("read-heavy TTL %v not longer than write-only %v", readHeavy, plain)
	}
}

func TestTTLBudgetWidensCappedAt08(t *testing.T) {
	e, clk := newTestEstimator()
	// Extreme read/write ratio: the budget must cap, so the TTL stays
	// below -ln(1-0.8)/λw.
	for i := 0; i < 3; i++ {
		e.RecordWrite("r")
		for j := 0; j < 10000; j++ {
			e.RecordRead("r")
			clk.Advance(10 * time.Millisecond)
		}
	}
	lambdaW := e.WriteRate("r")
	maxTTL := -math.Log(1-0.8) / lambdaW
	if got := e.TTL("r").Seconds(); got > maxTTL*1.01 {
		t.Fatalf("TTL %.1fs exceeds capped-budget bound %.1fs", got, maxTTL)
	}
}

func TestRates(t *testing.T) {
	e, clk := newTestEstimator()
	if e.WriteRate("r") != 0 || e.ReadRate("r") != 0 {
		t.Fatal("rates nonzero before activity")
	}
	for i := 0; i < 10; i++ {
		e.RecordWrite("r")
		e.RecordRead("r")
		clk.Advance(2 * time.Second)
	}
	if w := e.WriteRate("r"); math.Abs(w-0.5) > 0.05 {
		t.Fatalf("write rate = %v, want ~0.5", w)
	}
	if r := e.ReadRate("r"); math.Abs(r-0.5) > 0.05 {
		t.Fatalf("read rate = %v, want ~0.5", r)
	}
}

func TestEWMAAdaptsToRateChange(t *testing.T) {
	e, clk := newTestEstimator()
	// Slow writes first...
	for i := 0; i < 10; i++ {
		e.RecordWrite("r")
		clk.Advance(100 * time.Second)
	}
	slow := e.TTL("r")
	// ...then a burst of fast writes.
	for i := 0; i < 30; i++ {
		e.RecordWrite("r")
		clk.Advance(time.Second)
	}
	fast := e.TTL("r")
	if fast >= slow {
		t.Fatalf("TTL did not shrink after write burst: %v -> %v", slow, fast)
	}
}

func TestSnapshotAndTracked(t *testing.T) {
	e, clk := newTestEstimator()
	e.RecordRead("a")
	e.RecordWrite("a")
	clk.Advance(time.Second)
	e.RecordWrite("a")
	reads, writes, ttl := e.Snapshot("a")
	if reads != 1 || writes != 2 || ttl <= 0 {
		t.Fatalf("snapshot = %d/%d/%v", reads, writes, ttl)
	}
	if e.Tracked() != 1 {
		t.Fatalf("tracked = %d", e.Tracked())
	}
	e.Forget("a")
	if e.Tracked() != 0 {
		t.Fatal("Forget did not remove")
	}
}

func TestConfigDefaults(t *testing.T) {
	e := NewEstimator(Config{})
	if e.cfg.MinTTL != 10*time.Second || e.cfg.MaxTTL != 24*time.Hour {
		t.Fatalf("defaults = %v/%v", e.cfg.MinTTL, e.cfg.MaxTTL)
	}
	if e.cfg.InvalidationBudget != 0.2 || e.cfg.EWMAAlpha != 0.25 {
		t.Fatalf("defaults = %v/%v", e.cfg.InvalidationBudget, e.cfg.EWMAAlpha)
	}
	// Out-of-range values also fall back.
	e2 := NewEstimator(Config{InvalidationBudget: 1.5, EWMAAlpha: -1})
	if e2.cfg.InvalidationBudget != 0.2 || e2.cfg.EWMAAlpha != 0.25 {
		t.Fatal("out-of-range config not defaulted")
	}
}

func TestStaticSource(t *testing.T) {
	s := Static(42 * time.Second)
	if s.TTL("anything") != 42*time.Second {
		t.Fatal("static TTL wrong")
	}
}

func TestEstimatorConcurrent(t *testing.T) {
	e := NewEstimator(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("r%d", w%4)
			for i := 0; i < 500; i++ {
				e.RecordRead(id)
				e.RecordWrite(id)
				e.TTL(id)
			}
		}(w)
	}
	wg.Wait()
	if e.Tracked() != 4 {
		t.Fatalf("tracked = %d", e.Tracked())
	}
}
