// Command speedkit-bent is the continuous benchmark harness: it runs the
// named suites declared in benchsuites/*.suite, emits machine-readable
// JSON, and compares results against the committed BENCH_<suite>.json
// baselines, exiting non-zero when any suite regresses beyond its noise
// band.
//
// Usage:
//
//	go run ./cmd/speedkit-bent -list
//	go run ./cmd/speedkit-bent                          # run + compare all
//	go run ./cmd/speedkit-bent -suites wal-append       # one suite
//	go run ./cmd/speedkit-bent -benchtime 1x -compare=false   # CI smoke
//	go run ./cmd/speedkit-bent -suites wal-append -update     # reseed baseline
//	go run ./cmd/speedkit-bent -out bent-report.json          # CI artifact
//
// Exit codes: 0 ok, 1 regression(s) outside the noise band, 2 usage or
// execution error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"speedkit/internal/bent"
)

func main() {
	dir := flag.String("dir", "benchsuites", "suite registry directory")
	suitesFlag := flag.String("suites", "", "comma-separated suite names (default all)")
	benchtime := flag.String("benchtime", "", "override every suite's -benchtime (e.g. 1x for smoke)")
	compare := flag.Bool("compare", true, "compare against committed baselines and gate on regressions")
	noiseScale := flag.Float64("noise-scale", 1, "multiply every suite's ns/op noise band (alloc bands never scale)")
	update := flag.Bool("update", false, "rewrite each suite's baseline from this run instead of comparing")
	out := flag.String("out", "", "write the combined JSON report to this file")
	list := flag.Bool("list", false, "list registered suites and exit")
	verbose := flag.Bool("v", false, "mirror raw benchmark output to stderr")
	flag.Parse()

	suites, err := bent.LoadSuites(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	if *list {
		for _, s := range suites {
			fmt.Printf("%-24s %-20s bench %s (baseline %s, noise ±%.0f%%)\n",
				s.Name, s.Package, s.Bench, s.Baseline, s.Noise*100)
		}
		return
	}
	if *suitesFlag != "" {
		suites, err = selectSuites(suites, strings.Split(*suitesFlag, ","))
		if err != nil {
			fatalf("%v", err)
		}
	}

	runner := &bent.Runner{Benchtime: *benchtime, Stderr: os.Stderr, Verbose: *verbose}
	type suiteRun struct {
		Report      bent.Report       `json:"report"`
		Regressions []bent.Regression `json:"regressions,omitempty"`
	}
	combined := struct {
		Suites []suiteRun `json:"suites"`
	}{}
	failed := false

	for _, s := range suites {
		fmt.Fprintf(os.Stderr, "bent: running suite %s (%s)\n", s.Name, s.Package)
		rep, err := runner.Run(s)
		if err != nil {
			fatalf("%v", err)
		}
		run := suiteRun{Report: rep}

		switch {
		case *update:
			if s.Baseline == "" {
				fatalf("suite %s declares no baseline to update", s.Name)
			}
			if err := bent.WriteReport(s.Baseline, rep); err != nil {
				fatalf("update %s: %v", s.Baseline, err)
			}
			fmt.Fprintf(os.Stderr, "bent: wrote %s (%d benchmarks)\n", s.Baseline, len(rep.Benchmarks))
		case *compare && s.Baseline != "":
			base, err := bent.ReadReport(s.Baseline)
			if err != nil {
				fatalf("suite %s: baseline: %v", s.Name, err)
			}
			run.Regressions = bent.Compare(s, rep, base, *noiseScale)
			for _, r := range run.Regressions {
				fmt.Fprintf(os.Stderr, "bent: REGRESSION %s\n", r)
				failed = true
			}
			if len(run.Regressions) == 0 {
				fmt.Fprintf(os.Stderr, "bent: suite %s within noise band (%d benchmarks vs %s)\n",
					s.Name, len(rep.Benchmarks), s.Baseline)
			}
		}
		combined.Suites = append(combined.Suites, run)
	}

	if *out != "" {
		if err := writeJSON(*out, combined); err != nil {
			fatalf("write %s: %v", *out, err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func selectSuites(all []bent.Suite, names []string) ([]bent.Suite, error) {
	byName := make(map[string]bent.Suite, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	var out []bent.Suite
	for _, n := range names {
		n = strings.TrimSpace(n)
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown suite %q (try -list)", n)
		}
		out = append(out, s)
	}
	return out, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "speedkit-bent: "+format+"\n", args...)
	os.Exit(2)
}
