// Package slog is the repo's sanctioned structured logger: leveled,
// key/value, logfmt-shaped lines, every record stamped with the active
// trace/span identity so a log line can be joined to the distributed
// trace that produced it.
//
// It is deliberately a leaf below the GDPR boundary: it imports only
// the stdlib, the clock discipline, and tracectx — never internal/obs,
// internal/gdpr, or internal/session — so the shared-infrastructure
// packages (cdn, cache, wal, durable, invalidb) that the obslabels
// analyzer fences off from the telemetry registry may still log. The
// fence against PII reaching log values is enforced twice: statically
// by the piiflow and obslabels analyzers (field names classified PII
// cannot flow into Event value positions, fail-closed), and at runtime
// by a process-wide denied-key list that redacts values under keys the
// GDPR classification marks PII (internal/obs installs the list from
// gdpr.PIIFields at init, so any binary with telemetry has it).
//
// The API is allocation-disciplined in the zerolog style: a level
// method returns a pooled *Event on the enabled path and nil on the
// disabled one, and every Event method is a nil-safe no-op, so a
// disabled logger (or a nil *Logger) costs one branch and zero
// allocations per call site — the same bar the tracer holds, pinned by
// the same AllocsPerRun gates.
package slog

import (
	"context"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/tracectx"
)

// Level orders log severities. The zero value is Info: a zero-config
// logger does the unsurprising thing.
type Level int32

const (
	// LevelDebug is per-operation detail, off in production.
	LevelDebug Level = -1
	// LevelInfo is the default: state changes worth a line.
	LevelInfo Level = 0
	// LevelWarn is degraded-but-serving: retries, breaker opens.
	LevelWarn Level = 1
	// LevelError is failed work.
	LevelError Level = 2
	// levelOff sits above every real level; a nil logger behaves as if
	// set to it.
	levelOff Level = 3
)

// String returns the lowercase level name used on the wire.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a level name to its Level, defaulting to Info for
// anything unrecognized (fail-open to *more* logging, never less).
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// deniedKeys is the process-wide runtime PII fence: values logged under
// these keys render as the redaction marker instead. It is written once
// at init time (internal/obs installs gdpr.PIIFields) and read on every
// enabled record; the atomic.Pointer keeps the read wait-free.
var deniedKeys atomic.Pointer[map[string]struct{}]

// redacted is what a value under a denied key becomes. The key still
// appears — "something was here and was withheld" is signal.
const redacted = "[REDACTED]"

// DenyKeys merges the given field names into the process-wide denied-key
// list (case-sensitively; callers pass the already-lowercased GDPR
// classification). Values later logged under any of these keys are
// replaced with "[REDACTED]". The list only grows — there is no API to
// un-deny a key, deliberately.
func DenyKeys(keys ...string) {
	for {
		old := deniedKeys.Load()
		next := make(map[string]struct{}, len(keys))
		if old != nil {
			for k := range *old {
				next[k] = struct{}{}
			}
		}
		for _, k := range keys {
			next[k] = struct{}{}
		}
		if deniedKeys.CompareAndSwap(old, &next) {
			return
		}
	}
}

func keyDenied(k string) bool {
	m := deniedKeys.Load()
	if m == nil {
		return false
	}
	_, denied := (*m)[k]
	return denied
}

// Logger writes logfmt-shaped records to one writer, serialized by a
// mutex (records are small; contention is not a design concern at this
// tier). A nil *Logger is fully disabled: every method is a nil-safe
// no-op, so components take a *Logger without caring whether logging is
// deployed — the same contract as *obs.Tracer.
type Logger struct {
	clk   clock.Clock
	level atomic.Int32
	name  string

	mu sync.Mutex
	w  io.Writer

	pool *sync.Pool
}

// New creates a logger writing to w (required), timestamping from clk
// (default the coarse system clock — log timestamps do not deserve a
// VDSO-bypassing clock read), at the given minimum level.
func New(w io.Writer, clk clock.Clock, level Level) *Logger {
	if clk == nil {
		clk = clock.CoarseSystem
	}
	l := &Logger{clk: clk, w: w}
	l.level.Store(int32(level))
	l.pool = &sync.Pool{New: func() any {
		return &Event{buf: make([]byte, 0, 256)}
	}}
	return l
}

// Named returns a logger that stamps component=name on every record,
// sharing the writer, level, and pool of its parent. Name is a static
// component identifier ("wal", "invalidb"), never request state.
func (l *Logger) Named(name string) *Logger {
	if l == nil {
		return nil
	}
	child := &Logger{clk: l.clk, name: name, w: l.w, pool: l.pool}
	child.level.Store(l.level.Load())
	return child
}

// SetLevel changes the minimum level at runtime. Safe while logging.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Enabled reports whether a record at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// Debug starts a debug record; nil when debug is filtered.
func (l *Logger) Debug(ctx context.Context) *Event { return l.event(ctx, LevelDebug) }

// Info starts an info record; nil when filtered.
func (l *Logger) Info(ctx context.Context) *Event { return l.event(ctx, LevelInfo) }

// Warn starts a warn record; nil when filtered.
func (l *Logger) Warn(ctx context.Context) *Event { return l.event(ctx, LevelWarn) }

// Error starts an error record; nil when filtered.
func (l *Logger) Error(ctx context.Context) *Event { return l.event(ctx, LevelError) }

// event is the gate: the disabled outcome is two loads and a nil
// return, with the ctx untouched — the alloc tests pin it at zero.
func (l *Logger) event(ctx context.Context, level Level) *Event {
	if !l.Enabled(level) {
		return nil
	}
	e := l.pool.Get().(*Event)
	e.l = l
	e.buf = e.buf[:0]
	e.buf = append(e.buf, "ts="...)
	e.buf = l.clk.Now().UTC().AppendFormat(e.buf, time.RFC3339Nano)
	e.buf = append(e.buf, " level="...)
	e.buf = append(e.buf, level.String()...)
	if l.name != "" {
		e.buf = append(e.buf, " component="...)
		e.buf = appendValue(e.buf, l.name)
	}
	// Stamp the active trace/span identity, if any: this is the join key
	// between a log line and the distributed trace that produced it.
	if ctx != nil {
		if sc, ok := tracectx.SpanFromContext(ctx); ok {
			e.buf = append(e.buf, " trace="...)
			e.buf = append(e.buf, sc.TraceID.String()...)
			e.buf = append(e.buf, " span="...)
			e.buf = append(e.buf, sc.SpanID.String()...)
		}
	}
	return e
}

// Event is one in-flight record. All methods are nil-safe no-ops so the
// disabled path never branches at the call site beyond the initial nil.
// An Event is finished (and recycled) by Msg; using it afterwards is a
// bug, as with any pooled object.
type Event struct {
	l   *Logger
	buf []byte
}

// Str appends a string field. Values under PII-denied keys are
// redacted; the static analyzers reject such call sites outright, so
// this firing in production means a fence was bypassed — the value
// still never reaches the sink.
func (e *Event) Str(key, val string) *Event {
	if e == nil {
		return nil
	}
	if keyDenied(key) {
		val = redacted
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = appendValue(e.buf, val)
	return e
}

// Int appends an integer field.
func (e *Event) Int(key string, val int64) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = strconv.AppendInt(e.buf, val, 10)
	return e
}

// Uint appends an unsigned integer field (generations, LSNs, counters).
func (e *Event) Uint(key string, val uint64) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = strconv.AppendUint(e.buf, val, 10)
	return e
}

// Bool appends a boolean field.
func (e *Event) Bool(key string, val bool) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = strconv.AppendBool(e.buf, val)
	return e
}

// Dur appends a duration field in Go's duration syntax.
func (e *Event) Dur(key string, val time.Duration) *Event {
	if e == nil {
		return nil
	}
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, key...)
	e.buf = append(e.buf, '=')
	e.buf = append(e.buf, val.String()...)
	return e
}

// Err appends err under the "err" key; a nil error appends nothing.
func (e *Event) Err(err error) *Event {
	if e == nil || err == nil {
		return e
	}
	return e.Str("err", err.Error())
}

// Msg finishes the record with its human-readable message and writes
// it. The event is recycled; do not use it again.
func (e *Event) Msg(msg string) {
	if e == nil {
		return
	}
	e.buf = append(e.buf, " msg="...)
	e.buf = appendValue(e.buf, msg)
	e.buf = append(e.buf, '\n')
	l := e.l
	l.mu.Lock()
	l.w.Write(e.buf) //nolint:errcheck // a log sink that fails has nowhere to report to
	l.mu.Unlock()
	e.l = nil
	l.pool.Put(e)
}

// appendValue writes a logfmt value: bare when it is a simple token,
// quoted (Go syntax, deterministic) when it contains spaces, quotes,
// '=', or control bytes.
func appendValue(buf []byte, s string) []byte {
	if needsQuoting(s) {
		return strconv.AppendQuote(buf, s)
	}
	return append(buf, s...)
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '=' || c == '"' || c == 0x7f {
			return true
		}
	}
	return false
}
