// Command speedkit-server runs the Speed Kit service side over real HTTP:
// the origin, CDN-path page delivery (with ETag-based conditional
// revalidation), the sketch endpoint clients poll every Δ, and the
// first-party blocks API. It is the deployable surface of the
// reproduction — a service worker (or the curl commands below) plays the
// client role.
//
//	speedkit-server -addr :8080 -products 1000
//
//	curl localhost:8080/page?path=/product/p00042      # anonymous shell
//	curl localhost:8080/page?path=/product/p00042 -H 'If-None-Match: "v1"'
//	curl localhost:8080/sketch -o sketch.bin           # Δ-refreshed sketch
//	curl 'localhost:8080/blocks?names=cart,greeting&user=u000001'
//	curl -X POST 'localhost:8080/admin/write?product=p00042&price=9.99'
//	curl localhost:8080/stats
//
// Observability surface:
//
//	curl localhost:8080/healthz                        # liveness + deployment shape + WAL stats (JSON)
//	curl localhost:8080/metrics                        # Prometheus-style text exposition
//	curl 'localhost:8080/debug/traces?n=10'            # recent sampled request traces (JSON)
//	curl localhost:8080/debug/traces/<32-hex-id>       # one stitched trace by causal identity
//	curl localhost:8080/debug/slo                      # Δ-budget SLO: histograms, burn rates, exemplars
//	go tool pprof localhost:8080/debug/pprof/profile   # CPU profile (pprof is mounted)
//
// Requests carrying a W3C traceparent header join the caller's trace, so
// a device running the client proxy stitches its page loads into
// cross-process traces queryable at /debug/traces/<id>.
package main

import (
	"context"
	"flag"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"speedkit"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/durable"
	"speedkit/internal/httpapi"
	"speedkit/internal/obs"
	"speedkit/internal/slog"
	"speedkit/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	products := flag.Int("products", 1000, "catalog size")
	delta := flag.Duration("delta", 60*time.Second, "staleness bound Δ")
	warm := flag.Bool("warm", false, "pre-fill every edge with the home and category pages")
	traceSample := flag.Int("trace-sample", 1, "trace 1 in N requests (0 disables tracing)")
	traceRing := flag.Int("trace-ring", 256, "how many recent traces /debug/traces retains")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	dataDir := flag.String("data-dir", "", "durability directory (empty = memory-only); coherence state is journaled there and recovered at startup")
	notifyEdge := flag.String("notify-edge", "", "edge base URL to POST purges to (e.g. http://localhost:8081); invalidations then evict the edge cache")
	flag.Parse()

	// The sanctioned process log: leveled logfmt on stderr, stamped with
	// the active trace/span when a request context carries one, with the
	// GDPR-classified field names denied at the sink (installed by the
	// obs package's init). Components below the GDPR boundary never log.
	logger := slog.New(os.Stderr, clock.System, slog.ParseLevel(*logLevel))
	ctx := context.Background()
	fatal := func(e *slog.Event, err error) {
		e.Err(err).Msg("fatal")
		os.Exit(1)
	}

	var store *durable.Store
	if *dataDir != "" {
		store = durable.New(durable.Config{
			Dir:        *dataDir,
			Clock:      clock.System,
			ColdWindow: *delta,
			// A lost cache-fill report can hide a stale copy for up to the
			// TTL it was issued with; the adaptive estimator caps at 24h.
			BlindHorizon: 24 * time.Hour,
		})
	}

	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock: clock.System, // real time for a real server
			Delta: *delta,
			// Identity seed 2: devices root their traces from seed 1, so
			// locally rooted server traces never collide with theirs.
			Tracer:  obs.NewTracerSeeded(clock.System, *traceSample, *traceRing, 2),
			SLO:     obs.NewDeltaSLO(obs.SLOConfig{Clock: clock.System}),
			Durable: store,
		},
		Products: *products,
	})
	if err != nil {
		fatal(logger.Error(ctx), err)
	}
	defer svc.Close()

	if store != nil {
		info, rerr := svc.Recovery()
		if rerr != nil {
			fatal(logger.Error(ctx).Str("component", "durable"), rerr)
		}
		logger.Info(ctx).
			Str("dir", *dataDir).
			Str("mode", info.Mode.String()).
			Uint("replayed", info.Replayed).
			Bool("saturated", info.Saturated).
			Uint("watermark", info.Watermark).
			Msg("durability recovered")
	}

	if *warm {
		paths := []string{"/"}
		for _, cat := range workload.Categories {
			paths = append(paths, workload.CategoryPath(cat))
		}
		warmed, skipped, err := svc.Warm(paths)
		if err != nil {
			fatal(logger.Error(ctx), err)
		}
		logger.Info(ctx).Int("warmed", int64(warmed)).Int("skipped", int64(len(skipped))).Msg("edges warmed")
	}

	if *notifyEdge != "" {
		base := strings.TrimRight(*notifyEdge, "/")
		hc := &http.Client{Timeout: 5 * time.Second}
		// Purge notifications ride the invalidation pipeline: every
		// invalidb match that purges the simulated CDN also evicts the
		// real edge. Best-effort by design — a missed purge leaves the
		// edge entry to the sketch, which flags the path on the next
		// generation and forces revalidation within Δ.
		cancel := svc.OnPurge(func(path string) {
			go func() {
				resp, err := hc.Post(base+"/v1/purge?path="+url.QueryEscape(path), "", nil)
				if err != nil {
					logger.Warn(ctx).Err(err).Str("path", path).Msg("edge purge failed")
					return
				}
				resp.Body.Close()
			}()
		})
		defer cancel()
		logger.Info(ctx).Str("edge", base).Msg("edge purge notifications enabled")
	}

	api := httpapi.New(svc, speedkit.NewUsers(1, 100))
	logger.Info(ctx).
		Str("addr", *addr).
		Int("products", int64(*products)).
		Dur("delta", *delta).
		Msg("speedkit-server listening")

	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// SIGTERM/SIGINT: stop serving, then seal the durability log with the
	// clean-shutdown marker so the next start recovers warm instead of
	// engaging the conservative cold start.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fatal(logger.Error(ctx), err)
	case sig := <-sigCh:
		logger.Info(ctx).Str("signal", sig.String()).Msg("draining")
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_ = srv.Shutdown(sctx)
		cancel()
		if store != nil {
			if err := store.Close(); err != nil {
				fatal(logger.Error(ctx).Str("component", "durable"), err)
			}
			logger.Info(ctx).Msg("durability log sealed clean")
		}
	}
}
