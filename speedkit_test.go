package speedkit_test

import (
	"context"
	"strings"
	"testing"

	"speedkit"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	svc, err := speedkit.New(speedkit.WithProducts(50))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	users := speedkit.NewUsers(1, 3)
	device := svc.NewDevice(users[0], speedkit.RegionEU)

	page, err := device.Load(context.Background(), "/product/p00007")
	if err != nil {
		t.Fatal(err)
	}
	if page.Source != speedkit.SourceOrigin {
		t.Fatalf("cold load source = %v", page.Source)
	}
	page, err = device.Load(context.Background(), "/product/p00007")
	if err != nil {
		t.Fatal(err)
	}
	if page.Source != speedkit.SourceDevice {
		t.Fatalf("warm load source = %v", page.Source)
	}
	if len(page.Body) == 0 || page.Latency <= 0 {
		t.Fatalf("page = %+v", page)
	}
}

func TestPublicAPICustomDeployment(t *testing.T) {
	docs := speedkit.NewDocumentStore()
	if err := docs.Insert("articles", "a1", map[string]any{
		"title": "Hello", "section": "news",
	}); err != nil {
		t.Fatal(err)
	}

	org := speedkit.NewOrigin(docs)
	defer org.Close()
	org.RegisterProducts("/article/", "articles")
	q, err := speedkit.ParseQuery(`articles WHERE section = "news"`)
	if err != nil {
		t.Fatal(err)
	}
	org.RegisterQueryPage("/news", "News", q)

	svc := speedkit.NewService(speedkit.ServiceConfig{Seed: 3}, docs, org)
	defer svc.Close()

	device := svc.NewDevice(nil, speedkit.RegionUS)
	page, err := device.Load(context.Background(), "/news")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page.Body), "Hello") {
		t.Fatalf("custom listing body: %s", page.Body)
	}

	// The custom query page participates in invalidation.
	if err := docs.Patch("articles", "a1", map[string]any{"title": "Updated"}); err != nil {
		t.Fatal(err)
	}
	if !svc.SketchServer().Contains("/news") {
		t.Fatal("custom listing not invalidation-tracked")
	}
}

func TestPublicAPIUsersDistribution(t *testing.T) {
	users := speedkit.NewUsers(2, 30)
	if len(users) != 30 {
		t.Fatalf("users = %d", len(users))
	}
	regions := map[speedkit.Region]bool{}
	for _, u := range users {
		regions[u.Region] = true
	}
	if len(regions) != 3 {
		t.Fatalf("regions covered = %d", len(regions))
	}
}
