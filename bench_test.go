package speedkit_test

// One testing.B benchmark per table/figure of the reconstructed
// evaluation (DESIGN.md, per-experiment index). Each benchmark runs the
// corresponding experiment from internal/bench, prints its table once,
// and reports the headline numbers as custom benchmark metrics so that
// `go test -bench=.` output doubles as the experiment record.
//
// Benchmarks run at a reduced scale (benchScale) to keep the full suite
// in the minutes range; `cmd/speedkit-bench -scale 1` regenerates every
// artifact at full size.

import (
	"fmt"
	"sync"
	"testing"

	"speedkit/internal/bench"
)

const benchScale = bench.Scale(0.2)

// printOnce prints each experiment table a single time even when the
// benchmark framework re-runs the function with growing b.N.
var printed sync.Map

func printOnce(key, table string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Print(table)
	}
}

func BenchmarkTable1TierHitRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable1(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t1", res.String())
		b.ReportMetric(res.HitRatio*100, "hit%")
		b.ReportMetric(res.Rows[0].P50ms, "device_p50_ms")
	}
}

func BenchmarkTable2Staleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable2(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t2", res.String())
		b.ReportMetric(res.Rows[0].StaleRate*100, "baseline_stale%")
		b.ReportMetric(res.Rows[1].StaleRate*100, "sketch1s_stale%")
	}
}

func BenchmarkTable3GDPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable3(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("t3", res.String())
		b.ReportMetric(float64(res.Rows[0].CDNPIIFields), "legacy_pii_fields")
		b.ReportMetric(float64(res.Rows[1].CDNPIIFields), "speedkit_pii_fields")
	}
}

func BenchmarkFigure4PageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure4(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("f4", res.String())
		// Headline: APAC p50 direct vs speedkit.
		var direct, sk float64
		for _, p := range res.Points {
			if string(p.Region) == "apac" {
				switch p.System {
				case bench.ModeDirect:
					direct = p.P50ms
				case bench.ModeSpeedKit:
					sk = p.P50ms
				}
			}
		}
		if sk > 0 {
			b.ReportMetric(direct/sk, "apac_speedup_x")
		}
	}
}

func BenchmarkFigure5DeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure5(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("f5", res.String())
		b.ReportMetric(res.Points[0].HitRatio*100, "hit%_delta1s")
		b.ReportMetric(res.Points[len(res.Points)-1].HitRatio*100, "hit%_delta120s")
	}
}

func BenchmarkFigure6SketchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.RunFigure6(benchScale)
		printOnce("f6", res.String())
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(last.SketchBytes), "bytes_at_max")
		b.ReportMetric(last.MeasuredFPR*100, "fpr%")
	}
}

func BenchmarkFigure7TTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure7(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("f7", res.String())
		for _, p := range res.Points {
			if p.Policy == "adaptive" {
				b.ReportMetric(p.HitRatio*100, "adaptive_hit%")
			}
		}
	}
}

func BenchmarkFigure8InvaliDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.RunFigure8(bench.Scale(0.1))
		printOnce("f8", res.String())
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.EventsPerS, "events/s_at_max_queries")
	}
}

func BenchmarkFigure9FieldAB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure9(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("f9", res.String())
		b.ReportMetric(res.CheckoutUplift*100, "checkout_uplift%")
	}
}

func BenchmarkAblationDynamicBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationA1(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("a1", res.String())
		b.ReportMetric(res.Rows[0].P50ms, "device_blocks_p50_ms")
		b.ReportMetric(res.Rows[2].P50ms, "legacy_p50_ms")
	}
}

func BenchmarkAblationQueryIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.RunAblationA3(bench.Scale(0.2))
		printOnce("a3", res.String())
		b.ReportMetric(res.Rows[0].NsPerEval, "scan_ns/eval")
		b.ReportMetric(res.Rows[1].NsPerEval, "indexed_ns/eval")
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationA4(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("a4", res.String())
		b.ReportMetric(res.Rows[0].DeviceShare*100, "device%_k0")
		b.ReportMetric(res.Rows[1].DeviceShare*100, "device%_k3")
	}
}

func BenchmarkAblationBloomMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.RunAblationA2(bench.Scale(0.2))
		printOnce("a2", res.String())
		b.ReportMetric(res.Rows[0].NsPerOp, "counting_ns/op")
		b.ReportMetric(res.Rows[1].NsPerOp, "rebuild_ns/op")
	}
}
