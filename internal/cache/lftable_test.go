package cache

import (
	"fmt"
	"sync"
	"testing"
)

func lfEntry(key string, version uint64) *Entry {
	return &Entry{Key: key, Version: version}
}

func TestLFTableStoreLoadDelete(t *testing.T) {
	tb := newLFTable()
	if tb.load("/a") != nil {
		t.Fatal("empty table returned an entry")
	}
	tb.store("/a", lfEntry("/a", 1))
	tb.store("/b", lfEntry("/b", 1))
	if e := tb.load("/a"); e == nil || e.Version != 1 {
		t.Fatalf("load(/a) = %+v", e)
	}
	// Replacement is visible and does not grow the live count.
	tb.store("/a", lfEntry("/a", 2))
	if e := tb.load("/a"); e == nil || e.Version != 2 {
		t.Fatalf("replace not visible: %+v", e)
	}
	if tb.live != 2 {
		t.Fatalf("live = %d, want 2", tb.live)
	}
	if !tb.delete("/a") {
		t.Fatal("delete existing returned false")
	}
	if tb.delete("/a") {
		t.Fatal("delete missing returned true")
	}
	if tb.load("/a") != nil {
		t.Fatal("deleted key still loads")
	}
	if e := tb.load("/b"); e == nil {
		t.Fatal("unrelated key lost by delete")
	}
}

func TestLFTableTombstoneReuse(t *testing.T) {
	tb := newLFTable()
	tb.store("/a", lfEntry("/a", 1))
	used := tb.used
	tb.delete("/a")
	// Re-inserting after a delete must reuse the tombstone, not consume a
	// fresh slot (otherwise churn would force rebuilds with a static set).
	tb.store("/a", lfEntry("/a", 2))
	if tb.used != used {
		t.Fatalf("used = %d after reinsert, want %d (tombstone reuse)", tb.used, used)
	}
	if e := tb.load("/a"); e == nil || e.Version != 2 {
		t.Fatalf("reinserted entry wrong: %+v", e)
	}
}

func TestLFTableGrowthKeepsAllEntries(t *testing.T) {
	tb := newLFTable()
	const n = 10 * lfMinSlots
	for i := 0; i < n; i++ {
		tb.store(fmt.Sprintf("/k/%d", i), lfEntry(fmt.Sprintf("/k/%d", i), uint64(i)))
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("/k/%d", i)
		e := tb.load(key)
		if e == nil || e.Version != uint64(i) {
			t.Fatalf("lost %s across rebuilds: %+v", key, e)
		}
	}
	idx := tb.idx.Load()
	// The published index must keep nil slots so probes terminate.
	if tb.used*4 >= len(idx.slots)*3 {
		t.Fatalf("load factor too high after growth: used=%d slots=%d", tb.used, len(idx.slots))
	}
}

func TestLFTableRebuildDropsTombstones(t *testing.T) {
	tb := newLFTable()
	// Churn the same working set so tombstones accumulate and trigger
	// rebuilds; the live set must survive every one of them.
	for round := 0; round < 20; round++ {
		for i := 0; i < lfMinSlots; i++ {
			key := fmt.Sprintf("/churn/%d", i)
			tb.store(key, lfEntry(key, uint64(round)))
			if round%2 == 1 && i%2 == 0 {
				tb.delete(key)
			}
		}
	}
	if tb.used < tb.live {
		t.Fatalf("used=%d < live=%d", tb.used, tb.live)
	}
	for i := 1; i < lfMinSlots; i += 2 {
		key := fmt.Sprintf("/churn/%d", i)
		if e := tb.load(key); e == nil || e.Version != 19 {
			t.Fatalf("surviving key %s wrong after churn: %+v", key, e)
		}
	}
}

// TestLFTableConcurrent hammers lock-free loads against stores, deletes,
// and rebuilds. Run under -race this checks the published-index protocol:
// readers must only ever see nil, a tombstone, or a fully formed entry.
func TestLFTableConcurrent(t *testing.T) {
	tb := newLFTable()
	const keys = 256
	keyOf := func(i int) string { return fmt.Sprintf("/c/%d", i) }
	for i := 0; i < keys; i++ {
		tb.store(keyOf(i), lfEntry(keyOf(i), 1))
	}
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := keyOf(i % keys)
				if e := tb.load(key); e != nil && e.Key != key {
					t.Errorf("load(%s) returned entry for %s", key, e.Key)
					return
				}
				i++
			}
		}(r * 31)
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				key := keyOf((seed + i) % keys)
				if i%5 == 0 {
					tb.delete(key)
				} else {
					tb.store(key, lfEntry(key, uint64(i)))
				}
			}
		}(w * 128)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
