// Package origin implements the first-party web service that Speed Kit
// accelerates: a storefront-style server that renders pages from the
// document store. Pages come in three flavours — static assets, product
// detail pages, and query-backed listing pages — and may embed dynamic
// blocks: named placeholders for personalized fragments (greeting, cart,
// recommendations) that are NEVER rendered into the cacheable page body.
// The client proxy fetches or computes those fragments on-device, which
// is what makes the anonymous page shell safely cacheable on shared
// infrastructure.
package origin

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"speedkit/internal/clock"
	"speedkit/internal/query"
	"speedkit/internal/session"
	"speedkit/internal/storage"
)

// ErrNoRoute is returned for paths no registration covers.
var ErrNoRoute = errors.New("origin: no route")

// BlockPlaceholder renders the marker the proxy later replaces with the
// personalized fragment.
func BlockPlaceholder(name string) string {
	return fmt.Sprintf("<!--block:%s-->", name)
}

// Page is one rendered, anonymous (cacheable) representation.
type Page struct {
	Path        string
	Body        []byte
	Version     uint64
	ContentType string
	// Blocks lists the dynamic block names embedded as placeholders.
	Blocks []string
	// Links lists same-site pages this page references (listing pages
	// link their items' detail pages). The client proxy may prefetch
	// them to warm its cache for the user's likely next click.
	Links []string
}

// BlockRenderer produces a personalized fragment for a user. Renderers
// run on-device (inside the client proxy) or over the first-party origin
// channel — never on shared infrastructure.
type BlockRenderer func(u *session.User) []byte

// Server renders pages and tracks per-path content versions.
type Server struct {
	docs *storage.DocumentStore
	clk  clock.Clock

	mu       sync.Mutex
	static   map[string]*staticSpec
	products map[string]*productSpec // path prefix -> spec
	queries  map[string]*querySpec   // exact path -> spec
	versions map[string]uint64
	blocks   map[string]BlockRenderer
	stats    Stats

	cancelWatch func()
}

// Stats counts origin activity.
type Stats struct {
	Renders, BlockRenders, Invalidations uint64
}

type staticSpec struct {
	body   []byte
	blocks []string
}

type productSpec struct {
	collection string
	blocks     []string
}

type querySpec struct {
	q      query.Query
	title  string
	blocks []string
}

// NewServer creates an origin over the given document store. The server
// watches the store's change stream and bumps versions of product pages
// whose backing document changes; listing pages are invalidated
// externally by the invalidation engine.
func NewServer(docs *storage.DocumentStore, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System
	}
	s := &Server{
		docs:     docs,
		clk:      clk,
		static:   make(map[string]*staticSpec),
		products: make(map[string]*productSpec),
		queries:  make(map[string]*querySpec),
		versions: make(map[string]uint64),
		blocks:   make(map[string]BlockRenderer),
	}
	s.cancelWatch = docs.Watch(s.onChange)
	return s
}

// Close detaches the server from the change stream.
func (s *Server) Close() {
	if s.cancelWatch != nil {
		s.cancelWatch()
		s.cancelWatch = nil
	}
}

// onChange bumps product-page versions when their document changes.
func (s *Server) onChange(ev storage.ChangeEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for prefix, spec := range s.products {
		if spec.collection == ev.Collection {
			path := prefix + ev.ID
			s.versions[path]++
			s.stats.Invalidations++
		}
	}
}

// RegisterStatic serves body at path with the given dynamic blocks.
func (s *Server) RegisterStatic(path string, body []byte, blocks ...string) {
	s.mu.Lock()
	s.static[path] = &staticSpec{body: body, blocks: blocks}
	s.mu.Unlock()
}

// RegisterProducts serves documents of collection under pathPrefix+id
// (e.g. prefix "/product/" and doc "p1" → "/product/p1").
func (s *Server) RegisterProducts(pathPrefix, collection string, blocks ...string) {
	s.mu.Lock()
	s.products[pathPrefix] = &productSpec{collection: collection, blocks: blocks}
	s.mu.Unlock()
}

// RegisterQueryPage serves the query's result set at path.
func (s *Server) RegisterQueryPage(path, title string, q query.Query, blocks ...string) {
	s.mu.Lock()
	s.queries[path] = &querySpec{q: q, title: title, blocks: blocks}
	s.mu.Unlock()
}

// RegisterBlock installs a personalized fragment renderer.
func (s *Server) RegisterBlock(name string, r BlockRenderer) {
	s.mu.Lock()
	s.blocks[name] = r
	s.mu.Unlock()
}

// QueryPages returns the registered listing paths and their queries, for
// wiring into the invalidation engine.
func (s *Server) QueryPages() map[string]query.Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]query.Query, len(s.queries))
	for p, spec := range s.queries {
		out[p] = spec.q
	}
	return out
}

// Version returns the current content version of path (1 if never
// invalidated).
func (s *Server) Version(path string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versions[path] + 1
}

// Invalidate bumps the version of path (called by the invalidation engine
// for listing pages, or directly by tests).
func (s *Server) Invalidate(path string) {
	s.mu.Lock()
	s.versions[path]++
	s.stats.Invalidations++
	s.mu.Unlock()
}

// HasRoute reports whether some registration covers path. It does not
// check that a product page's backing document exists — only routing.
func (s *Server) HasRoute(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.static[path]; ok {
		return true
	}
	if _, ok := s.queries[path]; ok {
		return true
	}
	for prefix := range s.products {
		if strings.HasPrefix(path, prefix) && len(path) > len(prefix) {
			return true
		}
	}
	return false
}

// Render produces the anonymous, cacheable representation of path.
func (s *Server) Render(path string) (Page, error) {
	s.mu.Lock()
	version := s.versions[path] + 1
	st, isStatic := s.static[path]
	var qspec *querySpec
	var pspec *productSpec
	var docID string
	if !isStatic {
		qspec = s.queries[path]
		if qspec == nil {
			for prefix, spec := range s.products {
				if strings.HasPrefix(path, prefix) && len(path) > len(prefix) {
					pspec = spec
					docID = path[len(prefix):]
					break
				}
			}
		}
	}
	s.stats.Renders++
	s.mu.Unlock()

	switch {
	case isStatic:
		return s.renderShell(path, version, string(st.body), st.blocks), nil
	case qspec != nil:
		return s.renderQueryPage(path, version, qspec)
	case pspec != nil:
		return s.renderProductPage(path, version, pspec, docID)
	default:
		return Page{}, fmt.Errorf("%w: %s", ErrNoRoute, path)
	}
}

func (s *Server) renderShell(path string, version uint64, content string, blocks []string) Page {
	var b strings.Builder
	b.WriteString("<!doctype html><html><head><title>")
	b.WriteString(path)
	b.WriteString("</title></head><body>")
	b.WriteString(content)
	for _, name := range blocks {
		b.WriteString(`<div class="dyn" data-block="`)
		b.WriteString(name)
		b.WriteString(`">`)
		b.WriteString(BlockPlaceholder(name))
		b.WriteString("</div>")
	}
	b.WriteString("</body></html>")
	sorted := append([]string(nil), blocks...)
	sort.Strings(sorted)
	return Page{
		Path:        path,
		Body:        []byte(b.String()),
		Version:     version,
		ContentType: "text/html",
		Blocks:      sorted,
	}
}

func (s *Server) renderProductPage(path string, version uint64, spec *productSpec, docID string) (Page, error) {
	doc, _, err := s.docs.Get(spec.collection, docID)
	if err != nil {
		return Page{}, fmt.Errorf("origin: render %s: %w", path, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<article id=%q>", docID)
	for _, k := range sortedKeys(doc) {
		fmt.Fprintf(&b, "<p class=%q>%v</p>", k, doc[k])
	}
	b.WriteString("</article>")
	return s.renderShell(path, version, b.String(), spec.blocks), nil
}

// detailPrefixFor returns the product-page prefix registered for the
// collection, if any — it turns listing items into prefetchable links.
func (s *Server) detailPrefixFor(collection string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for prefix, spec := range s.products {
		if spec.collection == collection {
			return prefix, true
		}
	}
	return "", false
}

func (s *Server) renderQueryPage(path string, version uint64, spec *querySpec) (Page, error) {
	docs := s.docs.Query(spec.q)
	detailPrefix, linkable := s.detailPrefixFor(spec.q.Collection)
	var links []string
	var b strings.Builder
	fmt.Fprintf(&b, "<h1>%s</h1><ul>", spec.title)
	for _, d := range docs {
		fmt.Fprintf(&b, "<li data-id=%q>", d["id"])
		for _, k := range sortedKeys(d) {
			if k == "id" {
				continue
			}
			fmt.Fprintf(&b, "<span class=%q>%v</span>", k, d[k])
		}
		b.WriteString("</li>")
		if linkable {
			links = append(links, detailPrefix+fmt.Sprint(d["id"]))
		}
	}
	b.WriteString("</ul>")
	page := s.renderShell(path, version, b.String(), spec.blocks)
	page.Links = links
	return page, nil
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RenderBlock produces the personalized fragment for a user. Unknown
// blocks render an empty fragment rather than failing the page.
func (s *Server) RenderBlock(name string, u *session.User) []byte {
	s.mu.Lock()
	r := s.blocks[name]
	s.stats.BlockRenders++
	s.mu.Unlock()
	if r == nil {
		return nil
	}
	return r(u)
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// --- built-in block renderers ---------------------------------------------

// GreetingBlock renders a per-user greeting; anonymous users get a
// generic one.
func GreetingBlock(u *session.User) []byte {
	if u == nil || !u.LoggedIn {
		return []byte("<p>Welcome!</p>")
	}
	return []byte(fmt.Sprintf("<p>Welcome back, %s!</p>", u.Name))
}

// CartBlock renders the cart widget from on-device state.
func CartBlock(u *session.User) []byte {
	if u == nil {
		return []byte(`<div class="cart">0 items</div>`)
	}
	return []byte(fmt.Sprintf(`<div class="cart">%d items</div>`, u.CartSize()))
}

// RecommendationsBlock renders recently viewed products — personalization
// computed entirely from device-local history.
func RecommendationsBlock(u *session.User) []byte {
	if u == nil || len(u.History()) == 0 {
		return []byte(`<div class="reco">Popular products</div>`)
	}
	h := u.History()
	if len(h) > 4 {
		h = h[len(h)-4:]
	}
	return []byte(fmt.Sprintf(`<div class="reco">Recently viewed: %s</div>`, strings.Join(h, ", ")))
}

// TierPriceBlock renders loyalty-tier pricing hints.
func TierPriceBlock(u *session.User) []byte {
	tier := "standard"
	if u != nil && u.LoggedIn {
		tier = u.Tier
	}
	discount := map[string]int{"standard": 0, "silver": 5, "gold": 10}[tier]
	return []byte(fmt.Sprintf(`<div class="tier">%s: %d%% off</div>`, tier, discount))
}
