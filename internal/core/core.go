// Package core assembles the Speed Kit service from its substrates: the
// document store (system of record), the origin server, the CDN, the
// Cache Sketch coherence server, the real-time invalidation engine, and
// the adaptive TTL estimator. It implements the client proxy's Transport
// and wires the invalidation pipeline:
//
//	write → change stream → { product-page version bump,
//	                          query matching (invalidb) }
//	      → per affected path: sketch ReportWrite + CDN purge
//	                          + TTL-estimator write sample
//
// Every component shares one injectable clock, so the full stack runs
// deterministically under simulated time.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/cdn"
	"speedkit/internal/clock"
	"speedkit/internal/durable"
	"speedkit/internal/faults"
	"speedkit/internal/gdpr"
	"speedkit/internal/invalidb"
	"speedkit/internal/metrics"
	"speedkit/internal/netsim"
	"speedkit/internal/obs"
	"speedkit/internal/origin"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
	"speedkit/internal/storage"
	"speedkit/internal/tracectx"
	"speedkit/internal/ttl"
)

// Config parameterizes a Service.
type Config struct {
	// Clock drives every component (default: a fresh simulated clock).
	Clock clock.Clock
	// Network models latencies (default: DefaultTopology(Seed)).
	Network *netsim.Network
	// Seed makes service-side randomness (render jitter) deterministic.
	Seed int64
	// Delta is the default staleness bound handed to devices (default 60s).
	Delta time.Duration
	// SketchCapacity sizes the coherence server (default 10000).
	SketchCapacity uint64
	// SketchFPR targets the client sketch false-positive rate (default 0.05).
	SketchFPR float64
	// TTLSource decides per-resource TTLs. Nil installs an adaptive
	// estimator (the paper's design); use ttl.Static for baselines.
	TTLSource ttl.TTLSource
	// PurgeDelay is the CDN purge propagation delay (default 10ms).
	PurgeDelay time.Duration
	// OriginRenderTime is the mean server-side render latency
	// (default 25ms, jittered ±40%).
	OriginRenderTime time.Duration
	// InvalidationShards partitions the query matcher (default 4).
	InvalidationShards int
	// EdgeMaxItems bounds each CDN edge (default 100000).
	EdgeMaxItems int
	// DisableInvalidation turns off the server-side coherence pipeline
	// (no sketch updates, no CDN purges): caches converge by TTL alone.
	// This models a traditional CDN deployment and exists for the
	// consistency baselines; staleness instrumentation stays active.
	DisableInvalidation bool
	// DisableSketchOnDevices makes NewDevice hand out TTL-only proxies.
	DisableSketchOnDevices bool
	// PrefetchLinks makes NewDevice proxies warm their caches with up to
	// this many links per loaded page (0 disables).
	PrefetchLinks int
	// Obs is the metrics registry service-side instruments register under
	// and NewDevice hands to proxies (default obs.Default, so one scrape
	// sees the whole process; tests that assert on values inject a fresh
	// registry).
	Obs *obs.Registry
	// Tracer samples request and invalidation-pipeline traces, shared
	// with devices created by NewDevice (nil disables tracing).
	Tracer *obs.Tracer
	// SLO tracks the Δ-staleness budget burn; NewDevice hands it to
	// proxies so every page load observes its budget fraction (nil
	// disables SLO telemetry).
	SLO *obs.DeltaSLO
	// Faults is the optional deterministic fault injector consulted at
	// every transport call and invalidation-delivery hop (nil disables
	// injection — the common, non-chaos case).
	Faults *faults.Injector
	// DeviceResilience parameterizes the retry/backoff/breaker layer of
	// proxies created by NewDevice. The zero value takes the proxy
	// defaults; NewDevice derives a distinct deterministic RNG seed per
	// device so jitter streams never correlate across a fleet.
	DeviceResilience proxy.ResilienceConfig
	// Durable, when non-nil, persists the coherence state: the sketch
	// server journals through it, invalidations advance its watermark,
	// and NewService recovers from it (snapshot + WAL replay, or the
	// conservative cold start after an unclean shutdown). Create it with
	// durable.New over the service's data directory.
	Durable *durable.Store
	// VersionLogHorizon bounds the staleness instrumentation's per-key
	// history (default 48h — comfortably above the 24h TTL cap, so no
	// judgeable read loses its write history). Negative disables pruning.
	VersionLogHorizon time.Duration
}

func (c *Config) applyDefaults() {
	if c.Clock == nil {
		c.Clock = clock.NewSimulated(time.Time{})
	}
	if c.Network == nil {
		c.Network = netsim.DefaultTopology(c.Seed)
	}
	if c.Delta <= 0 {
		c.Delta = 60 * time.Second
	}
	if c.SketchCapacity == 0 {
		c.SketchCapacity = 10000
	}
	if c.SketchFPR <= 0 || c.SketchFPR >= 1 {
		c.SketchFPR = 0.05
	}
	if c.PurgeDelay <= 0 {
		c.PurgeDelay = 10 * time.Millisecond
	}
	if c.OriginRenderTime <= 0 {
		c.OriginRenderTime = 25 * time.Millisecond
	}
	if c.InvalidationShards <= 0 {
		c.InvalidationShards = 4
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.VersionLogHorizon == 0 {
		c.VersionLogHorizon = 48 * time.Hour
	}
}

// Stats aggregates service-side activity.
type Stats struct {
	Invalidations uint64
	SketchFetches uint64
	OriginRenders uint64
	BlockFetches  uint64
	// FaultsInjected counts transport calls and delivery hops the fault
	// injector perturbed.
	FaultsInjected uint64
	// Redeliveries counts retried invalidation-delivery attempts after an
	// injected delivery fault.
	Redeliveries uint64
	// ForcedDeliveries counts deliveries pushed through after exhausting
	// the redelivery budget — late rather than dropped, because a dropped
	// sketch report or purge would silently void the Δ bound.
	ForcedDeliveries uint64
}

// Service is one Speed Kit deployment.
type Service struct {
	cfg Config

	docs    *storage.DocumentStore
	origin  *origin.Server
	cdnNet  *cdn.CDN
	sketch  *cachesketch.Server
	engine  *invalidb.Engine
	est     *ttl.Estimator // nil when a static TTLSource is installed
	ttlSrc  ttl.TTLSource
	verlog  *cachesketch.VersionLog
	consent *gdpr.ConsentLedger
	auditor *gdpr.Auditor

	// The remaining polyglot stores: a Redis-style KV holding per-path
	// hit counters, and a time-series store recording service events for
	// the analytics that reports (and, in production, dashboards) read.
	counters  *storage.KV
	analytics *storage.TimeSeries

	mu     sync.Mutex
	rng    *rand.Rand
	stats  Stats
	devSeq int64 // guarded by mu; numbers devices for per-device seeds

	// m holds the service-side metric handles, resolved once from
	// cfg.Obs (see the metric catalog in DESIGN.md).
	m *serviceMetrics

	// recovery describes how the durable store rebuilt state at
	// construction (zero when no Durable store was configured).
	recovery    durable.RecoveryInfo
	recoveryErr error

	// purgeMu guards the purge-listener registry. Listeners are invoked
	// synchronously from the invalidation pipeline and from PurgePath, so
	// they must be fast and must not call back into the Service.
	purgeMu        sync.Mutex
	purgeListeners map[int64]func(path string)
	purgeSeq       int64

	// writeParent is the span context of the write request currently
	// executing under WithWriteSpan, if any. The document store's change
	// stream runs synchronously with the write, so the invalidation
	// pipeline it fans out into reads the parent here and stitches its
	// traces to the write's — across the HTTP hop that carried the
	// traceparent. Concurrent writes can at worst misattribute a
	// pipeline run to the other in-flight write; identity never leaks
	// and no trace is lost.
	writeParent atomic.Pointer[tracectx.SpanContext]

	cancels []func()
}

// serviceMetrics are the service-side instruments.
type serviceMetrics struct {
	fetches       [2]*metrics.Counter // 0 = cdn edge hit, 1 = origin render
	fetchLatency  [2]*metrics.Histogram
	sketchFetches *metrics.Counter
	revalidations [3]*metrics.Counter // by outcome: not_modified, edge, full
	blockFetches  *metrics.Counter
	invalidations *metrics.Counter
	purges        *metrics.Counter
	pipelineLat   *metrics.Histogram
	faults        map[faults.Component]*metrics.Counter
	redeliveries  *metrics.Counter
	forced        *metrics.Counter
}

// Serve-source indices for serviceMetrics.fetches / fetchLatency.
const (
	fetchCDN = iota
	fetchOrigin
)

// Revalidation outcome indices for serviceMetrics.revalidations.
const (
	revalNotModified = iota
	revalEdge
	revalFull
)

func newServiceMetrics(r *obs.Registry) *serviceMetrics {
	m := &serviceMetrics{
		sketchFetches: r.Counter("speedkit.service.sketch_fetches.total"),
		blockFetches:  r.Counter("speedkit.service.block_fetches.total"),
		invalidations: r.Counter("speedkit.invalidation.total"),
		purges:        r.Counter("speedkit.cdn.purges.total"),
		pipelineLat:   r.Histogram("speedkit.invalidation.pipeline_latency_us"),
	}
	for i, src := range []string{"cdn", "origin"} {
		m.fetches[i] = r.Counter("speedkit.service.fetch.total", obs.L("source", src))
		m.fetchLatency[i] = r.Histogram("speedkit.service.fetch_latency_us", obs.L("source", src))
	}
	for i, outcome := range []string{"not_modified", "edge", "full"} {
		m.revalidations[i] = r.Counter("speedkit.service.revalidations.total", obs.L("result", outcome))
	}
	m.faults = make(map[faults.Component]*metrics.Counter, 4)
	for _, c := range faults.Components() {
		m.faults[c] = r.Counter("speedkit.service.faults.total", obs.L("component", string(c)))
	}
	m.redeliveries = r.Counter("speedkit.invalidation.redeliveries.total")
	m.forced = r.Counter("speedkit.invalidation.forced.total")
	return m
}

// NewService builds a service over an existing document store and origin.
// The origin must already be registered with its pages; query pages are
// wired into the invalidation engine automatically.
func NewService(cfg Config, docs *storage.DocumentStore, org *origin.Server) *Service {
	cfg.applyDefaults()
	s := &Service{
		cfg:    cfg,
		docs:   docs,
		origin: org,
		cdnNet: cdn.New(cdn.Config{
			Clock:        cfg.Clock,
			PurgeDelay:   cfg.PurgeDelay,
			EdgeMaxItems: cfg.EdgeMaxItems,
		}),
		sketch: cachesketch.NewServer(cachesketch.ServerConfig{
			Capacity:          cfg.SketchCapacity,
			FalsePositiveRate: cfg.SketchFPR,
			Clock:             cfg.Clock,
			Journal:           sketchJournal(cfg.Durable),
		}),
		engine:    invalidb.New(invalidb.Config{Shards: cfg.InvalidationShards, Clock: cfg.Clock}),
		verlog:    cachesketch.NewVersionLog(),
		consent:   gdpr.NewConsentLedger(),
		auditor:   gdpr.NewAuditor(),
		counters:  storage.NewKV(cfg.Clock),
		analytics: storage.NewTimeSeries(cfg.Clock),
		rng:       rand.New(rand.NewSource(cfg.Seed + 7)),
	}
	s.m = newServiceMetrics(cfg.Obs)
	// Bound analytics memory: series keep a trailing 31 days, enough for
	// the longest field simulations.
	s.analytics.Retention = 31 * 24 * time.Hour

	if cfg.TTLSource != nil {
		s.ttlSrc = cfg.TTLSource
	} else {
		s.est = ttl.NewEstimator(ttl.Config{Clock: cfg.Clock})
		s.ttlSrc = s.est
	}
	if cfg.VersionLogHorizon > 0 {
		s.verlog.SetHorizon(cfg.VersionLogHorizon)
	}

	// Recover persisted coherence state before any traffic: the sketch and
	// estimator rebuild from the newest snapshot plus the WAL tail, and an
	// unclean prior shutdown engages the conservative cold start.
	if cfg.Durable != nil {
		s.recovery, s.recoveryErr = cfg.Durable.Recover(s.sketch, s.est)
	}

	// Register the origin's listing pages as continuous queries.
	for path, q := range org.QueryPages() {
		s.engine.Register(path, q)
	}
	// Query invalidations → full pipeline. Listing pages have no owner
	// bumping their content version (the origin only tracks product
	// pages), so the service bumps it here before recording the write.
	s.cancels = append(s.cancels, s.engine.OnInvalidation(func(inv invalidb.Invalidation) {
		s.origin.Invalidate(inv.RegistrationID)
		s.handleInvalidation(inv.RegistrationID)
	}))
	// Feed the matcher from the change stream, and handle direct
	// product-page invalidations (the origin has already bumped the page
	// version by the time this watcher runs, because it registered
	// earlier on the same synchronous stream).
	s.cancels = append(s.cancels, docs.Watch(func(ev storage.ChangeEvent) {
		s.engine.Process(ev)
		if ev.Collection == "products" {
			s.handleInvalidation("/product/" + ev.ID)
		}
	}))
	return s
}

// sketchJournal converts the optional durable store into the sketch's
// journal without smuggling a typed-nil interface into the comparison the
// server makes.
func sketchJournal(d *durable.Store) cachesketch.Journal {
	if d == nil {
		return nil
	}
	return d
}

// Close detaches the service from the change stream.
func (s *Service) Close() {
	for _, c := range s.cancels {
		c()
	}
	s.cancels = nil
}

// inject consults the optional fault injector for one call against a
// component. It returns the latency spike to add (Latency faults) and
// the error to surface. Injected errors wrap both the faults sentinel
// and the proxy-taxonomy family the client resilience layer keys on:
// Error → ErrUpstream (retryable), Blackhole → ErrOffline (the
// partition / connectivity-loss failure mode, failed fast).
func (s *Service) inject(c faults.Component) (time.Duration, error) {
	d := s.cfg.Faults.Decide(c)
	if !d.Faulted() {
		return 0, nil
	}
	s.m.faults[c].Inc()
	s.mu.Lock()
	s.stats.FaultsInjected++
	s.mu.Unlock()
	switch d.Kind {
	case faults.Latency:
		return d.Latency, nil
	case faults.Blackhole:
		return 0, fmt.Errorf("core: %s: %w: %w", c, d.Err, proxy.ErrOffline)
	default:
		return 0, fmt.Errorf("core: %s: %w: %w", c, d.Err, proxy.ErrUpstream)
	}
}

// deliverMaxAttempts bounds redelivery of one invalidation-pipeline hop
// under fault injection.
const deliverMaxAttempts = 16

// deliver runs one invalidation-delivery hop (sketch report, CDN purge)
// under fault injection: a faulted attempt is redelivered up to
// deliverMaxAttempts times, and on exhaustion the hop is forced through
// anyway. Dropping the hop is never an option — an unreported write
// would let every device blind-serve the stale copy past Δ, silently
// voiding the paper's staleness bound. Chaos here degrades delivery
// latency, not correctness.
func (s *Service) deliver(c faults.Component, hop func()) {
	for attempt := 0; attempt < deliverMaxAttempts; attempt++ {
		_, err := s.inject(c)
		if err == nil {
			hop()
			return
		}
		s.m.redeliveries.Inc()
		s.mu.Lock()
		s.stats.Redeliveries++
		s.mu.Unlock()
	}
	s.m.forced.Inc()
	s.mu.Lock()
	s.stats.ForcedDeliveries++
	s.mu.Unlock()
	hop()
}

// WithWriteSpan runs fn — a write against the document store — with sc
// installed as the causal parent for every invalidation-pipeline run the
// write triggers. The change stream delivers synchronously, so the
// pipeline traces started inside fn adopt sc's trace ID and the write's
// full fan-out (sketch report, CDN purge, durable advance) stitches to
// the HTTP write request that caused it. An invalid sc just runs fn:
// pipeline traces root locally as before.
func (s *Service) WithWriteSpan(sc tracectx.SpanContext, fn func()) {
	if sc.Valid() {
		s.writeParent.Store(&sc)
		defer s.writeParent.Store(nil)
	}
	fn()
}

// handleInvalidation runs the server-side coherence pipeline for one
// stale path.
func (s *Service) handleInvalidation(path string) {
	var parent tracectx.SpanContext
	if p := s.writeParent.Load(); p != nil {
		parent = *p
	}
	tr := s.cfg.Tracer.StartRemote("invalidation", path, parent)
	var sw *clock.Stopwatch
	if tr != nil {
		sw = clock.NewStopwatch(s.cfg.Clock)
	}
	now := s.cfg.Clock.Now()
	s.verlog.RecordWrite(path, s.origin.Version(path), now)
	if s.est != nil {
		s.est.RecordWrite(path)
	}
	if !s.cfg.DisableInvalidation {
		s.deliver(faults.Invalidation, func() { s.sketch.ReportWrite(path) })
		if tr != nil {
			tr.AddSpan("sketch.report", "pipeline", sw.Elapsed())
			sw.Reset()
		}
		s.deliver(faults.CDNPurge, func() { s.cdnNet.Purge(path) })
		if tr != nil {
			tr.AddSpan("cdn.purge", "pipeline", sw.Elapsed())
		}
		s.m.purges.Inc()
		s.notifyPurge(path)
	}
	s.analytics.Append("invalidations", 1)
	s.m.invalidations.Inc()
	s.mu.Lock()
	s.stats.Invalidations++
	s.mu.Unlock()
	if s.cfg.Durable != nil {
		// Advance the store-owned durable watermark (the stats counter
		// restarts at zero each incarnation, so its first values after a
		// recovery would fall below the recovered watermark and be
		// dropped), then take the periodic snapshot if enough journal
		// accumulated. This runs outside every sketch lock — Snapshot
		// exports the sketch state, which takes that lock itself.
		if tr != nil {
			sw.Reset()
		}
		s.cfg.Durable.AdvanceInvalidation()
		if s.cfg.Durable.ShouldSnapshot() {
			// A failed snapshot (injected crash, disk error) is not fatal
			// here: the WAL still holds the records, and the store's
			// Crashed flag is the owner's signal to run recovery.
			_ = s.cfg.Durable.Snapshot()
			tr.AddEvent("durable.snapshot", "lsn="+strconv.FormatUint(s.cfg.Durable.SnapshotLSN(), 10))
		}
		if tr != nil {
			tr.AddSpan("durable.advance", "pipeline", sw.Elapsed())
		}
	}
	if tr != nil {
		tr.SetSketch(s.sketch.Generation(), 0, 0)
		var total time.Duration
		for _, sp := range tr.Spans {
			total += sp.Duration
		}
		tr.SetTotal(total)
		s.m.pipelineLat.ObserveDuration(total)
		s.cfg.Tracer.Finish(tr)
	}
}

// PurgePath evicts one path from the shared caching tier outside the
// write pipeline: the CDN edges drop their copies immediately and every
// registered purge listener is notified. It backs POST /v1/purge, the
// operational escape hatch for evicting content that no write event will
// invalidate (a manual rollback, an emergency takedown).
func (s *Service) PurgePath(path string) {
	s.cdnNet.Purge(path)
	s.m.purges.Inc()
	s.notifyPurge(path)
}

// OnPurge registers fn to run whenever a path is purged — by the
// invalidation pipeline or by PurgePath. Listeners run synchronously on
// the purging goroutine, so they must be fast and must not call back
// into the Service. The returned cancel func removes the listener.
func (s *Service) OnPurge(fn func(path string)) (cancel func()) {
	s.purgeMu.Lock()
	if s.purgeListeners == nil {
		s.purgeListeners = make(map[int64]func(path string))
	}
	s.purgeSeq++
	id := s.purgeSeq
	s.purgeListeners[id] = fn
	s.purgeMu.Unlock()
	return func() {
		s.purgeMu.Lock()
		delete(s.purgeListeners, id)
		s.purgeMu.Unlock()
	}
}

// notifyPurge fans a purge out to the registered listeners.
func (s *Service) notifyPurge(path string) {
	s.purgeMu.Lock()
	fns := make([]func(string), 0, len(s.purgeListeners))
	for _, fn := range s.purgeListeners {
		fns = append(fns, fn)
	}
	s.purgeMu.Unlock()
	for _, fn := range fns {
		fn(path)
	}
}

// renderJitter samples origin processing time: mean ± 40%.
func (s *Service) renderJitter() time.Duration {
	s.mu.Lock()
	f := 0.6 + s.rng.Float64()*0.8
	s.mu.Unlock()
	return time.Duration(float64(s.cfg.OriginRenderTime) * f)
}

// --- proxy.Transport -------------------------------------------------------

// FetchSketch implements proxy.Transport: the sketch is an anonymous
// resource served from the nearest edge.
func (s *Service) FetchSketch(ctx context.Context, region netsim.Region) (*cachesketch.Snapshot, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	spike, err := s.inject(faults.SketchFetch)
	if err != nil {
		return nil, 0, err
	}
	sn := s.sketch.Snapshot()
	lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), s.sketch.SketchBytes())
	s.mu.Lock()
	s.stats.SketchFetches++
	s.mu.Unlock()
	s.m.sketchFetches.Inc()
	// Attach the service-side step to whatever trace rides the ctx: the
	// device's own page-load trace in-process, or the server's http.*
	// trace when the call arrived over the wire. Nil-safe no-op otherwise.
	obs.TraceFromContext(ctx).AddSpan("core.sketch", "cdn", lat+spike)
	return sn, lat + spike, nil
}

// Fetch implements proxy.Transport: serve the anonymous page through the
// CDN, filling the edge and reporting the cache fill to the sketch server
// on misses.
func (s *Service) Fetch(ctx context.Context, region netsim.Region, path string) (cache.Entry, time.Duration, proxy.Source, error) {
	if err := ctx.Err(); err != nil {
		return cache.Entry{}, 0, 0, err
	}
	spike, err := s.inject(faults.OriginFetch)
	if err != nil {
		return cache.Entry{}, 0, 0, err
	}
	s.counters.Incr("hits:"+path, 1)
	edge := s.cdnNet.Edge(region)
	if edge != nil {
		if e, ok := edge.Lookup(path); ok {
			lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), len(e.Body)) + spike
			s.analytics.Append("edge_hits", 1)
			s.m.fetches[fetchCDN].Inc()
			s.m.fetchLatency[fetchCDN].ObserveDuration(lat)
			obs.TraceFromContext(ctx).AddSpan("core.fetch", "cdn", lat)
			return e, lat, proxy.SourceCDN, nil
		}
	}
	e, lat, src, err := s.fetchFromOrigin(region, path)
	if err == nil {
		obs.TraceFromContext(ctx).AddSpan("core.fetch", "origin", lat+spike)
	}
	return e, lat + spike, src, err
}

// fetchFromOrigin renders the page at the origin, fills the regional
// edge, and reports the cache fill to the sketch server.
func (s *Service) fetchFromOrigin(region netsim.Region, path string) (cache.Entry, time.Duration, proxy.Source, error) {
	edge := s.cdnNet.Edge(region)
	page, err := s.origin.Render(path)
	if err != nil {
		return cache.Entry{}, 0, 0, err
	}
	s.mu.Lock()
	s.stats.OriginRenders++
	s.analytics.Append("origin_renders", 1)
	s.mu.Unlock()
	if s.est != nil {
		s.est.RecordRead(path)
	}
	// Record the initial version so the staleness instrumentation can
	// judge later reads even for never-written pages.
	if s.verlog.CurrentVersion(path, s.cfg.Clock.Now()) == 0 {
		s.verlog.RecordWrite(path, page.Version, s.cfg.Clock.Now())
	}

	ttlDur := s.ttlSrc.TTL(path)
	entry := cache.TTLEntry(s.cfg.Clock, path, page.Body, page.Version, ttlDur)
	entry.Metadata = proxy.EntryMetadata(page.Blocks, page.Links)
	if edge != nil {
		edge.Fill(entry)
	}
	// One report covers every downstream cache of this response: they all
	// share the entry's absolute expiration.
	s.sketch.ReportCachedRead(path, entry.ExpiresAt)

	lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), len(page.Body)) +
		s.cfg.Network.Latency(netsim.EdgeNode(region), netsim.OriginNode, len(page.Body)) +
		s.renderJitter()
	s.m.fetches[fetchOrigin].Inc()
	s.m.fetchLatency[fetchOrigin].ObserveDuration(lat)
	return entry, lat, proxy.SourceOrigin, nil
}

// revalidationHeaderBytes approximates the wire size of a 304-style
// response: status line and caching headers, no body.
const revalidationHeaderBytes = 256

// Revalidate implements proxy.Transport: a conditional fetch carrying
// the client's held version. The request goes through the CDN — the
// sketch exists to govern the caches that purges cannot reach (device
// caches); the edge itself is purge-maintained, so a strictly newer edge
// copy is trustworthy and answers the revalidation at edge latency. Only
// when the edge cannot prove progress (no copy, or a copy at the
// client's own version — possibly the pre-purge body inside the
// propagation window) does the request fall through to the origin, which
// answers 304 when the version is still current. The residual staleness
// an edge answer can carry is bounded by the purge propagation delay
// (milliseconds), far inside every Δ.
func (s *Service) Revalidate(ctx context.Context, region netsim.Region, path string, knownVersion uint64) (proxy.RevalidationResult, error) {
	if err := ctx.Err(); err != nil {
		return proxy.RevalidationResult{}, err
	}
	spike, err := s.inject(faults.OriginFetch)
	if err != nil {
		return proxy.RevalidationResult{}, err
	}
	if edge := s.cdnNet.Edge(region); edge != nil {
		if e, ok := edge.Lookup(path); ok && e.Version > knownVersion {
			lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), len(e.Body)) + spike
			s.m.revalidations[revalEdge].Inc()
			obs.TraceFromContext(ctx).AddSpan("core.revalidate", "cdn", lat)
			return proxy.RevalidationResult{Entry: e, Latency: lat, Source: proxy.SourceCDN}, nil
		}
	}
	current := s.origin.Version(path)
	if current == knownVersion && s.origin.HasRoute(path) {
		ttlDur := s.ttlSrc.TTL(path)
		entry := cache.TTLEntry(s.cfg.Clock, path, nil, knownVersion, ttlDur)
		s.sketch.ReportCachedRead(path, entry.ExpiresAt)
		lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.EdgeNode(region), revalidationHeaderBytes) +
			s.cfg.Network.Latency(netsim.EdgeNode(region), netsim.OriginNode, revalidationHeaderBytes) + spike
		s.m.revalidations[revalNotModified].Inc()
		obs.TraceFromContext(ctx).AddSpan("core.revalidate", "origin", lat)
		return proxy.RevalidationResult{
			NotModified: true,
			Entry:       entry,
			Latency:     lat,
			Source:      proxy.SourceOrigin,
		}, nil
	}
	entry, lat, src, err := s.fetchFromOrigin(region, path)
	if err != nil {
		return proxy.RevalidationResult{}, err
	}
	s.m.revalidations[revalFull].Inc()
	obs.TraceFromContext(ctx).AddSpan("core.revalidate", "origin", lat+spike)
	return proxy.RevalidationResult{Entry: entry, Latency: lat + spike, Source: src}, nil
}

// FetchBlocks implements proxy.Transport: personalized fragments over the
// first-party channel (client → origin directly, bypassing the CDN).
func (s *Service) FetchBlocks(ctx context.Context, region netsim.Region, names []string, u *session.User) (map[string][]byte, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	spike, err := s.inject(faults.OriginFetch)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string][]byte, len(names))
	size := 0
	for _, n := range names {
		fr := s.origin.RenderBlock(n, u)
		out[n] = fr
		size += len(fr)
	}
	s.mu.Lock()
	s.stats.BlockFetches++
	s.mu.Unlock()
	s.m.blockFetches.Inc()
	lat := s.cfg.Network.Latency(netsim.ClientNode(region), netsim.OriginNode, size) + s.renderJitter()/2 + spike
	obs.TraceFromContext(ctx).AddSpan("core.blocks", "origin", lat)
	return out, lat, nil
}

var _ proxy.Transport = (*Service)(nil)

// NewDevice creates a client proxy for a user in a region, bound to this
// service with the service's Δ and shared auditor/consent ledger. The
// user's consent choices (collected by the cookie banner in production)
// are recorded in the ledger at enrollment — the ledger is strict
// opt-in, so an unrecorded user is never personalized.
func (s *Service) NewDevice(u *session.User, region netsim.Region) *proxy.Proxy {
	if u != nil && u.LoggedIn {
		now := s.cfg.Clock.Now()
		if u.ConsentPersonalization {
			s.consent.Grant(u.ID, gdpr.PurposePersonalization, now)
		}
		if u.ConsentAnalytics {
			s.consent.Grant(u.ID, gdpr.PurposeAnalytics, now)
		}
	}
	s.mu.Lock()
	s.devSeq++
	seq := s.devSeq
	s.mu.Unlock()
	// Each device gets a distinct deterministic seed for its retry-jitter
	// stream: correlated jitter across a fleet would re-synchronize the
	// retry storms backoff exists to break up.
	res := s.cfg.DeviceResilience
	res.Seed = s.cfg.Seed + res.Seed + seq*7919
	return proxy.New(proxy.Config{
		User:          u,
		Region:        region,
		Delta:         s.cfg.Delta,
		Clock:         s.cfg.Clock,
		Network:       s.cfg.Network,
		Auditor:       s.auditor,
		Consent:       s.consent,
		DisableSketch: s.cfg.DisableSketchOnDevices,
		PrefetchLinks: s.cfg.PrefetchLinks,
		Obs:           s.cfg.Obs,
		Tracer:        s.cfg.Tracer,
		SLO:           s.cfg.SLO,
		Resilience:    res,
	}, s)
}

// EraseUser implements the right to erasure (GDPR Art. 17) for the
// service side: the consent ledger forgets the user, and any server-side
// personal documents keyed by the user are deleted. Device-local state
// (cart, history) lives only on the user's device, so nothing else needs
// erasing — the architectural point of the client proxy.
func (s *Service) EraseUser(u *session.User) {
	if u == nil {
		return
	}
	s.consent.Erase(u.ID)
	// Server-side personal collections, if the deployment created any.
	for _, coll := range []string{"orders", "profiles"} {
		_ = s.docs.Delete(coll, u.ID)
	}
	u.ClearCart()
}

// Warm pre-renders the given paths and fills every deployed edge, so the
// first real visitors hit warm caches — the deploy-time bootstrap a
// production rollout runs before shifting traffic. Unknown paths are
// skipped and reported; rendering errors for routed paths abort.
func (s *Service) Warm(paths []string) (warmed int, skipped []string, err error) {
	for _, path := range paths {
		if !s.origin.HasRoute(path) {
			skipped = append(skipped, path)
			continue
		}
		page, rerr := s.origin.Render(path)
		if rerr != nil {
			return warmed, skipped, fmt.Errorf("core: warm %s: %w", path, rerr)
		}
		entry := cache.TTLEntry(s.cfg.Clock, path, page.Body, page.Version, s.ttlSrc.TTL(path))
		entry.Metadata = proxy.EntryMetadata(page.Blocks, page.Links)
		for _, region := range s.cdnNet.Regions() {
			s.cdnNet.Edge(region).Fill(entry)
		}
		s.sketch.ReportCachedRead(path, entry.ExpiresAt)
		warmed++
	}
	return warmed, skipped, nil
}

// HotPath is one entry of the hit-count leaderboard.
type HotPath struct {
	Path string
	Hits int64
}

// HotPaths returns the n most-fetched paths (by CDN-tier request count),
// most popular first — the Redis-counter-backed dashboard view ops teams
// watch in production.
func (s *Service) HotPaths(n int) []HotPath {
	keys := s.counters.Keys("hits:")
	out := make([]HotPath, 0, len(keys))
	for _, k := range keys {
		out = append(out, HotPath{Path: k[len("hits:"):], Hits: s.counters.Counter(k)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Path < out[j].Path
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Analytics returns the service-event time series ("edge_hits",
// "origin_renders", "invalidations"), downsampled by reports.
func (s *Service) Analytics() *storage.TimeSeries { return s.analytics }

// --- component accessors ----------------------------------------------------

// Docs returns the document store.
func (s *Service) Docs() *storage.DocumentStore { return s.docs }

// Origin returns the origin server.
func (s *Service) Origin() *origin.Server { return s.origin }

// CDN returns the edge network.
func (s *Service) CDN() *cdn.CDN { return s.cdnNet }

// SketchServer returns the coherence server.
func (s *Service) SketchServer() *cachesketch.Server { return s.sketch }

// Engine returns the invalidation engine.
func (s *Service) Engine() *invalidb.Engine { return s.engine }

// Estimator returns the adaptive TTL estimator (nil when a static source
// was configured).
func (s *Service) Estimator() *ttl.Estimator { return s.est }

// VersionLog returns the staleness instrumentation.
func (s *Service) VersionLog() *cachesketch.VersionLog { return s.verlog }

// Auditor returns the shared GDPR flow auditor.
func (s *Service) Auditor() *gdpr.Auditor { return s.auditor }

// Consent returns the shared consent ledger.
func (s *Service) Consent() *gdpr.ConsentLedger { return s.consent }

// Network returns the latency model.
func (s *Service) Network() *netsim.Network { return s.cfg.Network }

// Clock returns the shared clock.
func (s *Service) Clock() clock.Clock { return s.cfg.Clock }

// Delta returns the configured staleness bound.
func (s *Service) Delta() time.Duration { return s.cfg.Delta }

// Obs returns the metrics registry the deployment's instruments register
// under (never nil after NewService).
func (s *Service) Obs() *obs.Registry { return s.cfg.Obs }

// Tracer returns the shared request tracer (nil when tracing is off).
func (s *Service) Tracer() *obs.Tracer { return s.cfg.Tracer }

// SLO returns the Δ-budget SLO tracker (nil when SLO telemetry is off).
func (s *Service) SLO() *obs.DeltaSLO { return s.cfg.SLO }

// Durable returns the durability store (nil when the service runs
// memory-only).
func (s *Service) Durable() *durable.Store { return s.cfg.Durable }

// Recovery reports how the durable store rebuilt state at construction
// and any recovery error. The zero RecoveryInfo with a nil error means
// the service runs memory-only.
func (s *Service) Recovery() (durable.RecoveryInfo, error) {
	return s.recovery, s.recoveryErr
}

// RecoverDurable re-runs crash recovery in place over the already wired
// sketch and estimator — the in-process analogue of a process restart,
// used by the crash harness after an injected kill.
func (s *Service) RecoverDurable() (durable.RecoveryInfo, error) {
	if s.cfg.Durable == nil {
		return durable.RecoveryInfo{}, fmt.Errorf("core: no durable store configured")
	}
	info, err := s.cfg.Durable.Recover(nil, nil)
	s.recovery, s.recoveryErr = info, err
	return info, err
}

// Stats returns a copy of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
