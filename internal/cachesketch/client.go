package cachesketch

import (
	"sync"
	"time"

	"speedkit/internal/clock"
)

// Client is the device-side half of the protocol: it holds the most
// recently fetched sketch snapshot and enforces the Δ refresh discipline.
// The client proxy consults it before serving anything from a local
// cache. Safe for concurrent use.
type Client struct {
	mu       sync.Mutex
	clk      clock.Clock
	delta    time.Duration
	snapshot *Snapshot
	stats    ClientStats
}

// ClientStats counts client-side protocol decisions.
type ClientStats struct {
	// Refreshes counts sketch fetches.
	Refreshes uint64
	// StaleHits counts lookups where the sketch flagged the key.
	StaleHits uint64
	// FreshPasses counts lookups where the sketch cleared the key.
	FreshPasses uint64
}

// NewClient creates a client enforcing the given Δ. A zero or negative
// delta defaults to 60 s, a common production refresh interval.
func NewClient(clk clock.Clock, delta time.Duration) *Client {
	if clk == nil {
		clk = clock.System
	}
	if delta <= 0 {
		delta = 60 * time.Second
	}
	return &Client{clk: clk, delta: delta}
}

// Delta returns the client's staleness bound Δ.
func (c *Client) Delta() time.Duration { return c.delta }

// NeedsRefresh reports whether the held snapshot is missing or older than
// Δ. While this is true the client MUST NOT serve cached content based on
// the sketch — doing so would void the Δ-atomicity bound.
func (c *Client) NeedsRefresh() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.needsRefreshLocked(c.clk.Now())
}

func (c *Client) needsRefreshLocked(now time.Time) bool {
	return c.snapshot == nil || now.Sub(c.snapshot.TakenAt) >= c.delta
}

// Install stores a freshly fetched snapshot. Snapshots older than the one
// held are ignored (out-of-order fetches can happen with concurrent
// refreshes).
func (c *Client) Install(sn *Snapshot) {
	if sn == nil {
		return
	}
	c.mu.Lock()
	if c.snapshot == nil || sn.Generation >= c.snapshot.Generation {
		c.snapshot = sn
		c.stats.Refreshes++
	}
	c.mu.Unlock()
}

// Age returns how old the held snapshot is (Δ+1s if none is held, i.e.
// definitely stale).
func (c *Client) Age() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snapshot == nil {
		return c.delta + time.Second
	}
	return c.clk.Now().Sub(c.snapshot.TakenAt)
}

// Decision is the outcome of a client-side coherence check.
type Decision int

// Possible coherence decisions.
const (
	// ServeFromCache: the sketch is fresh and clears the key; any cached
	// copy is coherent within Δ.
	ServeFromCache Decision = iota
	// Revalidate: the sketch flags the key (or a cached copy should be
	// bypassed); fetch an up-to-date representation.
	Revalidate
	// RefreshSketch: the sketch is older than Δ; it must be refreshed
	// before cached content may be used.
	RefreshSketch
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case ServeFromCache:
		return "serve-from-cache"
	case Revalidate:
		return "revalidate"
	case RefreshSketch:
		return "refresh-sketch"
	}
	return "unknown"
}

// Check runs the client-side coherence protocol for one key.
func (c *Client) Check(key string) Decision {
	now := c.clk.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.needsRefreshLocked(now) {
		return RefreshSketch
	}
	if c.snapshot.MightBeStale(key) {
		c.stats.StaleHits++
		return Revalidate
	}
	c.stats.FreshPasses++
	return ServeFromCache
}

// Stats returns a copy of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
