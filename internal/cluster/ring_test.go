package cluster

import (
	"fmt"
	"testing"
)

// TestRingGoldenAssignments pins the seeded ring's shard assignment: the
// exact owners below must never change for seed 42, or every deployed
// node would disagree with every other about who owns what. A failure
// here means the ring hash changed — a breaking wire/deployment change,
// not a refactor.
func TestRingGoldenAssignments(t *testing.T) {
	r := NewRing(42, 64, []string{"node-0", "node-1", "node-2"})
	golden := []struct {
		key, owner string
	}{
		{"product-0", "node-2"},
		{"product-1", "node-1"},
		{"product-2", "node-0"},
		{"product-3", "node-2"},
		{"product-4", "node-1"},
		{"product-5", "node-2"},
		{"product-6", "node-2"},
		{"product-7", "node-2"},
		{"product-8", "node-1"},
		{"product-9", "node-0"},
		{"product-10", "node-0"},
		{"product-11", "node-0"},
	}
	for _, g := range golden {
		if got := r.Owner(g.key); got != g.owner {
			t.Errorf("Owner(%q) = %q, want %q", g.key, got, g.owner)
		}
	}
}

// TestRingDeterministicAcrossConstruction builds the same ring twice with
// permuted member order and checks every assignment agrees — the property
// that lets N nodes derive the ring independently with no coordinator.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a := NewRing(7, 32, []string{"a", "b", "c", "d"})
	b := NewRing(7, 32, []string{"d", "c", "b", "a"})
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("member order changed Owner(%q): %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingSeedChangesLayout guards against the seed being ignored.
func TestRingSeedChangesLayout(t *testing.T) {
	a := NewRing(1, 64, []string{"a", "b", "c"})
	b := NewRing(2, 64, []string{"a", "b", "c"})
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys; seed is not mixed into the ring")
	}
}

// TestRingRemovalRemapsOnlyFraction is the consistent-hashing property
// test: removing one of N members must (a) never move a key between two
// surviving members and (b) move only ≈1/N of the key space — the keys
// the departed member owned.
func TestRingRemovalRemapsOnlyFraction(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("members-%d", n), func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("node-%d", i)
			}
			full := NewRing(99, 0, members)
			removed := members[n/2]
			smaller := full.Without(removed)
			if smaller.Size() != n-1 {
				t.Fatalf("Without left %d members, want %d", smaller.Size(), n-1)
			}

			remapped := 0
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("key-%d", i)
				before, after := full.Owner(key), smaller.Owner(key)
				if before == after {
					continue
				}
				if before != removed {
					t.Fatalf("key %q moved %q -> %q although %q left the ring",
						key, before, after, removed)
				}
				remapped++
			}
			// The departed member owned ≈ keys/n of the space. Allow a wide
			// ±60% band: virtual-node placement is uniform only in
			// expectation, and the test must stay deterministic, not tight.
			want := keys / n
			if remapped < want*2/5 || remapped > want*8/5 {
				t.Fatalf("removing 1 of %d members remapped %d of %d keys; want ≈%d (1/%d)",
					n, remapped, keys, want, n)
			}
		})
	}
}

// TestRingOwnerSpread sanity-checks virtual-node balance: no member of a
// 4-node ring should own more than half or less than a tenth of the keys.
func TestRingOwnerSpread(t *testing.T) {
	r := NewRing(5, 0, []string{"a", "b", "c", "d"})
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for m, c := range counts {
		if c < keys/10 || c > keys/2 {
			t.Errorf("member %s owns %d of %d keys; spread is badly skewed", m, c, keys)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d members own keys, want 4", len(counts))
	}
}

// TestRingEdgeCases covers the empty and single-member rings and
// duplicate member collapse.
func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(1, 4, nil).Owner("x"); owner != "" {
		t.Errorf("empty ring owned %q", owner)
	}
	solo := NewRing(1, 4, []string{"only"})
	if owner := solo.Owner("anything"); owner != "only" {
		t.Errorf("single-member ring routed to %q", owner)
	}
	dup := NewRing(1, 4, []string{"a", "a", "b"})
	if dup.Size() != 2 {
		t.Errorf("duplicate members not collapsed: size %d", dup.Size())
	}
}
