// Package edge implements a streaming HTTP caching reverse proxy in
// front of a speedkit-server: the CDN tier of the paper promoted from
// an in-process simulator to a real socket.
//
// Protocol behavior:
//
//   - Only GET page fetches (/v1/page, legacy /page) are cached, keyed
//     by the ?path= value — the same key space the Cache Sketch and the
//     invalidation pipeline speak. Cacheability is decided by the
//     upstream's Cache-Control and the sketch, never by URL heuristics:
//     path-pattern cacheability is exactly the web-cache-deception trap,
//     where an attacker-shaped URL tricks the edge into storing a
//     personalized response under a "static" key. Everything that is
//     not a page fetch — the personalized /blocks API above all — is
//     proxied through uncached.
//   - Concurrent misses for one key coalesce into a single origin
//     fetch; late joiners stream the shared in-flight body (see fill).
//   - Hits whose key the Bloom sketch flags on a newer generation are
//     revalidated upstream with If-None-Match; a 304 renews the entry
//     without moving the body again. Client If-None-Match gets 304s
//     locally. Range requests are served from the cached body.
//   - Entries and purges are journaled to a WAL-plus-snapshot disk
//     tier (see disk.go); a restart recovers the cache crash-safely.
//
// GDPR boundary: this package is shared infrastructure. It must never
// import internal/session, internal/gdpr, or internal/obs — the edge
// caches only sketch-governed public representations, carries only
// anonymous trace identifiers (internal/tracectx), and owns its own
// speedkit.edge.* metrics (see metrics.go). The gdprboundary and
// piiflow analyzers enforce this at lint time; the smoke gate's PII
// byte-scan enforces it over the disk tier at run time.
package edge

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/tracectx"
)

// Metadata keys stored per entry.
const (
	metaGen         = "sketch-gen"
	metaContentType = "content-type"
)

// fillTimeout bounds a coalesced origin fetch once it is detached from
// the leader's request context; a hung upstream must still release the
// followers eventually.
const fillTimeout = 60 * time.Second

// Options parameterizes a Proxy.
type Options struct {
	// Upstream is the speedkit-server base URL (e.g. "http://host:8080").
	Upstream string
	// Client performs upstream requests; nil uses a 10 s-timeout default.
	Client *http.Client
	// Clock drives expiry and Age math (default the system clock).
	Clock clock.Clock
	// CacheDir enables the disk tier when non-empty.
	CacheDir string
	// MaxEntries bounds the in-memory cache (default 4096).
	MaxEntries int
	// DefaultTTL is the freshness granted when the upstream sends no
	// max-age (default 30 s).
	DefaultTTL time.Duration
	// SnapshotEvery is the disk-tier journal-records-per-snapshot
	// cadence (default 256).
	SnapshotEvery int
	// Faults optionally injects disk-tier crashes (smoke gate).
	Faults *faults.Injector
}

// Proxy is the edge cache. It implements http.Handler for the proxied
// surface; Handler() adds the edge's own operational endpoints.
type Proxy struct {
	upstream string
	hc       *http.Client
	clk      clock.Clock
	ttl      time.Duration

	mem  *cache.Store
	disk *diskTier
	m    metrics

	sketch atomic.Pointer[cachesketch.Snapshot]

	fillsMu sync.Mutex
	fills   map[string]*fill

	// legacy latches when the upstream predates the /v1 surface.
	legacy atomic.Bool
}

// New builds a Proxy and, when Options.CacheDir is set, recovers the
// disk tier into memory.
func New(o Options) (*Proxy, RecoveryInfo, error) {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.Clock == nil {
		o.Clock = clock.System
	}
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	if o.DefaultTTL <= 0 {
		o.DefaultTTL = 30 * time.Second
	}
	p := &Proxy{
		upstream: strings.TrimRight(o.Upstream, "/"),
		hc:       o.Client,
		clk:      o.Clock,
		ttl:      o.DefaultTTL,
		mem:      cache.New(cache.Config{MaxItems: o.MaxEntries, Clock: o.Clock}),
		fills:    make(map[string]*fill),
	}
	var info RecoveryInfo
	if o.CacheDir != "" {
		var err error
		p.disk, info, err = openDisk(o.CacheDir, o.SnapshotEvery, o.Clock, o.Faults, p.mem, &p.m)
		if err != nil {
			return nil, info, err
		}
	}
	return p, info, nil
}

// Close flushes and closes the disk tier.
func (p *Proxy) Close() error {
	if p.disk != nil {
		return p.disk.close()
	}
	return nil
}

// Stats returns a copy of the edge counters.
func (p *Proxy) Stats() Stats { return p.m.stats() }

// Crashed reports whether an injected fault killed the disk tier.
func (p *Proxy) Crashed() bool { return p.disk != nil && p.disk.crashed() }

// Generation returns the sketch generation the edge currently holds.
func (p *Proxy) Generation() uint64 {
	if sn := p.sketch.Load(); sn != nil {
		return sn.Generation
	}
	return 0
}

// Handler returns the edge's full server surface: the proxied routes
// plus the operational endpoints every deployment needs.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		p.m.write(w)
	})
	mux.Handle("/", p)
	return mux
}

// ServeHTTP routes one request: purges apply locally, page fetches hit
// the cache, everything else proxies through uncached.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && (r.URL.Path == "/v1/purge" || r.URL.Path == "/purge"):
		p.handlePurge(w, r)
	case r.Method == http.MethodGet && (r.URL.Path == "/v1/page" || r.URL.Path == "/page"):
		if key := r.URL.Query().Get("path"); key != "" {
			p.servePage(w, r, key)
			return
		}
		p.edgeError(w, http.StatusBadRequest, "bad_request", "missing ?path=")
	default:
		p.passthrough(w, r)
	}
}

// handlePurge evicts one key, journaling the purge. The speedkit-server
// invalidation pipeline POSTs here when invalidb matches a write.
func (p *Proxy) handlePurge(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	if path == "" {
		p.edgeError(w, http.StatusBadRequest, "bad_request", "missing ?path=")
		return
	}
	p.Purge(path)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"purged": path})
}

// Purge evicts key from memory and journals the eviction.
func (p *Proxy) Purge(key string) {
	p.mem.Delete(key)
	if p.disk != nil {
		p.disk.appendPurge(key)
	}
	p.m.purges.Add(1)
}

// InstallSketch hands the edge a sketch snapshot directly (tests, and
// owners that already hold one).
func (p *Proxy) InstallSketch(sn *cachesketch.Snapshot) { p.sketch.Store(sn) }

// RefreshSketch pulls the current sketch from the upstream. The edge
// consumes the same public endpoint clients do; it holds no private
// channel into the server.
func (p *Proxy) RefreshSketch(ctx context.Context) error {
	resp, err := p.upstreamGet(ctx, "/sketch", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("edge: sketch fetch: %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var f bloom.Filter
	if err := f.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("edge: sketch decode: %w", err)
	}
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Sketch-Generation"), 10, 64)
	p.sketch.Store(&cachesketch.Snapshot{Filter: &f, Generation: gen, TakenAt: p.clk.Now()})
	p.m.sketchRefreshes.Add(1)
	return nil
}

// servePage is the cache path for one page key.
func (p *Proxy) servePage(w http.ResponseWriter, r *http.Request, key string) {
	now := p.clk.Now()
	// PeekAny, not Get: Get reaps expired entries, but an expired copy
	// is still valuable — its version enables a conditional refresh
	// (saving the body transfer on 304) and its body backs the
	// serve-stale path when the upstream is down.
	if e, ok := p.mem.PeekAny(key); ok {
		snap := p.sketch.Load()
		fresh := !e.Expired(now)
		// The sketch overrides TTL freshness: a key reported written on
		// a generation newer than the one this entry was validated
		// against might be stale and must be revalidated. A key the
		// sketch does not flag is fresh by Δ-atomicity even if another
		// key changed.
		if fresh && snap != nil && entryGen(e) < snap.Generation && snap.MightBeStale(key) {
			fresh = false
		}
		if fresh {
			// Promote in the eviction order; the entry is unexpired, so
			// this cannot reap it.
			p.mem.Get(key)
			p.m.hits.Add(1)
			p.serveEntry(w, r, e, "hit")
			return
		}
		p.revalidatePath(w, r, key, e)
		return
	}
	p.coalesce(w, r, key)
}

// revalidatePath refreshes a stale entry with a conditional GET.
func (p *Proxy) revalidatePath(w http.ResponseWriter, r *http.Request, key string, e cache.Entry) {
	hdr := http.Header{}
	hdr.Set("If-None-Match", fmt.Sprintf("%q", "v"+strconv.FormatUint(e.Version, 10)))
	copyTraceparent(r, hdr)
	resp, err := p.upstreamGet(r.Context(), "/page", "?path="+url.QueryEscape(key), hdr)
	if err != nil {
		// Upstream unreachable: serve the stale copy rather than fail —
		// the sketch already bounds how stale it can be.
		p.m.upstreamErrors.Add(1)
		p.m.servedStale.Add(1)
		p.serveEntry(w, r, e, "stale")
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		ne := p.renewEntry(e, resp)
		p.commit(ne)
		p.m.revalidated.Add(1)
		p.serveEntry(w, r, ne, "revalidated")
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			p.m.upstreamErrors.Add(1)
			p.m.servedStale.Add(1)
			p.serveEntry(w, r, e, "stale")
			return
		}
		p.m.misses.Add(1)
		// Same storability gate as lead(): an upstream that turned
		// no-store/private must not be re-cached through revalidation.
		if !cacheable(resp.Header) {
			// Drop the copy the upstream disowned and relay the fresh
			// answer verbatim — no edge freshness headers on a no-store
			// response.
			p.Purge(key)
			copyEntryHeaders(w.Header(), resp.Header)
			w.Header().Set("X-Edge-Cache", "miss")
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.Write(body)
			p.m.bytesServed.Add(uint64(len(body)))
			return
		}
		ne := p.entryFromResponse(key, resp, body)
		p.commit(ne)
		p.serveEntry(w, r, ne, "miss")
	default:
		if resp.StatusCode >= 500 {
			// A transient upstream failure must not evict a servable
			// copy — treat it like the transport-error path above.
			p.m.upstreamErrors.Add(1)
			p.m.servedStale.Add(1)
			p.serveEntry(w, r, e, "stale")
			return
		}
		// The resource is gone (4xx): drop the entry and relay the
		// upstream's answer verbatim.
		p.Purge(key)
		relayResponse(w, resp)
	}
}

// coalesce is the miss path: one leader fetches, followers stream the
// shared in-flight body.
func (p *Proxy) coalesce(w http.ResponseWriter, r *http.Request, key string) {
	p.fillsMu.Lock()
	if f, ok := p.fills[key]; ok {
		p.fillsMu.Unlock()
		p.m.coalescedWaiters.Add(1)
		p.follow(w, f)
		return
	}
	f := newFill()
	p.fills[key] = f
	p.fillsMu.Unlock()
	p.m.misses.Add(1)
	p.lead(w, r, key, f)
}

// lead performs the single origin fetch of a coalesced miss, streaming
// the body to its own client while publishing it to followers.
func (p *Proxy) lead(w http.ResponseWriter, r *http.Request, key string, f *fill) {
	defer func() {
		p.fillsMu.Lock()
		delete(p.fills, key)
		p.fillsMu.Unlock()
	}()
	hdr := http.Header{}
	copyTraceparent(r, hdr)
	// The fetch is shared state, not the leader's own: a leader whose
	// client disconnects mid-stream must not cancel the fill out from
	// under its followers, so the upstream request is detached from the
	// leader's context (the client's own timeout still bounds it).
	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), fillTimeout)
	defer cancel()
	resp, err := p.upstreamGet(ctx, "/page", "?path="+url.QueryEscape(key), hdr)
	if err != nil {
		f.finish(err)
		p.m.upstreamErrors.Add(1)
		p.edgeError(w, http.StatusBadGateway, "unavailable", "upstream: "+err.Error())
		return
	}
	defer resp.Body.Close()
	respHdr := resp.Header.Clone()
	// Relay the upstream length so a truncated fill is detectable by
	// clients instead of ending in a clean-looking chunk terminator.
	if resp.ContentLength >= 0 {
		respHdr.Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	f.publishHeader(resp.StatusCode, respHdr)

	copyEntryHeaders(w.Header(), respHdr)
	w.Header().Set("X-Edge-Cache", "miss")
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	var streamErr error
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			f.appendChunk(buf[:n])
			if _, werr := w.Write(buf[:n]); werr == nil && flusher != nil {
				flusher.Flush()
			}
			p.m.bytesServed.Add(uint64(n))
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			streamErr = rerr
			break
		}
	}
	f.finish(streamErr)
	if streamErr != nil {
		p.m.upstreamErrors.Add(1)
		return
	}
	if resp.StatusCode == http.StatusOK && cacheable(resp.Header) {
		p.commit(p.entryFromResponse(key, resp, f.bytes()))
	}
}

// follow streams another request's in-flight fill.
func (p *Proxy) follow(w http.ResponseWriter, f *fill) {
	status, header, err := f.waitHeader()
	if err != nil {
		p.edgeError(w, http.StatusBadGateway, "unavailable", "upstream: "+err.Error())
		return
	}
	copyEntryHeaders(w.Header(), header)
	w.Header().Set("X-Edge-Cache", "coalesced")
	w.WriteHeader(status)
	flusher, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, done := f.next(off)
		if len(chunk) > 0 {
			if _, werr := w.Write(chunk); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off += len(chunk)
			p.m.bytesServed.Add(uint64(len(chunk)))
		}
		if done {
			return
		}
	}
}

// serveEntry answers from a committed entry: local 304s on matching
// If-None-Match, 206/416 on Range, 200 otherwise.
func (p *Proxy) serveEntry(w http.ResponseWriter, r *http.Request, e cache.Entry, state string) {
	now := p.clk.Now()
	etag := fmt.Sprintf("%q", "v"+strconv.FormatUint(e.Version, 10))
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("X-Edge-Cache", state)
	if ct := e.Metadata[metaContentType]; ct != "" {
		h.Set("Content-Type", ct)
	}
	if fresh := e.FreshFor(now); fresh > 0 {
		h.Set("Cache-Control", "max-age="+strconv.Itoa(int(fresh/time.Second)))
	}
	if age := now.Sub(e.StoredAt); age > 0 {
		h.Set("Age", strconv.Itoa(int(age/time.Second)))
	}

	if matchesETag(r.Header.Get("If-None-Match"), etag) {
		p.m.notModified.Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	body := e.Body
	if spec := r.Header.Get("Range"); spec != "" {
		rg, ok, unsat := parseRange(spec, int64(len(body)))
		if unsat {
			p.m.rangeRejected.Add(1)
			h.Set("Content-Range", fmt.Sprintf("bytes */%d", len(body)))
			w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
			return
		}
		if ok {
			p.m.rangeRequests.Add(1)
			h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", rg.start, rg.end, len(body)))
			h.Set("Content-Length", strconv.FormatInt(rg.length(), 10))
			w.WriteHeader(http.StatusPartialContent)
			w.Write(body[rg.start : rg.end+1])
			p.m.bytesServed.Add(uint64(rg.length()))
			return
		}
	}
	h.Set("Accept-Ranges", "bytes")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
	p.m.bytesServed.Add(uint64(len(body)))
}

// passthrough proxies a request the edge does not cache.
func (p *Proxy) passthrough(w http.ResponseWriter, r *http.Request) {
	p.m.bypass.Add(1)
	u := p.upstream + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
	if err != nil {
		p.edgeError(w, http.StatusBadGateway, "unavailable", err.Error())
		return
	}
	copyProxyHeaders(req.Header, r.Header)
	resp, err := p.hc.Do(req)
	if err != nil {
		p.m.upstreamErrors.Add(1)
		p.edgeError(w, http.StatusBadGateway, "unavailable", "upstream: "+err.Error())
		return
	}
	defer resp.Body.Close()
	w.Header().Set("X-Edge-Cache", "bypass")
	relayResponse(w, resp)
}

// commit stores an entry in memory and journals it.
func (p *Proxy) commit(e cache.Entry) {
	p.mem.Put(e)
	if p.disk != nil {
		p.disk.appendFill(e)
	}
}

// renewEntry extends a 304-validated entry: same body, fresh expiry,
// the current sketch generation as its validation watermark.
func (p *Proxy) renewEntry(e cache.Entry, resp *http.Response) cache.Entry {
	now := p.clk.Now()
	e.StoredAt = now
	e.ExpiresAt = now.Add(p.freshness(resp.Header))
	e.Metadata = cloneMeta(e.Metadata)
	e.Metadata[metaGen] = strconv.FormatUint(p.Generation(), 10)
	return e
}

// entryFromResponse builds the cached representation of a 200 page
// response. Only protocol metadata is retained: key, body, version,
// expiry, content type, and the sketch generation watermark.
func (p *Proxy) entryFromResponse(key string, resp *http.Response, body []byte) cache.Entry {
	now := p.clk.Now()
	e := cache.Entry{
		Key:       key,
		Body:      body,
		Version:   parseVersionETag(resp.Header.Get("ETag")),
		StoredAt:  now,
		ExpiresAt: now.Add(p.freshness(resp.Header)),
		Metadata: map[string]string{
			metaGen: strconv.FormatUint(p.Generation(), 10),
		},
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		e.Metadata[metaContentType] = ct
	}
	return e
}

// freshness derives an entry TTL from upstream Cache-Control.
func (p *Proxy) freshness(h http.Header) time.Duration {
	if maxAge, ok := parseMaxAge(h.Get("Cache-Control")); ok && maxAge > 0 {
		return maxAge
	}
	return p.ttl
}

// upstreamGet issues a GET against the upstream, negotiating the /v1
// surface exactly like internal/httpclient: a non-JSON 404 on a /v1
// path can only be the stdlib mux of a pre-/v1 server, so it latches
// the legacy paths.
func (p *Proxy) upstreamGet(ctx context.Context, endpoint, query string, hdr http.Header) (*http.Response, error) {
	build := func(url string) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		return req, nil
	}
	if !p.legacy.Load() {
		req, err := build(p.upstream + "/v1" + endpoint + query)
		if err != nil {
			return nil, err
		}
		resp, err := p.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusNotFound ||
			strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		p.legacy.Store(true)
	}
	req, err := build(p.upstream + endpoint + query)
	if err != nil {
		return nil, err
	}
	return p.hc.Do(req)
}

// edgeError emits the same JSON error envelope the /v1 API uses.
func (p *Proxy) edgeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]map[string]string{
		"error": {"code": code, "message": message},
	})
}

// --- small helpers -------------------------------------------------------

// cloneMeta copies a metadata map so a renewed entry never aliases the
// stored one's map.
func cloneMeta(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// entryGen reads the sketch-generation watermark of an entry.
func entryGen(e cache.Entry) uint64 {
	v, _ := strconv.ParseUint(e.Metadata[metaGen], 10, 64)
	return v
}

// cacheable reports whether the upstream allows storing the response.
func cacheable(h http.Header) bool {
	cc := strings.ToLower(h.Get("Cache-Control"))
	return !strings.Contains(cc, "no-store") && !strings.Contains(cc, "private")
}

// matchesETag checks a client If-None-Match against the entry's ETag
// (weak-comparison: a W/ prefix on either side is ignored).
func matchesETag(inm, etag string) bool {
	if inm == "" {
		return false
	}
	strip := func(s string) string { return strings.TrimPrefix(strings.TrimSpace(s), "W/") }
	if strings.TrimSpace(inm) == "*" {
		return true
	}
	want := strip(etag)
	for _, cand := range strings.Split(inm, ",") {
		if strip(cand) == want {
			return true
		}
	}
	return false
}

// parseVersionETag extracts the version from the server's `"v<n>"` ETags.
func parseVersionETag(tag string) uint64 {
	tag = strings.Trim(strings.TrimPrefix(strings.TrimSpace(tag), "W/"), `"`)
	if !strings.HasPrefix(tag, "v") {
		return 0
	}
	v, _ := strconv.ParseUint(tag[1:], 10, 64)
	return v
}

// parseMaxAge extracts max-age seconds from a Cache-Control header.
func parseMaxAge(cc string) (time.Duration, bool) {
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "max-age="); ok {
			secs, err := strconv.Atoi(rest)
			if err != nil || secs < 0 {
				return 0, false
			}
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}

// copyTraceparent forwards the anonymous trace identity of an incoming
// request; the edge never invents or strips one mid-trace.
func copyTraceparent(r *http.Request, dst http.Header) {
	if tp := r.Header.Get(tracectx.Header); tp != "" {
		if _, ok := tracectx.ParseTraceparent(tp); ok {
			dst.Set(tracectx.Header, tp)
		}
	}
}

// copyEntryHeaders copies the response headers worth relaying from an
// origin fetch (hop-by-hop and connection headers stay behind).
func copyEntryHeaders(dst, src http.Header) {
	for _, k := range []string{"Content-Type", "Content-Length", "ETag", "Cache-Control", "X-Blocks", "X-Served-By", "X-Sketch-Generation"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// hopByHop lists the headers a proxy must not forward (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// relayResponse copies an upstream response verbatim.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
