// Durability surface of the estimator: deterministic export/import of the
// per-resource statistics so the durable snapshot can persist adaptive
// TTL state without reaching into private fields. The encoding carries
// resource IDs and timing statistics only — never identity data.
package ttl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// export format: magic "SKTE", u8 version, u32 resource count, then per
// resource (IDs sorted): u32 id length, id bytes, i64 lastRead UnixNano,
// i64 lastWrite UnixNano (zero instants encode as math.MinInt64), f64
// bits of both EWMAs, u64 reads, u64 writes. Sorted IDs make equal states
// export byte-identical blobs.
var estMagic = [4]byte{'S', 'K', 'T', 'E'}

const estVersion = 1

// zeroInstant marks a zero time.Time in the encoding; UnixNano of the
// zero time is implementation-defined territory we stay out of.
const zeroInstant = int64(math.MinInt64)

func encodeInstant(t time.Time) int64 {
	if t.IsZero() {
		return zeroInstant
	}
	return t.UnixNano()
}

func decodeInstant(v int64) time.Time {
	if v == zeroInstant {
		return time.Time{}
	}
	return time.Unix(0, v)
}

// ExportState serializes every tracked resource's statistics.
func (e *Estimator) ExportState() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.res))
	for id := range e.res {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	out := make([]byte, 0, 8+len(ids)*64)
	out = append(out, estMagic[:]...)
	out = append(out, estVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		s := e.res[id]
		out = binary.BigEndian.AppendUint32(out, uint32(len(id)))
		out = append(out, id...)
		out = binary.BigEndian.AppendUint64(out, uint64(encodeInstant(s.lastRead)))
		out = binary.BigEndian.AppendUint64(out, uint64(encodeInstant(s.lastWrite)))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(s.readGapEWMA))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(s.writeGapEWMA))
		out = binary.BigEndian.AppendUint64(out, s.reads)
		out = binary.BigEndian.AppendUint64(out, s.writes)
	}
	return out
}

// ImportState replaces the estimator's tracked state with a previously
// exported blob. EWMAs and counters resume exactly where they left off;
// the first post-import observation of a resource extends its gap EWMA
// from the restored last-seen instant, same as if the process had never
// died.
func (e *Estimator) ImportState(data []byte) error {
	if len(data) < 9 || [4]byte(data[0:4]) != estMagic {
		return errors.New("ttl: bad state magic")
	}
	if data[4] != estVersion {
		return fmt.Errorf("ttl: unsupported state version %d", data[4])
	}
	n := int(binary.BigEndian.Uint32(data[5:9]))
	off := 9
	res := make(map[string]*resourceStats, n)
	for i := 0; i < n; i++ {
		if len(data)-off < 4 {
			return errors.New("ttl: truncated state entry header")
		}
		idLen := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if idLen < 0 || len(data)-off < idLen+48 {
			return errors.New("ttl: truncated state entry")
		}
		id := string(data[off : off+idLen])
		off += idLen
		s := &resourceStats{
			lastRead:     decodeInstant(int64(binary.BigEndian.Uint64(data[off:]))),
			lastWrite:    decodeInstant(int64(binary.BigEndian.Uint64(data[off+8:]))),
			readGapEWMA:  math.Float64frombits(binary.BigEndian.Uint64(data[off+16:])),
			writeGapEWMA: math.Float64frombits(binary.BigEndian.Uint64(data[off+24:])),
			reads:        binary.BigEndian.Uint64(data[off+32:]),
			writes:       binary.BigEndian.Uint64(data[off+40:]),
		}
		off += 48
		res[id] = s
	}
	if off != len(data) {
		return errors.New("ttl: trailing bytes in state blob")
	}
	e.mu.Lock()
	e.res = res
	e.mu.Unlock()
	return nil
}

// Reset drops all tracked state, as if freshly constructed. Recovery
// calls it before applying a snapshot.
func (e *Estimator) Reset() {
	e.mu.Lock()
	e.res = make(map[string]*resourceStats)
	e.mu.Unlock()
}
