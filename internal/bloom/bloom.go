// Package bloom implements the probabilistic set representations that back
// the Cache Sketch: a plain Bloom filter (the compact form shipped to
// clients) and a counting Bloom filter (the mutable form maintained at the
// server, which supports removal when a resource's last cached copy
// expires).
//
// Hashing uses the Kirsch–Mitzenmacher double-hashing scheme over FNV-1a:
// two independent 32-bit hashes h1, h2 are derived from one 64-bit FNV
// digest and the k probe positions are g_i = h1 + i·h2 (mod m). This gives
// the asymptotically optimal false-positive behaviour of k independent
// hash functions at the cost of one digest per key.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Filter is a classic Bloom filter over string keys. It is NOT safe for
// concurrent mutation; the Cache Sketch wraps it with its own
// synchronization because sketch updates and serialization must be atomic
// with respect to each other anyway.
type Filter struct {
	bits []uint64
	m    uint32 // number of bits
	k    uint32 // number of probes
	n    uint64 // number of Add calls (for fill estimation)
}

// NewFilter creates a filter with m bits and k probes. m is rounded up to
// at least 64; k is clamped to [1, 32].
func NewFilter(m, k uint32) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    k,
	}
}

// NewFilterForCapacity sizes a filter for n expected entries at the target
// false-positive rate p using the standard optima m = -n·ln p / (ln 2)² and
// k = (m/n)·ln 2.
func NewFilterForCapacity(n uint64, p float64) *Filter {
	m, k := OptimalParams(n, p)
	return NewFilter(m, k)
}

// OptimalParams returns the optimal (m, k) for n entries at false-positive
// rate p. Degenerate inputs fall back to a small sane filter.
func OptimalParams(n uint64, p float64) (m, k uint32) {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	ln2 := math.Ln2
	mf := -float64(n) * math.Log(p) / (ln2 * ln2)
	kf := mf / float64(n) * ln2
	m = uint32(math.Ceil(mf))
	k = uint32(math.Round(kf))
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return m, k
}

// FNV-1a parameters (64-bit variant). The digest is computed inline so
// that a probe costs no heap allocation: hash/fnv's New64a forces a
// hash.Hash64 allocation plus a string→[]byte conversion, which is pure
// overhead for a loop the compiler can keep entirely in registers.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Probes is the precomputed Kirsch–Mitzenmacher probe pair for one key:
// the two independent 32-bit base hashes h1, h2 from which all k probe
// positions g_i = h1 + i·h2 (mod m) derive. Computing it once per key and
// sharing it between Filter, Counting, and the Cache Sketch's
// Snapshot.MightBeStale is what makes a sketch check a zero-allocation
// operation.
type Probes struct {
	h1, h2 uint32
}

// ProbesFor derives the probe pair for key with one inline FNV-1a pass.
// It allocates nothing and is identical in distribution to the previous
// hash/fnv-based derivation (same algorithm, same digest).
//
//speedkit:hotpath
func ProbesFor(key string) Probes {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	// h2 must be odd so probe positions cycle through all residues when m
	// is a power of two, and nonzero in general.
	h2 |= 1
	return Probes{h1: h1, h2: h2}
}

// hashKey derives the two base hashes for a key.
func hashKey(key string) (h1, h2 uint32) {
	p := ProbesFor(key)
	return p.h1, p.h2
}

// BatchSize is the fan-out of the batched probe paths: ProbesForBatch and
// the *Batch filter operations process keys in groups of up to BatchSize,
// so a caller holding a lock pays its acquisition once per group instead
// of once per key, and the probe pairs for a group stay resident in a
// single stack-allocated array while its bits are tested.
const BatchSize = 8

// ProbesForBatch derives probe pairs for up to BatchSize keys into dst.
// It is the vectorized form of ProbesFor — same digest per key, batched so
// the hash loop runs back-to-back over the group without interleaved bit
// tests — and allocates nothing.
//
//speedkit:hotpath
func ProbesForBatch(keys []string, dst *[BatchSize]Probes) {
	if len(keys) > BatchSize {
		keys = keys[:BatchSize]
	}
	for i, k := range keys {
		dst[i] = ProbesFor(k)
	}
}

// probe returns the bit index of the i-th probe for the given base hashes.
func probe(h1, h2, i, m uint32) uint32 {
	return (h1 + i*h2) % m
}

// bit returns the i-th probe position for p in a filter of m bits.
func (p Probes) bit(i, m uint32) uint32 { return probe(p.h1, p.h2, i, m) }

// Add inserts key.
func (f *Filter) Add(key string) {
	f.AddProbes(ProbesFor(key))
}

// AddProbes inserts the key whose precomputed probe pair is p. Callers
// that touch several filters for the same key derive the pair once and
// share it.
func (f *Filter) AddProbes(p Probes) {
	for i := uint32(0); i < f.k; i++ {
		b := p.bit(i, f.m)
		f.bits[b/64] |= 1 << (b % 64)
	}
	f.n++
}

// AddBatch inserts every key, processing the keys in groups of BatchSize:
// each group's probe pairs are derived in one pass and then applied
// back-to-back. The resulting filter state is bit-for-bit identical to
// calling Add for each key in order (insertion is commutative idempotent
// bit-setting), which the equivalence tests pin via MarshalBinary.
func (f *Filter) AddBatch(keys []string) {
	var pb [BatchSize]Probes
	for off := 0; off < len(keys); off += BatchSize {
		end := off + BatchSize
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		ProbesForBatch(chunk, &pb)
		for i := range chunk {
			f.AddProbes(pb[i])
		}
	}
}

// Contains reports whether key may be in the set. False positives are
// possible; false negatives are not. Allocates nothing.
//
//speedkit:hotpath
func (f *Filter) Contains(key string) bool {
	return f.ContainsProbes(ProbesFor(key))
}

// ContainsBatch tests every key, writing Contains(keys[i]) into hits[i].
// hits must be at least as long as keys. Keys are processed in groups of
// BatchSize — probe pairs first, bit tests second — so the hash loops and
// the word probes each run back-to-back over the group, and a caller
// amortizes one lock acquisition (or one snapshot load) over the whole
// batch. Allocates nothing and answers identically to per-key Contains.
//
//speedkit:hotpath
func (f *Filter) ContainsBatch(keys []string, hits []bool) {
	var pb [BatchSize]Probes
	for off := 0; off < len(keys); off += BatchSize {
		end := off + BatchSize
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		ProbesForBatch(chunk, &pb)
		for i := range chunk {
			hits[off+i] = f.ContainsProbes(pb[i])
		}
	}
}

// ContainsProbes is Contains for a precomputed probe pair.
//
//speedkit:hotpath
func (f *Filter) ContainsProbes(p Probes) bool {
	for i := uint32(0); i < f.k; i++ {
		b := p.bit(i, f.m)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Saturate sets every bit, turning the filter into the all-stale sketch:
// Contains returns true for every key. Crash recovery publishes a
// saturated sketch during its conservative cold-start window so that,
// with zero surviving coherence history, every client revalidates — the
// direction Bloom false positives are always allowed to err in.
func (f *Filter) Saturate() {
	for i := range f.bits {
		f.bits[i] = ^uint64(0)
	}
	f.n = uint64(f.m)
}

// Bits returns m, the filter's size in bits.
func (f *Filter) Bits() uint32 { return f.m }

// Hashes returns k, the number of probes.
func (f *Filter) Hashes() uint32 { return f.k }

// SizeBytes returns the in-memory payload size of the bit array, which is
// also the serialized size minus the fixed header. This is what the Cache
// Sketch reports as "sketch bytes on the wire".
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// FillRatio returns the fraction of set bits, the quantity that determines
// the realized false-positive rate ((fill)^k).
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFPR estimates the current false-positive probability from the
// realized fill ratio.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// EstimatedCardinality estimates the number of distinct inserted keys from
// the fill ratio using the standard inversion n ≈ -(m/k)·ln(1 - X/m).
func (f *Filter) EstimatedCardinality() float64 {
	fill := f.FillRatio()
	if fill >= 1 {
		return math.Inf(1)
	}
	return -float64(f.m) / float64(f.k) * math.Log(1-fill)
}

// ErrParamMismatch is the sentinel for every merge/union of filters whose
// parameters (m, k) disagree. Unioning incompatible filters would scatter
// probe positions and silently corrupt the merged sketch — bits set for one
// key could satisfy Contains for arbitrary other keys, or worse, a flatten
// of the corrupt union could miss keys and break Δ-atomicity. Callers
// (notably the cluster merge layer) match it with errors.Is.
var ErrParamMismatch = errors.New("bloom: filter parameter mismatch")

// ErrNilFilter is returned when merging with a nil filter.
var ErrNilFilter = errors.New("bloom: merge with nil filter")

// mismatchError wraps ErrParamMismatch with both parameter sets so the
// error message pinpoints which dimension disagrees.
func mismatchError(m1, k1, m2, k2 uint32) error {
	return fmt.Errorf("%w (m=%d,k=%d vs m=%d,k=%d)", ErrParamMismatch, m1, k1, m2, k2)
}

// Union ORs other into f. Both filters must have identical parameters;
// a mismatch returns an error wrapping ErrParamMismatch and leaves f
// untouched.
func (f *Filter) Union(other *Filter) error {
	if other == nil {
		return ErrNilFilter
	}
	if f.m != other.m || f.k != other.k {
		return mismatchError(f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Merge is Union under the name the cluster merge layer uses; it exists so
// Filter and Counting expose the same merge verb with the same typed
// error contract.
func (f *Filter) Merge(other *Filter) error { return f.Union(other) }

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		bits: make([]uint64, len(f.bits)),
		m:    f.m,
		k:    f.k,
		n:    f.n,
	}
	copy(c.bits, f.bits)
	return c
}

func popcount(x uint64) int {
	// math/bits would be fine too, but keeping the hot path inlined and
	// explicit documents the cost model used in the size benchmarks.
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// --- serialization -------------------------------------------------------

// marshal header: magic "SKBF", version, k, m, then the bit words.
var filterMagic = [4]byte{'S', 'K', 'B', 'F'}

const filterVersion = 1

// MarshalBinary encodes the filter for transfer to clients. The format is
// stable: 4-byte magic, 1-byte version, 4-byte big-endian k, 4-byte m,
// followed by the raw little-endian bit words.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 13+len(f.bits)*8)
	out = append(out, filterMagic[:]...)
	out = append(out, filterVersion)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], f.k)
	binary.BigEndian.PutUint32(hdr[4:8], f.m)
	out = append(out, hdr[:]...)
	var w [8]byte
	for _, word := range f.bits {
		binary.LittleEndian.PutUint64(w[:], word)
		out = append(out, w[:]...)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter produced by MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 13 {
		return errors.New("bloom: truncated filter")
	}
	if [4]byte(data[0:4]) != filterMagic {
		return errors.New("bloom: bad magic")
	}
	if data[4] != filterVersion {
		return fmt.Errorf("bloom: unsupported version %d", data[4])
	}
	k := binary.BigEndian.Uint32(data[5:9])
	m := binary.BigEndian.Uint32(data[9:13])
	nwords := int((m + 63) / 64)
	if len(data) != 13+nwords*8 {
		return fmt.Errorf("bloom: payload length %d does not match m=%d", len(data), m)
	}
	bits := make([]uint64, nwords)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(data[13+i*8:])
	}
	f.bits, f.m, f.k, f.n = bits, m, k, 0
	return nil
}
