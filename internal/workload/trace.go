package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace export/replay: generated op streams can be serialized as JSON
// Lines and replayed later, so an interesting workload (a burst that
// exposed a bug, a field-captured session mix) becomes a fixed artifact
// that every system variant replays identically.

// traceRecord is the wire form of one Op.
type traceRecord struct {
	Kind      string `json:"kind"`
	UserIdx   int    `json:"user,omitempty"`
	Path      string `json:"path,omitempty"`
	ProductID string `json:"product,omitempty"`
	Category  string `json:"category,omitempty"`
	GapMicros int64  `json:"gap_us"`
}

var kindNames = map[OpKind]string{
	ViewHome: "view-home", ViewCategory: "view-category", ViewProduct: "view-product",
	AddToCart: "add-to-cart", Checkout: "checkout",
	UpdatePrice: "update-price", UpdateStock: "update-stock",
}

var kindsByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteTrace serializes ops as JSON Lines.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, op := range ops {
		name, ok := kindNames[op.Kind]
		if !ok {
			return fmt.Errorf("workload: trace op %d: unknown kind %d", i, int(op.Kind))
		}
		rec := traceRecord{
			Kind:      name,
			UserIdx:   op.UserIdx,
			Path:      op.Path,
			ProductID: op.ProductID,
			Category:  op.Category,
			GapMicros: op.Gap.Microseconds(),
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: trace op %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a JSON Lines trace produced by WriteTrace.
func ReadTrace(r io.Reader) ([]Op, error) {
	var ops []Op
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var rec traceRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return ops, nil
			}
			return nil, fmt.Errorf("workload: trace line %d: %w", i, err)
		}
		kind, ok := kindsByName[rec.Kind]
		if !ok {
			return nil, fmt.Errorf("workload: trace line %d: unknown kind %q", i, rec.Kind)
		}
		if rec.GapMicros < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative gap", i)
		}
		ops = append(ops, Op{
			Kind:      kind,
			UserIdx:   rec.UserIdx,
			Path:      rec.Path,
			ProductID: rec.ProductID,
			Category:  rec.Category,
			Gap:       time.Duration(rec.GapMicros) * time.Microsecond,
		})
	}
}
