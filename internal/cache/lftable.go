package cache

import (
	"sync"
	"sync/atomic"
)

// lfTable is the lock-free read mirror behind unbounded stores: an
// open-addressed hash table whose slots are atomic entry pointers, read
// with no lock and mutated only under a single writer mutex (RCU style).
// It exists because the per-request Get path cannot afford sync.Map's
// interface-key hashing or a mutex: a load here is one inline FNV-1a
// hash, an atomic index load, and a short linear probe.
//
// Concurrency contract:
//   - load is safe from any goroutine with no lock and never allocates.
//   - store/delete serialize on wmu. Per-key ordering is already total
//     (the owning shard's lock is held around every mirror write), so
//     wmu only coordinates cross-key writers sharing one table.
//   - A published index is immutable in shape; writers mutate slots of
//     the current index atomically and publish a rebuilt index on
//     resize. Readers caught on a superseded index during a rebuild
//     linearize just before the writes they miss, which is exactly the
//     guarantee a racy cache read has anyway.
type lfTable struct {
	wmu  sync.Mutex
	idx  atomic.Pointer[lfIndex]
	live int // occupied minus tombstones; guarded by wmu
	used int // occupied including tombstones; guarded by wmu
}

// lfIndex is one published generation of the table. The slice header and
// mask never change after publication; slot contents are atomic.
type lfIndex struct {
	mask  uint64
	slots []atomic.Pointer[Entry]
}

// lfTombstone marks a deleted slot. Probes skip it; rebuilds drop it.
var lfTombstone = new(Entry)

// lfMinSlots is the smallest table size (power of two).
const lfMinSlots = 64

func newLFTable() *lfTable {
	t := &lfTable{}
	t.idx.Store(&lfIndex{
		mask:  lfMinSlots - 1,
		slots: make([]atomic.Pointer[Entry], lfMinSlots),
	})
	return t
}

// lfHash is inline FNV-1a with the high half folded in, matching the
// store's shard router (see shardFor for why the fold matters).
func lfHash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h ^ h>>32
}

// load returns the entry stored under key, or nil. Lock-free; the probe
// always terminates because writers keep at least a quarter of every
// published index's slots nil.
//
//speedkit:hotpath
func (t *lfTable) load(key string) *Entry {
	idx := t.idx.Load()
	for i := lfHash(key) & idx.mask; ; i = (i + 1) & idx.mask {
		e := idx.slots[i].Load()
		if e == nil {
			return nil
		}
		if e != lfTombstone && e.Key == key {
			return e
		}
	}
}

// store inserts or replaces the entry under key.
func (t *lfTable) store(key string, e *Entry) {
	t.wmu.Lock()
	idx := t.idx.Load()
	firstTomb := -1
	for i := lfHash(key) & idx.mask; ; i = (i + 1) & idx.mask {
		cur := idx.slots[i].Load()
		if cur == nil {
			// New key: reuse the earliest tombstone on the probe path if
			// one exists, otherwise claim this empty slot.
			if firstTomb >= 0 {
				idx.slots[firstTomb].Store(e)
			} else {
				idx.slots[i].Store(e)
				t.used++
			}
			t.live++
			break
		}
		if cur == lfTombstone {
			if firstTomb < 0 {
				firstTomb = int(i)
			}
			continue
		}
		if cur.Key == key {
			idx.slots[i].Store(e)
			break
		}
	}
	if t.used*4 >= len(idx.slots)*3 {
		t.rebuildLocked(idx)
	}
	t.wmu.Unlock()
}

// delete removes key if present, reporting whether it was.
func (t *lfTable) delete(key string) bool {
	t.wmu.Lock()
	idx := t.idx.Load()
	deleted := false
	for i := lfHash(key) & idx.mask; ; i = (i + 1) & idx.mask {
		cur := idx.slots[i].Load()
		if cur == nil {
			break
		}
		if cur != lfTombstone && cur.Key == key {
			idx.slots[i].Store(lfTombstone)
			t.live--
			deleted = true
			break
		}
	}
	t.wmu.Unlock()
	return deleted
}

// rebuildLocked publishes a fresh index sized for the live count with all
// tombstones dropped. The caller must hold t.wmu.
func (t *lfTable) rebuildLocked(old *lfIndex) {
	n := lfMinSlots
	// Size for a ≤ 1/4 load factor so probes stay short and every
	// published index keeps nil slots (the load termination guarantee).
	for n < t.live*4 {
		n <<= 1
	}
	next := &lfIndex{mask: uint64(n - 1), slots: make([]atomic.Pointer[Entry], n)}
	for i := range old.slots {
		e := old.slots[i].Load()
		if e == nil || e == lfTombstone {
			continue
		}
		for j := lfHash(e.Key) & next.mask; ; j = (j + 1) & next.mask {
			if next.slots[j].Load() == nil {
				next.slots[j].Store(e)
				break
			}
		}
	}
	t.used = t.live
	t.idx.Store(next)
}
