// Package lint is a repo-specific static-analysis suite for the Speed Kit
// reproduction. It proves, on every build, the two invariants the paper's
// claims rest on and that only discipline — not the compiler — otherwise
// protects:
//
//   - the GDPR boundary: shared-infrastructure packages (CDN, caches,
//     sketches, invalidation) never see identity-bearing code or types;
//   - clock and randomness discipline: all time and randomness flows
//     through injectable sources, so the Δ-atomicity and simulation
//     experiments stay deterministic and replayable.
//
// The engine is intentionally stdlib-only (go/parser, go/ast, go/types,
// go/importer): the build environment may be offline and the module keeps
// zero dependencies, so golang.org/x/tools/go/analysis is off the table.
// The shapes below mirror that framework loosely, which keeps a later
// migration mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check. Exactly one of Run and RunModule
// is set: Run analyzers see one package at a time, RunModule analyzers
// (the interprocedural ones) see every loaded package at once so they
// can build a whole-module call graph.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "gdprboundary".
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer pins.
	Doc string
	// Run inspects a package and reports findings through the pass.
	Run func(*Pass)
	// RunModule inspects the whole module in one pass.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax, library files first, then any
	// in-package _test.go files. Use IsTestFile to tell them apart.
	Files []*ast.File
	// Path is the package's import path. For fixture packages this is the
	// synthetic path the fixture was loaded under.
	Path string
	Pkg  *types.Package
	Info *types.Info

	testFiles map[*ast.File]bool
	report    func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// ModulePass carries a module-level analyzer's view of every loaded
// package. All packages share one FileSet by loader construction.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	report func(Diagnostic)
}

// Reportf records a finding at pos, resolved through fset (the shared
// FileSet of the packages under analysis).
func (p *ModulePass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical "file:line: [analyzer]
// message" form the driver prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GDPRBoundary,
		ClockDiscipline,
		LockCheck,
		RandDiscipline,
		ObsLabels,
		PIIFlow,
		HotPathAlloc,
	}
}

// Run applies every analyzer to every package, drops findings covered by
// a "//lint:ignore <analyzer> <reason>" directive, and returns the rest
// sorted by file, line, and analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Analyzer: a, Pkgs: pkgs, report: report})
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Path:      pkg.Path,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				testFiles: pkg.testFiles,
				report:    report,
			}
			a.Run(pass)
		}
	}
	diags = filterSuppressed(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// pathHasSegment reports whether the slash-separated import path contains
// seg as a consecutive run of segments ("internal/cache" matches
// "speedkit/internal/cache" but not "speedkit/internal/cachesketch").
func pathHasSegment(path, seg string) bool {
	parts := strings.Split(path, "/")
	want := strings.Split(seg, "/")
	for i := 0; i+len(want) <= len(parts); i++ {
		match := true
		for j := range want {
			if parts[i+j] != want[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
