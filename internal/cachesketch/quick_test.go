package cachesketch

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"speedkit/internal/clock"
)

// quickOp is one randomly generated protocol event. testing/quick fills
// the fields; interpretation maps them onto protocol operations.
type quickOp struct {
	Kind    uint8 // % 4 → cached-read, write, advance, snapshot-check
	Key     uint8 // % 8 → one of eight resources
	Seconds uint8 // time parameter
}

// TestQuickServerSketchInvariants drives the server sketch with random
// op sequences and checks two invariants after every step:
//
//  1. No false negatives: every resource that had a write while a
//     reported copy was unexpired must be in the sketch until that copy's
//     expiry (tracked by a naive reference model).
//  2. Conservative only: the sketch may track more (false positives are
//     legal) but Contains must never be false when the model says true.
func TestQuickServerSketchInvariants(t *testing.T) {
	f := func(ops []quickOp) bool {
		clk := clock.NewSimulated(time.Time{})
		srv := NewServer(ServerConfig{Capacity: 100, FalsePositiveRate: 0.01, Clock: clk})

		// Reference model: per key, the maximum reported expiry and the
		// deadline until which the key must be tracked (set on write).
		maxExpiry := map[string]time.Time{}
		mustTrackUntil := map[string]time.Time{}

		for _, op := range ops {
			key := fmt.Sprintf("/r/%d", op.Key%8)
			switch op.Kind % 4 {
			case 0: // cached read with TTL 1..64s
				exp := clk.Now().Add(time.Duration(op.Seconds%64+1) * time.Second)
				srv.ReportCachedRead(key, exp)
				if exp.After(maxExpiry[key]) {
					maxExpiry[key] = exp
				}
			case 1: // write
				srv.ReportWrite(key)
				if exp, ok := maxExpiry[key]; ok && exp.After(clk.Now()) {
					if exp.After(mustTrackUntil[key]) {
						mustTrackUntil[key] = exp
					}
				}
			case 2: // time passes 0..16s
				clk.Advance(time.Duration(op.Seconds%16) * time.Second)
			case 3: // invariant probe via snapshot
				sn := srv.Snapshot()
				for k, until := range mustTrackUntil {
					if clk.Now().Before(until) && !sn.MightBeStale(k) {
						return false // false negative — protocol broken
					}
				}
			}
			// Invariant 1 on the live server after every op.
			for k, until := range mustTrackUntil {
				if clk.Now().Before(until) && !srv.Contains(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSketchDrainsWhenQuiescent: after arbitrary activity, once all
// reported expirations have passed the sketch must be empty — no leaks.
func TestQuickSketchDrainsWhenQuiescent(t *testing.T) {
	f := func(ops []quickOp) bool {
		clk := clock.NewSimulated(time.Time{})
		srv := NewServer(ServerConfig{Capacity: 100, Clock: clk})
		for _, op := range ops {
			key := fmt.Sprintf("/r/%d", op.Key%8)
			switch op.Kind % 3 {
			case 0:
				srv.ReportCachedRead(key, clk.Now().Add(time.Duration(op.Seconds%64+1)*time.Second))
			case 1:
				srv.ReportWrite(key)
			case 2:
				clk.Advance(time.Duration(op.Seconds%8) * time.Second)
			}
		}
		clk.Advance(65 * time.Second) // beyond every possible TTL
		st := srv.Stats()
		return st.Tracked == 0 && st.TableSize == 0 && st.Adds == st.Removes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
