package invalidb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// TestInvalidationCompleteness is the semantic guarantee the cached
// listing pages depend on: whenever a mutation changes a registered
// query's rendered result set, the engine must emit an invalidation for
// that query (missing one would mean a permanently stale page, which no
// Δ can fix). The test compares the engine's signals against ground
// truth computed by re-evaluating every query before and after each of a
// few thousand random mutations.
func TestInvalidationCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := storage.NewDocumentStore(nil)
	eng := New(Config{Shards: 4})

	queries := map[string]query.Query{
		"/cheap":       query.MustParse(`items WHERE price < 50 ORDER BY price`),
		"/mid":         query.MustParse(`items WHERE price >= 50 AND price < 150 ORDER BY price DESC LIMIT 5`),
		"/cat-a":       query.MustParse(`items WHERE cat = "a"`),
		"/cat-b-cheap": query.MustParse(`items WHERE cat = "b" AND price < 100 LIMIT 3`),
		"/named":       query.MustParse(`items WHERE name CONTAINS "x" ORDER BY name`),
		"/all":         query.New("items", nil).WithLimit(10),
	}
	for id, q := range queries {
		eng.Register(id, q)
	}

	var fired map[string]bool
	eng.OnInvalidation(func(inv Invalidation) { fired[inv.RegistrationID] = true })
	cancel := eng.AttachTo(docs)
	defer cancel()

	snapshot := func() map[string][]map[string]any {
		out := make(map[string][]map[string]any, len(queries))
		for id, q := range queries {
			out[id] = docs.Query(q)
		}
		return out
	}

	randomDoc := func() map[string]any {
		name := ""
		if rng.Float64() < 0.5 {
			name = fmt.Sprintf("x-%d", rng.Intn(5))
		} else {
			name = fmt.Sprintf("y-%d", rng.Intn(5))
		}
		return map[string]any{
			"price": float64(rng.Intn(200)),
			"cat":   []string{"a", "b", "c"}[rng.Intn(3)],
			"name":  name,
		}
	}

	ids := make([]string, 25)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%02d", i)
	}

	misses := 0
	for step := 0; step < 3000; step++ {
		before := snapshot()
		fired = map[string]bool{}

		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(3) {
		case 0:
			// Upsert handles both insert and replace.
			docs.Upsert("items", id, randomDoc())
		case 1:
			_ = docs.Patch("items", id, map[string]any{"price": float64(rng.Intn(200))})
		case 2:
			_ = docs.Delete("items", id)
		}

		after := snapshot()
		for qid := range queries {
			if !reflect.DeepEqual(before[qid], after[qid]) && !fired[qid] {
				misses++
				t.Errorf("step %d: result of %s changed without invalidation", step, qid)
				if misses > 5 {
					t.Fatal("too many completeness misses")
				}
			}
		}
	}
}

// TestInvalidationPrecisionBound quantifies over-invalidation: signals
// for queries whose rendered result did NOT change (legal but each one
// costs a purge). For this LIMIT 3 query over ~10 matching docs, most
// membership changes happen beyond the cutoff, so a majority of signals
// are spurious by construction — the engine matches predicates, not
// result windows. The bound documents that trade-off; pushing precision
// higher would require the matcher to maintain materialized top-K state
// per query (the design the paper family's InvaliDB implements for its
// sorted real-time queries).
func TestInvalidationPrecisionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := storage.NewDocumentStore(nil)
	eng := New(Config{Shards: 4})
	q := query.MustParse(`items WHERE price < 100 ORDER BY price LIMIT 3`)
	eng.Register("/q", q)

	var signals int
	eng.OnInvalidation(func(Invalidation) { signals++ })
	cancel := eng.AttachTo(docs)
	defer cancel()

	spurious := 0
	for step := 0; step < 2000; step++ {
		before := docs.Query(q)
		sigBefore := signals
		id := fmt.Sprintf("d%d", rng.Intn(20))
		docs.Upsert("items", id, map[string]any{"price": float64(rng.Intn(200))})
		if signals > sigBefore {
			after := docs.Query(q)
			if reflect.DeepEqual(before, after) {
				spurious++
			}
		}
	}
	if signals == 0 {
		t.Fatal("vacuous: no signals at all")
	}
	if ratio := float64(spurious) / float64(signals); ratio > 0.8 {
		t.Fatalf("spurious invalidation ratio %.2f too high (%d/%d)", ratio, spurious, signals)
	}
	// And never a completeness miss: every real change must have fired.
	// (Covered exhaustively by TestInvalidationCompleteness.)
}
