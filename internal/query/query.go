package query

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a declarative read over one collection: filter, optional sort,
// optional limit. Query results are first-class cacheable resources in
// Speed Kit — the query's canonical ID is the cache key, and the
// invalidation engine watches the change stream to decide when a cached
// result set may have changed.
type Query struct {
	Collection string
	Filter     Predicate
	SortField  string
	Descending bool
	Limit      int // 0 means unlimited
}

// New returns a query over collection with the given filter. A nil filter
// matches every document.
func New(collection string, filter Predicate) Query {
	if filter == nil {
		filter = True{}
	}
	return Query{Collection: collection, Filter: filter}
}

// OrderBy returns a copy sorted by field (ascending unless desc).
func (q Query) OrderBy(field string, desc bool) Query {
	q.SortField = field
	q.Descending = desc
	return q
}

// WithLimit returns a copy limited to n results.
func (q Query) WithLimit(n int) Query {
	if n < 0 {
		n = 0
	}
	q.Limit = n
	return q
}

// ID returns the canonical cache key for this query. Two queries with the
// same canonical form map to the same key, so permuted AND operands or
// reordered IN sets share one cached result.
func (q Query) ID() string {
	var b strings.Builder
	b.WriteString("q:")
	b.WriteString(q.Collection)
	b.WriteString("?")
	if q.Filter != nil {
		b.WriteString(q.Filter.Canonical())
	} else {
		b.WriteString("TRUE")
	}
	if q.SortField != "" {
		dir := "asc"
		if q.Descending {
			dir = "desc"
		}
		fmt.Fprintf(&b, "&sort=%s:%s", q.SortField, dir)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, "&limit=%d", q.Limit)
	}
	return b.String()
}

// Match reports whether a single document satisfies the query filter.
func (q Query) Match(doc map[string]any) bool {
	if q.Filter == nil {
		return true
	}
	return q.Filter.Match(doc)
}

// Apply evaluates the query against an in-memory snapshot of documents,
// returning matching documents in sorted, limited order. The input slice
// is not modified.
func (q Query) Apply(docs []map[string]any) []map[string]any {
	out := make([]map[string]any, 0, len(docs))
	for _, d := range docs {
		if q.Match(d) {
			out = append(out, d)
		}
	}
	if q.SortField != "" {
		field, desc := q.SortField, q.Descending
		sort.SliceStable(out, func(i, j int) bool {
			a, aok := lookup(out[i], field)
			b, bok := lookup(out[j], field)
			if !aok || !bok {
				// Missing sort keys order last regardless of direction.
				return aok && !bok
			}
			c, comparable := compare(a, b)
			if !comparable {
				return false
			}
			if desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// EqualityLookups extracts the field→value pairs the predicate pins with
// top-level equality: a bare Eq, or the Eq legs of a top-level And. A
// document can only match the predicate if it carries these exact values,
// which lets a store answer the query from an equality index and apply
// the full filter only to the candidates. Returns nil when no equality
// legs exist.
func EqualityLookups(p Predicate) map[string]any {
	switch c := p.(type) {
	case *Cmp:
		if c.Op == OpEq {
			return map[string]any{c.Field: c.Value}
		}
	case And:
		out := map[string]any{}
		for _, leg := range c {
			if cmp, ok := leg.(*Cmp); ok && cmp.Op == OpEq {
				out[cmp.Field] = cmp.Value
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return nil
}

// ReadsField reports whether the query's filter or sort reads the given
// field. The invalidation engine uses this to skip queries that cannot be
// affected by a write that only touched other fields.
func (q Query) ReadsField(field string) bool {
	if q.SortField == field {
		return true
	}
	if q.Filter == nil {
		return false
	}
	fields := map[string]struct{}{}
	q.Filter.Fields(fields)
	_, ok := fields[field]
	return ok
}
