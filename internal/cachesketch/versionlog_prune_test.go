package cachesketch

import (
	"testing"
	"time"
)

// TestVersionLogPruning pins that horizon pruning bounds per-key history
// while leaving CurrentVersion and Staleness untouched for every
// judgement inside the horizon.
func TestVersionLogPruning(t *testing.T) {
	base := time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)
	horizon := time.Hour

	pruned := NewVersionLog()
	pruned.SetHorizon(horizon)
	full := NewVersionLog() // unpruned reference

	// 500 writes, one per minute: ~8 hours of history against a 1-hour
	// horizon.
	const writes = 500
	var last time.Time
	for v := 1; v <= writes; v++ {
		at := base.Add(time.Duration(v) * time.Minute)
		pruned.RecordWrite("/k", uint64(v), at)
		full.RecordWrite("/k", uint64(v), at)
		last = at
	}

	if got := full.Stamps("/k"); got != writes {
		t.Fatalf("reference log retained %d stamps, want %d", got, writes)
	}
	// The pruned log keeps roughly horizon/minute stamps plus the boundary
	// stamp — and certainly nothing near the unpruned count.
	if got := pruned.Stamps("/k"); got > int(horizon/time.Minute)+2 {
		t.Fatalf("pruned log retained %d stamps, want ≤ %d", got, int(horizon/time.Minute)+2)
	}

	// Inside the horizon, both logs judge identically: every version and
	// read instant in the last hour, including the boundary edge.
	for off := time.Duration(0); off <= horizon; off += time.Minute {
		at := last.Add(-off)
		if g, w := pruned.CurrentVersion("/k", at), full.CurrentVersion("/k", at); g != w {
			t.Fatalf("CurrentVersion at -%v: pruned %d, full %d", off, g, w)
		}
	}
	for v := writes - int(horizon/time.Minute); v <= writes; v++ {
		readAt := last.Add(time.Second)
		if g, w := pruned.Staleness("/k", uint64(v), readAt), full.Staleness("/k", uint64(v), readAt); g != w {
			t.Fatalf("Staleness of v%d: pruned %v, full %v", v, g, w)
		}
		if g, w := pruned.DeltaAtomic("/k", uint64(v), readAt, time.Minute), full.DeltaAtomic("/k", uint64(v), readAt, time.Minute); g != w {
			t.Fatalf("DeltaAtomic of v%d: pruned %v, full %v", v, g, w)
		}
	}

	// The boundary stamp survives: a read exactly at the horizon edge
	// still resolves to a concrete version rather than 0.
	edge := last.Add(-horizon)
	if pruned.CurrentVersion("/k", edge) == 0 {
		t.Fatal("boundary stamp was pruned away")
	}

	// Zero horizon keeps everything (the default is unchanged behaviour).
	def := NewVersionLog()
	for v := 1; v <= 100; v++ {
		def.RecordWrite("/d", uint64(v), base.Add(time.Duration(v)*time.Hour))
	}
	if got := def.Stamps("/d"); got != 100 {
		t.Fatalf("default log pruned to %d stamps", got)
	}
}
