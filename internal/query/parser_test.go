package query

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse(`products WHERE category = "shoes" AND price < 100 ORDER BY price LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Collection != "products" || q.SortField != "price" || q.Descending || q.Limit != 10 {
		t.Fatalf("unexpected query: %+v", q)
	}
	if !q.Match(map[string]any{"category": "shoes", "price": 50}) {
		t.Fatal("parsed filter does not match expected doc")
	}
	if q.Match(map[string]any{"category": "shoes", "price": 150}) {
		t.Fatal("parsed filter matched out-of-range doc")
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("products")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Match(map[string]any{"x": 1}) {
		t.Fatal("collection scan should match everything")
	}
}

func TestParseOrNotParens(t *testing.T) {
	q := MustParse(`a WHERE x = 1 OR NOT (y = 2 AND z = 3)`)
	cases := []struct {
		doc  map[string]any
		want bool
	}{
		{map[string]any{"x": 1, "y": 9, "z": 9}, true},
		{map[string]any{"x": 0, "y": 2, "z": 3}, false},
		{map[string]any{"x": 0, "y": 2, "z": 9}, true},
	}
	for i, c := range cases {
		if got := q.Match(c.doc); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestParsePrecedenceAndBindsTighter(t *testing.T) {
	// x=1 OR y=2 AND z=3 must parse as x=1 OR (y=2 AND z=3).
	q := MustParse(`a WHERE x = 1 OR y = 2 AND z = 3`)
	if !q.Match(map[string]any{"x": 1}) {
		t.Fatal("left OR leg failed")
	}
	if q.Match(map[string]any{"y": 2}) {
		t.Fatal("AND must bind tighter than OR")
	}
	if !q.Match(map[string]any{"y": 2, "z": 3}) {
		t.Fatal("right AND leg failed")
	}
}

func TestParseInExistsPrefixContains(t *testing.T) {
	q := MustParse(`users WHERE id IN ["u1", "u2"] AND EXISTS(email) AND name PREFIX "Al" AND bio CONTAINS "go"`)
	doc := map[string]any{"id": "u2", "email": "a@b.c", "name": "Alice", "bio": "loves golang"}
	if !q.Match(doc) {
		t.Fatal("composite filter should match")
	}
	delete(doc, "email")
	if q.Match(doc) {
		t.Fatal("EXISTS leg ignored")
	}
}

func TestParseValueTypes(t *testing.T) {
	q := MustParse(`c WHERE a = 5 AND b = 2.5 AND t = true AND f = false AND n = null AND neg = -3`)
	doc := map[string]any{"a": int64(5), "b": 2.5, "t": true, "f": false, "n": nil, "neg": int64(-3)}
	if !q.Match(doc) {
		t.Fatal("typed values failed to match")
	}
}

func TestParseEmptyIn(t *testing.T) {
	q := MustParse(`c WHERE a IN []`)
	if q.Match(map[string]any{"a": 1}) {
		t.Fatal("empty IN matched")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`products where price > 1 order by price desc limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Descending || q.Limit != 5 {
		t.Fatalf("lowercase keywords mishandled: %+v", q)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := MustParse(`c WHERE s = "he said \"hi\""`)
	if !q.Match(map[string]any{"s": `he said "hi"`}) {
		t.Fatal("escaped string mismatched")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`WHERE x = 1`,              // WHERE is consumed as collection; then x is trailing
		`c WHERE`,                  // missing predicate
		`c WHERE x`,                // missing operator
		`c WHERE x = `,             // missing value
		`c WHERE x ~ 1`,            // bad operator
		`c WHERE x = "unclosed`,    // unterminated string
		`c WHERE (x = 1`,           // unclosed paren
		`c WHERE EXISTS x`,         // EXISTS needs parens
		`c WHERE x IN "not-a-set"`, // IN needs [
		`c ORDER price`,            // ORDER without BY... actually ORDER is trailing ident
		`c LIMIT nope`,             // bad limit
		`c LIMIT -1`,               // negative limit is lexed as number; Atoi ok but <0 rejected
		`c WHERE x = 1 garbage`,    // trailing tokens
		`c WHERE x = -`,            // bare minus
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorMentionsInput(t *testing.T) {
	_, err := Parse(`c WHERE x ~ 1`)
	if err == nil || !strings.Contains(err.Error(), "c WHERE x ~ 1") {
		t.Fatalf("error should cite input: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse(`c WHERE broken ~`)
}

func TestParseRoundTripCanonicalEquivalence(t *testing.T) {
	// Queries that differ only in operand order must share an ID.
	a := MustParse(`p WHERE a = 1 AND b = 2`)
	b := MustParse(`p WHERE b = 2 AND a = 1`)
	if a.ID() != b.ID() {
		t.Fatalf("IDs differ: %s vs %s", a.ID(), b.ID())
	}
}

func TestParseDottedAndSlashedIdents(t *testing.T) {
	q := MustParse(`c WHERE meta.brand = "Acme" AND path PREFIX "/products/"`)
	doc := map[string]any{
		"meta": map[string]any{"brand": "Acme"},
		"path": "/products/42",
	}
	if !q.Match(doc) {
		t.Fatal("dotted/slashed identifiers mishandled")
	}
}
