package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds a Query from the compact text syntax used by the CLI tools
// and examples:
//
//	products WHERE category = "shoes" AND price < 100 ORDER BY price LIMIT 10
//	articles WHERE tags CONTAINS "sports" OR NOT (published = true)
//	users WHERE id IN ["u1", "u2"] AND EXISTS(email)
//
// Keywords are case-insensitive; field names may be dotted paths. The WHERE
// clause is optional (its absence scans the whole collection).
func Parse(src string) (Query, error) {
	p := &parser{lex: newLexer(src)}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, fmt.Errorf("query: parse %q: %w", src, err)
	}
	return q, nil
}

// MustParse is Parse for trusted, test, and example inputs; it panics on
// error.
func MustParse(src string) Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// --- lexer ---------------------------------------------------------------

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokSymbol // = != > >= < <= ( ) [ ] ,
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	err  error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '"':
			l.lexString()
		case c == '-' || (c >= '0' && c <= '9'):
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			l.lexSymbol()
		}
		if l.err != nil {
			return
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-' || r == '/'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	if text == "-" {
		l.err = fmt.Errorf("bare '-' at offset %d", start)
		return
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
}

func (l *lexer) lexString() {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			b.WriteByte(l.src[l.pos])
			l.pos++
			continue
		}
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return
		}
		b.WriteByte(c)
		l.pos++
	}
	l.err = fmt.Errorf("unterminated string at offset %d", start)
}

func (l *lexer) lexSymbol() {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", ">=", "<=":
		l.pos += 2
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
		return
	}
	switch c := l.src[l.pos]; c {
	case '=', '>', '<', '(', ')', '[', ']', ',':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
	default:
		l.err = fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

// --- parser --------------------------------------------------------------

type parser struct {
	lex *lexer
	idx int
}

func (p *parser) peek() token {
	if p.idx >= len(p.lex.toks) {
		return token{kind: tokEOF}
	}
	return p.lex.toks[p.idx]
}

func (p *parser) next() token {
	t := p.peek()
	p.idx++
	return t
}

// keywordIs reports whether t is the given case-insensitive keyword.
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseQuery() (Query, error) {
	if p.lex.err != nil {
		return Query{}, p.lex.err
	}
	coll := p.next()
	if coll.kind != tokIdent {
		return Query{}, fmt.Errorf("expected collection name, got %q", coll.text)
	}
	q := New(coll.text, nil)

	if keywordIs(p.peek(), "WHERE") {
		p.next()
		pred, err := p.parseOr()
		if err != nil {
			return Query{}, err
		}
		q.Filter = pred
	}
	if keywordIs(p.peek(), "ORDER") {
		p.next()
		if !keywordIs(p.peek(), "BY") {
			return Query{}, fmt.Errorf("expected BY after ORDER, got %q", p.peek().text)
		}
		p.next()
		field := p.next()
		if field.kind != tokIdent {
			return Query{}, fmt.Errorf("expected sort field, got %q", field.text)
		}
		desc := false
		if keywordIs(p.peek(), "DESC") {
			desc = true
			p.next()
		} else if keywordIs(p.peek(), "ASC") {
			p.next()
		}
		q = q.OrderBy(field.text, desc)
	}
	if keywordIs(p.peek(), "LIMIT") {
		p.next()
		n := p.next()
		if n.kind != tokNumber {
			return Query{}, fmt.Errorf("expected limit count, got %q", n.text)
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return Query{}, fmt.Errorf("invalid limit %q", n.text)
		}
		q = q.WithLimit(lim)
	}
	if t := p.peek(); t.kind != tokEOF {
		return Query{}, fmt.Errorf("trailing input at %q", t.text)
	}
	return q, nil
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	operands := []Predicate{left}
	for keywordIs(p.peek(), "OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		operands = append(operands, right)
	}
	if len(operands) == 1 {
		return operands[0], nil
	}
	return Or(operands), nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	operands := []Predicate{left}
	for keywordIs(p.peek(), "AND") {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		operands = append(operands, right)
	}
	if len(operands) == 1 {
		return operands[0], nil
	}
	return And(operands), nil
}

func (p *parser) parseFactor() (Predicate, error) {
	t := p.peek()
	switch {
	case keywordIs(t, "NOT"):
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if cl := p.next(); cl.text != ")" {
			return nil, fmt.Errorf("expected ), got %q", cl.text)
		}
		return inner, nil
	case keywordIs(t, "EXISTS"):
		p.next()
		if op := p.next(); op.text != "(" {
			return nil, fmt.Errorf("expected ( after EXISTS, got %q", op.text)
		}
		field := p.next()
		if field.kind != tokIdent {
			return nil, fmt.Errorf("expected field in EXISTS, got %q", field.text)
		}
		if cl := p.next(); cl.text != ")" {
			return nil, fmt.Errorf("expected ) after EXISTS field, got %q", cl.text)
		}
		return Exists(field.text), nil
	case keywordIs(t, "TRUE"):
		p.next()
		return True{}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Predicate, error) {
	field := p.next()
	if field.kind != tokIdent {
		return nil, fmt.Errorf("expected field name, got %q", field.text)
	}
	op := p.next()
	switch {
	case keywordIs(op, "IN"):
		if br := p.next(); br.text != "[" {
			return nil, fmt.Errorf("expected [ after IN, got %q", br.text)
		}
		var vals []any
		for {
			if p.peek().text == "]" {
				p.next()
				break
			}
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.peek().text == "," {
				p.next()
			}
		}
		return In(field.text, vals...), nil
	case keywordIs(op, "PREFIX"), keywordIs(op, "CONTAINS"):
		v := p.next()
		if v.kind != tokString {
			return nil, fmt.Errorf("%s requires a string, got %q", strings.ToUpper(op.text), v.text)
		}
		if strings.EqualFold(op.text, "PREFIX") {
			return Prefix(field.text, v.text), nil
		}
		return Contains(field.text, v.text), nil
	case op.kind == tokSymbol:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		switch op.text {
		case "=":
			return Eq(field.text, v), nil
		case "!=":
			return Ne(field.text, v), nil
		case ">":
			return Gt(field.text, v), nil
		case ">=":
			return Gte(field.text, v), nil
		case "<":
			return Lt(field.text, v), nil
		case "<=":
			return Lte(field.text, v), nil
		}
	}
	return nil, fmt.Errorf("expected comparison operator, got %q", op.text)
}

func (p *parser) parseValue() (any, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return t.text, nil
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid number %q", t.text)
			}
			return f, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid number %q", t.text)
		}
		return n, nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			return true, nil
		case strings.EqualFold(t.text, "false"):
			return false, nil
		case strings.EqualFold(t.text, "null"):
			return nil, nil
		}
	}
	return nil, fmt.Errorf("expected value, got %q", t.text)
}
