// Command speedkit-cluster runs an N-node Speed Kit coherence cluster in
// one process: every node is a full shard — counting-sketch server,
// InvaliDB matcher shard, TTL estimator, and its own WAL directory — on
// its own loopback listener, and a front endpoint serves the merged
// client sketch the whole deployment agrees on.
//
//	speedkit-cluster -addr :8090 -nodes 3 -data-dir /var/lib/speedkit-cluster
//
//	curl localhost:8090/v1/sketch            # merged Bloom filter (httpapi-compatible)
//	curl localhost:8090/v1/cluster/ring      # consistent-hash ring layout
//	curl localhost:8090/healthz
//	curl -X POST localhost:8090/v1/cluster/report -d '{"writes":["/product/p00042"]}'
//
// The merge layer pulls every node's delta frame over real loopback HTTP
// on the -sync period and only advances the served generation when every
// shard's frame is folded in — a partitioned or crashed node degrades the
// front to the saturated (revalidate-everything) filter instead of ever
// serving a merge missing that shard's writes. /v1/sketch is wire- and
// header-compatible with speedkit-server's, so clients and edge proxies
// point at the cluster front unchanged.
//
// This process deploys on shared infrastructure. It never sees a
// session, a consent record, or a user identifier, and the lint suite
// holds it to that:
//
//speedkit:deploy shared-infra
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/cluster"
	"speedkit/internal/slog"
)

// reportBody mirrors the node report schema (cluster's reportRequest) so
// the front can accept the same JSON and route it across the ring.
type reportBody struct {
	Writes []string `json:"writes,omitempty"`
	Reads  []struct {
		Key       string    `json:"key"`
		ExpiresAt time.Time `json:"expires_at"`
	} `json:"reads,omitempty"`
}

// apiError is the /v1 JSON error envelope.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	var e apiError
	e.Error.Code, e.Error.Message = code, msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

func main() {
	addr := flag.String("addr", ":8090", "front listen address")
	nodeCount := flag.Int("nodes", 3, "cluster node count")
	seed := flag.Int64("seed", 1, "consistent-hash ring seed (identical across a deployment)")
	capacity := flag.Uint64("capacity", 10000, "per-shard sketch capacity")
	fpr := flag.Float64("fpr", 0.05, "sketch false-positive rate")
	delta := flag.Duration("delta", 60*time.Second, "staleness bound Δ (drives /v1/sketch cache lifetime)")
	syncPeriod := flag.Duration("sync", 2*time.Second, "delta-exchange period")
	maxFrameAge := flag.Duration("max-frame-age", 5*time.Second, "shard frame freshness bound before the merge degrades")
	dataDir := flag.String("data-dir", "", "base directory for per-node WALs (empty = memory-only nodes)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	flag.Parse()

	logger := slog.New(os.Stderr, clock.System, slog.ParseLevel(*logLevel))
	ctx := context.Background()

	if *nodeCount < 1 {
		logger.Error(ctx).Msg("-nodes must be >= 1")
		os.Exit(2)
	}

	// Build the nodes, each over its own WAL directory.
	nodes := make([]*cluster.Node, *nodeCount)
	for i := range nodes {
		dir := ""
		if *dataDir != "" {
			dir = filepath.Join(*dataDir, fmt.Sprintf("node-%d", i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				logger.Error(ctx).Err(err).Msg("node data dir")
				os.Exit(1)
			}
		}
		n, err := cluster.NewNode(cluster.NodeConfig{
			Member:         fmt.Sprintf("node-%d", i),
			Clock:          clock.System,
			SketchCapacity: *capacity,
			SketchFPR:      *fpr,
			DurableDir:     dir,
		})
		if err != nil {
			logger.Error(ctx).Err(err).Msg("node start failed")
			os.Exit(1)
		}
		nodes[i] = n
	}
	c, err := cluster.New(cluster.Config{
		Seed:              *seed,
		Clock:             clock.System,
		Capacity:          *capacity,
		FalsePositiveRate: *fpr,
		MaxFrameAge:       *maxFrameAge,
	}, nodes)
	if err != nil {
		logger.Error(ctx).Err(err).Msg("cluster start failed")
		os.Exit(1)
	}

	// Every node serves its /v1/cluster surface on a loopback listener,
	// and the merge layer pulls frames through Peers — the exchange
	// crosses real HTTP even in this single-process packaging.
	nodeSrvs := make([]*http.Server, 0, len(nodes))
	for _, n := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			logger.Error(ctx).Err(err).Msg("node listen failed")
			os.Exit(1)
		}
		hs := &http.Server{Handler: cluster.NodeHandler(n, c.Ring())}
		go hs.Serve(ln) //nolint:errcheck // closed on shutdown; Serve's close error is expected
		nodeSrvs = append(nodeSrvs, hs)
		base := "http://" + ln.Addr().String()
		if err := c.UseDeltaSource(cluster.NewPeer(n.Name(), base, nil)); err != nil {
			logger.Error(ctx).Err(err).Msg("peer wiring failed")
			os.Exit(1)
		}
		logger.Info(ctx).Str("member", n.Name()).Str("url", base).Msg("node listening")
	}

	// Prime one exchange round so the front can leave the saturated
	// filter as soon as every shard has published.
	if err := c.SyncDeltas(); err != nil {
		logger.Warn(ctx).Err(err).Msg("initial delta exchange incomplete")
	}
	stopSync := make(chan struct{})
	go func() {
		for {
			clock.Sleep(clock.System, *syncPeriod)
			select {
			case <-stopSync:
				return
			default:
			}
			if err := c.SyncDeltas(); err != nil {
				logger.Warn(ctx).Err(err).Msg("delta exchange incomplete")
			}
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sketch", func(w http.ResponseWriter, r *http.Request) {
		sn := c.Snapshot()
		data, err := sn.Marshal()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Cache-Control", fmt.Sprintf("public, max-age=%d", int(delta.Seconds())))
		w.Header().Set("X-Sketch-Generation", strconv.FormatUint(sn.Generation, 10))
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /v1/cluster/ring", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Ring().Info())
	})
	mux.HandleFunc("POST /v1/cluster/report", func(w http.ResponseWriter, r *http.Request) {
		var req reportBody
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "bad report body: "+err.Error())
			return
		}
		if err := c.ReportWrites(req.Writes); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "unavailable", err.Error())
			return
		}
		for _, rr := range req.Reads {
			if rr.Key == "" {
				writeErr(w, http.StatusBadRequest, "bad_request", "read report without key")
				return
			}
			if err := c.ReportCachedRead(rr.Key, rr.ExpiresAt); err != nil {
				writeErr(w, http.StatusServiceUnavailable, "unavailable", err.Error())
				return
			}
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Stats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":     "ok",
			"members":    c.Ring().Members(),
			"generation": c.Snapshot().Generation,
			"stats":      st,
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "not_found", "no such endpoint: "+r.URL.Path)
	})

	logger.Info(ctx).
		Str("addr", *addr).
		Int("nodes", int64(*nodeCount)).
		Dur("sync", *syncPeriod).
		Msg("speedkit-cluster listening")

	front := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- front.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		logger.Error(ctx).Err(err).Msg("serve failed")
		os.Exit(1)
	case sig := <-sigCh:
		logger.Info(ctx).Str("signal", sig.String()).Msg("draining")
		close(stopSync)
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_ = front.Shutdown(sctx)
		for _, hs := range nodeSrvs {
			_ = hs.Shutdown(sctx)
		}
		cancel()
		if err := c.Close(); err != nil {
			logger.Error(ctx).Err(err).Msg("cluster close failed")
			os.Exit(1)
		}
	}
}
