package speedkit

import "speedkit/internal/edge"

// Edge is the streaming HTTP caching reverse proxy that fronts a
// speedkit-server (see cmd/speedkit-edge for the deployable command):
// sketch-coherent page bodies are cached and coalesced at the edge,
// everything personalized passes through uncached, and the process
// never sees identity — the GDPR boundary enforced at a real socket.
type Edge = edge.Proxy

// EdgeOptions parameterizes NewEdge.
type EdgeOptions = edge.Options

// EdgeRecovery reports what NewEdge recovered from the disk tier.
type EdgeRecovery = edge.RecoveryInfo

// EdgeStats is a point-in-time copy of the edge counters.
type EdgeStats = edge.Stats

// NewEdge builds an edge cache in front of the server at
// EdgeOptions.Upstream and, when a cache directory is configured,
// recovers its disk tier.
func NewEdge(o EdgeOptions) (*Edge, EdgeRecovery, error) { return edge.New(o) }
