package cluster

import (
	"fmt"
	"testing"

	"speedkit/internal/clock"
	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// benchClusterFixture builds an n-node cluster with `regs` continuous
// queries in ONE collection — the worst case for a single matcher, since
// collection-hash sharding inside one node cannot split them. The ring
// partitions the registrations by ID across nodes, so each node's shard
// holds ≈regs/n of them. It returns the most-loaded node (the critical
// path of a broadcast round: the merge waits on the slowest shard) and a
// precomputed event stream.
func benchClusterFixture(b *testing.B, n, regs int) (*Node, []storage.ChangeEvent) {
	b.Helper()
	clk := clock.NewSimulated(epoch)
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			Member:         fmt.Sprintf("node-%d", i),
			Clock:          clk,
			SketchCapacity: uint64(regs) * 2,
		})
		if err != nil {
			b.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
	}
	c, err := New(Config{Seed: 42, Clock: clk, Capacity: uint64(regs) * 2}, nodes)
	if err != nil {
		b.Fatalf("cluster: %v", err)
	}
	for i := 0; i < regs; i++ {
		if err := c.Register(fmt.Sprintf("reg-%05d", i), query.Query{
			Collection: "products",
			Filter:     query.Gte("price", float64(i%100)),
		}); err != nil {
			b.Fatalf("register: %v", err)
		}
	}
	var busiest *Node
	most := -1
	for _, node := range nodes {
		if regCount := node.Stats().Matcher.Registered; regCount > most {
			most, busiest = regCount, node
		}
	}
	events := make([]storage.ChangeEvent, 256)
	for i := range events {
		events[i] = storage.ChangeEvent{
			Collection: "products",
			ID:         fmt.Sprintf("doc-%04d", i),
			Kind:       storage.ChangeUpdate,
			Before:     map[string]any{"price": float64(40 + i%10)},
			After:      map[string]any{"price": float64(45 + i%10)},
			Version:    uint64(i + 1),
		}
	}
	return busiest, events
}

// BenchmarkClusterMatching measures the critical-path per-event matching
// cost of a broadcast round as the cluster grows. Every registration
// lives in one collection, so a single node carries the full matching
// load; sharding registrations by ID over the ring divides it, and the
// busiest node's per-event cost — the latency a broadcast round cannot
// beat — should drop near-linearly from nodes-1 to nodes-8. This is the
// bench behind BENCH_cluster.json (suite "cluster-matching").
func BenchmarkClusterMatching(b *testing.B) {
	const regs = 2048
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes-%d", n), func(b *testing.B) {
			busiest, events := benchClusterFixture(b, n, regs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := busiest.ProcessEvent(events[i%len(events)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
