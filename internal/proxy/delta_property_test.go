package proxy

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/netsim"
	"speedkit/internal/session"
)

// TestProxyDeltaAtomicityProperty mirrors the protocol-level property
// test one layer up: the full device proxy (sketch refresh discipline,
// device cache, conditional revalidation) against a versioned fake
// transport, under random write/read/advance interleavings. No load may
// return a version staler than Δ.
func TestProxyDeltaAtomicityProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, delta := range []time.Duration{2 * time.Second, 15 * time.Second} {
			runProxyDeltaTrial(t, seed, delta)
		}
	}
}

func runProxyDeltaTrial(t *testing.T, seed int64, delta time.Duration) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	clk := clock.NewSimulated(time.Time{})
	srv := cachesketch.NewServer(cachesketch.ServerConfig{Capacity: 1000, Clock: clk})
	log := cachesketch.NewVersionLog()

	const nKeys = 12
	versions := make([]uint64, nKeys)
	keyOf := func(i int) string { return fmt.Sprintf("/k/%d", i) }

	// versionedTransport serves the current version with a 45 s TTL and
	// reports fills/revalidations to the sketch server, like core does.
	tr := &versionedTransport{
		clk: clk, srv: srv,
		current: func(path string) uint64 {
			var i int
			fmt.Sscanf(path, "/k/%d", &i)
			return versions[i]
		},
	}
	p := New(Config{Region: netsim.EU, Clock: clk, Delta: delta}, tr)

	for i := 0; i < nKeys; i++ {
		versions[i] = 1
		log.RecordWrite(keyOf(i), 1, clk.Now())
	}
	for op := 0; op < 3000; op++ {
		k := rng.Intn(nKeys)
		switch {
		case rng.Float64() < 0.15: // write
			versions[k]++
			log.RecordWrite(keyOf(k), versions[k], clk.Now())
			srv.ReportWrite(keyOf(k))
		default: // read through the proxy
			res, err := p.Load(context.Background(), keyOf(k))
			if err != nil {
				t.Fatalf("seed=%d Δ=%v: %v", seed, delta, err)
			}
			if st := log.Staleness(keyOf(k), res.Version, clk.Now()); st > delta {
				t.Fatalf("seed=%d Δ=%v op=%d: staleness %v exceeds Δ (source=%v)",
					seed, delta, op, st, res.Source)
			}
		}
		clk.Advance(time.Duration(rng.Intn(700)) * time.Millisecond)
	}
	if p.Stats().DeviceHits == 0 {
		t.Fatalf("seed=%d Δ=%v: vacuous trial, no device hits", seed, delta)
	}
}

// versionedTransport is a minimal origin+sketch transport for property
// trials: every fetch serves the current version of the key.
type versionedTransport struct {
	clk     *clock.Simulated
	srv     *cachesketch.Server
	current func(path string) uint64
}

const trialTTL = 45 * time.Second

func (v *versionedTransport) FetchSketch(context.Context, netsim.Region) (*cachesketch.Snapshot, time.Duration, error) {
	return v.srv.Snapshot(), time.Millisecond, nil
}

func (v *versionedTransport) Fetch(_ context.Context, _ netsim.Region, path string) (cache.Entry, time.Duration, Source, error) {
	e := cache.TTLEntry(v.clk, path, []byte("body"), v.current(path), trialTTL)
	v.srv.ReportCachedRead(path, e.ExpiresAt)
	return e, 5 * time.Millisecond, SourceOrigin, nil
}

func (v *versionedTransport) Revalidate(ctx context.Context, region netsim.Region, path string, known uint64) (RevalidationResult, error) {
	if v.current(path) == known {
		e := cache.TTLEntry(v.clk, path, nil, known, trialTTL)
		v.srv.ReportCachedRead(path, e.ExpiresAt)
		return RevalidationResult{NotModified: true, Entry: e,
			Latency: time.Millisecond, Source: SourceOrigin}, nil
	}
	e, lat, src, err := v.Fetch(ctx, region, path)
	return RevalidationResult{Entry: e, Latency: lat, Source: src}, err
}

func (v *versionedTransport) FetchBlocks(context.Context, netsim.Region, []string, *session.User) (map[string][]byte, time.Duration, error) {
	return nil, 0, nil
}
