// Quickstart: boot a Speed Kit deployment, load a page three times, and
// watch it climb the cache tiers — origin on the cold load, the device's
// own service-worker cache on repeats, and the CDN edge for a second
// device in the same region.
package main

import (
	"context"
	"fmt"
	"log"

	"speedkit"
)

func main() {
	svc, err := speedkit.New(speedkit.WithProducts(100))
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	users := speedkit.NewUsers(1, 2)
	alice := svc.NewDevice(users[0], speedkit.RegionEU)
	bob := svc.NewDevice(users[1], speedkit.RegionEU)

	const path = "/product/p00042"
	fmt.Println("three loads of", path)

	for i, dev := range []*speedkit.Device{alice, alice, bob} {
		page, err := dev.Load(context.Background(), path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  load %d: served by %-7s in %8v (version %d, %d personalized blocks)\n",
			i+1, page.Source, page.Latency.Round(0), page.Version, page.BlocksPersonalized)
	}

	fmt.Println("\nnow a price write invalidates every cached copy:")
	if err := svc.Docs().Patch("products", "p00042", map[string]any{"price": 1.99}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sketch tracks %s: %v\n", path, svc.SketchServer().Contains(path))
	fmt.Printf("  (devices revalidate within Δ = %v — no read is ever staler)\n", svc.Delta())
}
