// Package wal implements the segmented append-only write-ahead log under
// the durability subsystem. Records are CRC32C-framed and carry a
// monotonically increasing log sequence number (LSN); concurrent appends
// group-commit: callers stage frames into a shared buffer, one flusher
// writes the whole batch with a single write syscall, and fsyncs are
// amortized over the batch on the injected clock so a burst of appends
// shares one disk flush; segments rotate at a size threshold and are named
// by their first LSN so whole-segment pruning after a snapshot is a file
// delete.
//
// Recovery discipline: Open scans every segment in LSN order, replaying
// intact records through the OnRecord callback. A torn tail — an
// incomplete or CRC-failing frame at the end of the *last* segment — is
// the expected crash signature and is truncated away; any damage before
// that point (a bad frame in a non-final segment, a broken LSN chain) is
// mid-log corruption and surfaces as ErrCorrupt, which the durable layer
// answers with a conservative cold start rather than trusting a log with
// a hole in it.
//
// The log stores only anonymous coherence records (resource paths,
// expirations, versions): it is shared-infrastructure code under the
// GDPR boundary and must never see identity-bearing types.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/faults"
)

// Frame layout: [u32 length][u32 crc32c][u64 lsn][payload], all
// little-endian. length covers lsn+payload; crc covers the same bytes.
const (
	frameHeader = 8
	lsnBytes    = 8
	// maxRecord bounds a frame body; anything larger in a length field is
	// damage, not data.
	maxRecord = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// collectRounds bounds the flusher's batch-collection pause in scheduler
// yields, applied only when appenders are arriving concurrently (see
// flushLocked). One runtime.Gosched runs every runnable peer to its
// blocking point — on a single-P box that collects the whole cohort in a
// single round — so the loop exits as soon as a yield stops growing the
// batch; the cap only guards against pathological arrival patterns.
// ackYields similarly bounds a staged appender's yield-spin for its batch
// write before it falls back to parking on the commit condition: every
// iteration yields the processor (never a hot spin, which would starve
// the flusher the appender is waiting on), and the fallback park keeps
// long stalls — an fsync, a rotation — off the scheduler entirely.
const (
	collectRounds = 8
	ackYields     = 2
)

// ErrCorrupt reports mid-log corruption: a damaged frame with intact
// records after it, or a broken LSN chain. A torn tail is NOT corruption —
// it is truncated silently — so ErrCorrupt means history cannot be
// trusted and the caller should fall back to a conservative cold start.
var ErrCorrupt = errors.New("wal: mid-log corruption")

// ErrCrashed reports that the log drew an injected crash (or hit an
// unrecoverable write error) and is dead: no append or sync will succeed
// until the directory is recovered by a fresh Open.
var ErrCrashed = errors.New("wal: crashed (injected)")

// Options parameterizes a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentMaxBytes rotates segments at this size (default 1 MiB). A
	// group-committed batch is never split across segments, so a segment
	// may overshoot the threshold by up to one batch.
	SegmentMaxBytes int64
	// GroupCommitWindow is the maximum time acknowledged appends may wait
	// for their shared fsync (default 2 ms on the injected clock).
	GroupCommitWindow time.Duration
	// GroupCommitMax forces an fsync after this many unsynced appends
	// regardless of the window (default 64).
	GroupCommitMax int
	// Dsync opens segment files with O_DSYNC, making every batch write
	// synchronously durable: an acknowledged append then survives power
	// loss, not just a process kill, and the deferred group-fsync policy
	// (GroupCommitWindow/GroupCommitMax) is moot — each group-committed
	// write IS the group's flush. This is the classic group-commit
	// configuration: the per-write sync cost is flat in batch size, so
	// batching N concurrent appends into one write divides the dominant
	// cost by N.
	Dsync bool
	// Clock drives the group-commit window (default the system clock).
	Clock clock.Clock
	// FirstLSN, when non-zero, seeds the LSN of the first append into an
	// empty directory. The durable layer passes one past everything its
	// retained snapshot covers when it reopens a wiped log, so reissued
	// LSNs can never fall back inside snapshot coverage (replay skips
	// records at or below the snapshot LSN, which would silently drop
	// them). Opening a directory that still holds segments whose records
	// end below a non-zero FirstLSN is an error: seeding may not punch
	// LSN-chain gaps into a live log.
	FirstLSN uint64
	// Faults optionally injects crashes, modeling a process kill: Crash
	// decisions on WALAppend tear the in-flight frame at a deterministic
	// offset; Crash decisions on WALFsync kill the log at the flush —
	// bytes already written to the OS file survive (a kill loses nothing
	// the kernel holds; only power loss does, and that hazard is modeled
	// separately by truncating segment files). Both leave the log dead
	// until recovery. Nil disables injection.
	Faults *faults.Injector
	// OnRecord receives every intact record during the Open scan, in LSN
	// order. Nil skips replay delivery (the scan still validates frames).
	OnRecord func(lsn uint64, payload []byte)
}

func (o *Options) applyDefaults() {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 1 << 20
	}
	if o.GroupCommitWindow <= 0 {
		o.GroupCommitWindow = 2 * time.Millisecond
	}
	if o.GroupCommitMax <= 0 {
		o.GroupCommitMax = 64
	}
	if o.Clock == nil {
		o.Clock = clock.System
	}
}

// Stats counts log activity since Open.
type Stats struct {
	// Appends is how many records were durably framed (torn appends from
	// injected crashes are not counted).
	Appends uint64
	// Fsyncs is how many disk flushes ran; group commit keeps it well
	// below Appends under load.
	Fsyncs uint64
	// BatchWrites is how many write syscalls carried the appended frames;
	// group-commit batching keeps it at or below Appends (equal when
	// appends are serialized, far below under concurrency).
	BatchWrites uint64
	// Rotations counts segment rolls.
	Rotations uint64
	// Replayed is how many intact records the Open scan delivered.
	Replayed uint64
	// TruncatedBytes is how many torn-tail bytes Open discarded.
	TruncatedBytes int64
	// Segments is the current on-disk segment count.
	Segments int
}

// segment is one on-disk log file.
type segment struct {
	firstLSN uint64
	path     string
}

// framePool recycles staged-batch buffers so the steady-state append path
// allocates nothing: the flusher swaps the full buffer for a pooled spare
// before releasing the lock for the write syscall, and returns the written
// buffer to the pool afterwards.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 16<<10)
		return &b
	},
}

// Log is a segmented write-ahead log. Safe for concurrent use.
//
// Concurrency model: appenders marshal their frame into the shared staged
// buffer under mu. The first appender to find no flusher active becomes
// the flusher: it repeatedly swaps the staged buffer for an empty pooled
// one, releases mu for the single write syscall covering the whole batch,
// then reacquires mu, acknowledges the batch (written), and applies the
// group-commit fsync policy. Everyone else waits on commit until their LSN
// is written. Acknowledgement therefore means "in the OS file" — it
// survives a process kill; surviving power loss still requires the group
// fsync, which is the window the durable layer's conservative cold start
// covers.
type Log struct {
	opts Options

	// arrivals counts appenders currently inside Append — a heuristic the
	// flusher reads without mu to decide whether to hold a batch open for
	// concurrent arrivals. It overcounts (acknowledged appenders still on
	// their way out are included), so the flusher pairs it with a
	// growth-stall check rather than trusting the number.
	arrivals atomic.Int64
	// writtenA and deadA mirror written and dead for the waiters' lock-free
	// acknowledgement fast path: a staged appender yield-spins on them
	// briefly before parking on the commit condition, so in steady state a
	// batch commit costs no per-waiter mutex handoff or futex wake at all.
	writtenA atomic.Uint64
	deadA    atomic.Bool

	mu       sync.Mutex
	commit   sync.Cond // signals written/dead/flusher-retired; tied to mu
	segs     []segment // guarded by mu
	file     *os.File  // guarded by mu; active segment (nil until first append)
	size     int64     // guarded by mu; bytes written to the active segment
	synced   int64     // guarded by mu; bytes of the active segment known flushed
	buf      *[]byte   // guarded by mu; staged, unwritten frames (pooled)
	bufFirst uint64    // guarded by mu; LSN of the first staged frame
	bufCount int       // guarded by mu; staged frame count
	flushing bool      // guarded by mu; an exclusive writer owns the file
	written  uint64    // guarded by mu; highest LSN written to the OS file
	pending  int       // guarded by mu; appends awaiting their group fsync
	lastSync time.Time // guarded by mu; when the last group fsync ran
	nextLSN  uint64    // guarded by mu
	dead     bool      // guarded by mu; true after an injected crash
	stats    Stats     // guarded by mu
}

// segName renders the canonical segment filename for a first LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstLSN)
}

// parseSegName extracts the first LSN from a segment filename.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
	return v, err == nil
}

// Open scans dir, replays intact records through opts.OnRecord, truncates
// any torn tail, and returns a log positioned to append after the last
// durable record. A directory with no segments opens as an empty log
// whose first append creates LSN 1. Mid-log corruption returns ErrCorrupt
// (wrapped); the caller decides whether to wipe and cold-start.
func Open(opts Options) (*Log, error) {
	opts.applyDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, nextLSN: 1, lastSync: opts.Clock.Now()}
	l.commit.L = &l.mu
	l.buf = framePool.Get().(*[]byte)
	*l.buf = (*l.buf)[:0]

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, segment{firstLSN: first, path: filepath.Join(opts.Dir, e.Name())})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].firstLSN < l.segs[j].firstLSN })

	for i, seg := range l.segs {
		// The LSN chain must also hold ACROSS segments: each non-first
		// segment starts exactly where the previous one left off. A
		// mismatch means a whole segment went missing (deleted, renamed,
		// restored from a partial backup) — mid-log corruption, not a torn
		// tail, or replay would resume "warm" with a silent gap in history.
		if i > 0 && seg.firstLSN != l.nextLSN {
			return nil, fmt.Errorf("wal: segment %s: first lsn %d where %d expected (missing segment?): %w",
				filepath.Base(seg.path), seg.firstLSN, l.nextLSN, ErrCorrupt)
		}
		last := i == len(l.segs)-1
		if err := l.scanSegment(seg, last); err != nil {
			return nil, err
		}
	}
	if opts.FirstLSN > l.nextLSN {
		if len(l.segs) > 0 {
			return nil, fmt.Errorf("wal: FirstLSN %d past existing records (next lsn %d)", opts.FirstLSN, l.nextLSN)
		}
		l.nextLSN = opts.FirstLSN
	}
	l.written = l.nextLSN - 1
	l.stats.Segments = len(l.segs)
	if n := len(l.segs); n > 0 {
		// Reopen the last segment for appending after its good prefix.
		f, err := os.OpenFile(l.segs[n-1].path, os.O_RDWR|l.dsyncFlag(), 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(l.size, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.file = f
		l.synced = l.size
	}
	return l, nil
}

// scanSegment validates and replays one segment. For the last segment a
// bad frame is a torn tail: the file is truncated to the last good offset.
// For any earlier segment it is mid-log corruption. The active segment's
// size is left in l.size. Runs during Open, before the log is shared; any
// later caller must hold l.mu.
func (l *Log) scanSegment(seg segment, last bool) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	expect := seg.firstLSN
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		good := false
		var lsn uint64
		var payload []byte
		if len(rest) >= frameHeader {
			length := binary.LittleEndian.Uint32(rest[0:4])
			if length >= lsnBytes && length <= maxRecord && int(length) <= len(rest)-frameHeader {
				body := rest[frameHeader : frameHeader+int(length)]
				if crc32.Checksum(body, castagnoli) == binary.LittleEndian.Uint32(rest[4:8]) {
					lsn = binary.LittleEndian.Uint64(body[:lsnBytes])
					payload = body[lsnBytes:]
					good = lsn == expect
					// A frame that checksums but breaks the LSN chain is
					// damage wherever it sits.
					if !good {
						return fmt.Errorf("wal: segment %s: lsn %d where %d expected: %w",
							filepath.Base(seg.path), lsn, expect, ErrCorrupt)
					}
				}
			}
		}
		if !good {
			if !last {
				return fmt.Errorf("wal: segment %s: bad frame at offset %d: %w",
					filepath.Base(seg.path), off, ErrCorrupt)
			}
			// Torn tail: discard everything from the bad frame on.
			torn := int64(len(data)) - off
			if err := os.Truncate(seg.path, off); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			l.stats.TruncatedBytes += torn
			break
		}
		if l.opts.OnRecord != nil {
			l.opts.OnRecord(lsn, payload)
		}
		l.stats.Replayed++
		off += frameHeader + lsnBytes + int64(len(payload))
		expect = lsn + 1
		l.nextLSN = lsn + 1
	}
	if last {
		l.size = off
	}
	return nil
}

// marshalFrame encodes one [len][crc][lsn][payload] frame into dst, which
// must be exactly frameHeader+lsnBytes+len(payload) bytes. It is the
// per-append marshal step of the group-commit path and must stay
// allocation-free: it only indexes into dst, so staging an append costs a
// CRC pass and two copies, never a heap allocation.
//
//speedkit:hotpath
func marshalFrame(dst []byte, lsn uint64, payload []byte) {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(lsnBytes+len(payload)))
	binary.LittleEndian.PutUint64(dst[frameHeader:frameHeader+lsnBytes], lsn)
	copy(dst[frameHeader+lsnBytes:], payload)
	binary.LittleEndian.PutUint32(dst[4:8], crc32.Checksum(dst[frameHeader:], castagnoli))
}

// stageLocked marshals the frame for (lsn, payload) onto the staged batch
// buffer. The caller must hold l.mu. Growth happens here, outside the
// annotated marshal path; steady state reuses pooled capacity and
// allocates nothing.
func (l *Log) stageLocked(lsn uint64, payload []byte) {
	need := frameHeader + lsnBytes + len(payload)
	b := *l.buf
	off := len(b)
	if cap(b) < off+need {
		ncap := 2 * cap(b)
		if ncap < off+need {
			ncap = off + need
		}
		if ncap < 4096 {
			ncap = 4096
		}
		nb := make([]byte, off, ncap)
		copy(nb, b)
		b = nb
	}
	b = b[:off+need]
	marshalFrame(b[off:], lsn, payload)
	*l.buf = b
	if l.bufCount == 0 {
		l.bufFirst = lsn
	}
	l.bufCount++
}

// Append frames payload as the next record, group-committing the write
// with any concurrent appenders, and returns the record's LSN. A nil
// error acknowledges that the frame reached the OS file: an acknowledged
// append survives a process kill (including every injected crash) and is
// replayed by recovery. It is NOT yet fsynced — group commit defers the
// flush up to GroupCommitWindow/GroupCommitMax — so true power loss may
// still drop the acknowledged suffix, which is exactly the window the
// durable layer's conservative cold start covers.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.arrivals.Add(1)
	defer l.arrivals.Add(-1)
	lsn, wait, err := l.stageAppend(payload)
	if err != nil {
		return 0, err
	}
	if !wait {
		return lsn, nil
	}
	return l.awaitAppend(lsn)
}

// stageAppend stages the frame under the lock. If another appender is
// flushing, it returns wait=true and the caller must await the
// acknowledgement; otherwise this appender became the flusher and the
// append is already acknowledged (or the log died trying).
func (l *Log) stageAppend(payload []byte) (lsn uint64, wait bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, false, ErrCrashed
	}

	if d := l.opts.Faults.Decide(faults.WALAppend); d.Kind == faults.Crash {
		return 0, false, l.crashAppendLocked(payload, d)
	}

	lsn = l.nextLSN
	l.nextLSN++
	l.stageLocked(lsn, payload)

	if l.flushing {
		// A flusher is active; it will pick up our staged frame.
		return lsn, true, nil
	}

	// No flusher: become it and drain the staged batch (ours included).
	if err := l.flushLocked(); err != nil {
		return 0, false, err
	}
	if l.written < lsn {
		return 0, false, fmt.Errorf("wal: append lsn %d: %w", lsn, ErrCrashed)
	}
	return lsn, false, nil
}

// awaitAppend blocks until the staged frame at lsn is acknowledged by the
// active flusher. It yield-spins on the acknowledgement mirror first —
// each Gosched hands the processor to the flusher (or a staging peer), so
// the common case resolves in a couple of yields with no mutex
// reacquisition and no futex wake — then falls back to parking on the
// commit condition for long stalls (a group fsync, a segment rotation).
func (l *Log) awaitAppend(lsn uint64) (uint64, error) {
	for r := 0; r < ackYields; r++ {
		if l.writtenA.Load() >= lsn {
			return lsn, nil
		}
		if l.deadA.Load() {
			break
		}
		runtime.Gosched()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for !l.dead && l.written < lsn {
		l.commit.Wait()
	}
	if l.written < lsn {
		return 0, fmt.Errorf("wal: append lsn %d: %w", lsn, ErrCrashed)
	}
	return lsn, nil
}

// crashAppendLocked models a process kill mid-append: staged complete
// frames from concurrent appenders are flushed intact (the kernel had
// them), then a deterministic prefix of the doomed frame reaches the file,
// then the log goes dead. Recovery sees at most a torn tail — never a torn
// *middle* — so every previously acknowledged append survives. The caller
// must hold l.mu throughout. Always returns a non-nil error.
func (l *Log) crashAppendLocked(payload []byte, d faults.Decision) error {
	// Wait out any active flusher so the file is exclusively ours; its
	// batch writes complete before the kill lands.
	for l.flushing && !l.dead {
		l.commit.Wait()
	}
	if l.dead {
		return ErrCrashed
	}
	l.flushing = true
	lsn := l.nextLSN

	frame := make([]byte, frameHeader+lsnBytes+len(payload))
	marshalFrame(frame, lsn, payload)

	need := int64(len(*l.buf) + len(frame))
	if l.file == nil || (l.size > 0 && l.size+need > l.opts.SegmentMaxBytes) {
		if err := l.rotateLocked(); err != nil {
			l.flushing = false
			l.dead = true
			l.deadA.Store(true)
			l.commit.Broadcast()
			return err
		}
	}
	if n := l.bufCount; n > 0 {
		batch := *l.buf
		if _, err := l.file.Write(batch); err == nil {
			l.size += int64(len(batch))
			l.written = l.bufFirst + uint64(n) - 1
			l.writtenA.Store(l.written)
			l.pending += n
			l.stats.Appends += uint64(n)
			l.stats.BatchWrites++
		}
		*l.buf = batch[:0]
		l.bufCount = 0
	}
	torn := d.TornBytes
	if torn <= 0 {
		torn = int(lsn % uint64(len(frame)))
	}
	if torn >= len(frame) {
		torn = len(frame) - 1
	}
	if torn > 0 {
		_, _ = l.file.Write(frame[:torn])
	}
	l.flushing = false
	l.dead = true
	l.deadA.Store(true)
	l.commit.Broadcast()
	return fmt.Errorf("wal: append lsn %d: %w: %w", lsn, faults.ErrCrash, ErrCrashed)
}

// flushLocked drains the staged batch as the exclusive flusher: swap the
// staged buffer for a pooled spare, write the whole batch with one
// syscall (l.mu released during the write), acknowledge it, and apply the
// group-commit fsync policy. Loops until no staged frames remain, so
// appends staged while the write syscall ran are picked up immediately.
// The caller must hold l.mu with l.flushing false.
func (l *Log) flushLocked() error {
	l.flushing = true
	defer func() {
		l.flushing = false
		l.commit.Broadcast()
	}()
	for l.bufCount > 0 {
		if l.dead {
			return ErrCrashed
		}
		// Collection pause. A short write syscall never yields the
		// processor, so a flusher that seals its batch immediately starves
		// concurrent appenders of the chance to stage and settles into one
		// frame per syscall — concurrency buys nothing. When the arrival
		// counter shows other appenders in flight, yield instead: each
		// runtime.Gosched runs every runnable peer up to its blocking point
		// (staged and parked on commit), so the batch grows by the whole
		// in-flight cohort per round and the loop stops the moment a yield
		// adds nothing. A strictly serialized caller (arrivals == 1) never
		// pauses and keeps the old one-write-per-append behavior (and its
		// determinism) exactly.
		for r := 0; r < collectRounds && l.bufCount < l.opts.GroupCommitMax; r++ {
			if l.arrivals.Load() <= 1 {
				break
			}
			before := l.bufCount
			l.mu.Unlock()
			runtime.Gosched()
			l.mu.Lock()
			if l.dead {
				return ErrCrashed
			}
			if l.bufCount == before {
				break
			}
		}
		if l.file == nil || (l.size > 0 && l.size+int64(len(*l.buf)) > l.opts.SegmentMaxBytes) {
			// Rotation fsyncs with l.mu briefly released, so appenders may
			// stage more frames while it runs; the batch is snapshotted
			// only afterwards so nothing staged in that window is dropped.
			if err := l.rotateLocked(); err != nil {
				l.dead = true
				l.deadA.Store(true)
				return err
			}
		}
		count := l.bufCount
		last := l.bufFirst + uint64(count) - 1
		full := l.buf
		batch := *full
		spare := framePool.Get().(*[]byte)
		*spare = (*spare)[:0]
		l.buf = spare
		l.bufCount = 0
		file := l.file
		l.mu.Unlock()
		_, werr := file.Write(batch)
		l.mu.Lock()
		*full = batch[:0]
		framePool.Put(full)
		if werr != nil {
			// The file's tail state is unknown; refuse further use. The
			// next Open scans and truncates whatever half-frame landed.
			l.dead = true
			l.deadA.Store(true)
			return fmt.Errorf("wal: %w", werr)
		}
		l.size += int64(len(batch))
		l.written = last
		l.writtenA.Store(last)
		l.stats.Appends += uint64(count)
		l.stats.BatchWrites++
		l.commit.Broadcast()

		if l.opts.Dsync {
			// The O_DSYNC write was the group's flush: the batch is already
			// on disk and nothing is pending for the deferred-fsync policy.
			l.synced = l.size
			l.stats.Fsyncs++
			l.lastSync = l.opts.Clock.Now()
			continue
		}
		l.pending += count
		now := l.opts.Clock.Now()
		if l.pending >= l.opts.GroupCommitMax || now.Sub(l.lastSync) >= l.opts.GroupCommitWindow {
			if err := l.syncLocked(now); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync forces the group fsync immediately.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing && !l.dead {
		l.commit.Wait()
	}
	if l.dead {
		return ErrCrashed
	}
	if l.bufCount > 0 {
		// Only possible if a staging appender raced in after the last
		// flusher retired; drain it ourselves.
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	if l.file == nil {
		return nil
	}
	return l.syncLocked(l.opts.Clock.Now())
}

// syncLocked flushes the active segment. The caller must hold l.mu; the
// mutex is released for the fsync itself (appenders may stage, and a
// Sync-path flush may overlap a flusher's batch write — both are safe,
// and the bookkeeping below only credits bytes/appends this fsync
// actually covered).
func (l *Log) syncLocked(now time.Time) error {
	if d := l.opts.Faults.Decide(faults.WALFsync); d.Kind == faults.Crash {
		// Kill at the flush: the process dies, but bytes already written
		// to the OS file survive a kill — acknowledged appends are NOT
		// lost (only real power loss drops them, a hazard the durable
		// tests model by truncating segment files directly). The log is
		// dead until recovery.
		l.dead = true
		l.deadA.Store(true)
		l.commit.Broadcast()
		return fmt.Errorf("wal: fsync: %w: %w", faults.ErrCrash, ErrCrashed)
	}
	f := l.file
	covered := l.size
	cleared := l.pending
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Fsyncs++
	if covered > l.synced {
		l.synced = covered
	}
	l.pending -= cleared
	if l.pending < 0 {
		l.pending = 0
	}
	l.lastSync = now
	return nil
}

// rotateLocked seals the active segment and opens the next one. The
// caller must hold l.mu and be the exclusive writer (flushing).
func (l *Log) rotateLocked() error {
	if l.file != nil {
		if err := l.syncLocked(l.opts.Clock.Now()); err != nil {
			return err
		}
		if err := l.file.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.file = nil
		l.stats.Rotations++
	}
	first := l.bufFirstOrNextLocked()
	path := filepath.Join(l.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|l.dsyncFlag(), 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.file = f
	l.size = 0
	l.synced = 0
	l.segs = append(l.segs, segment{firstLSN: first, path: path})
	l.stats.Segments = len(l.segs)
	return nil
}

// dsyncFlag returns the extra open flag for synchronous-durability mode.
func (l *Log) dsyncFlag() int {
	if l.opts.Dsync {
		return syscall.O_DSYNC
	}
	return 0
}

// bufFirstOrNextLocked names the segment a rotation is about to open: the
// first staged-but-unwritten LSN when a batch is pending, else the next
// LSN to be assigned. The caller must hold l.mu.
func (l *Log) bufFirstOrNextLocked() uint64 {
	if l.bufCount > 0 {
		return l.bufFirst
	}
	return l.nextLSN
}

// PruneBelow deletes every sealed segment whose records all have LSNs
// strictly below lsn — the post-snapshot cleanup that keeps the log from
// growing without bound. The active segment is never pruned.
func (l *Log) PruneBelow(lsn uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 1 && l.segs[1].firstLSN <= lsn {
		if rmErr := os.Remove(l.segs[0].path); rmErr != nil {
			return removed, fmt.Errorf("wal: prune: %w", rmErr)
		}
		l.segs = l.segs[1:]
		removed++
	}
	l.stats.Segments = len(l.segs)
	return removed, nil
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Crashed reports whether an injected crash killed the log.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// Stats returns a copy of the activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes and closes the active segment. A crashed log closes
// without flushing — the torn state on disk is the point.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing && !l.dead {
		l.commit.Wait()
	}
	if l.file == nil {
		return nil
	}
	f := l.file
	l.file = nil
	if l.dead {
		return f.Close()
	}
	if l.bufCount > 0 {
		// Shouldn't happen (a non-dead retired flusher leaves the batch
		// empty), but never drop staged frames on a deliberate shutdown.
		batch := *l.buf
		if _, err := f.Write(batch); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		l.size += int64(len(batch))
		l.written = l.bufFirst + uint64(l.bufCount) - 1
		l.writtenA.Store(l.written)
		l.pending += l.bufCount
		l.stats.Appends += uint64(l.bufCount)
		l.stats.BatchWrites++
		*l.buf = batch[:0]
		l.bufCount = 0
	}
	if l.pending > 0 {
		if err := l.syncFileLocked(f); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// syncFileLocked is the Close-path flush: no fault consult (the process
// is exiting deliberately), just the fsync and counters.
func (l *Log) syncFileLocked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Fsyncs++
	l.synced = l.size
	l.pending = 0
	return nil
}
