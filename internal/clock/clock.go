// Package clock abstracts time so that every TTL, expiration, and Δ-bound
// in the Speed Kit reproduction can run against either the wall clock or a
// deterministic simulated clock. Simulated time is what lets the benchmark
// harness replay "30 days of production traffic" in milliseconds while
// keeping the coherence protocol's timing semantics exact.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// System is a shared wall-clock instance.
var System Clock = Real{}

// Since returns the time elapsed on c since t. It is the clock-disciplined
// replacement for time.Since.
func Since(c Clock, t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Stopwatch measures elapsed time against a Clock. It is what benchmark
// harnesses use instead of time.Now/time.Since pairs, so that even
// wall-clock measurements flow through the injectable seam.
type Stopwatch struct {
	c     Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on c (defaulting to the system clock).
func NewStopwatch(c Clock) *Stopwatch {
	if c == nil {
		c = System
	}
	return &Stopwatch{c: c, start: c.Now()}
}

// Elapsed returns the time since the stopwatch started or was last reset.
func (s *Stopwatch) Elapsed() time.Duration {
	return s.c.Now().Sub(s.start)
}

// Reset restarts the stopwatch at the clock's current time.
func (s *Stopwatch) Reset() {
	s.start = s.c.Now()
}

// Simulated is a manually advanced clock. The zero value is not usable; use
// NewSimulated.
type Simulated struct {
	mu  sync.RWMutex
	now time.Time // guarded by mu
}

// NewSimulated returns a simulated clock starting at start. A zero start
// defaults to a fixed epoch so that tests are reproducible by default.
func NewSimulated(start time.Time) *Simulated {
	if start.IsZero() {
		start = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC) // ICDE 2020
	}
	return &Simulated{now: start}
}

// Now returns the current simulated time.
func (s *Simulated) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// simulated time never runs backwards.
func (s *Simulated) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Set jumps the clock to t if t is not before the current time.
func (s *Simulated) Set(t time.Time) {
	s.mu.Lock()
	if t.After(s.now) {
		s.now = t
	}
	s.mu.Unlock()
}
