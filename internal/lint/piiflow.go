package lint

import (
	"go/types"
	"strings"

	"speedkit/internal/gdpr"
	"speedkit/internal/lint/dataflow"
)

// PIIFlow is the value-level GDPR gate: a summary-based interprocedural
// taint analysis proving that no PII value — a field of an
// identity-bearing type, or such a value as a whole — flows into shared
// infrastructure. Where gdprboundary bans *imports* and *type shapes*,
// piiflow follows the values themselves: a session email smuggled
// through three string-typed helpers into a WAL frame is invisible to
// the import check and is exactly what this analyzer reports.
//
// Sources are reads of PII-classified fields from types declared in
// internal/session or internal/gdpr (classification is fail-closed and
// shared with the runtime auditor via gdpr.Classify), plus any such
// value used as a whole. Sanitizers — gdpr.Pseudonymize and
// gdpr.StripPII — cut taint. Sinks are the API boundaries where bytes
// leave the device's trust domain: WAL appends, the durability journal,
// coherence-sketch reports, obs metric labels and trace attributes,
// structured-log records (every slog value position, fail-closed — the
// runtime denied-key redaction is the backstop, not the fence), CDN
// edge fills and purges, and fmt/log printing inside shared-infra
// packages.
//
// Test files are exempt, matching the rest of the suite.
var PIIFlow = &Analyzer{
	Name: "piiflow",
	Doc: "no PII value (per gdpr.Classify, fail-closed) may flow — through " +
		"any number of calls — into WAL frames, the durability journal, " +
		"sketch reports, obs labels, trace attributes, structured-log " +
		"records, CDN edges, or shared-infra printing; " +
		"gdpr.Pseudonymize/StripPII cut the flow",
	RunModule: runPIIFlow,
}

func runPIIFlow(mp *ModulePass) {
	dpkgs := dataflowPackages(mp.Pkgs)
	if len(dpkgs) == 0 {
		return
	}
	prog := dataflow.NewProgram(dpkgs)
	ta := dataflow.NewTaintAnalysis(prog, piiTaintConfig())
	for _, f := range ta.Findings() {
		mp.Reportf(f.Pkg.Fset, f.Pos,
			"PII value (%s) reaches %s via %s",
			strings.Join(f.Sources, ", "), f.Sink, strings.Join(f.Chain, " -> "))
	}
}

// dataflowPackages converts loaded packages to the engine's shape,
// dropping test files (and all-test packages) — the invariants the
// suite checks exempt test code.
func dataflowPackages(pkgs []*Package) []*dataflow.Package {
	var out []*dataflow.Package
	for _, pkg := range pkgs {
		var files = pkg.Files[:0:0]
		for _, f := range pkg.Files {
			if !pkg.testFiles[f] {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			continue
		}
		out = append(out, &dataflow.Package{
			Path:  pkg.Path,
			Fset:  pkg.Fset,
			Files: files,
			Types: pkg.Types,
			Info:  pkg.Info,
		})
	}
	return out
}

// piiTaintConfig binds the taint engine to the repo's GDPR model: the
// same classification table the runtime auditor uses, the same identity
// packages gdprboundary defends, and the sanitizers the gdpr package
// exports.
func piiTaintConfig() dataflow.TaintConfig {
	return dataflow.TaintConfig{
		ClassifyField: func(canonical string) dataflow.FieldClass {
			if gdpr.Classify(canonical) == gdpr.PII {
				return dataflow.FieldPII
			}
			return dataflow.FieldClean
		},
		IsIdentityPkg: func(path string) bool {
			for _, seg := range identityBearingSegments {
				if pathHasSegment(path, seg) {
					return true
				}
			}
			return false
		},
		IsSanitizer: func(fn *types.Func) bool {
			if fn.Pkg() == nil || !pathHasSegment(fn.Pkg().Path(), "internal/gdpr") {
				return false
			}
			switch fn.Name() {
			case "Pseudonymize", "StripPII":
				return true
			}
			return false
		},
		Sinks: piiSinks(),
	}
}

// piiSinks catalogs the shared-infrastructure entry points. Matching is
// by callee identity (package path segment, receiver type, name), so
// the catalog works in fixtures too, where only the caller's AST is
// loaded. Params are unified indices: receiver 0, then arguments; nil
// means every input.
func piiSinks() []dataflow.SinkSpec {
	printScope := func(callerPkg string) bool { return isSharedInfra(callerPkg) }
	return []dataflow.SinkSpec{
		{
			Description: "WAL append (persisted shared state)",
			Match:       sinkMethod("internal/wal", "Log", "Append"),
			Params:      []int{1},
		},
		{
			Description: "durability journal (persisted shared state)",
			Match: anyOf(
				sinkMethod("internal/durable", "Store", "JournalCachedRead"),
				sinkMethod("internal/durable", "Store", "JournalWrite"),
			),
			Params: []int{1},
		},
		{
			Description: "coherence sketch report (broadcast to all devices)",
			Match: anyOf(
				sinkMethod("internal/cachesketch", "Server", "ReportCachedRead"),
				sinkMethod("internal/cachesketch", "Server", "ReportWrite"),
			),
			Params: []int{1},
		},
		{
			Description: "obs metric label (exported by /metrics)",
			Match:       sinkFunc("internal/obs", "L"),
		},
		{
			Description: "trace attribute (exported by /debug/traces)",
			Match: anyOf(
				sinkMethod("internal/obs", "Trace", "AddSpan"),
				sinkMethod("internal/obs", "Trace", "AddEvent"),
				sinkMethod("internal/obs", "Trace", "SetSource"),
				sinkMethod("internal/obs", "Trace", "MarkDegraded"),
				sinkMethod("internal/obs", "Tracer", "Start"),
				sinkMethod("internal/obs", "Tracer", "StartRemote"),
			),
		},
		{
			Description: "structured log record (process log, exported off-host)",
			Match: anyOf(
				sinkMethod("internal/slog", "Event", "Str"),
				sinkMethod("internal/slog", "Event", "Msg"),
				sinkMethod("internal/slog", "Event", "Err"),
				sinkMethod("internal/slog", "Logger", "Named"),
			),
		},
		{
			Description: "CDN edge fill (shared cache body)",
			Match:       sinkMethod("internal/cdn", "Edge", "Fill"),
			Params:      []int{1},
		},
		{
			Description: "CDN purge key (visible to the shared tier)",
			Match:       sinkMethod("internal/cdn", "CDN", "Purge"),
			Params:      []int{1},
		},
		{
			// The edge proxy persists entries to its disk tier and
			// serves them to arbitrary clients: anything committed or
			// journaled there leaves the trust boundary twice over.
			Description: "edge cache commit (served and persisted on shared POPs)",
			Match: anyOf(
				sinkMethod("internal/edge", "Proxy", "Purge"),
				sinkMethod("internal/edge", "diskTier", "appendFill"),
				sinkMethod("internal/edge", "diskTier", "appendPurge"),
			),
			Params: []int{1},
		},
		{
			// The inter-node delta-exchange writers: routed coherence
			// reports become wire frames replicated to every cluster node
			// and journaled into each node's WAL. A session ID reaching a
			// frame would be a cluster-wide identity broadcast.
			Description: "cluster delta-exchange frame (replicated to all nodes)",
			Match: anyOf(
				sinkMethod("internal/cluster", "Peer", "ReportWrites"),
				sinkMethod("internal/cluster", "Peer", "ReportCachedRead"),
				sinkMethod("internal/cluster", "Cluster", "ReportWrite"),
				sinkMethod("internal/cluster", "Cluster", "ReportWrites"),
				sinkMethod("internal/cluster", "Cluster", "ReportCachedRead"),
				sinkMethod("internal/cluster", "Node", "ReportWrites"),
				sinkMethod("internal/cluster", "Node", "ReportCachedRead"),
			),
			Params: []int{1},
		},
		{
			Description:  "print/log inside shared infrastructure",
			Match:        printerFunc,
			CallerScoped: printScope,
		},
	}
}

// sinkMethod matches a method by declaring-package segment, receiver
// type name, and method name.
func sinkMethod(pkgSeg, recv, name string) func(*types.Func) bool {
	return func(fn *types.Func) bool {
		if fn.Name() != name || fn.Pkg() == nil || !pathHasSegment(fn.Pkg().Path(), pkgSeg) {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == recv
	}
}

// sinkFunc matches a package-level function by package segment and name.
func sinkFunc(pkgSeg, name string) func(*types.Func) bool {
	return func(fn *types.Func) bool {
		if fn.Name() != name || fn.Pkg() == nil || !pathHasSegment(fn.Pkg().Path(), pkgSeg) {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Recv() == nil
	}
}

func anyOf(matchers ...func(*types.Func) bool) func(*types.Func) bool {
	return func(fn *types.Func) bool {
		for _, m := range matchers {
			if m(fn) {
				return true
			}
		}
		return false
	}
}

// printerFunc matches the fmt and log output functions. Sprint-style
// formatters are deliberately absent: they only transform values (the
// engine's conservative default keeps their results tainted), the
// boundary is crossed when something is printed.
func printerFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "log":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln",
			"Panic", "Panicf", "Panicln", "Output":
			return true
		}
	}
	return false
}
