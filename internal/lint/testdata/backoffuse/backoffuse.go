// Package backoffuse seeds clockdiscipline violations typical of
// retry/backoff code. Backoff loops are the easiest place to smuggle a
// wall-clock dependency back in: a raw time.Sleep between attempts or a
// time.After deadline silently detaches the retry schedule from the
// injected clock, making chaos runs non-deterministic and backoff tests
// minutes-slow. The disciplined forms route every wait through
// clock.Sleep / clock.Clock and stay fully simulable.
package backoffuse

import (
	"time"

	"speedkit/internal/clock"
)

// BadRetry sleeps against the wall clock between attempts.
func BadRetry(attempt func() error) error {
	var err error
	backoff := 10 * time.Millisecond
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return nil
		}
		time.Sleep(backoff) // want "time\\.Sleep"
		backoff *= 2
	}
	return err
}

// BadDeadline builds its per-try deadline from a wall-clock channel.
func BadDeadline(done <-chan struct{}) bool {
	select {
	case <-time.After(50 * time.Millisecond): // want "time\\.After"
		return false
	case <-done:
		return true
	}
}

// BadTimer escapes via a timer constructor — same leak as a bare Sleep.
func BadTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "time\\.NewTimer"
}

// BadElapsedBudget charges the retry budget from the wall clock.
func BadElapsedBudget(start time.Time, budget time.Duration) bool {
	return time.Since(start) < budget // want "time\\.Since"
}

// GoodRetry waits through the injected clock: simulated time can drive
// the whole backoff schedule instantly and deterministically.
func GoodRetry(c clock.Clock, attempt func() error) error {
	var err error
	backoff := 10 * time.Millisecond
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return nil
		}
		clock.Sleep(c, backoff)
		backoff *= 2
	}
	return err
}

// GoodBudget measures the elapsed retry budget through the clock.
func GoodBudget(c clock.Clock, budget time.Duration) bool {
	sw := clock.NewStopwatch(c)
	return sw.Elapsed() < budget
}
