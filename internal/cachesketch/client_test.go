package cachesketch

import (
	"testing"
	"time"

	"speedkit/internal/clock"
)

func TestClientNeedsRefreshInitially(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	c := NewClient(clk, 30*time.Second)
	if !c.NeedsRefresh() {
		t.Fatal("empty client claims freshness")
	}
	if d := c.Check("/x"); d != RefreshSketch {
		t.Fatalf("Check = %v, want RefreshSketch", d)
	}
}

func TestClientFreshnessWindow(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	srv := NewServer(ServerConfig{Clock: clk})
	c := NewClient(clk, 30*time.Second)
	c.Install(srv.Snapshot())
	if c.NeedsRefresh() {
		t.Fatal("fresh snapshot flagged for refresh")
	}
	clk.Advance(29 * time.Second)
	if c.NeedsRefresh() {
		t.Fatal("refresh needed before Δ elapsed")
	}
	clk.Advance(time.Second)
	if !c.NeedsRefresh() {
		t.Fatal("refresh not needed at Δ")
	}
	if d := c.Check("/x"); d != RefreshSketch {
		t.Fatalf("Check on stale sketch = %v", d)
	}
}

func TestClientCheckDecisions(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	srv := NewServer(ServerConfig{Clock: clk})
	srv.ReportCachedRead("/stale", clk.Now().Add(time.Hour))
	srv.ReportWrite("/stale")

	c := NewClient(clk, time.Minute)
	c.Install(srv.Snapshot())

	if d := c.Check("/stale"); d != Revalidate {
		t.Fatalf("Check(/stale) = %v, want Revalidate", d)
	}
	if d := c.Check("/clean"); d != ServeFromCache {
		t.Fatalf("Check(/clean) = %v, want ServeFromCache", d)
	}
	st := c.Stats()
	if st.StaleHits != 1 || st.FreshPasses != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientInstallOrdering(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	srv := NewServer(ServerConfig{Clock: clk})
	sn1 := srv.Snapshot()
	sn2 := srv.Snapshot()
	c := NewClient(clk, time.Minute)
	c.Install(sn2)
	c.Install(sn1) // older generation must be ignored
	c.Install(nil) // no-op
	clk.Advance(30 * time.Second)
	if c.NeedsRefresh() {
		t.Fatal("held snapshot lost")
	}
	if got := c.Stats().Refreshes; got != 1 {
		t.Fatalf("refreshes = %d, want 1 (old+nil ignored)", got)
	}
}

func TestClientAge(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	c := NewClient(clk, time.Minute)
	if c.Age() <= time.Minute {
		t.Fatal("empty client age should exceed Δ")
	}
	srv := NewServer(ServerConfig{Clock: clk})
	c.Install(srv.Snapshot())
	clk.Advance(10 * time.Second)
	if c.Age() != 10*time.Second {
		t.Fatalf("age = %v", c.Age())
	}
}

func TestClientDefaults(t *testing.T) {
	c := NewClient(nil, 0)
	if c.Delta() != 60*time.Second {
		t.Fatalf("default Δ = %v", c.Delta())
	}
}

func TestDecisionString(t *testing.T) {
	if ServeFromCache.String() != "serve-from-cache" || Revalidate.String() != "revalidate" ||
		RefreshSketch.String() != "refresh-sketch" || Decision(9).String() != "unknown" {
		t.Fatal("decision names wrong")
	}
}
