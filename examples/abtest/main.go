// A/B field test: replays a multi-day diurnal e-commerce workload twice —
// control arm loading directly from the origin, treatment arm through
// Speed Kit — and reports the load-time and conversion-proxy uplift the
// paper's production deployment measured. This is the miniature of the
// Figure 9 experiment (run `speedkit-bench -only f9` for the full one).
package main

import (
	"fmt"
	"log"
	"time"

	"speedkit/internal/bench"
	"speedkit/internal/clock"
)

func main() {
	const ops = 20000
	fmt.Printf("A/B test: %d ops per arm, diurnal load, bounce model on\n\n", ops)

	arms := []bench.ClientMode{bench.ModeDirect, bench.ModeSpeedKit}
	results := make([]*bench.FieldResult, len(arms))
	for i, mode := range arms {
		sw := clock.NewStopwatch(clock.System)
		r, err := bench.RunField(bench.FieldConfig{
			Mode: mode, Seed: 42, Ops: ops,
			Diurnal: true, BounceModel: true, MeanOpsPerSecond: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[i] = r
		qs := r.Latency.Quantiles(0.5, 0.9, 0.99)
		fmt.Printf("arm %-9s  p50=%6.1fms  p90=%6.1fms  p99=%6.1fms\n",
			mode, qs[0]/1000, qs[1]/1000, qs[2]/1000)
		fmt.Printf("  hit ratio %.1f%%, bounce rate %.2f%%, checkouts %d\n",
			r.HitRatio()*100,
			float64(r.Bounces)/float64(r.Loads)*100, r.Checkouts)
		fmt.Printf("  simulated %v in %v wall-clock\n\n",
			r.SimulatedDuration.Round(time.Minute), sw.Elapsed().Round(time.Millisecond))
	}

	control, treated := results[0], results[1]
	cq := control.Latency.Quantile(0.5)
	tq := treated.Latency.Quantile(0.5)
	fmt.Printf("p50 speedup:        %.1fx\n", cq/tq)
	if control.Checkouts > 0 {
		uplift := (float64(treated.Checkouts) - float64(control.Checkouts)) / float64(control.Checkouts)
		fmt.Printf("checkout uplift:    %+.1f%%\n", uplift*100)
	}
	fmt.Printf("bounce reduction:   %.2f%% -> %.2f%%\n",
		float64(control.Bounces)/float64(control.Loads)*100,
		float64(treated.Bounces)/float64(treated.Loads)*100)
}
