package bloom

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountingAddRemove(t *testing.T) {
	c := NewCountingForCapacity(1000, 0.01)
	c.Add("resource/1")
	if !c.Contains("resource/1") {
		t.Fatal("added key missing")
	}
	if !c.Remove("resource/1") {
		t.Fatal("remove of present key reported unclean")
	}
	if c.Contains("resource/1") {
		t.Fatal("removed key still present (no other members, must be exact)")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCountingMultiplicity(t *testing.T) {
	// Adding a key twice requires removing it twice before it disappears,
	// which is exactly the semantics the Cache Sketch needs for a resource
	// written twice while cached copies of both versions may exist.
	c := NewCounting(1024, 4)
	c.Add("x")
	c.Add("x")
	c.Remove("x")
	if !c.Contains("x") {
		t.Fatal("key vanished after removing one of two adds")
	}
	c.Remove("x")
	if c.Contains("x") {
		t.Fatal("key present after removing both adds")
	}
}

func TestCountingRemoveAbsentIsDefensive(t *testing.T) {
	c := NewCounting(1024, 4)
	c.Add("present")
	if clean := c.Remove("never-added"); clean {
		// It's possible (though unlikely at this fill) that all probed
		// cells overlap "present"; treat a clean report as suspicious only
		// if the filter then lies about "present".
		if !c.Contains("present") {
			t.Fatal("defensive remove corrupted an unrelated key")
		}
	}
	// The zero-floor guarantee: removing from an empty filter never wraps
	// a cell to 65535 (which would poison Contains for colliding keys).
	c2 := NewCounting(1024, 4)
	for i := 0; i < 100; i++ {
		if clean := c2.Remove(fmt.Sprintf("ghost-%d", i)); clean {
			t.Fatalf("remove on empty filter reported clean for ghost-%d", i)
		}
	}
	if c2.FillRatio() != 0 {
		t.Fatal("phantom removals set cells via underflow")
	}
}

func TestCountingLenNeverNegative(t *testing.T) {
	c := NewCounting(64, 2)
	c.Remove("nothing")
	if c.Len() < 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCountingClear(t *testing.T) {
	c := NewCounting(256, 3)
	c.Add("a")
	c.Add("b")
	c.Clear()
	if c.Contains("a") || c.Contains("b") || c.Len() != 0 {
		t.Fatal("clear incomplete")
	}
}

func TestCountingFlattenPreservesMembers(t *testing.T) {
	c := NewCountingForCapacity(2000, 0.02)
	for i := 0; i < 2000; i++ {
		c.Add(fmt.Sprintf("stale-%d", i))
	}
	f := c.Flatten()
	for i := 0; i < 2000; i++ {
		if !f.Contains(fmt.Sprintf("stale-%d", i)) {
			t.Fatalf("flatten lost stale-%d", i)
		}
	}
	if f.Bits() != c.Bits() || f.Hashes() != c.Hashes() {
		t.Fatal("flatten changed parameters")
	}
}

func TestCountingFlattenAfterRemovals(t *testing.T) {
	c := NewCountingForCapacity(1000, 0.01)
	for i := 0; i < 1000; i++ {
		c.Add(fmt.Sprintf("k%d", i))
	}
	for i := 0; i < 500; i++ {
		c.Remove(fmt.Sprintf("k%d", i))
	}
	f := c.Flatten()
	for i := 500; i < 1000; i++ {
		if !f.Contains(fmt.Sprintf("k%d", i)) {
			t.Fatalf("flatten lost surviving member k%d", i)
		}
	}
	// Removed keys should mostly be gone (false positives aside).
	fp := 0
	for i := 0; i < 500; i++ {
		if f.Contains(fmt.Sprintf("k%d", i)) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("%d/500 removed keys still reported present", fp)
	}
}

func TestCountingSaturationSticky(t *testing.T) {
	c := NewCounting(64, 1)
	// Drive one cell to saturation.
	key := "hot"
	for i := 0; i < maxCell+10; i++ {
		c.Add(key)
	}
	if c.Saturations == 0 {
		t.Fatal("saturation not recorded")
	}
	// Saturated cells must never decrement.
	for i := 0; i < maxCell+10; i++ {
		c.Remove(key)
	}
	if !c.Contains(key) {
		t.Fatal("saturated cell was decremented to zero")
	}
}

func TestCountingString(t *testing.T) {
	c := NewCounting(128, 3)
	c.Add("x")
	s := c.String()
	if !strings.Contains(s, "m=128") || !strings.Contains(s, "members=1") {
		t.Fatalf("unexpected String: %s", s)
	}
}

func TestCountingPropertyAddRemoveIsIdentity(t *testing.T) {
	// Property: adding a set of distinct keys and removing them all leaves
	// the filter empty (no residue), for any key set.
	f := func(keys []string) bool {
		seen := map[string]bool{}
		c := NewCounting(4096, 4)
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			c.Add(k)
		}
		for k := range seen {
			c.Remove(k)
		}
		if c.Len() != 0 {
			return false
		}
		return c.FillRatio() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingPropertyFlattenSuperset(t *testing.T) {
	// Property: Flatten never loses a current member.
	f := func(keys []string) bool {
		c := NewCounting(8192, 5)
		for _, k := range keys {
			c.Add(k)
		}
		fl := c.Flatten()
		for _, k := range keys {
			if !fl.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountingAddRemove(b *testing.B) {
	c := NewCountingForCapacity(100000, 0.01)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		c.Add(k)
		c.Remove(k)
	}
}

func BenchmarkCountingFlatten(b *testing.B) {
	c := NewCountingForCapacity(50000, 0.05)
	for i := 0; i < 50000; i++ {
		c.Add(fmt.Sprintf("s-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Flatten()
	}
}
