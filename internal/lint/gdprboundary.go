package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"speedkit/internal/gdpr"
	"speedkit/internal/lint/dataflow"
)

// sharedInfraSegments lists the packages that model shared infrastructure:
// code whose deployed equivalent runs outside the user's device and outside
// the first-party origin (the CDN, the caches, the sketches, the
// invalidation pipeline). The paper's compliance claim is precisely that
// these components never see identity.
var sharedInfraSegments = []string{
	"internal/cdn",
	"internal/cache",
	"internal/bloom",
	"internal/invalidb",
	"internal/cachesketch",
	// Durability persists coherence state to disk: anything it can reach
	// survives a crash in plaintext, so the identity ban is load-bearing
	// twice over (shared infra AND persisted bytes).
	"internal/wal",
	"internal/durable",
	// The edge cache proxy deploys on shared POPs: its library and its
	// command both serve (and persist) cached bodies on infrastructure
	// the user never consented to hand identity. Commands are covered by
	// path here and by deployment role below.
	"internal/edge",
	"cmd/speedkit-edge",
	// Cluster nodes exchange sketch frames and routed coherence reports
	// over the network and persist per-node WALs: every byte that enters
	// the delta-exchange plane fans out to N machines and to disk.
	"internal/cluster",
	"cmd/speedkit-cluster",
}

// identityBearingSegments are the packages whose types carry identity:
// session (users, carts, histories) and gdpr (consent records).
var identityBearingSegments = []string{
	"internal/session",
	"internal/gdpr",
}

// GDPRBoundary enforces the trust boundary statically: shared-infrastructure
// packages must not import identity-bearing packages, and their exported
// APIs must not carry struct fields that classify as PII under the same
// field classification the runtime flow auditor uses.
var GDPRBoundary = &Analyzer{
	Name: "gdprboundary",
	Doc: "shared-infrastructure packages (cdn, cache, bloom, invalidb, " +
		"cachesketch, wal, durable) must not import internal/session or " +
		"internal/gdpr and must not expose PII-classified fields in their " +
		"exported APIs",
	Run: runGDPRBoundary,
}

func isSharedInfra(path string) bool {
	for _, seg := range sharedInfraSegments {
		if pathHasSegment(path, seg) {
			return true
		}
	}
	return false
}

// hasDeployRole reports whether any file's package doc comment declares
//
//	//speedkit:deploy <role>
//
// Commands are not under internal/, so their deployment tier cannot be
// read off the import path; the directive lets a main package opt into
// the shared-infrastructure rules explicitly, and the edge command path
// is additionally pinned in sharedInfraSegments so forgetting the
// directive there does not open the boundary.
func hasDeployRole(files []*ast.File, role string) bool {
	for _, f := range files {
		if f.Doc == nil {
			continue
		}
		for _, c := range f.Doc.List {
			text := strings.TrimPrefix(c.Text, "//")
			if rest, ok := strings.CutPrefix(text, "speedkit:deploy"); ok {
				if strings.TrimSpace(rest) == role {
					return true
				}
			}
		}
	}
	return false
}

// isSharedInfraPass extends the path rule with the deployment-role
// directive, for analyzers that have the syntax at hand.
func isSharedInfraPass(pass *Pass) bool {
	return isSharedInfra(pass.Path) || hasDeployRole(pass.Files, "shared-infra")
}

func runGDPRBoundary(pass *Pass) {
	if !isSharedInfraPass(pass) {
		return
	}

	// Import side: no edge from shared infrastructure to identity-bearing
	// packages, not even from test files — a test importing session into
	// the CDN package is one refactor away from a production import.
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, seg := range identityBearingSegments {
				if pathHasSegment(path, seg) {
					pass.Reportf(imp.Pos(),
						"shared-infrastructure package %s imports identity-bearing package %s",
						pass.Path, path)
				}
			}
		}
	}

	// API side: no exported symbol may reach a struct field whose name
	// classifies as PII. The field list comes from the gdpr package itself
	// so the static gate and the runtime auditor share one source of truth.
	pii := map[string]bool{}
	for _, name := range gdpr.PIIFields() {
		pii[name] = true
	}
	w := &piiWalker{pass: pass, pii: pii, seen: map[types.Type]bool{}, reported: map[*types.Var]bool{}}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		w.walk(obj.Type())
	}
}

// piiWalker traverses the type graph reachable from exported symbols,
// staying within the package under analysis (foreign packages are either
// shared infrastructure themselves — analyzed separately — or unreachable
// thanks to the import check).
type piiWalker struct {
	pass     *Pass
	pii      map[string]bool
	seen     map[types.Type]bool
	reported map[*types.Var]bool
}

func (w *piiWalker) walk(t types.Type) {
	if t == nil || w.seen[t] {
		return
	}
	w.seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if t.Obj().Pkg() != nil && t.Obj().Pkg() != w.pass.Pkg {
			return
		}
		w.walk(t.Underlying())
	case *types.Pointer:
		w.walk(t.Elem())
	case *types.Slice:
		w.walk(t.Elem())
	case *types.Array:
		w.walk(t.Elem())
	case *types.Chan:
		w.walk(t.Elem())
	case *types.Map:
		w.walk(t.Key())
		w.walk(t.Elem())
	case *types.Signature:
		w.walk(t.Params())
		w.walk(t.Results())
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			w.walk(t.At(i).Type())
		}
	case *types.Interface:
		for i := 0; i < t.NumMethods(); i++ {
			w.walk(t.Method(i).Type())
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			field := t.Field(i)
			if field.Exported() {
				if canon := fieldToCanonical(field.Name()); w.pii[canon] && !w.reported[field] {
					w.reported[field] = true
					w.pass.Reportf(field.Pos(),
						"exported API of shared-infrastructure package %s carries PII field %q (classifies as %q)",
						w.pass.Path, field.Name(), canon)
				}
			}
			w.walk(field.Type())
		}
	}
}

// fieldToCanonical converts a Go field name to the snake_case canonical
// form the gdpr classification uses: "UserID" → "user_id", "Email" →
// "email". The conversion lives in the dataflow engine so the
// import-level and value-level analyzers share one definition.
func fieldToCanonical(name string) string {
	return dataflow.CanonicalField(name)
}
