package proxy

import (
	"context"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/origin"
)

// TestRevalidationNotModifiedKeepsBody: a sketch-flagged page whose
// version is unchanged (a false positive, or a flagged-but-refetched-
// elsewhere resource) must be refreshed via the 304 path — cheap, and the
// held body survives.
func TestRevalidationNotModifiedKeepsBody(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	_, _ = p.Load(context.Background(), "/") // cold fill at v1

	// Flag the page in the sketch WITHOUT changing its version — exactly
	// what a Bloom false positive looks like to the client.
	tr.sketchSrv.ReportCachedRead("/", tr.clk.Now().Add(time.Hour))
	tr.sketchSrv.ReportWrite("/")
	// Force a sketch refresh so the flag is visible.
	p.sketch.Install(tr.sketchSrv.Snapshot())

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Revalidated {
		t.Fatal("flagged page not revalidated")
	}
	if len(res.Body) == 0 {
		t.Fatal("304 path lost the held body")
	}
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
	st := p.Stats()
	if st.NotModified != 1 {
		t.Fatalf("NotModified = %d", st.NotModified)
	}
	// Cheap: the 5ms conditional beats the 40ms full fetch.
	if res.Latency > 20*time.Millisecond {
		t.Fatalf("304 latency %v too high", res.Latency)
	}
}

// TestRevalidationModifiedFetchesNewBody: a flagged page whose version
// advanced must come back with the new representation.
func TestRevalidationModifiedFetchesNewBody(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	_, _ = p.Load(context.Background(), "/")

	tr.sketchSrv.ReportWrite("/") // cached copy exists from the load above
	e := tr.pages["/"]
	e.Version = 2
	e.Body = []byte("<html>v2</html>")
	e.Metadata = nil
	tr.pages["/"] = e
	p.sketch.Install(tr.sketchSrv.Snapshot())

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || string(res.Body) != "<html>v2</html>" {
		t.Fatalf("got v%d %q", res.Version, res.Body)
	}
	if p.Stats().NotModified != 0 {
		t.Fatal("modified page counted as 304")
	}
	// The device cache now holds v2.
	held, ok := p.store.Peek("/")
	if !ok || held.Version != 2 {
		t.Fatalf("device cache not updated: %+v %v", held, ok)
	}
}

// TestRevalidationExpiredCopyStillConditional: an expired device copy
// cannot be served, but its version still enables a conditional request.
func TestRevalidationExpiredCopyStillConditional(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	// Short-lived page.
	body := []byte("short " + origin.BlockPlaceholder("cart"))
	e := cache.TTLEntry(clk, "/short", body, 1, 10*time.Second)
	e.Metadata = BlocksMetadata([]string{"cart"})
	tr.pages["/short"] = e
	_, _ = p.Load(context.Background(), "/short")

	// Another client elsewhere caches a long-lived copy, then a write
	// flags the page — the flag outlives our device copy's short TTL.
	tr.sketchSrv.ReportCachedRead("/short", clk.Now().Add(time.Hour))
	tr.sketchSrv.ReportWrite("/short")
	clk.Advance(11 * time.Second) // device copy expires; flag persists
	p.sketch.Install(tr.sketchSrv.Snapshot())

	res, err := p.Load(context.Background(), "/short")
	if err != nil {
		t.Fatal(err)
	}
	// Version unchanged → 304 path even though the copy had expired.
	if p.Stats().NotModified != 1 {
		t.Fatalf("expired copy not conditionally revalidated: %+v", p.Stats())
	}
	if len(res.Body) == 0 {
		t.Fatal("body lost across expired-copy revalidation")
	}
}
