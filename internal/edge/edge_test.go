package edge

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
)

// fakeUpstream is a minimal speedkit-server stand-in: /v1/page with
// versioned bodies and ETags, /v1/sketch with a marshaled Bloom filter,
// and counters the tests assert against.
type fakeUpstream struct {
	mu       sync.Mutex
	bodies   map[string][]byte
	versions map[string]uint64
	maxAge   int
	noStore  bool
	gen      uint64
	sketch   *bloom.Filter

	fetches    atomic.Int64 // full-body /v1/page responses
	conds      atomic.Int64 // If-None-Match requests seen
	legacyOnly bool
	// hold, when non-nil, blocks page responses until closed — the
	// stampede test uses it to keep the fill in flight.
	hold chan struct{}

	srv *httptest.Server
}

func newFakeUpstream() *fakeUpstream {
	u := &fakeUpstream{
		bodies:   map[string][]byte{},
		versions: map[string]uint64{},
		maxAge:   60,
	}
	mux := http.NewServeMux()
	page := func(w http.ResponseWriter, r *http.Request) { u.servePage(w, r) }
	sketch := func(w http.ResponseWriter, _ *http.Request) { u.serveSketch(w) }
	mux.HandleFunc("GET /page", page)
	mux.HandleFunc("GET /sketch", sketch)
	u.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if u.legacyOnly && (r.URL.Path == "/v1/page" || r.URL.Path == "/v1/sketch") {
			http.NotFound(w, r) // the stdlib text/plain 404 of a pre-/v1 server
			return
		}
		switch r.URL.Path {
		case "/v1/page":
			page(w, r)
			return
		case "/v1/sketch":
			sketch(w, nil)
			return
		case "/v1/blocks", "/blocks":
			// Personalized: never cacheable.
			w.Header().Set("Cache-Control", "no-store")
			io.WriteString(w, `{"cart":"3 items"}`)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	return u
}

func (u *fakeUpstream) close() { u.srv.Close() }

func (u *fakeUpstream) set(path, body string, version uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.bodies[path] = []byte(body)
	u.versions[path] = version
}

func (u *fakeUpstream) servePage(w http.ResponseWriter, r *http.Request) {
	if u.hold != nil {
		<-u.hold
	}
	path := r.URL.Query().Get("path")
	u.mu.Lock()
	body, ok := u.bodies[path]
	version := u.versions[path]
	maxAge, noStore := u.maxAge, u.noStore
	u.mu.Unlock()
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":{"code":"not_found","message":"no route"}}`)
		return
	}
	etag := fmt.Sprintf("%q", "v"+strconv.FormatUint(version, 10))
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		u.conds.Add(1)
		if inm == etag {
			w.Header().Set("ETag", etag)
			w.Header().Set("Cache-Control", "max-age="+strconv.Itoa(maxAge))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	u.fetches.Add(1)
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "text/html")
	if noStore {
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Cache-Control", "max-age="+strconv.Itoa(maxAge))
	}
	w.Write(body)
}

func (u *fakeUpstream) serveSketch(w http.ResponseWriter) {
	u.mu.Lock()
	f, gen := u.sketch, u.gen
	u.mu.Unlock()
	if f == nil {
		f = bloom.NewFilterForCapacity(64, 0.01)
	}
	data, _ := f.MarshalBinary()
	w.Header().Set("X-Sketch-Generation", strconv.FormatUint(gen, 10))
	w.Write(data)
}

// snapshotWith builds a sketch snapshot flagging the given keys.
func snapshotWith(gen uint64, keys ...string) *cachesketch.Snapshot {
	f := bloom.NewFilterForCapacity(64, 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	return &cachesketch.Snapshot{Filter: f, Generation: gen, TakenAt: time.Unix(0, 0)}
}

func newTestProxy(t *testing.T, u *fakeUpstream, opts Options) *Proxy {
	t.Helper()
	opts.Upstream = u.srv.URL
	if opts.Clock == nil {
		opts.Clock = clock.System
	}
	p, _, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func get(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestMissThenHit(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "hello page", 1)
	p := newTestProxy(t, u, Options{})

	w := get(t, p, "/v1/page?path=/p", nil)
	if w.Code != http.StatusOK || w.Body.String() != "hello page" {
		t.Fatalf("miss: code=%d body=%q", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Edge-Cache"); got != "miss" {
		t.Fatalf("X-Edge-Cache = %q, want miss", got)
	}

	w = get(t, p, "/v1/page?path=/p", nil)
	if w.Body.String() != "hello page" || w.Header().Get("X-Edge-Cache") != "hit" {
		t.Fatalf("hit: body=%q state=%q", w.Body.String(), w.Header().Get("X-Edge-Cache"))
	}
	if n := u.fetches.Load(); n != 1 {
		t.Fatalf("origin fetches = %d, want 1", n)
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStampedeCoalescesToOneFetch(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/hot", "stampede body", 1)
	u.hold = make(chan struct{})
	p := newTestProxy(t, u, Options{})

	const n = 100
	var wg sync.WaitGroup
	bodies := make([]string, n)
	states := make([]string, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			w := get(t, p, "/v1/page?path=/hot", nil)
			bodies[i] = w.Body.String()
			states[i] = w.Header().Get("X-Edge-Cache")
		}(i)
	}
	close(start)
	// Let the wave pile onto the in-flight fill, then release the
	// upstream.
	time.Sleep(100 * time.Millisecond)
	close(u.hold)
	wg.Wait()

	if n := u.fetches.Load(); n != 1 {
		t.Fatalf("origin fetches = %d, want exactly 1", n)
	}
	for i := range bodies {
		if bodies[i] != "stampede body" {
			t.Fatalf("request %d body = %q", i, bodies[i])
		}
	}
	s := p.Stats()
	if s.CoalescedWaiters == 0 {
		t.Fatalf("no coalesced waiters recorded: %+v", s)
	}
}

func TestSketchDrivenRevalidation(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "v1 body", 1)
	p := newTestProxy(t, u, Options{})

	// Fill.
	get(t, p, "/v1/page?path=/p", nil)
	if n := u.fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d", n)
	}

	// Fresh generation NOT flagging the key: pure hit, no upstream trip.
	p.InstallSketch(snapshotWith(5, "/other"))
	w := get(t, p, "/v1/page?path=/p", nil)
	if w.Header().Get("X-Edge-Cache") != "hit" {
		t.Fatalf("unflagged key state = %q, want hit", w.Header().Get("X-Edge-Cache"))
	}
	if n := u.conds.Load(); n != 0 {
		t.Fatalf("conditional requests = %d, want 0", n)
	}

	// Newer generation flagging the key, body unchanged upstream: one
	// conditional request, 304 renews, then hits again.
	p.InstallSketch(snapshotWith(6, "/p"))
	w = get(t, p, "/v1/page?path=/p", nil)
	if w.Header().Get("X-Edge-Cache") != "revalidated" || w.Body.String() != "v1 body" {
		t.Fatalf("stale-flagged: state=%q body=%q", w.Header().Get("X-Edge-Cache"), w.Body.String())
	}
	if n := u.conds.Load(); n != 1 {
		t.Fatalf("conditional requests = %d, want 1", n)
	}
	w = get(t, p, "/v1/page?path=/p", nil)
	if w.Header().Get("X-Edge-Cache") != "hit" {
		t.Fatalf("renewed entry state = %q, want hit", w.Header().Get("X-Edge-Cache"))
	}

	// Body actually changed: the conditional turns into a 200 refresh.
	u.set("/p", "v2 body", 2)
	p.InstallSketch(snapshotWith(7, "/p"))
	w = get(t, p, "/v1/page?path=/p", nil)
	if w.Body.String() != "v2 body" || w.Header().Get("X-Edge-Cache") != "miss" {
		t.Fatalf("changed body: state=%q body=%q", w.Header().Get("X-Edge-Cache"), w.Body.String())
	}
}

func TestClientIfNoneMatch(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "body", 3)
	p := newTestProxy(t, u, Options{})
	get(t, p, "/v1/page?path=/p", nil)

	w := get(t, p, "/v1/page?path=/p", map[string]string{"If-None-Match": `"v3"`})
	if w.Code != http.StatusNotModified || w.Body.Len() != 0 {
		t.Fatalf("matching INM: code=%d len=%d", w.Code, w.Body.Len())
	}
	w = get(t, p, "/v1/page?path=/p", map[string]string{"If-None-Match": `"v2"`})
	if w.Code != http.StatusOK || w.Body.String() != "body" {
		t.Fatalf("stale INM: code=%d body=%q", w.Code, w.Body.String())
	}
}

func TestRangeRequests(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "0123456789", 1) // 10 bytes
	p := newTestProxy(t, u, Options{})
	get(t, p, "/v1/page?path=/p", nil)

	cases := []struct {
		spec string
		code int
		body string
		cr   string
	}{
		{"bytes=0-3", http.StatusPartialContent, "0123", "bytes 0-3/10"},
		{"bytes=4-", http.StatusPartialContent, "456789", "bytes 4-9/10"},
		{"bytes=-2", http.StatusPartialContent, "89", "bytes 8-9/10"},
		{"bytes=2-100", http.StatusPartialContent, "23456789", "bytes 2-9/10"},
		{"bytes=10-", http.StatusRequestedRangeNotSatisfiable, "", "bytes */10"},
		{"bytes=-0", http.StatusRequestedRangeNotSatisfiable, "", "bytes */10"},
		// Multi-range and malformed specs are ignored: full body.
		{"bytes=0-1,5-6", http.StatusOK, "0123456789", ""},
		{"lines=0-3", http.StatusOK, "0123456789", ""},
	}
	for _, c := range cases {
		w := get(t, p, "/v1/page?path=/p", map[string]string{"Range": c.spec})
		if w.Code != c.code || w.Body.String() != c.body {
			t.Fatalf("%s: code=%d body=%q", c.spec, w.Code, w.Body.String())
		}
		if got := w.Header().Get("Content-Range"); got != c.cr {
			t.Fatalf("%s: Content-Range=%q want %q", c.spec, got, c.cr)
		}
	}
}

func TestPurgeEvicts(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "body", 1)
	p := newTestProxy(t, u, Options{})
	get(t, p, "/v1/page?path=/p", nil)

	r := httptest.NewRequest(http.MethodPost, "/v1/purge?path=/p", nil)
	w := httptest.NewRecorder()
	p.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("purge code = %d", w.Code)
	}

	get(t, p, "/v1/page?path=/p", nil)
	if n := u.fetches.Load(); n != 2 {
		t.Fatalf("fetches after purge = %d, want 2", n)
	}
}

func TestNoStoreNotCached(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "private-ish", 1)
	u.noStore = true
	p := newTestProxy(t, u, Options{})

	get(t, p, "/v1/page?path=/p", nil)
	get(t, p, "/v1/page?path=/p", nil)
	if n := u.fetches.Load(); n != 2 {
		t.Fatalf("no-store fetches = %d, want 2 (never cached)", n)
	}
}

func TestPassthroughUncached(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	p := newTestProxy(t, u, Options{})

	w := get(t, p, "/v1/blocks?names=cart&user=u1", nil)
	if w.Header().Get("X-Edge-Cache") != "bypass" || w.Body.String() != `{"cart":"3 items"}` {
		t.Fatalf("blocks: state=%q body=%q", w.Header().Get("X-Edge-Cache"), w.Body.String())
	}
	w = get(t, p, "/v1/blocks?names=cart&user=u1", nil)
	if w.Header().Get("X-Edge-Cache") != "bypass" {
		t.Fatalf("blocks second call state = %q, want bypass", w.Header().Get("X-Edge-Cache"))
	}
}

func TestLegacyUpstreamFallback(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.legacyOnly = true
	u.set("/p", "legacy body", 1)
	p := newTestProxy(t, u, Options{})

	w := get(t, p, "/v1/page?path=/p", nil)
	if w.Code != http.StatusOK || w.Body.String() != "legacy body" {
		t.Fatalf("legacy upstream: code=%d body=%q", w.Code, w.Body.String())
	}
	// The latch means the next request goes straight to the legacy path.
	w = get(t, p, "/page?path=/p", nil)
	if w.Header().Get("X-Edge-Cache") != "hit" {
		t.Fatalf("state = %q, want hit", w.Header().Get("X-Edge-Cache"))
	}
}

func TestServeStaleOnUpstreamFailure(t *testing.T) {
	u := newFakeUpstream()
	u.set("/p", "survivor", 1)
	clk := clock.NewSimulated(time.Unix(1000, 0))
	p := newTestProxy(t, u, Options{Clock: clk, DefaultTTL: time.Second})
	u.mu.Lock()
	u.maxAge = 1
	u.mu.Unlock()
	get(t, p, "/v1/page?path=/p", nil)

	// Expire the entry, then kill the upstream: the edge serves the
	// stale copy instead of failing the request.
	clk.Advance(5 * time.Second)
	u.close()
	w := get(t, p, "/v1/page?path=/p", nil)
	if w.Code != http.StatusOK || w.Body.String() != "survivor" {
		t.Fatalf("stale serve: code=%d body=%q", w.Code, w.Body.String())
	}
	if w.Header().Get("X-Edge-Cache") != "stale" {
		t.Fatalf("state = %q, want stale", w.Header().Get("X-Edge-Cache"))
	}
}

func TestMetricsExposition(t *testing.T) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "body", 1)
	p := newTestProxy(t, u, Options{})
	h := p.Handler()
	get(t, h, "/v1/page?path=/p", nil)
	get(t, h, "/v1/page?path=/p", nil)

	w := get(t, h, "/metrics", nil)
	out := w.Body.String()
	for _, want := range []string{
		"speedkit_edge_hits_total 1\n",
		"speedkit_edge_misses_total 1\n",
	} {
		if !contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
