package lint

import (
	"go/ast"
	"go/types"
)

// globalRandFuncs are the math/rand top-level functions that draw from the
// package-global source. Constructors (New, NewSource, NewZipf) and
// methods on an injected *rand.Rand are fine — they are exactly the
// replacement this analyzer pushes callers toward.
var globalRandFuncs = map[string]bool{
	"Seed":        true,
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"ExpFloat64":  true,
	"NormFloat64": true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
}

// RandDiscipline bans the global math/rand source in library code. The
// experiments' headline numbers (hit ratios, Δ-violation counts, user
// populations) are only comparable across runs because every random draw
// comes from a seeded, injected *rand.Rand; the global source is shared
// mutable state that any import can silently perturb.
var RandDiscipline = &Analyzer{
	Name: "randdiscipline",
	Doc: "global math/rand top-level functions are banned in non-test " +
		"library code; inject a seeded *rand.Rand for reproducibility",
	Run: runRandDiscipline,
}

func runRandDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil || !globalRandFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global math/rand.%s in library code; inject a seeded *rand.Rand",
				fn.Name())
			return true
		})
	}
}
