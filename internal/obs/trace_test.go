package obs

import (
	"testing"
	"time"

	"speedkit/internal/clock"
)

func TestTracerSamplesOneInN(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tr := NewTracer(clk, 4, 16)
	var sampled int
	for i := 0; i < 100; i++ {
		if s := tr.Start("page_load", "/p"); s != nil {
			sampled++
			tr.Finish(s)
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
	st := tr.Stats()
	if st.Started != 100 || st.Sampled != 25 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if nilT.Start("k", "/p") != nil {
		t.Fatal("nil tracer sampled")
	}
	nilT.Finish(&Trace{})
	nilT.SetSampleEvery(1)
	if nilT.Recent(10) != nil || nilT.SampleEvery() != 0 {
		t.Fatal("nil tracer is not inert")
	}

	off := NewTracer(clock.NewSimulated(time.Time{}), 0, 4)
	if off.Start("k", "/p") != nil {
		t.Fatal("disabled tracer sampled")
	}
	off.SetSampleEvery(1)
	if off.Start("k", "/p") == nil {
		t.Fatal("re-enabled tracer did not sample")
	}
}

func TestNilTraceMethodsAreNoOps(t *testing.T) {
	var tr *Trace
	tr.AddSpan("s", "cdn", time.Second)
	tr.SetSource("cdn")
	tr.SetSketch(3, time.Second, time.Minute)
	tr.SetBlocks(2, time.Millisecond)
	tr.SetTotal(time.Second)
	tr.MarkSketchRefreshed()
	tr.MarkRevalidated()
	tr.MarkOffline()
	// Reaching here without a panic is the assertion.
}

func TestTraceRecordsProtocolOutcomes(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracer(clk, 1, 8)
	tr := tcr.Start("page_load", "/product/p1")
	tr.SetSketch(7, 30*time.Second, 60*time.Second)
	tr.AddSpan("sketch.fetch", "cdn", 5*time.Millisecond)
	tr.AddSpan("shell.fetch", "origin", 40*time.Millisecond)
	tr.SetSource("origin")
	tr.SetBlocks(3, 12*time.Millisecond)
	tr.MarkRevalidated()
	tr.SetTotal(57 * time.Millisecond)
	tcr.Finish(tr)

	got := tcr.Recent(1)
	if len(got) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(got))
	}
	g := got[0]
	if g.SketchGeneration != 7 || g.DeltaBudget != 0.5 {
		t.Fatalf("sketch state = gen %d budget %v, want 7, 0.5", g.SketchGeneration, g.DeltaBudget)
	}
	if g.Source != "origin" || !g.Revalidated || g.Blocks != 3 {
		t.Fatalf("outcomes = %+v", g)
	}
	if len(g.Spans) != 2 || g.Spans[0].Name != "sketch.fetch" || g.Spans[1].Tier != "origin" {
		t.Fatalf("spans = %+v", g.Spans)
	}
}

func TestTracerRingKeepsNewestFirst(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	tcr := NewTracer(clk, 1, 4)
	for i := 0; i < 10; i++ {
		tr := tcr.Start("page_load", "/p")
		tcr.Finish(tr)
	}
	got := tcr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// IDs 7,8,9,10 survive; newest first.
	want := []uint64{10, 9, 8, 7}
	for i, tr := range got {
		if tr.ID != want[i] {
			t.Fatalf("recent[%d].ID = %d, want %d (full: %v)", i, tr.ID, want[i], ids(got))
		}
	}
	if got2 := tcr.Recent(2); len(got2) != 2 || got2[0].ID != 10 || got2[1].ID != 9 {
		t.Fatalf("Recent(2) = %v", ids(got2))
	}
}

func ids(trs []*Trace) []uint64 {
	out := make([]uint64, len(trs))
	for i, tr := range trs {
		out[i] = tr.ID
	}
	return out
}
