package slog

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/tracectx"
)

func testLogger(level Level) (*Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	clk := clock.NewSimulated(time.Unix(1700000000, 0).UTC())
	return New(&buf, clk, level), &buf
}

func TestRecordShape(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info(context.Background()).
		Str("source", "cdn").
		Int("attempt", 2).
		Uint("generation", 7).
		Bool("revalidated", true).
		Dur("elapsed", 1500*time.Millisecond).
		Msg("page served")
	got := buf.String()
	want := `ts=2023-11-14T22:13:20Z level=info source=cdn attempt=2 generation=7 revalidated=true elapsed=1.5s msg="page served"` + "\n"
	if got != want {
		t.Fatalf("record:\n got %q\nwant %q", got, want)
	}
}

func TestLevelFiltering(t *testing.T) {
	l, buf := testLogger(LevelWarn)
	l.Debug(context.Background()).Msg("nope")
	l.Info(context.Background()).Msg("nope")
	l.Warn(context.Background()).Msg("yes")
	l.Error(context.Background()).Msg("also")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Fatalf("filtered output = %q", buf.String())
	}

	l.SetLevel(LevelDebug)
	buf.Reset()
	l.Debug(context.Background()).Msg("now")
	if !strings.Contains(buf.String(), "level=debug") {
		t.Fatalf("SetLevel did not take: %q", buf.String())
	}
}

func TestNilLoggerAndNilEventAreInert(t *testing.T) {
	var l *Logger
	// Must not panic anywhere on the chain.
	l.Info(context.Background()).Str("k", "v").Int("n", 1).Err(errors.New("x")).Msg("dropped")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if l.Named("wal") != nil {
		t.Fatal("nil Named returned non-nil")
	}
	var e *Event
	e.Str("k", "v").Int("n", 1).Uint("u", 1).Bool("b", true).Dur("d", time.Second).Err(nil).Msg("x")
}

func TestTraceStamping(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	src := tracectx.NewIDSource(42)
	sc := tracectx.SpanContext{TraceID: src.TraceID(), SpanID: src.SpanID(), Sampled: true}
	ctx := tracectx.ContextWithSpan(context.Background(), sc)
	l.Info(ctx).Str("source", "cdn").Msg("served")
	got := buf.String()
	if !strings.Contains(got, " trace="+sc.TraceID.String()+" ") {
		t.Fatalf("record missing trace stamp: %q", got)
	}
	if !strings.Contains(got, " span="+sc.SpanID.String()+" ") {
		t.Fatalf("record missing span stamp: %q", got)
	}

	// No active span: no stamp, and a nil ctx is tolerated.
	buf.Reset()
	l.Info(context.Background()).Msg("plain")
	l.Info(nil).Msg("nil ctx") //nolint:staticcheck // nil ctx tolerance is the assertion
	if strings.Contains(buf.String(), "trace=") {
		t.Fatalf("unexpected trace stamp: %q", buf.String())
	}
}

func TestNamedComponent(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	wal := l.Named("wal")
	wal.Info(context.Background()).Uint("lsn", 12).Msg("fsync")
	if !strings.Contains(buf.String(), "component=wal") {
		t.Fatalf("missing component: %q", buf.String())
	}
	// Child shares the parent's writer and level but not its name.
	buf.Reset()
	l.Info(context.Background()).Msg("root")
	if strings.Contains(buf.String(), "component=") {
		t.Fatalf("root inherited a component: %q", buf.String())
	}
}

func TestQuoting(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info(context.Background()).
		Str("simple", "token").
		Str("spaced", "two words").
		Str("empty", "").
		Str("eq", "a=b").
		Str("quote", `say "hi"`).
		Msg("m")
	got := buf.String()
	for _, want := range []string{
		`simple=token`,
		`spaced="two words"`,
		`empty=""`,
		`eq="a=b"`,
		`quote="say \"hi\""`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("quoting: %q missing from %q", want, got)
		}
	}
}

func TestDeniedKeysRedact(t *testing.T) {
	// The process-wide deny list only grows, so use keys no other test
	// (or the obs init fence) would miss.
	DenyKeys("test_secret_field", "test_user_field")
	l, buf := testLogger(LevelInfo)
	l.Info(context.Background()).
		Str("test_secret_field", "alice@example.com").
		Str("path", "/product/p1").
		Msg("write")
	got := buf.String()
	if strings.Contains(got, "alice@example.com") {
		t.Fatalf("PII value reached the sink: %q", got)
	}
	if !strings.Contains(got, "test_secret_field="+redacted) {
		t.Fatalf("denied key not redacted: %q", got)
	}
	if !strings.Contains(got, "path=/product/p1") {
		t.Fatalf("anonymous field damaged: %q", got)
	}
}

func TestGDPRFieldsAreDeniedViaObsInit(t *testing.T) {
	// Importing internal/obs anywhere in the binary installs the GDPR
	// classification as denied keys. This test package does not import
	// obs — simulate the init wiring the way obs does it.
	DenyKeys("user_id", "session_id", "email")
	l, buf := testLogger(LevelInfo)
	l.Info(context.Background()).Str("user_id", "u123").Msg("load")
	if strings.Contains(buf.String(), "u123") {
		t.Fatalf("user_id leaked: %q", buf.String())
	}
}

func TestConcurrentLogging(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info(context.Background()).Int("j", int64(j)).Msg("tick")
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.HasSuffix(line, "msg=tick") {
			t.Fatalf("torn record: %q", line)
		}
	}
}

// TestDisabledLoggerZeroAlloc is the hard gate the bench suite mirrors:
// a level-filtered record costs zero allocations at the call site,
// whatever methods are chained after it.
func TestDisabledLoggerZeroAlloc(t *testing.T) {
	l := New(io.Discard, clock.NewSimulated(time.Time{}), LevelError)
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		l.Debug(ctx).Str("source", "cdn").Int("attempt", 1).Dur("d", time.Second).Msg("dropped")
	}); n != 0 {
		t.Fatalf("disabled record allocates %v per run, want 0", n)
	}
	var nilL *Logger
	if n := testing.AllocsPerRun(1000, func() {
		nilL.Error(ctx).Str("k", "v").Msg("dropped")
	}); n != 0 {
		t.Fatalf("nil logger allocates %v per run, want 0", n)
	}
}

// TestEnabledLoggerSteadyStateAllocs pins the pooled-event design: after
// warm-up, an enabled record with a handful of fields allocates nothing
// per record (buffer and event both come from the pool).
func TestEnabledLoggerSteadyStateAllocs(t *testing.T) {
	l := New(io.Discard, clock.NewSimulated(time.Time{}), LevelInfo)
	ctx := context.Background()
	for i := 0; i < 100; i++ { // warm the pool
		l.Info(ctx).Str("source", "cdn").Int("n", 1).Msg("warm")
	}
	if n := testing.AllocsPerRun(1000, func() {
		l.Info(ctx).Str("source", "cdn").Int("n", 1).Msg("steady")
	}); n > 1 {
		t.Fatalf("enabled record allocates %v per run, want <= 1", n)
	}
}
