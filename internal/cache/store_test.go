package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"speedkit/internal/clock"
)

func newLRU(items int) (*Store, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	return New(Config{MaxItems: items, Clock: clk}), clk
}

func TestStorePutGet(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", []byte("body"), 1, time.Minute))
	e, ok := s.Get("/a")
	if !ok || string(e.Body) != "body" || e.Version != 1 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if _, ok := s.Get("/missing"); ok {
		t.Fatal("missing key hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreExpiration(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", []byte("x"), 1, 10*time.Second))
	clk.Advance(11 * time.Second)
	if _, ok := s.Get("/a"); ok {
		t.Fatal("expired entry served")
	}
	st := s.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
	if s.Len() != 0 {
		t.Fatal("expired entry not reaped on access")
	}
}

func TestStoreNoTTLNeverExpires(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", []byte("x"), 1, 0))
	clk.Advance(1000 * time.Hour)
	if _, ok := s.Get("/a"); !ok {
		t.Fatal("no-TTL entry expired")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, clk := newLRU(3)
	for i := 0; i < 3; i++ {
		s.Put(TTLEntry(clk, fmt.Sprintf("/%d", i), nil, 1, time.Hour))
	}
	s.Get("/0") // 0 becomes most recent
	s.Put(TTLEntry(clk, "/3", nil, 1, time.Hour))
	if _, ok := s.Peek("/1"); ok {
		t.Fatal("/1 should have been evicted (LRU)")
	}
	for _, k := range []string{"/0", "/2", "/3"} {
		if _, ok := s.Peek(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", s.Stats().Evictions)
	}
}

func TestStoreExpiredEvictedBeforeLive(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := New(Config{MaxItems: 3, Clock: clk})
	s.Put(TTLEntry(clk, "/live1", nil, 1, time.Hour))
	s.Put(TTLEntry(clk, "/short", nil, 1, time.Second))
	s.Put(TTLEntry(clk, "/live2", nil, 1, time.Hour))
	clk.Advance(2 * time.Second) // /short expires
	s.Put(TTLEntry(clk, "/new", nil, 1, time.Hour))
	// /short should be the victim even though /live1 is older in LRU order.
	if _, ok := s.Peek("/live1"); !ok {
		t.Fatal("live entry evicted while expired entry was available")
	}
	st := s.Stats()
	if st.Evictions != 0 || st.Expirations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreLFUEviction(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := New(Config{MaxItems: 3, Policy: LFU, Clock: clk})
	for _, k := range []string{"/a", "/b", "/c"} {
		s.Put(TTLEntry(clk, k, nil, 1, time.Hour))
	}
	// Access /a 3x, /b 1x, /c 0x extra.
	s.Get("/a")
	s.Get("/a")
	s.Get("/a")
	s.Get("/b")
	s.Put(TTLEntry(clk, "/d", nil, 1, time.Hour))
	if _, ok := s.Peek("/c"); ok {
		t.Fatal("/c should be evicted (LFU)")
	}
	if _, ok := s.Peek("/a"); !ok {
		t.Fatal("/a evicted despite highest frequency")
	}
}

func TestStoreLFUTieBreakByAge(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := New(Config{MaxItems: 2, Policy: LFU, Clock: clk})
	s.Put(TTLEntry(clk, "/old", nil, 1, time.Hour))
	s.Put(TTLEntry(clk, "/new", nil, 1, time.Hour))
	// Both freq 1; inserting a third should evict the older one.
	s.Put(TTLEntry(clk, "/newest", nil, 1, time.Hour))
	if _, ok := s.Peek("/old"); ok {
		t.Fatal("tie not broken by age")
	}
	if _, ok := s.Peek("/new"); !ok {
		t.Fatal("newer tie member evicted")
	}
}

func TestStoreFIFOEviction(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := New(Config{MaxItems: 2, Policy: FIFO, Clock: clk})
	s.Put(TTLEntry(clk, "/a", nil, 1, time.Hour))
	s.Put(TTLEntry(clk, "/b", nil, 1, time.Hour))
	s.Get("/a") // FIFO must ignore use
	s.Put(TTLEntry(clk, "/c", nil, 1, time.Hour))
	if _, ok := s.Peek("/a"); ok {
		t.Fatal("/a should be evicted (FIFO ignores recency)")
	}
}

func TestStoreByteCapacity(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := New(Config{MaxBytes: 1000, Clock: clk})
	big := make([]byte, 400)
	s.Put(TTLEntry(clk, "/a", big, 1, time.Hour))
	s.Put(TTLEntry(clk, "/b", big, 1, time.Hour))
	// Third 400B+overhead entry exceeds 1000B; /a must go.
	s.Put(TTLEntry(clk, "/c", big, 1, time.Hour))
	if _, ok := s.Peek("/a"); ok {
		t.Fatal("byte capacity not enforced")
	}
	if st := s.Stats(); st.BytesUsed > 1000 {
		t.Fatalf("bytes used %d > cap", st.BytesUsed)
	}
}

func TestStoreUpdateExistingKeyAdjustsBytes(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	s := New(Config{Clock: clk})
	s.Put(TTLEntry(clk, "/a", make([]byte, 100), 1, time.Hour))
	before := s.Stats().BytesUsed
	s.Put(TTLEntry(clk, "/a", make([]byte, 50), 2, time.Hour))
	after := s.Stats().BytesUsed
	if after != before-50 {
		t.Fatalf("bytes not adjusted: before=%d after=%d", before, after)
	}
	e, _ := s.Get("/a")
	if e.Version != 2 {
		t.Fatal("update did not replace entry")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreDelete(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", nil, 1, time.Hour))
	if !s.Delete("/a") {
		t.Fatal("delete existing returned false")
	}
	if s.Delete("/a") {
		t.Fatal("delete missing returned true")
	}
	if s.Stats().Invalidations != 1 {
		t.Fatalf("invalidations = %d", s.Stats().Invalidations)
	}
	if s.Stats().BytesUsed != 0 {
		t.Fatalf("bytes leak: %d", s.Stats().BytesUsed)
	}
}

func TestStoreClear(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", []byte("x"), 1, time.Hour))
	s.Clear()
	if s.Len() != 0 || s.Stats().BytesUsed != 0 {
		t.Fatal("clear incomplete")
	}
}

func TestStorePeekDoesNotPromoteOrCount(t *testing.T) {
	s, clk := newLRU(2)
	s.Put(TTLEntry(clk, "/a", nil, 1, time.Hour))
	s.Put(TTLEntry(clk, "/b", nil, 1, time.Hour))
	s.Peek("/a") // must NOT promote
	s.Put(TTLEntry(clk, "/c", nil, 1, time.Hour))
	if _, ok := s.Peek("/a"); ok {
		t.Fatal("Peek promoted /a")
	}
	st := s.Stats()
	if st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("Peek counted in stats: %+v", st)
	}
}

func TestStorePeekExpired(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", nil, 1, time.Second))
	clk.Advance(2 * time.Second)
	if _, ok := s.Peek("/a"); ok {
		t.Fatal("Peek served expired entry")
	}
}

func TestStoreSweep(t *testing.T) {
	s, clk := newLRU(0)
	for i := 0; i < 10; i++ {
		s.Put(TTLEntry(clk, fmt.Sprintf("/%d", i), nil, 1, time.Duration(i+1)*time.Second))
	}
	clk.Advance(5 * time.Second)
	if n := s.Sweep(); n != 5 {
		t.Fatalf("swept %d, want 5", n)
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreKeysEvictionOrder(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", nil, 1, time.Hour))
	s.Put(TTLEntry(clk, "/b", nil, 1, time.Hour))
	s.Get("/a")
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "/b" || keys[1] != "/a" {
		t.Fatalf("keys = %v, want [/b /a]", keys)
	}
}

func TestStoreHitRatio(t *testing.T) {
	s, clk := newLRU(10)
	s.Put(TTLEntry(clk, "/a", nil, 1, time.Hour))
	s.Get("/a")
	s.Get("/a")
	s.Get("/miss")
	if r := s.Stats().HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio = %v", r)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty hit ratio nonzero")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := New(Config{MaxItems: 128})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("/k%d", (w*1000+i)%200)
				s.Put(Entry{Key: k, Body: []byte("v")})
				s.Get(k)
				if i%100 == 0 {
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 128 {
		t.Fatalf("capacity exceeded: %d", s.Len())
	}
}

func TestStorePropertyCapacityInvariant(t *testing.T) {
	// Property: after any sequence of puts, entry count never exceeds
	// MaxItems and accounted bytes never exceed MaxBytes.
	f := func(keys []string, sizes []uint16) bool {
		clk := clock.NewSimulated(time.Time{})
		s := New(Config{MaxItems: 16, MaxBytes: 8192, Clock: clk})
		for i, k := range keys {
			var body []byte
			if i < len(sizes) {
				body = make([]byte, sizes[i]%2048)
			}
			s.Put(TTLEntry(clk, k, body, 1, time.Hour))
			if s.Len() > 16 {
				return false
			}
			if st := s.Stats(); st.BytesUsed > 8192 && s.Len() > 1 {
				// A single oversized entry may exceed MaxBytes (nothing
				// left to evict); with >1 entries the bound must hold.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryHelpers(t *testing.T) {
	now := time.Unix(100, 0)
	e := Entry{Key: "/x", ExpiresAt: now.Add(10 * time.Second)}
	if e.Expired(now) {
		t.Fatal("fresh entry expired")
	}
	if e.Expired(now.Add(9 * time.Second)) {
		t.Fatal("entry expired early")
	}
	if !e.Expired(now.Add(10 * time.Second)) {
		t.Fatal("entry not expired at boundary")
	}
	if d := e.FreshFor(now); d != 10*time.Second {
		t.Fatalf("FreshFor = %v", d)
	}
	if d := e.FreshFor(now.Add(time.Minute)); d != 0 {
		t.Fatalf("FreshFor past expiry = %v", d)
	}
	var never Entry
	if never.Expired(now) || never.FreshFor(now) != 0 {
		t.Fatal("zero-expiry semantics wrong")
	}
}

func TestEntrySizeStable(t *testing.T) {
	e := Entry{Key: "/x", Body: make([]byte, 100), Metadata: map[string]string{"ct": "text/html"}}
	want := 100 + 2 + 64 + 2 + 9
	if e.Size() != want {
		t.Fatalf("Size = %d, want %d", e.Size(), want)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || FIFO.String() != "fifo" || Policy(9).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}

func BenchmarkStorePutGet(b *testing.B) {
	s := New(Config{MaxItems: 10000})
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("/bench/%d", i)
	}
	body := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		s.Put(Entry{Key: k, Body: body})
		s.Get(k)
	}
}
