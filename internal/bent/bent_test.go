package bent

import (
	"path/filepath"
	"strings"
	"testing"
)

func u64(v uint64) *uint64 { return &v }

func TestParseLineSimple(t *testing.T) {
	res, ok := ParseLine("BenchmarkParallelCacheGet-4  35077526  35.50 ns/op  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Name != "BenchmarkParallelCacheGet" || res.Procs != 4 {
		t.Fatalf("name/procs = %q/%d", res.Name, res.Procs)
	}
	if res.Iterations != 35077526 || res.NsPerOp != 35.50 {
		t.Fatalf("iter/ns = %d/%v", res.Iterations, res.NsPerOp)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 0 || res.AllocsPerOp == nil || *res.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields = %v/%v", res.BytesPerOp, res.AllocsPerOp)
	}
}

// Sub-benchmark names carry dashes of their own; the procs suffix is the
// LAST dash-number, and the parameter dashes stay in the name.
func TestParseLineSubBenchmarkNames(t *testing.T) {
	cases := []struct {
		line, name string
		procs      int
	}{
		{"BenchmarkWALAppend/durable/appenders-8-1  300  25626 ns/op  0 allocs/op",
			"BenchmarkWALAppend/durable/appenders-8", 1},
		{"BenchmarkInvalidationMatching/shards-8-4  2000  7525 ns/op",
			"BenchmarkInvalidationMatching/shards-8", 4},
		{"BenchmarkNoProcsSuffix  100  50.0 ns/op", "BenchmarkNoProcsSuffix", 0},
	}
	for _, c := range cases {
		res, ok := ParseLine(c.line)
		if !ok {
			t.Fatalf("rejected: %s", c.line)
		}
		if res.Name != c.name || res.Procs != c.procs {
			t.Fatalf("line %q: name/procs = %q/%d, want %q/%d",
				c.line, res.Name, res.Procs, c.name, c.procs)
		}
	}
}

func TestParseReportAndBaselines(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: speedkit/internal/wal
cpu: Intel(R) Xeon(R)
BenchmarkWALAppend/durable/appenders-8-1   300   25626 ns/op   0 B/op  0 allocs/op
BenchmarkWALAppend/durable/appenders-1-1   300  262165 ns/op   0 B/op  0 allocs/op
PASS
ok  	speedkit/internal/wal	1.2s
`
	rep, err := Parse(strings.NewReader(out),
		map[string]float64{"BenchmarkWALAppend/durable/appenders-8": 244806})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "speedkit/internal/wal" {
		t.Fatalf("context = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.BaselineNsPerOp != 244806 || b.Speedup < 9 || b.Speedup > 10 {
		t.Fatalf("baseline fields = %+v", b)
	}
	if rep.Benchmarks[1].BaselineNsPerOp != 0 {
		t.Fatalf("unmatched benchmark got baseline: %+v", rep.Benchmarks[1])
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	rep := Report{
		Suite: "wal-append",
		Goos:  "linux",
		Benchmarks: []Result{
			{Name: "B/a-1", Procs: 1, Iterations: 10, NsPerOp: 100, AllocsPerOp: u64(0)},
		},
	}
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != rep.Suite || len(got.Benchmarks) != 1 ||
		got.Benchmarks[0] != rep.Benchmarks[0] && *got.Benchmarks[0].AllocsPerOp != 0 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestParseSuite(t *testing.T) {
	data := []byte(`# WAL append throughput
name: wal-append
package: ./internal/wal
bench: ^BenchmarkWALAppend$
baseline: BENCH_wal.json
benchtime: 300x   # keep full runs under a second
noise: 0.60
alloc-noise: 0
note: measured on the seed box
`)
	s, err := ParseSuite("benchsuites/wal-append.suite", data)
	if err != nil {
		t.Fatal(err)
	}
	want := Suite{
		Name: "wal-append", Package: "./internal/wal", Bench: "^BenchmarkWALAppend$",
		Baseline: "BENCH_wal.json", Benchtime: "300x", Noise: 0.60,
		AllocNoise: 0, Note: "measured on the seed box",
	}
	if s != want {
		t.Fatalf("suite = %+v, want %+v", s, want)
	}
}

func TestParseSuiteErrors(t *testing.T) {
	cases := []struct{ name, data, wantErr string }{
		{"x.suite", "name: x\npackage: .", "bench"},
		{"x.suite", "name: y\npackage: .\nbench: B", "does not match filename"},
		{"x.suite", "name: x\npackage: .\nbench: B\nnoise: -1", "bad noise"},
		{"x.suite", "name: x\npackage: .\nbench: B\nwibble: 3", "unknown key"},
		{"x.suite", "just some text", "key: value"},
	}
	for _, c := range cases {
		if _, err := ParseSuite(c.name, []byte(c.data)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("data %q: err = %v, want containing %q", c.data, err, c.wantErr)
		}
	}
}

// The same benchmark line splits differently depending on the machine's
// GOMAXPROCS ("appenders-8" alone vs "appenders-8-4"): CanonicalName must
// reconstitute the same identity either way the parse went.
func TestCanonicalNameReattachesSuffix(t *testing.T) {
	onProcs1, _ := ParseLine("BenchmarkWALAppend/durable/appenders-8  300  25626 ns/op")
	if got := CanonicalName(onProcs1); got != "BenchmarkWALAppend/durable/appenders-8" {
		t.Fatalf("canonical = %q", got)
	}
	plain, _ := ParseLine("BenchmarkFilterContains  100  20 ns/op")
	if got := CanonicalName(plain); got != "BenchmarkFilterContains" {
		t.Fatalf("canonical = %q", got)
	}
}

func TestCompareMatchesByCanonicalName(t *testing.T) {
	s := Suite{Name: "wal-append", Noise: 0.5}
	// Baseline recorded name "…/appenders" with procs 8 (param eaten by
	// the suffix cut on a GOMAXPROCS=1 box); current run parsed the same
	// way. They must match, and a different appender count must not.
	base := Report{Benchmarks: []Result{
		{Name: "B/appenders", Procs: 8, NsPerOp: 100},
	}}
	cur := Report{Benchmarks: []Result{
		{Name: "B/appenders", Procs: 16, NsPerOp: 1},
		{Name: "B/appenders", Procs: 8, NsPerOp: 110},
	}}
	if regs := Compare(s, cur, base, 1); len(regs) != 0 {
		t.Fatalf("canonical match failed: %v", regs)
	}
	if regs := Compare(s, Report{Benchmarks: cur.Benchmarks[:1]}, base, 1); len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("wrong-param entry matched: %v", regs)
	}
}

func TestCompare(t *testing.T) {
	s := Suite{Name: "wal-append", Noise: 0.5, AllocNoise: 0}
	base := Report{Benchmarks: []Result{
		{Name: "B/fast", NsPerOp: 100, AllocsPerOp: u64(0)},
		{Name: "B/slow", NsPerOp: 1000, AllocsPerOp: u64(2)},
		{Name: "B/gone", NsPerOp: 50},
	}}
	cur := Report{Benchmarks: []Result{
		{Name: "B/fast", NsPerOp: 149, AllocsPerOp: u64(0)},  // inside band
		{Name: "B/slow", NsPerOp: 1600, AllocsPerOp: u64(3)}, // ns + allocs regress
		{Name: "B/new", NsPerOp: 5},                          // no baseline: ignored
	}}
	regs := Compare(s, cur, base, 1)
	if len(regs) != 3 {
		t.Fatalf("regressions = %v", regs)
	}
	kinds := map[string]bool{}
	for _, r := range regs {
		kinds[r.Name+"|"+r.Metric] = true
		if r.Suite != "wal-append" {
			t.Fatalf("suite = %q", r.Suite)
		}
	}
	for _, want := range []string{"B/slow|ns/op", "B/slow|allocs/op", "B/gone|missing"} {
		if !kinds[want] {
			t.Fatalf("missing regression %s in %v", want, regs)
		}
	}
	// Widening the scale clears the ns/op finding but never the alloc or
	// missing ones — alloc bands are absolute, missing is missing.
	regs = Compare(s, cur, base, 10)
	if len(regs) != 2 {
		t.Fatalf("scaled regressions = %v", regs)
	}
	for _, r := range regs {
		if r.Metric == "ns/op" {
			t.Fatalf("ns/op finding survived wide scale: %v", r)
		}
	}
}

func TestLoadSuitesFromRepo(t *testing.T) {
	// The checked-in registry must parse and contain the seven suites
	// the harness promises.
	suites, err := LoadSuites("../../benchsuites")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cluster-matching", "edge", "end-to-end-pageload", "hotpath", "invalidation-matching", "obs", "wal-append"}
	if len(suites) != len(want) {
		t.Fatalf("loaded %d suites, want %d", len(suites), len(want))
	}
	for i, s := range suites {
		if s.Name != want[i] {
			t.Fatalf("suite[%d] = %q, want %q", i, s.Name, want[i])
		}
		if s.Baseline == "" {
			t.Fatalf("suite %q has no baseline", s.Name)
		}
	}
}
