// Command speedkit-edge runs the edge cache: a streaming HTTP caching
// reverse proxy in front of a speedkit-server, serving sketch-coherent
// page bodies from memory and a crash-safe disk tier while everything
// personalized passes through untouched.
//
//	speedkit-edge -addr :8081 -upstream http://localhost:8080 -cache-dir /var/cache/speedkit
//
//	curl localhost:8081/page?path=/product/p00042        # X-Edge-Cache: miss, then hit
//	curl localhost:8081/page?path=/ -H 'Range: bytes=0-99'
//	curl -X POST 'localhost:8081/v1/purge?path=/product/p00042'
//	curl localhost:8081/metrics                          # speedkit_edge_* counters
//	curl localhost:8081/healthz
//
// The edge polls the upstream's public sketch endpoint every
// -sketch-refresh, so a cached body is revalidated as soon as the Bloom
// sketch flags its path on a newer generation — the same Δ-bounded
// coherence contract the client proxy enforces, applied one tier out.
//
// This process deploys on shared points of presence. It never sees a
// session, a consent record, or a user identifier, and the lint suite
// holds it to that:
//
//speedkit:deploy shared-infra
package main

import (
	"context"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/edge"
	"speedkit/internal/slog"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	upstream := flag.String("upstream", "http://localhost:8080", "speedkit-server base URL")
	cacheDir := flag.String("cache-dir", "", "disk cache directory (empty = memory-only)")
	maxEntries := flag.Int("max-entries", 4096, "in-memory entry bound")
	defaultTTL := flag.Duration("default-ttl", 30*time.Second, "freshness when the upstream sends no max-age")
	sketchRefresh := flag.Duration("sketch-refresh", 10*time.Second, "sketch poll interval (0 disables)")
	snapshotEvery := flag.Int("snapshot-every", 256, "disk-tier journal records between snapshots")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	flag.Parse()

	logger := slog.New(os.Stderr, clock.System, slog.ParseLevel(*logLevel))
	ctx := context.Background()

	proxy, info, err := edge.New(edge.Options{
		Upstream:      *upstream,
		CacheDir:      *cacheDir,
		MaxEntries:    *maxEntries,
		DefaultTTL:    *defaultTTL,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		logger.Error(ctx).Err(err).Msg("edge start failed")
		os.Exit(1)
	}
	if *cacheDir != "" {
		logger.Info(ctx).
			Str("dir", *cacheDir).
			Int("entries", int64(info.Entries)).
			Int("replayed", int64(info.Replayed)).
			Bool("cold_start", info.ColdStart).
			Msg("disk tier recovered")
	}

	// Prime the sketch before serving, then poll. A failed first fetch is
	// tolerated — the edge serves TTL-fresh entries without a sketch and
	// picks one up on the next tick.
	if err := proxy.RefreshSketch(ctx); err != nil {
		logger.Warn(ctx).Err(err).Msg("initial sketch fetch failed")
	}
	stopRefresh := make(chan struct{})
	if *sketchRefresh > 0 {
		go func() {
			for {
				clock.Sleep(clock.System, *sketchRefresh)
				select {
				case <-stopRefresh:
					return
				default:
				}
				if err := proxy.RefreshSketch(ctx); err != nil {
					logger.Warn(ctx).Err(err).Msg("sketch refresh failed")
				}
			}
		}()
	}

	logger.Info(ctx).
		Str("addr", *addr).
		Str("upstream", *upstream).
		Dur("sketch_refresh", *sketchRefresh).
		Msg("speedkit-edge listening")

	srv := &http.Server{Addr: *addr, Handler: proxy.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		logger.Error(ctx).Err(err).Msg("serve failed")
		os.Exit(1)
	case sig := <-sigCh:
		logger.Info(ctx).Str("signal", sig.String()).Msg("draining")
		close(stopRefresh)
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_ = srv.Shutdown(sctx)
		cancel()
		if err := proxy.Close(); err != nil {
			logger.Error(ctx).Err(err).Msg("disk tier close failed")
			os.Exit(1)
		}
	}
}
