// Package edgeflow is the fixture for the edge-proxy sink group: purge
// keys handed to the edge are served and persisted on shared POPs, so
// identity-derived keys are flagged and pseudonymized ones pass.
package edgeflow

import (
	"speedkit/internal/edge"
	"speedkit/internal/gdpr"
	"speedkit/internal/session"
)

// profileKey is a pure transformer: taint rides through.
func profileKey(v string) string { return "/profile/" + v }

// purge is the hop that reaches the sink; reported at its callers.
func purge(p *edge.Proxy, key string) { p.Purge(key) }

func LeakPurgeKey(p *edge.Proxy, u *session.User) {
	purge(p, profileKey(u.Email)) // want "reaches edge cache commit"
}

func LeakPurgeDirect(p *edge.Proxy, u *session.User) {
	p.Purge(u.ID) // want "reaches edge cache commit"
}

// --- pseudonymized keys are clean ---

func CleanPseudonymizedKey(p *edge.Proxy, u *session.User) {
	purge(p, profileKey(gdpr.Pseudonymize(u.ID)))
}

// --- anonymous paths never carry taint ---

func CleanAnonymousKey(p *edge.Proxy) {
	purge(p, profileKey("p00042"))
}
