package main

import (
	"strings"
	"testing"

	"speedkit/internal/bent"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: speedkit
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelCacheGet-4      	35077526	        35.50 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotReuse-4         	12955170	        95.37 ns/op	      48 B/op	       1 allocs/op
BenchmarkNoMem-2                 	 1000000	      1200 ns/op
PASS
ok  	speedkit	3.962s
`

func TestParse(t *testing.T) {
	baselines := map[string]float64{"BenchmarkParallelCacheGet": 126.4}
	rep, err := bent.Parse(strings.NewReader(sampleOutput), baselines)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "speedkit" {
		t.Fatalf("context = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	get := rep.Benchmarks[0]
	if get.Name != "BenchmarkParallelCacheGet" || get.Procs != 4 {
		t.Fatalf("first = %+v", get)
	}
	if get.Iterations != 35077526 || get.NsPerOp != 35.50 {
		t.Fatalf("first = %+v", get)
	}
	if get.BytesPerOp == nil || *get.BytesPerOp != 0 || get.AllocsPerOp == nil || *get.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields = %+v", get)
	}
	if get.BaselineNsPerOp != 126.4 {
		t.Fatalf("baseline not attached: %+v", get)
	}
	if want := 126.4 / 35.50; get.Speedup < want-0.001 || get.Speedup > want+0.001 {
		t.Fatalf("speedup = %v, want %v", get.Speedup, want)
	}

	reuse := rep.Benchmarks[1]
	if reuse.AllocsPerOp == nil || *reuse.AllocsPerOp != 1 || reuse.Speedup != 0 {
		t.Fatalf("second = %+v", reuse)
	}

	// A line without -benchmem fields still parses.
	nomem := rep.Benchmarks[2]
	if nomem.Name != "BenchmarkNoMem" || nomem.Procs != 2 || nomem.NsPerOp != 1200 {
		t.Fatalf("third = %+v", nomem)
	}
	if nomem.BytesPerOp != nil || nomem.AllocsPerOp != nil {
		t.Fatalf("third has phantom benchmem fields: %+v", nomem)
	}
}

func TestParseBaselines(t *testing.T) {
	m, err := parseBaselines("A=1.5, B=200")
	if err != nil {
		t.Fatal(err)
	}
	if m["A"] != 1.5 || m["B"] != 200 {
		t.Fatalf("m = %v", m)
	}
	if m, err := parseBaselines(""); err != nil || len(m) != 0 {
		t.Fatalf("empty baseline: %v %v", m, err)
	}
	if _, err := parseBaselines("garbage"); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	if _, err := parseBaselines("A=notanumber"); err == nil {
		t.Fatal("non-numeric baseline accepted")
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",               // too few fields
		"BenchmarkBroken-4 abc 1 ns/op", // bad iteration count
		"BenchmarkNoNs-4 100 5 MB/s",    // no ns/op measurement
	} {
		if _, ok := bent.ParseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
