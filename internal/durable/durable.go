// Package durable persists the service tier's coherence state — the
// Cache Sketch server, the adaptive TTL estimator, and the invalidation
// watermark — across process death, so that a restarted server still
// honours the Δ-atomicity bound instead of silently publishing an empty
// sketch.
//
// Two mechanisms compose:
//
//   - A write-ahead log (internal/wal) records every state-changing
//     coherence event (cache-fill report, tracked write, invalidation
//     watermark) as it happens, via the cachesketch.Journal hooks.
//   - Periodic snapshots capture the full exported state atomically
//     (write temp file, fsync, rename), named by the WAL position they
//     cover so recovery knows where replay starts and the log can be
//     pruned behind them.
//
// Recovery is coherence-first: Recover loads the newest valid snapshot,
// replays the WAL tail through the real server logic, and then decides
// trust. A log that ends in the clean-shutdown marker is complete and the
// server resumes warm. Anything else — torn tail, acknowledged-but-
// unsynced records lost at the group commit, mid-log corruption — means
// history may be missing, and the server enters conservative cold start:
// a saturated all-stale sketch for one full Δ window (every client
// revalidates; Δ holds with zero trusted history) plus blind write
// tracking over the residual-TTL horizon.
//
// GDPR: this package sits behind the same boundary as the CDN — it may
// only ever see anonymous coherence metadata (resource IDs, expirations,
// sequence numbers). The gdprboundary analyzer enforces that it never
// imports the session/gdpr identity surfaces.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/ttl"
	"speedkit/internal/wal"
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the durability directory holding WAL segments and snapshots.
	Dir string
	// Clock drives group commit and the recovery windows (default system).
	Clock clock.Clock
	// Faults optionally injects crashes at the WAL and snapshot writers.
	Faults *faults.Injector
	// SegmentMaxBytes, GroupCommitWindow, GroupCommitMax pass through to
	// the WAL (see wal.Options).
	SegmentMaxBytes   int64
	GroupCommitWindow time.Duration
	GroupCommitMax    int
	// SnapshotEvery suggests a snapshot after this many journaled records
	// (default 512); ShouldSnapshot exposes the trigger, the owner decides
	// when to act on it (snapshots must not run under the sketch mutex).
	SnapshotEvery int
	// KeepSnapshots retains this many newest snapshot files (default 2).
	KeepSnapshots int
	// ColdWindow is how long recovery saturates the sketch after an
	// unclean shutdown — one full Δ window (default 1 minute).
	ColdWindow time.Duration
	// BlindHorizon is how long recovery blind-tracks writes to unknown
	// resources — the longest a pre-crash cache fill whose report was lost
	// could still be live, i.e. the TTL cap (default: ColdWindow).
	BlindHorizon time.Duration
}

func (c *Config) applyDefaults() {
	if c.Clock == nil {
		c.Clock = clock.System
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 512
	}
	if c.KeepSnapshots <= 0 {
		c.KeepSnapshots = 2
	}
	if c.ColdWindow <= 0 {
		c.ColdWindow = time.Minute
	}
	if c.BlindHorizon <= 0 {
		c.BlindHorizon = c.ColdWindow
	}
}

// Mode classifies how a recovery rebuilt state.
type Mode int

// Recovery modes.
const (
	// Fresh: no prior state existed; a brand-new deployment.
	Fresh Mode = iota
	// Snapshot: a snapshot loaded and the WAL held nothing past it.
	Snapshot
	// Replay: a WAL tail (with or without a snapshot under it) replayed.
	Replay
	// ColdStart: the log was corrupt past the snapshot; only the
	// snapshot (if any) was trusted and the server saturated.
	ColdStart
)

// String names the mode with the metric label values from the issue
// contract: snapshot | replay | coldstart (plus fresh for new dirs).
func (m Mode) String() string {
	switch m {
	case Fresh:
		return "fresh"
	case Snapshot:
		return "snapshot"
	case Replay:
		return "replay"
	case ColdStart:
		return "coldstart"
	}
	return "unknown"
}

// RecoveryInfo reports what Recover did.
type RecoveryInfo struct {
	Mode Mode
	// Saturated is true when the unclean-shutdown cold start engaged.
	Saturated bool
	// SnapshotLSN is the WAL position the loaded snapshot covered (0 if
	// none).
	SnapshotLSN uint64
	// Replayed is how many journal records were replayed past the
	// snapshot (shutdown markers included).
	Replayed uint64
	// Watermark is the recovered invalidation watermark.
	Watermark uint64
	// TruncatedBytes is how much torn tail the WAL scan discarded.
	TruncatedBytes int64
}

// journal record types.
const (
	recCachedRead byte = 1
	recWrite      byte = 2
	recWatermark  byte = 3
	recClean      byte = 4
	recGeneration byte = 5
	recOpen       byte = 6
)

// genSlack pads the recovered generation floor after an UNCLEAN shutdown:
// generations exposed between the last group commit and the crash died
// with their unsynced recGeneration records, so the floor over-shoots by
// more than any plausible lost-window bump count (bumps are one per key
// entering or leaving the sketch). Over-shooting is harmless — the
// generation is an opaque monotone version, not a counter anyone sums.
const genSlack = 1 << 16

// record is one decoded journal entry, buffered during the WAL scan so
// nothing is applied from a log that later proves corrupt.
type record struct {
	typ       byte
	key       string
	expiresAt time.Time
	seq       uint64
}

// Stats counts durability activity for the obs layer (this package may
// not import internal/obs — the httpapi/core layers register gauges over
// these counters instead).
type Stats struct {
	WAL           wal.Stats
	SnapshotBytes int
	Snapshots     uint64
	Recoveries    uint64
	LastRecovery  RecoveryInfo
	Crashed       bool
}

// Store is the durability engine. It implements cachesketch.Journal so
// the sketch server logs through it, and owns snapshots and recovery.
// Safe for concurrent use.
type Store struct {
	cfg Config

	// snapMu serializes whole Snapshot bodies (export, temp write,
	// rename, prune). Snapshot releases s.mu while exporting, so without
	// it two concurrent triggers would interleave writes into the same
	// snap-<lsn>.snap.tmp and the CRC would reject the result.
	snapMu sync.Mutex

	mu        sync.Mutex
	log       *wal.Log            // guarded by mu
	sketch    *cachesketch.Server // guarded by mu; wired by first Recover
	est       *ttl.Estimator      // guarded by mu; wired by first Recover
	replaying bool                // guarded by mu; suppresses journaling during Apply
	crashed   bool                // guarded by mu; injected kill observed
	watermark uint64              // guarded by mu; highest journaled invalidation seq
	pending   int                 // guarded by mu; records since last snapshot
	snapLSN   uint64              // guarded by mu; LSN covered by newest snapshot
	stats     Stats               // guarded by mu
}

// New creates a Store over dir without touching the disk; call Recover to
// open (and re-open after a crash).
func New(cfg Config) *Store {
	cfg.applyDefaults()
	return &Store{cfg: cfg}
}

// Dir returns the durability directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// --- journaling ----------------------------------------------------------

// appendLocked frames and appends one journal record. The caller must
// hold s.mu. Injected crashes flip the store dead; journaling is fire-
// and-forget by contract (the hooks run under the sketch mutex), so the
// error surfaces through Crashed() rather than a return value.
func (s *Store) appendLocked(payload []byte) {
	if s.crashed || s.replaying || s.log == nil {
		return
	}
	if _, err := s.log.Append(payload); err != nil {
		if errors.Is(err, faults.ErrCrash) || errors.Is(err, wal.ErrCrashed) {
			s.crashed = true
			s.stats.Crashed = true
		}
		return
	}
	s.pending++
}

// JournalCachedRead implements cachesketch.Journal.
func (s *Store) JournalCachedRead(key string, expiresAt time.Time) {
	buf := make([]byte, 0, 13+len(key))
	buf = append(buf, recCachedRead)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(expiresAt.UnixNano()))
	s.mu.Lock()
	s.appendLocked(buf)
	s.mu.Unlock()
}

// JournalWrite implements cachesketch.Journal.
func (s *Store) JournalWrite(key string) {
	buf := make([]byte, 0, 5+len(key))
	buf = append(buf, recWrite)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	s.mu.Lock()
	s.appendLocked(buf)
	s.mu.Unlock()
}

// JournalGeneration implements cachesketch.Journal: it logs a generation
// the sketch server just exposed to clients, giving recovery the
// monotonicity floor it must restore.
func (s *Store) JournalGeneration(gen uint64) {
	buf := make([]byte, 0, 9)
	buf = append(buf, recGeneration)
	buf = binary.BigEndian.AppendUint64(buf, gen)
	s.mu.Lock()
	s.appendLocked(buf)
	s.mu.Unlock()
}

// JournalInvalidation advances the invalidation watermark and logs it.
func (s *Store) JournalInvalidation(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.watermark {
		return
	}
	s.watermark = seq
	buf := make([]byte, 0, 9)
	buf = append(buf, recWatermark)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	s.appendLocked(buf)
}

// AdvanceInvalidation allocates the next invalidation sequence — one past
// the current watermark — and journals it. Owners without a durable
// counter of their own must use this instead of JournalInvalidation: an
// in-memory counter restarts at zero every process start, so after a
// recovery that restored a watermark of N its first N values would fall
// below the guard and be dropped, freezing the durable watermark.
func (s *Store) AdvanceInvalidation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watermark++
	buf := make([]byte, 0, 9)
	buf = append(buf, recWatermark)
	buf = binary.BigEndian.AppendUint64(buf, s.watermark)
	s.appendLocked(buf)
	return s.watermark
}

// Watermark returns the highest invalidation sequence journaled so far.
func (s *Store) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Crashed reports whether an injected crash killed the store; only
// Recover revives it.
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// ShouldSnapshot reports whether enough records accumulated since the
// last snapshot to warrant a new one. The owner calls Snapshot from a
// context that holds no sketch locks.
func (s *Store) ShouldSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.crashed && s.log != nil && s.pending >= s.cfg.SnapshotEvery
}

// decodeRecord parses one journal payload.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, errors.New("durable: empty journal record")
	}
	r := record{typ: payload[0]}
	body := payload[1:]
	switch r.typ {
	case recCachedRead:
		if len(body) < 12 {
			return record{}, errors.New("durable: short cached-read record")
		}
		klen := int(binary.BigEndian.Uint32(body))
		if len(body) != 4+klen+8 {
			return record{}, errors.New("durable: malformed cached-read record")
		}
		r.key = string(body[4 : 4+klen])
		r.expiresAt = time.Unix(0, int64(binary.BigEndian.Uint64(body[4+klen:])))
	case recWrite:
		if len(body) < 4 {
			return record{}, errors.New("durable: short write record")
		}
		klen := int(binary.BigEndian.Uint32(body))
		if len(body) != 4+klen {
			return record{}, errors.New("durable: malformed write record")
		}
		r.key = string(body[4 : 4+klen])
	case recWatermark, recGeneration:
		if len(body) != 8 {
			return record{}, errors.New("durable: malformed watermark record")
		}
		r.seq = binary.BigEndian.Uint64(body)
	case recClean, recOpen:
		if len(body) != 0 {
			return record{}, errors.New("durable: malformed shutdown/open marker")
		}
	default:
		return record{}, fmt.Errorf("durable: unknown record type %d", r.typ)
	}
	return r, nil
}

// --- snapshots -----------------------------------------------------------

// snapshot file format: magic "SKSN", u8 version, u32 crc32c over the
// rest, u64 lsn, u64 watermark, u32 sketch-state length, sketch state,
// u32 ttl-state length, ttl state.
var snapMagic = [4]byte{'S', 'K', 'S', 'N'}

const snapVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	v, err := strconv.ParseUint(name[5:len(name)-5], 16, 64)
	return v, err == nil
}

// snapshotTargets copies the component pointers out under the lock,
// refusing after a crash or before recovery.
func (s *Store) snapshotTargets() (*wal.Log, *cachesketch.Server, *ttl.Estimator, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, nil, nil, 0, fmt.Errorf("durable: %w", faults.ErrCrash)
	}
	if s.log == nil || s.sketch == nil {
		return nil, nil, nil, 0, errors.New("durable: not recovered")
	}
	return s.log, s.sketch, s.est, s.watermark, nil
}

// Snapshot atomically persists the full coherence state and prunes the
// WAL behind it. Must not be called from a context holding the sketch
// mutex (it exports the sketch state, which takes that mutex).
// Concurrent calls coalesce: whoever loses the race returns nil
// immediately, since the in-flight snapshot covers its trigger.
func (s *Store) Snapshot() error {
	if !s.snapMu.TryLock() {
		return nil
	}
	defer s.snapMu.Unlock()
	log, sketch, est, watermark, err := s.snapshotTargets()
	if err != nil {
		return err
	}

	// Capture the covered LSN BEFORE exporting: any record appended while
	// the export runs lands above lsn and replays on top of the snapshot,
	// which the sketch's report logic absorbs idempotently.
	lsn := log.NextLSN() - 1
	sketchState := sketch.ExportState()
	var ttlState []byte
	if est != nil {
		ttlState = est.ExportState()
	}

	body := make([]byte, 0, 24+len(sketchState)+len(ttlState))
	body = binary.BigEndian.AppendUint64(body, lsn)
	body = binary.BigEndian.AppendUint64(body, watermark)
	body = binary.BigEndian.AppendUint32(body, uint32(len(sketchState)))
	body = append(body, sketchState...)
	body = binary.BigEndian.AppendUint32(body, uint32(len(ttlState)))
	body = append(body, ttlState...)

	blob := make([]byte, 0, 9+len(body))
	blob = append(blob, snapMagic[:]...)
	blob = append(blob, snapVersion)
	blob = binary.BigEndian.AppendUint32(blob, crc32.Checksum(body, castagnoli))
	blob = append(blob, body...)

	final := filepath.Join(s.cfg.Dir, snapName(lsn))
	tmp := final + ".tmp"

	if d := s.cfg.Faults.Decide(faults.SnapshotWrite); d.Kind == faults.Crash {
		// Killed mid-snapshot: a torn temp file is left behind and never
		// renamed into place; recovery ignores it.
		torn := d.TornBytes
		if torn <= 0 {
			torn = int(lsn % uint64(len(blob)))
		}
		if torn >= len(blob) {
			torn = len(blob) - 1
		}
		_ = os.WriteFile(tmp, blob[:torn], 0o644)
		s.mu.Lock()
		s.crashed = true
		s.stats.Crashed = true
		s.mu.Unlock()
		return fmt.Errorf("durable: snapshot: %w", faults.ErrCrash)
	}

	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	syncDir(s.cfg.Dir)

	if _, err := log.PruneBelow(lsn); err != nil {
		return err
	}
	s.pruneSnapshots(lsn)

	s.mu.Lock()
	s.snapLSN = lsn
	s.pending = 0
	s.stats.Snapshots++
	s.stats.SnapshotBytes = len(blob)
	s.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// filesystems that reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// pruneSnapshots deletes all but the newest KeepSnapshots snapshot files
// at or below keepLSN's generation, plus any abandoned temp files.
func (s *Store) pruneSnapshots(newest uint64) {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return
	}
	var lsns []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(s.cfg.Dir, e.Name()))
			continue
		}
		if lsn, ok := parseSnapName(e.Name()); ok && lsn != newest {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for i, lsn := range lsns {
		if i >= s.cfg.KeepSnapshots-1 {
			_ = os.Remove(filepath.Join(s.cfg.Dir, snapName(lsn)))
		}
	}
}

// loadNewestSnapshot finds and validates the newest snapshot, returning
// its decoded sections. Invalid or torn snapshot files are skipped in
// favour of older valid ones.
func loadNewestSnapshot(dir string) (lsn, watermark uint64, sketchState, ttlState []byte, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, nil, nil, false
	}
	var lsns []uint64
	for _, e := range entries {
		if v, isSnap := parseSnapName(e.Name()); isSnap {
			lsns = append(lsns, v)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, v := range lsns {
		blob, err := os.ReadFile(filepath.Join(dir, snapName(v)))
		if err != nil || len(blob) < 9 || [4]byte(blob[0:4]) != snapMagic || blob[4] != snapVersion {
			continue
		}
		body := blob[9:]
		if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(blob[5:9]) {
			continue
		}
		if len(body) < 20 {
			continue
		}
		snapLSN := binary.BigEndian.Uint64(body[0:8])
		wm := binary.BigEndian.Uint64(body[8:16])
		skLen := int(binary.BigEndian.Uint32(body[16:20]))
		if len(body) < 20+skLen+4 {
			continue
		}
		sk := body[20 : 20+skLen]
		ttLen := int(binary.BigEndian.Uint32(body[20+skLen:]))
		if len(body) != 24+skLen+ttLen {
			continue
		}
		tt := body[24+skLen : 24+skLen+ttLen]
		return snapLSN, wm, sk, tt, true
	}
	return 0, 0, nil, nil, false
}

// --- recovery ------------------------------------------------------------

// beginRecover resolves the recovery targets (explicit arguments win,
// falling back to the pair remembered from the previous recovery) and
// retires any prior log incarnation, all under the lock.
func (s *Store) beginRecover(sketch *cachesketch.Server, est *ttl.Estimator) (*cachesketch.Server, *ttl.Estimator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sketch == nil {
		sketch = s.sketch
	}
	if est == nil {
		est = s.est
	}
	if sketch == nil {
		return nil, nil, errors.New("durable: Recover needs a sketch server")
	}
	if s.log != nil {
		_ = s.log.Close()
		s.log = nil
	}
	return sketch, est, nil
}

// Recover (re)opens the durability directory and rebuilds the wired
// sketch server and TTL estimator from the newest valid snapshot plus the
// WAL tail. The first call wires the pair; later calls (crash recovery)
// reuse them, resetting their in-memory state first — the crash model is
// that memory died.
//
// Trust decision: a log whose final record is the clean-shutdown marker
// is complete. Anything else engages the conservative cold start — the
// sketch saturates for ColdWindow and blind-tracks writes for
// BlindHorizon — because the group-commit contract means acknowledged
// records may have died unsynced.
func (s *Store) Recover(sketch *cachesketch.Server, est *ttl.Estimator) (RecoveryInfo, error) {
	sketch, est, err := s.beginRecover(sketch, est)
	if err != nil {
		return RecoveryInfo{}, err
	}

	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return RecoveryInfo{}, fmt.Errorf("durable: %w", err)
	}

	var info RecoveryInfo
	snapLSN, wm, sketchState, ttlState, haveSnap := loadNewestSnapshot(s.cfg.Dir)

	// Crash model: the process's memory is gone. Reset before applying.
	sketch.Reset()
	if est != nil {
		est.Reset()
	}
	// genFloor accumulates the highest generation clients provably saw:
	// the snapshot's own, raised by every replayed recGeneration record.
	var genFloor uint64
	if haveSnap {
		if err := sketch.ImportState(sketchState); err != nil {
			return RecoveryInfo{}, err
		}
		genFloor = sketch.Generation()
		if est != nil && len(ttlState) > 0 {
			if err := est.ImportState(ttlState); err != nil {
				return RecoveryInfo{}, err
			}
		}
		info.SnapshotLSN = snapLSN
		info.Watermark = wm
	}

	// Scan the log, buffering decoded records: nothing is applied from a
	// log that proves corrupt mid-scan, and only the tail past the
	// snapshot replays.
	var tail []record
	var decodeErr error
	var maxSeen uint64 // highest LSN observed on disk, trusted or not
	walOpts := wal.Options{
		Dir:               s.cfg.Dir,
		SegmentMaxBytes:   s.cfg.SegmentMaxBytes,
		GroupCommitWindow: s.cfg.GroupCommitWindow,
		GroupCommitMax:    s.cfg.GroupCommitMax,
		Clock:             s.cfg.Clock,
		Faults:            s.cfg.Faults,
		OnRecord: func(lsn uint64, payload []byte) {
			if lsn > maxSeen {
				maxSeen = lsn
			}
			if lsn <= snapLSN || decodeErr != nil {
				return
			}
			r, err := decodeRecord(payload)
			if err != nil {
				decodeErr = err
				return
			}
			tail = append(tail, r)
		},
	}
	// reopenWiped retires the entire log (and any snapshot file above the
	// trusted one — those are unloadable leftovers that would shadow newer
	// state by name) and reopens it seeded ABOVE every LSN ever issued:
	// the snapshot's coverage and everything observed on disk. Without the
	// seed a wiped log restarts at LSN 1 while the snapshot keeps its high
	// LSN, so every record of the new incarnation — clean-shutdown marker
	// included — replays as lsn <= snapLSN and is silently skipped,
	// losing durable data despite clean shutdowns.
	reopenWiped := func() (*wal.Log, error) {
		if err := wipeLog(s.cfg.Dir, snapLSN); err != nil {
			return nil, err
		}
		seed := snapLSN
		if maxSeen > seed {
			seed = maxSeen
		}
		walOpts.FirstLSN = seed + 1
		return wal.Open(walOpts)
	}
	log, err := wal.Open(walOpts)
	corrupt := false
	switch {
	case err == nil && decodeErr == nil:
	case err != nil && errors.Is(err, wal.ErrCorrupt):
		// Frames after the damage are untrusted; the buffered prefix is
		// CRC-valid history and still applies. Wipe the log so appends
		// restart on trusted ground.
		corrupt = true
		if log, err = reopenWiped(); err != nil {
			return RecoveryInfo{}, err
		}
	case err != nil:
		return RecoveryInfo{}, err
	default: // decodeErr != nil: frames intact but a payload is garbage
		corrupt = true
		if log, err = reopenWiped(); err != nil {
			return RecoveryInfo{}, err
		}
	}
	info.TruncatedBytes = log.Stats().TruncatedBytes
	// A torn tail can truncate the log back INSIDE the snapshot's
	// coverage (the snapshot only prunes whole sealed segments, so the
	// active segment still holds covered LSNs). Appending there would
	// reissue covered LSNs that every later Recover skips — same silent
	// loss as the wipe case. Every surviving record is inside the
	// snapshot, so the log carries no information: retire it and reseed.
	if log.NextLSN() <= snapLSN {
		corrupt = true
		_ = log.Close()
		if log, err = reopenWiped(); err != nil {
			return RecoveryInfo{}, err
		}
	}

	// Replay the tail through the real server logic. Journaling is
	// suppressed (the records are already in the log — except after a
	// wipe, where the cold start covers the loss).
	s.mu.Lock()
	s.replaying = true
	s.mu.Unlock()
	clean := false
	// Consecutive write records — the common shape of a write-heavy tail —
	// are applied through the sketch's batched path: one lock acquisition
	// and one removal sweep per run instead of per record. State-identical
	// to per-record ReportWrite because replay batches only adjacent writes
	// (ordering against interleaved cached-read records is preserved).
	writeRun := make([]string, 0, 64)
	flushWrites := func() {
		if len(writeRun) > 0 {
			sketch.ReportWrites(writeRun)
			writeRun = writeRun[:0]
		}
	}
	for i, r := range tail {
		if r.typ != recWrite {
			flushWrites()
		}
		switch r.typ {
		case recCachedRead:
			sketch.ReportCachedRead(r.key, r.expiresAt)
		case recWrite:
			writeRun = append(writeRun, r.key)
		case recWatermark:
			if r.seq > wm {
				wm = r.seq
			}
		case recGeneration:
			if r.seq > genFloor {
				genFloor = r.seq
			}
		case recClean:
			// Complete only as the final record; a marker with records
			// after it belongs to an earlier incarnation.
			clean = i == len(tail)-1
		case recOpen:
			// A later incarnation started; nothing to apply. Its mere
			// presence past a clean marker is what voids that marker.
		}
	}
	flushWrites()
	info.Replayed = uint64(len(tail))
	info.Watermark = wm

	switch {
	case corrupt:
		info.Mode = ColdStart
	case info.Replayed > 0:
		info.Mode = Replay
	case haveSnap:
		info.Mode = Snapshot
	case info.TruncatedBytes > 0:
		// The log held bytes but yielded no trusted record. That is
		// destroyed history, not a fresh deployment: every incarnation
		// fsyncs an open marker at recovery, so a deployment's log always
		// has a readable prefix unless damage reached the first frame and
		// the torn-tail truncation swallowed everything. Recovering warm
		// here would serve with zero history and no saturation window.
		info.Mode = ColdStart
	default:
		info.Mode = Fresh
	}

	// A fresh directory trivially has complete (empty) history; a torn
	// tail, a wipe, or any log not sealed by the shutdown marker does not.
	unclean := info.Mode != Fresh && (!clean || corrupt || info.TruncatedBytes > 0)
	if unclean {
		now := s.cfg.Clock.Now()
		sketch.ColdStart(now.Add(s.cfg.ColdWindow), now.Add(s.cfg.BlindHorizon))
		info.Saturated = true
	}
	// Never republish a generation any client already holds: Install
	// keeps the newest one, so a regressed generation would leave
	// connected clients rejecting every post-restart snapshot. A clean
	// log pins the floor exactly; an unclean one may have lost exposed
	// generations with its unsynced tail, so the floor over-shoots.
	if info.Mode != Fresh {
		if unclean {
			genFloor += genSlack
		}
		sketch.EnsureGeneration(genFloor)
	}

	s.mu.Lock()
	s.log = log
	s.sketch = sketch
	s.est = est
	s.replaying = false
	s.crashed = false
	s.watermark = wm
	s.snapLSN = snapLSN
	s.pending = 0
	s.stats.Crashed = false
	s.stats.Recoveries++
	s.stats.LastRecovery = info
	// Seal the recovery into the log with an fsynced open marker: once it
	// is durable, the previous clean-shutdown marker can never again be
	// the log's final record. Without it, losing this incarnation's whole
	// unsynced suffix (power loss, or the injected fsync kill) would roll
	// the disk back to a state that masquerades as a clean history while
	// acknowledged reports are gone. Failure here flips the crashed flag
	// like any other journaling failure — the owner's signal to recover.
	s.appendLocked([]byte{recOpen})
	s.mu.Unlock()
	if err := s.Sync(); err != nil && !errors.Is(err, faults.ErrCrash) && !errors.Is(err, wal.ErrCrashed) {
		return info, err
	}
	return info, nil
}

// wipeLog deletes every WAL segment file (corrupt-log fallback) plus any
// snapshot file named above the trusted snapshot's LSN — loadNewestSnapshot
// already rejected those as unloadable, and left in place their higher
// names would win the newest-first ordering forever, shadowing every
// snapshot the reseeded incarnation writes.
func wipeLog(dir string, trustedSnapLSN uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		stale := strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg")
		if lsn, ok := parseSnapName(name); ok && lsn > trustedSnapLSN {
			stale = true
		}
		if stale {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("durable: %w", err)
			}
		}
	}
	return nil
}

// Close seals the log with the clean-shutdown marker and closes it. A
// crashed store closes without the marker — the torn state on disk is
// what the next recovery must see. The final WAL counters are retained
// so Stats stays meaningful after shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	log := s.log
	s.log = nil
	var err error
	if !s.crashed {
		if _, aerr := log.Append([]byte{recClean}); aerr != nil {
			err = aerr
		} else if serr := log.Sync(); serr != nil {
			err = serr
		}
	}
	if cerr := log.Close(); err == nil {
		err = cerr
	}
	s.stats.WAL = log.Stats()
	return err
}

// Kill simulates process death for this store's node: the log is closed
// WITHOUT the clean-shutdown marker and the store goes dead, exactly the
// disk state a real kill leaves behind. The next Recover over the same
// directory therefore distrusts the tail and engages the conservative
// cold start. The cluster gate uses this for node-level kill injection;
// unlike an injected WAL crash it is driver-scheduled, so twin seeded
// runs kill the same nodes at the same points.
func (s *Store) Kill() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
	s.stats.Crashed = true
	if s.log == nil {
		return nil
	}
	log := s.log
	s.log = nil
	err := log.Close()
	s.stats.WAL = log.Stats()
	return err
}

// Sync forces the WAL's group commit (SIGTERM flush path). An injected
// crash during the fsync flips the store dead, like any journaling crash.
func (s *Store) Sync() error {
	s.mu.Lock()
	log := s.log
	s.mu.Unlock()
	if log == nil {
		return nil
	}
	err := log.Sync()
	if err != nil && (errors.Is(err, faults.ErrCrash) || errors.Is(err, wal.ErrCrashed)) {
		s.mu.Lock()
		s.crashed = true
		s.stats.Crashed = true
		s.mu.Unlock()
	}
	return err
}

// SnapshotLSN returns the LSN covered by the newest snapshot — taken or
// recovered in this incarnation — or 0 before any snapshot exists. The
// health endpoint reports it so operators can see how much WAL tail a
// crash would replay.
func (s *Store) SnapshotLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapLSN
}

// Stats returns a copy of the durability counters, including the
// underlying WAL's.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if s.log != nil {
		st.WAL = s.log.Stats()
	}
	st.Crashed = s.crashed
	return st
}

var _ cachesketch.Journal = (*Store)(nil)
