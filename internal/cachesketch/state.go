// Durability surface of the protocol server: journaling hooks, full-state
// export/import for snapshots, and the conservative cold-start mode that
// preserves the Δ bound when coherence history is lost.
//
// The exported state is coherence metadata only — resource IDs and
// expiration instants — and the journal carries the same. Nothing
// identity-bearing ever flows through this file; the gdprboundary
// analyzer enforces that transitively for the wal/durable packages that
// consume it.
package cachesketch

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Journal receives the server's state-changing coherence events so a
// durability layer can log them. Every hook is invoked with the server's
// mutex held, strictly after the mutation it describes: implementations
// must be fast, must not block on I/O they cannot bound, and must never
// call back into the Server (deadlock). A nil journal disables emission.
type Journal interface {
	// JournalCachedRead fires when a reported cache fill extended the
	// expiration table (not for ignored or non-extending reports).
	JournalCachedRead(key string, expiresAt time.Time)
	// JournalWrite fires when a reported write entered or extended the
	// sketch (not for writes to uncached resources, which change nothing).
	JournalWrite(key string)
	// JournalGeneration fires the first time Snapshot exposes a given
	// generation to clients. Clients ignore snapshots whose generation is
	// below the one they hold, so recovery must never republish a lower
	// generation than any client has seen — logging exactly the exposed
	// ones gives recovery the floor it must clear.
	JournalGeneration(gen uint64)
}

// state export format: magic "SKSS", u8 version, u64 generation,
// u32 expiry-count, entries, u32 sketch-count, entries; every entry is
// u32 key length, key bytes, i64 UnixNano expiration. Keys are sorted so
// equal states export byte-identical blobs (the twin-run determinism the
// crash gate asserts).
var stateMagic = [4]byte{'S', 'K', 'S', 'S'}

const stateVersion = 1

// ExportState serializes the server's full coherence state: generation,
// expiration table, and sketch residency map. The counting filter itself
// is not encoded — it is a pure function of the residency map and is
// rebuilt on import, which also heals any counter drift.
func (s *Server) ExportState() []byte {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)

	out := make([]byte, 0, 64+32*(len(s.expiry)+len(s.inSketch)))
	out = append(out, stateMagic[:]...)
	out = append(out, stateVersion)
	out = binary.BigEndian.AppendUint64(out, s.generation)
	out = appendStampMap(out, s.expiry)
	out = appendStampMap(out, s.inSketch)
	return out
}

// appendStampMap encodes a key→instant map with sorted keys.
func appendStampMap(out []byte, m map[string]time.Time) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out = binary.BigEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		out = binary.BigEndian.AppendUint32(out, uint32(len(k)))
		out = append(out, k...)
		out = binary.BigEndian.AppendUint64(out, uint64(m[k].UnixNano()))
	}
	return out
}

// readStampMap decodes one appendStampMap section, advancing *off.
func readStampMap(data []byte, off *int) (map[string]time.Time, error) {
	if len(data)-*off < 4 {
		return nil, errors.New("cachesketch: truncated state map header")
	}
	n := int(binary.BigEndian.Uint32(data[*off:]))
	*off += 4
	m := make(map[string]time.Time, n)
	for i := 0; i < n; i++ {
		if len(data)-*off < 4 {
			return nil, errors.New("cachesketch: truncated state key header")
		}
		klen := int(binary.BigEndian.Uint32(data[*off:]))
		*off += 4
		if klen < 0 || len(data)-*off < klen+8 {
			return nil, errors.New("cachesketch: truncated state entry")
		}
		key := string(data[*off : *off+klen])
		*off += klen
		m[key] = time.Unix(0, int64(binary.BigEndian.Uint64(data[*off:])))
		*off += 8
	}
	return m, nil
}

// ImportState replaces the server's coherence state with a previously
// exported blob: the maps are restored, the counting filter is rebuilt by
// inserting each resident key exactly once, the removal schedule is
// re-derived, and the flatten cache is dropped so the next Snapshot
// projects the imported contents.
func (s *Server) ImportState(data []byte) error {
	if len(data) < 13 || [4]byte(data[0:4]) != stateMagic {
		return errors.New("cachesketch: bad state magic")
	}
	if data[4] != stateVersion {
		return fmt.Errorf("cachesketch: unsupported state version %d", data[4])
	}
	gen := binary.BigEndian.Uint64(data[5:13])
	off := 13
	expiry, err := readStampMap(data, &off)
	if err != nil {
		return err
	}
	inSketch, err := readStampMap(data, &off)
	if err != nil {
		return err
	}
	if off != len(data) {
		return errors.New("cachesketch: trailing bytes in state blob")
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.generation = gen
	s.journaledGen = 0
	s.expiry = expiry
	s.inSketch = inSketch
	s.coldUntil = time.Time{}
	s.blindUntil = time.Time{}
	s.coldFilter = nil
	s.counting.Clear()
	s.removals = s.removals[:0]
	for k, until := range inSketch {
		s.counting.Add(k)
		s.removals = append(s.removals, expiryEvent{when: until, key: k, kind: evictSketch})
	}
	for k, exp := range expiry {
		s.removals = append(s.removals, expiryEvent{when: exp, key: k, kind: cleanTable})
	}
	heap.Init(&s.removals)
	s.flat.Store(nil)
	return nil
}

// Reset returns the server to its just-constructed state: empty maps,
// cleared filter, generation zero, no cold-start windows. Recovery calls
// it before applying a snapshot — the crash model is that the previous
// incarnation's memory is gone.
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counting.Clear()
	s.expiry = make(map[string]time.Time)
	s.inSketch = make(map[string]time.Time)
	s.removals = s.removals[:0]
	s.generation = 0
	s.journaledGen = 0
	s.coldUntil = time.Time{}
	s.blindUntil = time.Time{}
	s.coldFilter = nil
	s.flat.Store(nil)
}

// ColdStart switches the server into conservative recovery mode after a
// crash that may have lost coherence history:
//
//   - Until saturateUntil (one full Δ window), Snapshot returns a
//     saturated all-stale sketch, so every connected client revalidates
//     every read — the direction the protocol is always allowed to err in.
//   - Until blindUntil (the residual-TTL horizon), writes to resources
//     with no live expiration entry are tracked in the sketch anyway,
//     with residency blindUntil: a pre-crash cache fill whose report died
//     with the log could still be holding a copy, and with the table
//     blind the only safe assumption is that one is.
//
// Both windows bump the generation on entry and again on expiry, so
// clients and monitoring observe the mode switch as sketch-content
// changes.
func (s *Server) ColdStart(saturateUntil, blindUntil time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.coldUntil = saturateUntil
	s.blindUntil = blindUntil
	s.generation++
	fc := s.counting.Flatten()
	fc.Saturate()
	s.coldFilter = fc
	s.flat.Store(nil)
}

// EnsureGeneration raises the generation to at least min. Recovery calls
// it so a restarted server's snapshots are never rejected by clients that
// installed a higher pre-crash generation: Install keeps the newest
// (generation, TakenAt) pair, so a regressed generation would leave every
// connected client refusing refreshes until evictions caught up.
func (s *Server) EnsureGeneration(min uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.generation < min {
		s.generation = min
		s.flat.Store(nil)
	}
}

// ColdStartActive reports whether the saturated-sketch window is still
// open.
func (s *Server) ColdStartActive() bool {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(now)
	return s.coldFilter != nil
}
