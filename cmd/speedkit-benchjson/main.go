// Command speedkit-benchjson converts `go test -bench` text output into
// a stable JSON artifact so that hot-path performance can be tracked in
// version control (BENCH_hotpath.json) and diffed across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkParallel' -benchmem . | \
//	    go run ./cmd/speedkit-benchjson -out BENCH_hotpath.json \
//	    -baseline 'BenchmarkParallelCacheGet=126.4'
//
// The tool is a pure text transformer: stdlib only, no clock reads, no
// network. Baselines are passed explicitly by the caller (typically the
// Makefile, which documents where its numbers were measured) so that the
// recorded speedups are reproducible rather than baked into the tool.
//
// Parsing and the report format live in internal/bent, shared with the
// speedkit-bent suite harness; this command remains the ad-hoc
// pipe-one-run converter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"speedkit/internal/bent"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "comma-separated Name=ns_per_op baseline pairs")
	note := flag.String("note", "", "free-form provenance note stored in the artifact")
	flag.Parse()

	baselines, err := parseBaselines(*baseline)
	if err != nil {
		fatalf("bad -baseline: %v", err)
	}
	rep, err := bent.Parse(os.Stdin, baselines)
	if err != nil {
		fatalf("parse: %v", err)
	}
	rep.Note = *note
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "speedkit-benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// parseBaselines reads "Name=ns,Name=ns" into a lookup map.
func parseBaselines(s string) (map[string]float64, error) {
	m := map[string]float64{}
	if s == "" {
		return m, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not Name=ns_per_op", pair)
		}
		ns, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("entry %q: %v", pair, err)
		}
		m[name] = ns
	}
	return m, nil
}
