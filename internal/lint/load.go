package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("speedkit/internal/cache"), or the synthetic
	// path a fixture was loaded under.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	testFiles map[*ast.File]bool
}

// Module loads and type-checks packages of a single Go module without the
// go command: module-local imports resolve against the module root, and
// everything else (the module has zero dependencies, so "everything else"
// is the standard library) goes through go/importer's source importer.
// All packages share one FileSet and one importer so that types compare
// identical across packages.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles, which go/types would otherwise
	// chase forever.
	loading map[string]bool
}

// LoadModule opens the module rooted at or above dir.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Module{
		Root:    root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package in the module, skipping testdata, vendor,
// and hidden directories. Packages are returned sorted by import path.
func (m *Module) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(m.Root, path)
		if err != nil {
			return err
		}
		importPath := m.ModPath
		if rel != "." {
			importPath = m.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := m.Import(importPath)
		if err != nil {
			return fmt.Errorf("lint: loading %s: %w", importPath, err)
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// Import loads the package with the given module-local import path,
// type-checking it (and, transitively, its module-local imports) from
// source. Results are cached.
func (m *Module) Import(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(path, m.ModPath)
	dir := filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	return m.LoadDir(dir, path)
}

// LoadDir loads the package in dir under the given import path. The path
// does not need to correspond to dir's real location — fixture tests use
// this to present testdata packages to path-sensitive analyzers under
// paths like "fixture/internal/cdn".
func (m *Module) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	testFiles := map[*ast.File]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// External test packages (package foo_test) are separate units;
		// analyzing them would need the package-under-test's test exports.
		// Every invariant the suite checks exempts test code anyway.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles[f] = true
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	// Library files first so struct declarations precede test-file uses in
	// analyzer traversal order; stable order within each group.
	sort.SliceStable(files, func(i, j int) bool {
		ti, tj := testFiles[files[i]], testFiles[files[j]]
		if ti != tj {
			return !ti
		}
		return m.fset.Position(files[i].Pos()).Filename < m.fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: moduleImporter{m}}
	tpkg, err := conf.Check(path, m.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      m.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		testFiles: testFiles,
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter routes module-local imports through the Module and
// everything else through the shared source importer.
type moduleImporter struct{ m *Module }

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	m := mi.m
	if path == m.ModPath || strings.HasPrefix(path, m.ModPath+"/") {
		pkg, err := m.Import(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
