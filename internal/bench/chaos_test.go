package bench

import (
	"testing"
	"time"

	"speedkit/internal/faults"
)

func chaosConfig(seed int64) FieldConfig {
	return FieldConfig{
		Mode:       ModeSpeedKit,
		Seed:       seed,
		Ops:        4000,
		Users:      30,
		Products:   100,
		Delta:      30 * time.Second,
		FaultRules: faults.ChaosRules(0.15),
	}
}

// Two chaos runs on the same seed must produce byte-identical fault
// schedules — the determinism the whole injector exists for.
func TestChaosRunsAreSeedDeterministic(t *testing.T) {
	r1, err := RunField(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunField(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := r1.Faults.ScheduleHash(), r2.Faults.ScheduleHash()
	if h1 != h2 {
		t.Fatalf("schedules diverged: %x vs %x", h1, h2)
	}
	if len(r1.Faults.Schedule()) == 0 {
		t.Fatal("no faults injected — vacuous determinism")
	}
	if r1.Loads != r2.Loads || r1.FailedLoads != r2.FailedLoads {
		t.Fatalf("run outcomes diverged: loads %d/%d failed %d/%d",
			r1.Loads, r2.Loads, r1.FailedLoads, r2.FailedLoads)
	}
	r3, err := RunField(chaosConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Faults.ScheduleHash() == h1 {
		t.Fatal("different seed produced an identical schedule")
	}
}

// Under chaos, every connected load stays Δ-atomic; only offline-shell
// serves (the explicit partition fallback, flagged on the PageLoad) may
// exceed the bound.
func TestChaosPreservesDeltaAtomicity(t *testing.T) {
	for _, seed := range []int64{1, 7, 13} {
		cfg := chaosConfig(seed)
		res, err := RunField(cfg)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if res.MaxStaleness > cfg.Delta {
			t.Fatalf("seed=%d: connected staleness %v exceeds Δ=%v",
				seed, res.MaxStaleness, cfg.Delta)
		}
		if res.Loads == 0 {
			t.Fatalf("seed=%d: nothing served", seed)
		}
		st := res.Faults.Stats()
		for _, c := range []faults.Component{faults.SketchFetch, faults.OriginFetch} {
			if st[c].Rate() < 0.10 {
				t.Fatalf("seed=%d: %s fault rate %.1f%% below floor — chaos too gentle to be meaningful",
					seed, c, st[c].Rate()*100)
			}
		}
		if len(res.DegradedLoads) == 0 {
			t.Fatalf("seed=%d: no degraded loads — ladder never exercised", seed)
		}
	}
}

// Without fault rules the chaos machinery stays entirely out of the way.
func TestFieldRunWithoutFaultsHasNoInjector(t *testing.T) {
	cfg := chaosConfig(1)
	cfg.FaultRules = nil
	cfg.Ops = 500
	res, err := RunField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != nil {
		t.Fatal("injector installed without rules")
	}
	if res.FailedLoads != 0 || res.OfflineServes != 0 {
		t.Fatalf("failures without faults: failed=%d offline=%d", res.FailedLoads, res.OfflineServes)
	}
	if len(res.DegradedLoads) != 0 {
		t.Fatalf("degraded loads without faults: %v", res.DegradedLoads)
	}
}
