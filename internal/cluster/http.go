package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// http.go is the node-side /v1/cluster surface: the endpoints one node
// serves to its peers and to the merge layer. The JSON error envelope is
// wire-identical to internal/httpapi's ({"error":{"code","message"}});
// the struct is mirrored rather than imported because this package sits
// behind the shared-infra fence and must not pull the identity-bearing
// server stack into every node. The compatibility test decodes one
// surface's errors with the other's types.

// Error codes mirrored from the /v1 contract (httpapi.Code*).
const (
	codeBadRequest  = "bad_request"
	codeNotFound    = "not_found"
	codeUnavailable = "unavailable"
	codeInternal    = "internal"
)

// errorBody / errorDetail mirror httpapi.ErrorBody / httpapi.ErrorDetail.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError emits the /v1 JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: errorDetail{Code: code, Message: message}})
}

// writeJSON emits one JSON document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// reportRequest is the body of POST /v1/cluster/report: the coherence
// reports a router forwards to the shard owner. Keys are resource IDs —
// anonymous coherence metadata only; the piiflow analyzer treats the
// peer-side writer as a sink so identity can never reach a frame.
type reportRequest struct {
	// Writes lists written resource IDs.
	Writes []string `json:"writes,omitempty"`
	// Reads lists cache-fill reports.
	Reads []readReport `json:"reads,omitempty"`
}

// readReport is one cache-fill: a resource ID and when the copy expires.
type readReport struct {
	Key       string    `json:"key"`
	ExpiresAt time.Time `json:"expires_at"`
}

// NodeHandler serves one node's /v1/cluster surface:
//
//	GET  /v1/cluster/delta  — the node's current DeltaFrame
//	GET  /v1/cluster/ring   — the deployment's ring layout
//	POST /v1/cluster/report — routed write / cached-read reports
//
// A down node answers everything 503 {"error":{"code":"unavailable"}} —
// the signal a router maps back onto ErrNodeDown.
func NodeHandler(n *Node, ring *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/delta", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, codeBadRequest, "GET only")
			return
		}
		frame, err := n.Delta()
		if err != nil {
			writeNodeError(w, err)
			return
		}
		writeJSON(w, frame)
	})
	mux.HandleFunc("/v1/cluster/ring", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, codeBadRequest, "GET only")
			return
		}
		writeJSON(w, ring.Info())
	})
	mux.HandleFunc("/v1/cluster/report", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, codeBadRequest, "POST only")
			return
		}
		var req reportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "bad report body: "+err.Error())
			return
		}
		if len(req.Writes) > 0 {
			if err := n.ReportWrites(req.Writes); err != nil {
				writeNodeError(w, err)
				return
			}
		}
		for _, rr := range req.Reads {
			if rr.Key == "" {
				writeError(w, http.StatusBadRequest, codeBadRequest, "read report without key")
				return
			}
			if err := n.ReportCachedRead(rr.Key, rr.ExpiresAt); err != nil {
				writeNodeError(w, err)
				return
			}
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, codeNotFound, "no such cluster endpoint: "+r.URL.Path)
	})
	return mux
}

// writeNodeError maps node failures onto the envelope: a down node is
// 503/unavailable (retryable), anything else 500/internal.
func writeNodeError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNodeDown) {
		writeError(w, http.StatusServiceUnavailable, codeUnavailable, err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
}
