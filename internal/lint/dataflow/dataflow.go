// Package dataflow is a stdlib-only, summary-based interprocedural
// dataflow engine over go/types and the AST. It exists so the lint suite
// can prove *value-level* properties — "no PII value reaches a WAL
// frame", "no allocation on an annotated hot path" — where the original
// analyzers could only check imports and names.
//
// The engine works bottom-up over the static call graph: every function
// gets a transfer summary (which inputs flow to which outputs, which
// inputs reach which sinks), strongly connected components are iterated
// to a fixpoint so recursion converges, and clients (piiflow,
// hotpathalloc) interpret the summaries against their own source/sink
// catalogs. It is deliberately AST-level rather than SSA-level: the
// repo keeps zero dependencies, so golang.org/x/tools/go/ssa is off the
// table, and a flow-insensitive abstract interpretation of the syntax is
// exact enough for the boundary properties checked here while staying a
// few hundred lines.
//
// Approximations, chosen to favor soundness at the boundary:
//
//   - flow-insensitive within a function: an assignment taints the
//     variable for the whole function body;
//   - calls through interfaces or function values use a conservative
//     default summary (taint of every argument flows to every result);
//   - state-mediated flows (store a value in a struct field in one call,
//     read it back in another) are not tracked across functions — sinks
//     are therefore declared at the API boundary where values enter a
//     subsystem, not at its internal write points;
//   - numeric and boolean values are always clean: durations, counts, and
//     flags cannot carry a PII string, and cutting them keeps structs
//     that hold both identity and bookkeeping (a proxy with its sessions
//     and its latency counters) from tainting all their arithmetic. A
//     codebase keeping identifiers in integers would need this cut
//     revisited; this repo's identifiers are strings.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package presented to the engine.
// The lint loader's packages convert to this shape directly; keeping a
// local type avoids an import cycle between the engine and its clients.
type Package struct {
	// Path is the package's import path (or a fixture's synthetic path).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncInfo is one module-local function or method known to the engine.
type FuncInfo struct {
	// Obj is the type-checker's object for the function.
	Obj *types.Func
	// Decl is the syntax, always with a non-nil Body.
	Decl *ast.FuncDecl
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Directives holds the "//speedkit:..." machine comments from the
	// function's doc comment, e.g. "speedkit:hotpath".
	Directives []string
	// Callees lists the module-local functions this function calls
	// directly (deduplicated, deterministic order).
	Callees []*FuncInfo
}

// Name returns a human-readable name: "pkg.Func" or "pkg.(*T).Method".
func (f *FuncInfo) Name() string {
	obj := f.Obj
	pkg := ""
	if obj.Pkg() != nil {
		parts := strings.Split(obj.Pkg().Path(), "/")
		pkg = parts[len(parts)-1] + "."
	}
	if recv := recvOf(obj); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + ptr + named.Obj().Name() + ")." + obj.Name()
		}
	}
	return pkg + obj.Name()
}

// Program is the engine's whole-module view: every function with a body,
// the call graph between them, and the bottom-up analysis order.
type Program struct {
	Pkgs []*Package
	// Funcs indexes every module-local function with a body.
	Funcs map[*types.Func]*FuncInfo
	// order lists SCCs of the call graph in bottom-up (callee-first)
	// order; each SCC lists its members deterministically.
	order [][]*FuncInfo
}

// NewProgram indexes the packages and builds the call graph. Packages
// are analyzed in the order given; pass them sorted for deterministic
// output.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, Funcs: map[*types.Func]*FuncInfo{}}
	var all []*FuncInfo
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, Directives: directives(fd.Doc)}
				p.Funcs[obj] = fi
				all = append(all, fi)
			}
		}
	}
	// Call edges: direct calls to module-local functions, including
	// method calls with a statically known concrete receiver. Interface
	// dispatch resolves to the interface method object, which is not in
	// the index, so it falls through to the conservative default — that
	// is the intended approximation.
	for _, fi := range all {
		seen := map[*FuncInfo]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := p.CalleeOf(fi.Pkg, call); callee != nil && !seen[callee] {
				seen[callee] = true
				fi.Callees = append(fi.Callees, callee)
			}
			return true
		})
		sort.Slice(fi.Callees, func(i, j int) bool {
			return fi.Callees[i].Obj.Pos() < fi.Callees[j].Obj.Pos()
		})
	}
	p.order = sccOrder(all)
	return p
}

// FuncsOf returns the package's functions in source order.
func (p *Program) FuncsOf(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					if fi := p.Funcs[obj]; fi != nil {
						out = append(out, fi)
					}
				}
			}
		}
	}
	return out
}

// CalleeOf resolves a call expression to the module-local function it
// invokes, or nil when the callee is unknown (interface method, function
// value, builtin, out-of-module function).
func (p *Program) CalleeOf(pkg *Package, call *ast.CallExpr) *FuncInfo {
	if fn := calleeFunc(pkg.Info, call); fn != nil {
		return p.Funcs[fn]
	}
	return nil
}

// calleeFunc resolves the *types.Func a call statically dispatches to,
// out-of-module callees included, or nil for dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// Method call or qualified package function. For methods, Uses
		// resolves interface methods to the interface's *types.Func —
		// Program.Funcs lookup then misses, which keeps dispatch through
		// interfaces conservative.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sel, ok := info.Selections[fun]; ok && sel.Kind() != types.MethodVal {
				return nil // method expression / method value: dynamic use
			}
			return fn
		}
	}
	return nil
}

// BottomUp visits every function in callee-before-caller order. Mutually
// recursive functions (one SCC) are visited as a group: visit is called
// for each member, and the whole group is repeated until visit reports
// no change for any member, so summaries converge to a fixpoint.
func (p *Program) BottomUp(visit func(*FuncInfo) (changed bool)) {
	for _, scc := range p.order {
		for {
			changed := false
			for _, fi := range scc {
				if visit(fi) {
					changed = true
				}
			}
			if !changed || len(scc) == 0 {
				break
			}
			// A singleton without self-recursion cannot change twice.
			if len(scc) == 1 && !callsSelf(scc[0]) {
				break
			}
		}
	}
}

func callsSelf(fi *FuncInfo) bool {
	for _, c := range fi.Callees {
		if c == fi {
			return true
		}
	}
	return false
}

// sccOrder computes strongly connected components of the call graph with
// Tarjan's algorithm and returns them in reverse topological (bottom-up,
// callee-first) order.
func sccOrder(all []*FuncInfo) [][]*FuncInfo {
	index := map[*FuncInfo]int{}
	lowlink := map[*FuncInfo]int{}
	onStack := map[*FuncInfo]bool{}
	var stack []*FuncInfo
	var sccs [][]*FuncInfo
	next := 0

	var strongconnect func(v *FuncInfo)
	strongconnect = func(v *FuncInfo) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Callees {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			// Deterministic member order within the component.
			sort.Slice(scc, func(i, j int) bool { return scc[i].Obj.Pos() < scc[j].Obj.Pos() })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range all {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	// Tarjan emits components callee-first already.
	return sccs
}

// directives extracts "speedkit:..." machine directives from a doc
// comment, in the gofmt-blessed "//speedkit:name" (no space) form.
func directives(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.HasPrefix(text, "speedkit:") {
			out = append(out, strings.TrimSpace(text))
		}
	}
	return out
}

// HasDirective reports whether the function's doc comment carries the
// given directive ("speedkit:hotpath"), exactly or as a "directive
// argument..." prefix.
func (f *FuncInfo) HasDirective(name string) bool {
	for _, d := range f.Directives {
		if d == name || strings.HasPrefix(d, name+" ") {
			return true
		}
	}
	return false
}

// recvOf returns the receiver variable of a method, or nil.
func recvOf(fn *types.Func) *types.Var {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Recv()
	}
	return nil
}

// paramVars returns the unified input list of a function: receiver
// first (if any), then the declared parameters.
func paramVars(fn *types.Func) []*types.Var {
	sig := fn.Type().(*types.Signature)
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}
