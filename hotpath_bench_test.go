package speedkit_test

// Hot-path microbenchmarks tracked in BENCH_hotpath.json (see `make
// bench-hotpath`). Each one exercises a read path that sits on every
// request in a production deployment, under RunParallel so that lock
// contention — not single-thread speed — dominates the result:
//
//   - BenchmarkParallelCacheGet:    cache.Store.Get under concurrency
//   - BenchmarkParallelSketchCheck: cachesketch.Client.Check (sketch probe)
//   - BenchmarkSnapshotReuse:       cachesketch.Server.Snapshot generation
//     reuse (a pointer load when the sketch is unchanged)
//
// Run with -benchmem: the acceptance bar is 0 allocs/op for the sketch
// probe and cache hit paths.

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/obs"
	"speedkit/internal/slog"
	"speedkit/internal/tracectx"
)

const hotpathKeys = 1024 // power of two so key selection is a mask

func hotpathKeySet() []string {
	keys := make([]string, hotpathKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("/product/p%05d", i)
	}
	return keys
}

func BenchmarkParallelCacheGet(b *testing.B) {
	keys := hotpathKeySet()
	st := cache.New(cache.Config{})
	for i, k := range keys {
		st.Put(cache.TTLEntry(clock.System, k, make([]byte, 64), uint64(i), time.Hour))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := st.Get(keys[i&(hotpathKeys-1)]); !ok {
				b.Error("unexpected miss")
				return
			}
			i++
		}
	})
}

func BenchmarkParallelSketchCheck(b *testing.B) {
	keys := hotpathKeySet()
	clk := clock.CoarseSystem
	srv := cachesketch.NewServer(cachesketch.ServerConfig{Capacity: hotpathKeys, Clock: clk})
	// Half the keys are stale-tracked, so the probe exercises both the
	// hit (Revalidate) and miss (ServeFromCache) exits.
	for i, k := range keys {
		if i%2 == 0 {
			srv.ReportCachedRead(k, clk.Now().Add(time.Hour))
			srv.ReportWrite(k)
		}
	}
	cl := cachesketch.NewClient(clk, time.Hour)
	cl.Install(srv.Snapshot())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if d := cl.Check(keys[i&(hotpathKeys-1)]); d == cachesketch.RefreshSketch {
				b.Error("sketch unexpectedly stale")
				return
			}
			i++
		}
	})
}

func BenchmarkSnapshotReuse(b *testing.B) {
	keys := hotpathKeySet()
	clk := clock.CoarseSystem
	// Large capacity makes Flatten genuinely expensive (m ≈ 1.2M cells at
	// 0.01 FPR), so the benchmark measures whether Snapshot() re-flattens
	// on every call or reuses the cached filter for an unchanged sketch.
	srv := cachesketch.NewServer(cachesketch.ServerConfig{Capacity: 200000, FalsePositiveRate: 0.01, Clock: clk})
	for _, k := range keys {
		srv.ReportCachedRead(k, clk.Now().Add(time.Hour))
		srv.ReportWrite(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if sn := srv.Snapshot(); sn == nil {
				b.Error("nil snapshot")
				return
			}
		}
	})
	b.StopTimer()
	// The whole point: an unchanged generation never re-flattens.
	if fl := srv.Stats().Flattens; fl != 1 {
		b.Errorf("flattens = %d across %d snapshots, want exactly 1", fl, srv.Stats().Snapshots)
	}
}

// BenchmarkFilterContains records the raw Bloom membership probe — the
// innermost operation of every sketch check — so BENCH_hotpath.json pins
// its 0 allocs/op directly, not only via the composed Check path.
func BenchmarkFilterContains(b *testing.B) {
	keys := hotpathKeySet()
	f := bloom.NewFilterForCapacity(hotpathKeys, 0.01)
	for i, k := range keys {
		if i%2 == 0 {
			f.Add(k)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f.Contains(keys[i&(hotpathKeys-1)])
			i++
		}
	})
}

// BenchmarkSnapshotMightBeStale records the client-visible staleness
// probe on a flattened snapshot, isolated from the Δ bookkeeping that
// Client.Check adds on top.
func BenchmarkSnapshotMightBeStale(b *testing.B) {
	keys := hotpathKeySet()
	clk := clock.CoarseSystem
	srv := cachesketch.NewServer(cachesketch.ServerConfig{Capacity: hotpathKeys, Clock: clk})
	for i, k := range keys {
		if i%2 == 0 {
			srv.ReportCachedRead(k, clk.Now().Add(time.Hour))
			srv.ReportWrite(k)
		}
	}
	sn := srv.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sn.MightBeStale(keys[i&(hotpathKeys-1)])
			i++
		}
	})
}

// --- observability overhead -------------------------------------------------
//
// The telemetry acceptance bar (see internal/obs/alloc_test.go for the
// hard AllocsPerRun gates): disabled or unsampled tracing and a
// pre-resolved counter increment must stay 0 allocs/op and single-digit
// nanoseconds, so instrumentation can ride every request unconditionally.

// BenchmarkObsTracerDisabled measures the per-request cost of tracing
// when the tracer is off (sample rate 0): Start returns nil and every
// nil-trace method is a no-op.
func BenchmarkObsTracerDisabled(b *testing.B) {
	tr := obs.NewTracer(clock.CoarseSystem, 0, 16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t := tr.Start("page_load", "/product/p00001")
			t.SetSource("device")
			t.SetTotal(0)
			tr.Finish(t)
		}
	})
}

// BenchmarkObsTracerUnsampled measures the same path with tracing on but
// at a 1-in-2^20 sample rate — the steady-state cost almost every
// request pays: one atomic increment and a modulo.
func BenchmarkObsTracerUnsampled(b *testing.B) {
	tr := obs.NewTracer(clock.CoarseSystem, 1<<20, 16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t := tr.Start("page_load", "/product/p00001")
			t.SetSource("device")
			tr.Finish(t)
		}
	})
}

// BenchmarkObsCounterInc measures a pre-resolved labeled counter — the
// handle pattern every instrumented hot path uses (resolve at
// construction, atomic add per event).
func BenchmarkObsCounterInc(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("speedkit.bench.loads.total", obs.L("source", "device"))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkObsPropagationUnsampled measures the full server-side
// propagation cost for a request whose head decided NOT to trace: parse
// the W3C traceparent header, honor the cleared sampling bit in
// StartRemote. This is what every request from an untraced client pays;
// the bar is 0 allocs/op (hard-gated in internal/obs/alloc_test.go and
// internal/tracectx's parse gates).
func BenchmarkObsPropagationUnsampled(b *testing.B) {
	tr := obs.NewTracer(clock.CoarseSystem, 1, 16)
	const header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			parent, _ := tracectx.ParseTraceparent(header)
			if t := tr.StartRemote("http.page", "/product/p00001", parent); t != nil {
				b.Fatal("unsampled parent was recorded")
			}
		}
	})
}

// BenchmarkObsLoggerDisabled measures a level-filtered log call — the
// cost every instrumented site pays when its level is off. The nil
// *Event chain must be two loads and a branch: 0 allocs/op, hard-gated
// in internal/slog's alloc tests.
func BenchmarkObsLoggerDisabled(b *testing.B) {
	lg := slog.New(io.Discard, clock.CoarseSystem, slog.LevelError)
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lg.Debug(ctx).Str("source", "cdn").Uint("generation", 7).Msg("served")
		}
	})
}
