package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/cluster"
	"speedkit/internal/faults"
	"speedkit/internal/gdpr"
	"speedkit/internal/invalidb"
	"speedkit/internal/query"
	"speedkit/internal/session"
	"speedkit/internal/storage"
)

// runCluster is the -cluster gate: a 3-node coordinator-free deployment
// of the server side — per-node shard sketches over per-node WAL
// directories, delta exchange pulled over REAL loopback HTTP (every
// member's DeltaSource is a cluster.Peer against its NodeHandler), and a
// protocol client installing only the merged filter. Seeded faults kill
// nodes (unclean WAL close, cold recovery) and blackhole exchange pulls
// (partition); the driver advances one shared simulated clock, so twin
// runs on one seed are bit-for-bit comparable. The gate asserts:
//
//  1. Sharded matching is exact — with all nodes up, broadcasting a
//     change event and unioning the per-node matches equals a single
//     unsharded InvaliDB engine over the same registrations.
//  2. Cluster-wide Δ-atomicity — every cache serve throughout kills,
//     recoveries, and partitions stays within Δ of the first
//     acknowledged write against it. Failed routes to a dead shard are
//     unacknowledged (the write did not happen) and create no
//     obligation.
//  3. The faults actually bit — node kills fired and recovered, and
//     exchange pulls were dropped.
//  4. Twin-run determinism — two runs on the same seed produce identical
//     fault schedules, identical merged generations, and byte-identical
//     merged sketch exports.
//  5. GDPR — pseudonymized cart keys routed through the cluster leave no
//     raw user identity in any per-node persisted byte.
//  6. No goroutine leaks once the nodes and listeners shut down.
//
// Violations exit non-zero, so `make cluster` is a CI gate, not a demo.
//
// The Δ budget mirrors DESIGN.md's cluster rule: client refresh (10s) +
// sync period (2s) + MaxFrameAge (5s) ≤ Δ (30s), with the remainder
// absorbing the kill→saturation transitions.
func runCluster(seed int64, products int) {
	const (
		nodeCount    = 3
		delta        = 30 * time.Second
		clientRfrsh  = 10 * time.Second
		maxFrameAge  = 5 * time.Second
		tick         = time.Second
		rounds       = 600
		syncEvery    = 2
		opsPerRound  = 4
		recoverAfter = 8 // ticks a killed node stays down
	)

	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "CLUSTER VIOLATION: "+format+"\n", args...)
	}

	_ = clock.CoarseSystem.Now()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	type runResult struct {
		scheduleHash uint64
		export       []byte
		generation   uint64
		kills        uint64
		recoveries   uint64
		drops        uint64
		failedRoutes uint64
		serves       int
		maxStale     time.Duration
		dirs         []string
	}

	run := func() runResult {
		var res runResult
		start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		clk := clock.NewSimulated(start)
		inj := faults.New(clk, seed,
			faults.Rule{Component: faults.NodeKill, Kind: faults.Crash, Probability: 0.01},
			faults.Rule{Component: faults.DeltaExchange, Kind: faults.Blackhole, Probability: 0.05},
		)

		nodes := make([]*cluster.Node, nodeCount)
		for i := range nodes {
			dir, err := os.MkdirTemp("", "speedkit-cluster-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "cluster: scratch dir:", err)
				os.Exit(1)
			}
			res.dirs = append(res.dirs, dir)
			n, err := cluster.NewNode(cluster.NodeConfig{
				Member:         fmt.Sprintf("node-%d", i),
				Clock:          clk,
				SketchCapacity: uint64(products) * 4,
				DurableDir:     dir,
				SnapshotEvery:  64,
				ColdWindow:     10 * time.Second,
				BlindHorizon:   time.Minute,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cluster: node:", err)
				os.Exit(1)
			}
			nodes[i] = n
		}
		c, err := cluster.New(cluster.Config{
			Seed:        seed,
			Clock:       clk,
			Faults:      inj,
			Capacity:    uint64(products) * 4,
			MaxFrameAge: maxFrameAge,
		}, nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster:", err)
			os.Exit(1)
		}

		// Real loopback HTTP: each member serves its /v1/cluster surface
		// and the merge layer pulls frames through a Peer, exactly as a
		// multi-process deployment would.
		servers := make([]*httptest.Server, 0, nodeCount)
		for _, n := range nodes {
			srv := httptest.NewServer(cluster.NodeHandler(n, c.Ring()))
			servers = append(servers, srv)
			if err := c.UseDeltaSource(cluster.NewPeer(n.Name(), srv.URL, srv.Client())); err != nil {
				fmt.Fprintln(os.Stderr, "cluster: peer:", err)
				os.Exit(1)
			}
		}

		// 1. Oracle phase (all nodes up): sharded matching must be exact.
		oracle := invalidb.New(invalidb.Config{Clock: clk})
		for i := 0; i < 32; i++ {
			id := fmt.Sprintf("q:products?cat=%d", i)
			q := query.New("products", query.Eq("category", fmt.Sprintf("cat-%d", i%8)))
			if err := c.Register(id, q); err != nil {
				fail("register %s: %v", id, err)
			}
			oracle.Register(id, q)
		}
		for i := 0; i < 16; i++ {
			ev := storage.ChangeEvent{
				Collection: "products",
				ID:         fmt.Sprintf("p%05d", i),
				Kind:       storage.ChangeUpdate,
				Before:     map[string]any{"category": fmt.Sprintf("cat-%d", i%8)},
				After:      map[string]any{"category": fmt.Sprintf("cat-%d", (i+3)%8)},
				Time:       clk.Now(),
			}
			got, err := c.ProcessEvent(ev)
			if err != nil {
				fail("event %d: %v", i, err)
				continue
			}
			want := oracle.Process(ev)
			g := make([]string, len(got))
			for j, inv := range got {
				g[j] = inv.RegistrationID
			}
			w := make([]string, len(want))
			for j, inv := range want {
				w[j] = inv.RegistrationID
			}
			sort.Strings(g)
			sort.Strings(w)
			if fmt.Sprint(g) != fmt.Sprint(w) {
				fail("event %d: sharded matches %v != oracle %v", i, g, w)
			}
		}

		// 5. GDPR probe: user-derived keys enter the cluster only
		// pseudonymized; the raw identities must never reach a WAL.
		for _, u := range session.Population(seed, 10) {
			key := "/cart/" + gdpr.Pseudonymize(u.ID)
			_ = c.ReportCachedRead(key, clk.Now().Add(time.Hour))
			_ = c.ReportWrite(key)
		}

		// 2. Fault-driven main loop. The reference model records, per
		// cached key, when the copy was stored and when the first
		// ACKNOWLEDGED write against it landed; a cache serve more than Δ
		// after that first write is a staleness violation.
		type entry struct {
			cached   bool
			firstInv time.Time
		}
		model := map[string]*entry{}
		rng := rand.New(rand.NewSource(seed))
		client := cachesketch.NewClient(clk, clientRfrsh)
		client.Install(c.Snapshot())
		recoverAt := map[string]int{}

		for t := 1; t <= rounds; t++ {
			clk.Advance(tick)

			// Driver-scheduled kills and recoveries, in member order so the
			// injector's draw sequence is identical across twin runs.
			for _, name := range c.Ring().Members() {
				n := c.Node(name)
				if at, down := recoverAt[name]; down {
					if t >= at {
						if err := n.Recover(); err != nil {
							fail("recover %s: %v", name, err)
						}
						delete(recoverAt, name)
						res.recoveries++
					}
					continue
				}
				if d := inj.Decide(faults.NodeKill); d.Faulted() {
					if err := n.Kill(); err != nil {
						fail("kill %s: %v", name, err)
					}
					recoverAt[name] = t + recoverAfter
					res.kills++
				}
			}

			for op := 0; op < opsPerRound; op++ {
				key := fmt.Sprintf("/product/p%05d", rng.Intn(products))
				now := clk.Now()
				e := model[key]
				if e == nil {
					e = &entry{}
					model[key] = e
				}
				if rng.Float64() < 0.3 {
					// Backend write. Only an acknowledged write creates a
					// staleness obligation: a failed route means the shard
					// owner never saw it.
					if err := c.ReportWrite(key); err == nil {
						if e.cached && e.firstInv.IsZero() {
							e.firstInv = now
						}
					}
					continue
				}
				// Page load through the protocol client.
				d := client.Check(key)
				if d == cachesketch.RefreshSketch {
					client.Install(c.Snapshot())
					d = client.Check(key)
				}
				switch d {
				case cachesketch.ServeFromCache:
					if e.cached {
						res.serves++
						if !e.firstInv.IsZero() {
							stale := now.Sub(e.firstInv)
							if stale > res.maxStale {
								res.maxStale = stale
							}
							if stale > delta {
								fail("cache serve of %s %v after its first acknowledged write (Δ=%v)",
									key, stale, delta)
							}
						}
					} else if err := c.ReportCachedRead(key, now.Add(time.Hour)); err == nil {
						// Cache fill, acknowledged by the shard owner. An
						// unacknowledged fill is not cached — the cluster
						// would never invalidate a copy it cannot see.
						e.cached = true
						e.firstInv = time.Time{}
					}
				case cachesketch.Revalidate:
					// Revalidation fetches the current version: the copy is
					// fresh again if the owner acknowledges it.
					if err := c.ReportCachedRead(key, now.Add(time.Hour)); err == nil {
						e.cached = true
						e.firstInv = time.Time{}
					} else {
						e.cached = false
					}
				}
			}

			if t%syncEvery == 0 {
				// Exchange errors are the point: down members and injected
				// blackholes degrade the merge, they do not stop the driver.
				_ = c.SyncDeltas()
			}
			if client.NeedsRefresh() {
				client.Install(c.Snapshot())
			}
		}

		// Settle: recover everyone, run clean exchanges past the cold
		// window, and capture the terminal merged state.
		for name := range recoverAt {
			if err := c.Node(name).Recover(); err != nil {
				fail("final recover %s: %v", name, err)
			}
			res.recoveries++
		}
		clk.Advance(15 * time.Second)
		for i := 0; i < nodeCount+1; i++ {
			if err := c.SyncDeltas(); err == nil {
				break
			}
		}
		res.generation = c.Snapshot().Generation
		export, err := c.Export()
		if err != nil {
			fail("export: %v", err)
		}
		res.export = export
		res.scheduleHash = inj.ScheduleHash()
		st := c.Stats()
		res.drops = st.DroppedExchanges
		res.failedRoutes = st.FailedRoutes

		for _, srv := range servers {
			srv.Close()
		}
		if err := c.Close(); err != nil {
			fail("close: %v", err)
		}
		return res
	}

	sw := clock.NewStopwatch(clock.System)
	r1 := run()
	r2 := run()
	for _, r := range []runResult{r1, r2} {
		for _, d := range r.dirs {
			defer os.RemoveAll(d)
		}
	}

	fmt.Printf("cluster: seed=%d nodes=%d Δ=%v rounds=%d (%v wall-clock, 2 runs)\n",
		seed, nodeCount, delta, rounds, sw.Elapsed().Round(time.Millisecond))
	fmt.Printf("kills=%d recoveries=%d droppedExchanges=%d failedRoutes=%d serves=%d\n",
		r1.kills, r1.recoveries, r1.drops, r1.failedRoutes, r1.serves)
	fmt.Printf("max connected staleness %v (bound %v)\n", r1.maxStale.Round(time.Millisecond), delta)

	// 3. The faults actually bit.
	if r1.kills == 0 {
		fail("no node kills fired (seed %d) — pick another seed", seed)
	}
	if r1.recoveries < r1.kills {
		fail("%d kills but only %d recoveries", r1.kills, r1.recoveries)
	}
	if r1.drops == 0 {
		fail("no exchange pulls dropped — the partition path was never exercised")
	}
	if r1.serves == 0 {
		fail("no cache serves — the gate measured nothing")
	}

	// 4. Twin-run determinism.
	if r1.scheduleHash != r2.scheduleHash {
		fail("fault schedules diverged across seed-identical runs: %x vs %x",
			r1.scheduleHash, r2.scheduleHash)
	} else {
		fmt.Printf("schedule hash    %x (identical across runs)\n", r1.scheduleHash)
	}
	if r1.generation != r2.generation {
		fail("twin runs ended at merged generations %d vs %d", r1.generation, r2.generation)
	} else {
		fmt.Printf("merged generation %d (identical across runs)\n", r1.generation)
	}
	if !bytes.Equal(r1.export, r2.export) {
		fail("twin runs exported different merged sketch bytes")
	} else {
		fmt.Printf("merged export    %d bytes (byte-identical across runs)\n", len(r1.export))
	}

	// 5. GDPR: raw identity in no per-node persisted byte.
	idents := []string{}
	for _, u := range session.Population(seed, 10) {
		for _, v := range []string{u.ID, u.Name, u.Email} {
			if v != "" {
				idents = append(idents, v)
			}
		}
	}
	for _, r := range []runResult{r1, r2} {
		for _, dir := range r.dirs {
			hits, err := scanBytes(dir, idents)
			if err != nil {
				fail("PII scan over %s: %v", dir, err)
			}
			for _, h := range hits {
				fail("%s in node-persisted bytes under %s", h, dir)
			}
		}
	}

	// 6. No goroutine leaks.
	runtime.GC()
	leakWatch := clock.NewStopwatch(clock.System)
	for runtime.NumGoroutine() > baseline && leakWatch.Elapsed() < 2*time.Second {
		clock.Sleep(clock.System, 10*time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		fail("goroutine leak: %d before, %d after", baseline, n)
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "cluster: %d invariant violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("cluster: all invariants hold — exact sharded matching, Δ-atomicity through kills and partitions, twin-run determinism, zero persisted PII, zero leaks")
}
