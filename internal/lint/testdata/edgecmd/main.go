// Command edgecmd models a shared-POP deployment: the deployment-role
// directive opts this main package into the shared-infrastructure
// boundary rules even though its import path is not under internal/.
//
//speedkit:deploy shared-infra
package main

import (
	"speedkit/internal/cdn"
	"speedkit/internal/session" // want "imports identity-bearing package"
)

// Config is the command's wiring; the session field is the seeded
// violation an edge deployment must never carry.
type Config struct {
	Edges *cdn.CDN
	Users []*session.User
}

func main() {
	_ = Config{}
}
