// Command speedkit-server runs the Speed Kit service side over real HTTP:
// the origin, CDN-path page delivery (with ETag-based conditional
// revalidation), the sketch endpoint clients poll every Δ, and the
// first-party blocks API. It is the deployable surface of the
// reproduction — a service worker (or the curl commands below) plays the
// client role.
//
//	speedkit-server -addr :8080 -products 1000
//
//	curl localhost:8080/page?path=/product/p00042      # anonymous shell
//	curl localhost:8080/page?path=/product/p00042 -H 'If-None-Match: "v1"'
//	curl localhost:8080/sketch -o sketch.bin           # Δ-refreshed sketch
//	curl 'localhost:8080/blocks?names=cart,greeting&user=u000001'
//	curl -X POST 'localhost:8080/admin/write?product=p00042&price=9.99'
//	curl localhost:8080/stats
//
// Observability surface:
//
//	curl localhost:8080/healthz                        # liveness + deployment shape (JSON)
//	curl localhost:8080/metrics                        # Prometheus-style text exposition
//	curl 'localhost:8080/debug/traces?n=10'            # recent sampled request traces (JSON)
//	go tool pprof localhost:8080/debug/pprof/profile   # CPU profile (pprof is mounted)
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"speedkit"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/httpapi"
	"speedkit/internal/obs"
	"speedkit/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	products := flag.Int("products", 1000, "catalog size")
	delta := flag.Duration("delta", 60*time.Second, "staleness bound Δ")
	warm := flag.Bool("warm", false, "pre-fill every edge with the home and category pages")
	traceSample := flag.Int("trace-sample", 1, "trace 1 in N requests (0 disables tracing)")
	traceRing := flag.Int("trace-ring", 256, "how many recent traces /debug/traces retains")
	flag.Parse()

	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock:  clock.System, // real time for a real server
			Delta:  *delta,
			Tracer: obs.NewTracer(clock.System, *traceSample, *traceRing),
		},
		Products: *products,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	if *warm {
		paths := []string{"/"}
		for _, cat := range workload.Categories {
			paths = append(paths, workload.CategoryPath(cat))
		}
		warmed, skipped, err := svc.Warm(paths)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed %d paths (%d skipped)", warmed, len(skipped))
	}

	api := httpapi.New(svc, speedkit.NewUsers(1, 100))
	log.Printf("speedkit-server listening on %s (%d products, Δ=%v)", *addr, *products, *delta)
	log.Fatal(http.ListenAndServe(*addr, api.Handler()))
}
