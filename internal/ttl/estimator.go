// Package ttl implements per-resource adaptive TTL estimation. In an
// expiration-based caching architecture the TTL is a bet: too short and
// caches miss needlessly, too long and every write forces an invalidation
// and a window of potential staleness that the Cache Sketch must cover.
// The estimator resolves the bet per resource from its observed read and
// write rates.
//
// Model (documented reconstruction — see DESIGN.md): inter-write times are
// tracked with an exponentially weighted moving average, giving a write
// rate λw. Assuming exponentially distributed writes, choosing TTL t gives
// probability 1-exp(-λw·t) that a write lands inside the TTL (forcing an
// invalidation). The estimator picks t so that this probability stays at a
// budget p, i.e. t = -ln(1-p)/λw, and widens p for read-heavy resources —
// a resource read a thousand times per write amortizes an occasional
// invalidation over many cache hits, so it can afford a longer TTL.
package ttl

import (
	"math"
	"sync"
	"time"

	"speedkit/internal/clock"
)

// Config parameterizes an Estimator.
type Config struct {
	// MinTTL floors every estimate (default 10s). Very hot-written
	// resources still get a brief cacheability window; the sketch covers
	// the staleness risk.
	MinTTL time.Duration
	// MaxTTL caps every estimate (default 24h), bounding how long a
	// resource ID must be retained in the server sketch after a write.
	MaxTTL time.Duration
	// InvalidationBudget is the base probability p that a write occurs
	// within the TTL (default 0.2).
	InvalidationBudget float64
	// EWMAAlpha is the smoothing factor for inter-arrival gaps
	// (default 0.25; higher reacts faster).
	EWMAAlpha float64
	// Clock supplies time (default system clock).
	Clock clock.Clock
}

func (c *Config) applyDefaults() {
	if c.MinTTL <= 0 {
		c.MinTTL = 10 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 24 * time.Hour
	}
	if c.InvalidationBudget <= 0 || c.InvalidationBudget >= 1 {
		c.InvalidationBudget = 0.2
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.25
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
}

// Estimator tracks per-resource read/write behaviour and produces TTLs.
// Safe for concurrent use.
type Estimator struct {
	mu  sync.Mutex
	cfg Config
	res map[string]*resourceStats // guarded by mu
}

type resourceStats struct {
	lastRead     time.Time
	lastWrite    time.Time
	readGapEWMA  float64 // seconds
	writeGapEWMA float64 // seconds
	reads        uint64
	writes       uint64
}

// NewEstimator creates an estimator with the given configuration.
func NewEstimator(cfg Config) *Estimator {
	cfg.applyDefaults()
	return &Estimator{cfg: cfg, res: make(map[string]*resourceStats)}
}

// stats returns the per-resource record, creating it on first sight. The
// caller must hold e.mu.
func (e *Estimator) stats(id string) *resourceStats {
	s, ok := e.res[id]
	if !ok {
		s = &resourceStats{}
		e.res[id] = s
	}
	return s
}

func updateEWMA(ewma *float64, gap float64, alpha float64) {
	if *ewma == 0 {
		*ewma = gap
		return
	}
	*ewma = alpha*gap + (1-alpha)**ewma
}

// RecordRead notes a cache-miss read of the resource (reads served from a
// cache never reach the estimator, matching production where the origin
// only observes misses — the estimator corrects for this in ReadRate by
// treating miss rate as a lower bound).
func (e *Estimator) RecordRead(id string) {
	now := e.cfg.Clock.Now()
	e.mu.Lock()
	s := e.stats(id)
	if !s.lastRead.IsZero() {
		updateEWMA(&s.readGapEWMA, now.Sub(s.lastRead).Seconds(), e.cfg.EWMAAlpha)
	}
	s.lastRead = now
	s.reads++
	e.mu.Unlock()
}

// RecordWrite notes a write to the resource.
func (e *Estimator) RecordWrite(id string) {
	now := e.cfg.Clock.Now()
	e.mu.Lock()
	s := e.stats(id)
	if !s.lastWrite.IsZero() {
		updateEWMA(&s.writeGapEWMA, now.Sub(s.lastWrite).Seconds(), e.cfg.EWMAAlpha)
	}
	s.lastWrite = now
	s.writes++
	e.mu.Unlock()
}

// WriteRate returns the estimated writes/second for the resource (0 when
// fewer than two writes have been seen).
func (e *Estimator) WriteRate(id string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.res[id]
	if !ok || s.writeGapEWMA == 0 {
		return 0
	}
	return 1 / s.writeGapEWMA
}

// ReadRate returns the estimated miss-reads/second for the resource.
func (e *Estimator) ReadRate(id string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.res[id]
	if !ok || s.readGapEWMA == 0 {
		return 0
	}
	return 1 / s.readGapEWMA
}

// TTL estimates the TTL for the resource. Resources with no observed
// write history get MaxTTL: with nothing known about writes, the sketch —
// not a short TTL — is the staleness defence, and long TTLs maximize hit
// ratio.
func (e *Estimator) TTL(id string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.res[id]
	if !ok || s.writes < 2 || s.writeGapEWMA == 0 {
		return e.cfg.MaxTTL
	}
	lambdaW := 1 / s.writeGapEWMA
	budget := e.cfg.InvalidationBudget
	// Read-heavy resources stretch the budget: every doubling of the
	// read/write ratio relaxes p toward 0.8.
	if s.readGapEWMA > 0 {
		lambdaR := 1 / s.readGapEWMA
		ratio := lambdaR / lambdaW
		if ratio > 1 {
			budget *= 1 + math.Log2(ratio)/4
			if budget > 0.8 {
				budget = 0.8
			}
		}
	}
	t := -math.Log(1-budget) / lambdaW // seconds
	ttl := time.Duration(t * float64(time.Second))
	if ttl < e.cfg.MinTTL {
		ttl = e.cfg.MinTTL
	}
	if ttl > e.cfg.MaxTTL {
		ttl = e.cfg.MaxTTL
	}
	return ttl
}

// Snapshot reports the tracked state for a resource.
func (e *Estimator) Snapshot(id string) (reads, writes uint64, ttl time.Duration) {
	e.mu.Lock()
	s, ok := e.res[id]
	if ok {
		reads, writes = s.reads, s.writes
	}
	e.mu.Unlock()
	return reads, writes, e.TTL(id)
}

// Tracked returns how many resources have recorded activity.
func (e *Estimator) Tracked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.res)
}

// Forget drops a resource's history (e.g. after deletion).
func (e *Estimator) Forget(id string) {
	e.mu.Lock()
	delete(e.res, id)
	e.mu.Unlock()
}

// Static is a trivial TTLSource that always returns the same TTL — the
// baseline the paper's adaptive estimation is compared against.
type Static time.Duration

// TTL implements TTLSource.
func (s Static) TTL(string) time.Duration { return time.Duration(s) }

// TTLSource abstracts "give me the TTL for this resource" so that caches
// and benches can swap the adaptive estimator for static baselines.
type TTLSource interface {
	TTL(id string) time.Duration
}

var (
	_ TTLSource = (*Estimator)(nil)
	_ TTLSource = Static(0)
)
