package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/durable"
	"speedkit/internal/invalidb"
	"speedkit/internal/query"
	"speedkit/internal/storage"
	"speedkit/internal/ttl"
)

// ErrNodeDown is returned by every operation against a killed node until
// Recover brings it back. Callers treat it like any unavailable upstream:
// the operation did not happen and must not be acknowledged.
var ErrNodeDown = errors.New("cluster: node is down")

// NodeConfig parameterizes one cluster node.
type NodeConfig struct {
	// Member is the node's member name on the ring.
	Member string
	// Clock supplies time for the sketch, estimator, matcher, and WAL
	// (default system clock). A deployment's nodes share one clock source.
	Clock clock.Clock
	// SketchCapacity / SketchFPR size the node's shard sketch. Every node
	// of a cluster MUST use identical values — the merge layer rejects
	// frames whose Bloom parameters disagree.
	SketchCapacity uint64
	SketchFPR      float64
	// MatcherShards is the node-local InvaliDB shard count (default 4).
	MatcherShards int
	// DurableDir, when non-empty, gives the node its own WAL + snapshot
	// directory; a kill then recovers from disk with the standard
	// cold-start discipline. Empty runs the node memory-only.
	DurableDir string
	// SnapshotEvery, ColdWindow, and BlindHorizon pass through to the
	// node's durable.Config.
	SnapshotEvery int
	ColdWindow    time.Duration
	BlindHorizon  time.Duration
}

func (c *NodeConfig) applyDefaults() {
	if c.Clock == nil {
		c.Clock = clock.System
	}
	if c.SketchCapacity == 0 {
		c.SketchCapacity = 10000
	}
	if c.SketchFPR <= 0 || c.SketchFPR >= 1 {
		c.SketchFPR = 0.05
	}
	if c.MatcherShards <= 0 {
		c.MatcherShards = 4
	}
}

// NodeStats counts one node's activity.
type NodeStats struct {
	Writes, CachedReads, Events uint64
	Sketch                      cachesketch.ServerStats
	Matcher                     invalidb.Stats
	Recoveries                  uint64
	Down                        bool
}

// Node is one cluster member: a shard-local Cache Sketch server, InvaliDB
// matcher, TTL estimator, and (optionally) a durable WAL. Safe for
// concurrent use.
//
// Registrations routed to the node are remembered in regs so Recover can
// re-register them into the rebuilt matcher: continuous-query
// registrations are soft state owned by the routing layer (clients
// re-subscribe on reconnect in the production system), not WAL state.
type Node struct {
	cfg NodeConfig

	mu     sync.Mutex
	sketch *cachesketch.Server    // guarded by mu; swapped by Recover
	est    *ttl.Estimator         // guarded by mu; swapped by Recover
	engine *invalidb.Engine       // guarded by mu; swapped by Recover
	store  *durable.Store         // guarded by mu; nil when memory-only
	regs   map[string]query.Query // guarded by mu
	down   bool                   // guarded by mu
	stats  NodeStats              // guarded by mu
}

// NewNode creates (and, when durable, recovers) a node. A node over a
// directory with prior state comes back warm or cold exactly as a
// restarted single-process server would.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Member == "" {
		return nil, errors.New("cluster: node needs a name")
	}
	n := &Node{cfg: cfg, regs: make(map[string]query.Query)}
	if err := n.openLocked(); err != nil {
		return nil, err
	}
	return n, nil
}

// openLocked builds fresh protocol state and, when durable, recovers it
// from disk. Callers either own n exclusively (NewNode) or hold n.mu.
func (n *Node) openLocked() error {
	var journal cachesketch.Journal
	var store *durable.Store
	if n.cfg.DurableDir != "" {
		store = durable.New(durable.Config{
			Dir:           n.cfg.DurableDir,
			Clock:         n.cfg.Clock,
			SnapshotEvery: n.cfg.SnapshotEvery,
			ColdWindow:    n.cfg.ColdWindow,
			BlindHorizon:  n.cfg.BlindHorizon,
		})
		journal = store
	}
	sketch := cachesketch.NewServer(cachesketch.ServerConfig{
		Capacity:          n.cfg.SketchCapacity,
		FalsePositiveRate: n.cfg.SketchFPR,
		Clock:             n.cfg.Clock,
		Journal:           journal,
	})
	est := ttl.NewEstimator(ttl.Config{Clock: n.cfg.Clock})
	if store != nil {
		if _, err := store.Recover(sketch, est); err != nil {
			return fmt.Errorf("cluster: node %s recovery: %w", n.cfg.Member, err)
		}
	}
	engine := invalidb.New(invalidb.Config{Shards: n.cfg.MatcherShards, Clock: n.cfg.Clock})
	ids := make([]string, 0, len(n.regs))
	for id := range n.regs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		engine.Register(id, n.regs[id])
	}
	n.sketch, n.est, n.engine, n.store = sketch, est, engine, store
	n.down = false
	return nil
}

// Name returns the node's member name.
func (n *Node) Name() string { return n.cfg.Member }

// parts returns the live protocol components, or ErrNodeDown.
func (n *Node) parts() (*cachesketch.Server, *ttl.Estimator, *invalidb.Engine, *durable.Store, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, nil, nil, nil, ErrNodeDown
	}
	return n.sketch, n.est, n.engine, n.store, nil
}

// ReportWrites records a batch of writes against this node's shard:
// sketch residency, TTL estimator write signal, and WAL journaling all
// happen node-locally. Returns ErrNodeDown without side effects on a
// killed node.
func (n *Node) ReportWrites(keys []string) error {
	sketch, est, _, store, err := n.parts()
	if err != nil {
		return err
	}
	sketch.ReportWrites(keys)
	for _, key := range keys {
		est.RecordWrite(key)
	}
	n.mu.Lock()
	n.stats.Writes += uint64(len(keys))
	n.mu.Unlock()
	n.maybeSnapshot(store)
	return nil
}

// ReportCachedRead records that a cache somewhere holds a copy of key
// expiring at expiresAt, plus the estimator's read signal.
func (n *Node) ReportCachedRead(key string, expiresAt time.Time) error {
	sketch, est, _, store, err := n.parts()
	if err != nil {
		return err
	}
	sketch.ReportCachedRead(key, expiresAt)
	est.RecordRead(key)
	n.mu.Lock()
	n.stats.CachedReads++
	n.mu.Unlock()
	n.maybeSnapshot(store)
	return nil
}

// TTL returns the node's adaptive TTL estimate for key.
func (n *Node) TTL(key string) (time.Duration, error) {
	_, est, _, _, err := n.parts()
	if err != nil {
		return 0, err
	}
	return est.TTL(key), nil
}

// Register adds a continuous query to this node's matcher shard.
func (n *Node) Register(id string, q query.Query) error {
	_, _, engine, _, err := n.parts()
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.regs[id] = q
	n.mu.Unlock()
	engine.Register(id, q)
	return nil
}

// Unregister removes a registration, reporting whether it existed.
func (n *Node) Unregister(id string) (bool, error) {
	_, _, engine, _, err := n.parts()
	if err != nil {
		return false, err
	}
	n.mu.Lock()
	_, had := n.regs[id]
	delete(n.regs, id)
	n.mu.Unlock()
	return engine.Unregister(id) || had, nil
}

// ProcessEvent matches one change event against this node's registration
// shard — its slice of InvaliDB's two-dimensional partitioning. The
// router broadcasts every event to every node and unions the matches.
func (n *Node) ProcessEvent(ev storage.ChangeEvent) ([]invalidb.Invalidation, error) {
	_, _, engine, _, err := n.parts()
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.stats.Events++
	n.mu.Unlock()
	return engine.Process(ev), nil
}

// Delta publishes the node's current shard frame: its flattened sketch,
// content generation, and cold-start flag.
func (n *Node) Delta() (DeltaFrame, error) {
	sketch, _, _, _, err := n.parts()
	if err != nil {
		return DeltaFrame{}, err
	}
	snap := sketch.Snapshot()
	body, err := snap.Marshal()
	if err != nil {
		return DeltaFrame{}, err
	}
	return DeltaFrame{
		Node:       n.cfg.Member,
		Generation: snap.Generation,
		Sketch:     body,
		Cold:       sketch.ColdStartActive(),
	}, nil
}

// maybeSnapshot takes a durable snapshot when the journal suggests one.
// Runs outside the sketch mutex, as the durable contract requires.
func (n *Node) maybeSnapshot(store *durable.Store) {
	if store != nil && store.ShouldSnapshot() {
		// A failed snapshot is not fatal: the WAL still covers the state,
		// and a crashed store reports through Crashed().
		_ = store.Snapshot()
	}
}

// Kill simulates the node's process dying: the WAL closes WITHOUT the
// clean-shutdown marker (so the next recovery distrusts the tail and
// saturates) and every subsequent operation fails with ErrNodeDown until
// Recover.
func (n *Node) Kill() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil
	}
	n.down = true
	n.stats.Down = true
	if n.store != nil {
		return n.store.Kill()
	}
	return nil
}

// Recover restarts a killed node. With a durable dir this is the full
// crash-recovery path — snapshot load, WAL replay, cold-start saturation
// on the unclean tail — over fresh in-memory state; memory-only nodes
// come back empty but saturate their sketch for the cold window, the same
// zero-trusted-history discipline. Registrations are re-registered into
// the rebuilt matcher.
func (n *Node) Recover() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.down {
		return nil
	}
	if err := n.openLocked(); err != nil {
		return err
	}
	if n.store == nil {
		now := n.cfg.Clock.Now()
		cold := n.cfg.ColdWindow
		if cold <= 0 {
			cold = time.Minute
		}
		blind := n.cfg.BlindHorizon
		if blind <= 0 {
			blind = cold
		}
		n.sketch.ColdStart(now.Add(cold), now.Add(blind))
	}
	n.stats.Recoveries++
	n.stats.Down = false
	return nil
}

// Close shuts the node down cleanly (clean-shutdown marker, warm next
// recovery).
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
	n.stats.Down = true
	if n.store != nil {
		store := n.store
		n.store = nil
		return store.Close()
	}
	return nil
}

// Generation returns the node's shard sketch generation.
func (n *Node) Generation() (uint64, error) {
	sketch, _, _, _, err := n.parts()
	if err != nil {
		return 0, err
	}
	return sketch.Generation(), nil
}

// Stats returns a copy of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	sketch, engine := n.sketch, n.engine
	st := n.stats
	n.mu.Unlock()
	if !st.Down {
		st.Sketch = sketch.Stats()
		st.Matcher = engine.Stats()
	}
	return st
}
