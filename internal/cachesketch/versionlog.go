package cachesketch

import (
	"sort"
	"sync"
	"time"
)

// VersionLog records when each version of each resource became current.
// It is the measurement instrument behind the consistency experiments: a
// read that returned version v at time t is Δ-atomic iff v was the
// current version at some instant in [t−Δ, t]; its staleness is how long
// before t the version was superseded (zero if it was still current
// within the window's end).
// Judging a read needs history no older than the measurement horizon (the
// largest Δ or TTL under study), so stamps past the horizon are pruned on
// write instead of accumulating for the life of the process.
type VersionLog struct {
	mu       sync.RWMutex
	versions map[string][]versionStamp // guarded by mu
	horizon  time.Duration             // guarded by mu; 0 = keep everything
}

type versionStamp struct {
	version   uint64
	writtenAt time.Time
}

// NewVersionLog creates an empty log.
func NewVersionLog() *VersionLog {
	return &VersionLog{versions: make(map[string][]versionStamp)}
}

// SetHorizon bounds per-key history: stamps written more than h before
// the newest write are pruned, except the one straddling the boundary
// (the version current AT the horizon edge must stay resolvable, or
// CurrentVersion/Staleness would misjudge reads just inside it). Zero
// disables pruning. Judgements about reads older than the horizon are
// forfeited — they may return 0 ("cannot judge") where full history
// would have measured staleness.
func (l *VersionLog) SetHorizon(h time.Duration) {
	l.mu.Lock()
	if h >= 0 {
		l.horizon = h
	}
	l.mu.Unlock()
}

// RecordWrite notes that the resource's current version became v at time
// t. Versions must be recorded in increasing order per key.
func (l *VersionLog) RecordWrite(key string, v uint64, t time.Time) {
	l.mu.Lock()
	vs := append(l.versions[key], versionStamp{version: v, writtenAt: t})
	if l.horizon > 0 {
		// Drop stamps wholly before the horizon, keeping the last stamp at
		// or before the boundary: it is the version current at the edge.
		edge := t.Add(-l.horizon)
		cut := 0
		for cut < len(vs)-1 && !vs[cut+1].writtenAt.After(edge) {
			cut++
		}
		if cut > 0 {
			vs = vs[cut:]
		}
	}
	l.versions[key] = vs
	l.mu.Unlock()
}

// CurrentVersion returns the version current at time t (0 if the key has
// no version written at or before t).
func (l *VersionLog) CurrentVersion(key string, t time.Time) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	vs := l.versions[key]
	i := sort.Search(len(vs), func(i int) bool { return vs[i].writtenAt.After(t) })
	if i == 0 {
		return 0
	}
	return vs[i-1].version
}

// Staleness returns how stale a read of (key, servedVersion) at readTime
// was: zero if the served version was still current at readTime, else the
// duration between the superseding write and the read. Reads of versions
// never recorded return zero (the log cannot judge them).
func (l *VersionLog) Staleness(key string, servedVersion uint64, readTime time.Time) time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	vs := l.versions[key]
	// Find the served version's successor.
	idx := -1
	for i, s := range vs {
		if s.version == servedVersion {
			idx = i
			break
		}
	}
	if idx == -1 || idx+1 >= len(vs) {
		return 0 // unknown or still the newest version
	}
	supersededAt := vs[idx+1].writtenAt
	if supersededAt.After(readTime) {
		return 0 // superseded only after the read
	}
	return readTime.Sub(supersededAt)
}

// DeltaAtomic reports whether a read of (key, servedVersion) at readTime
// satisfies Δ-atomicity for the given delta.
func (l *VersionLog) DeltaAtomic(key string, servedVersion uint64, readTime time.Time, delta time.Duration) bool {
	return l.Staleness(key, servedVersion, readTime) <= delta
}

// Keys returns the number of tracked keys.
func (l *VersionLog) Keys() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.versions)
}

// Stamps returns how many version stamps are retained for key — the
// pruning tests' observability hook.
func (l *VersionLog) Stamps(key string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.versions[key])
}
