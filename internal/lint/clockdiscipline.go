package lint

import (
	"go/ast"
	"go/types"
)

// clockBanned are the package time functions that read or schedule against
// the wall clock. Timer/ticker constructors are included: anything built on
// them escapes the injected clock just as surely as a bare Now.
var clockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// ClockDiscipline bans direct wall-clock access outside internal/clock.
// Every TTL, Δ-bound, and experiment in the reproduction depends on time
// arriving through an injected clock.Clock; one stray time.Now in a hot
// path silently decouples a subsystem from simulated time and invalidates
// the Δ-atomicity measurements.
var ClockDiscipline = &Analyzer{
	Name: "clockdiscipline",
	Doc: "direct time.Now/Sleep/After/Since/timer calls are banned outside " +
		"internal/clock and _test.go files; inject a clock.Clock instead",
	Run: runClockDiscipline,
}

func runClockDiscipline(pass *Pass) {
	if pathHasSegment(pass.Path, "internal/clock") {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockBanned[fn.Name()] {
				return true
			}
			// Package-level functions only: t.After(u) on a time.Time value
			// is pure arithmetic, not a wall-clock read.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			// Uses, not calls: `now: time.Now` stored as a field default is
			// the same leak as calling it.
			pass.Reportf(sel.Pos(),
				"direct time.%s outside internal/clock; route through an injected clock.Clock",
				fn.Name())
			return true
		})
	}
}
