package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"
)

// FieldClass grades a struct field name for the taint analysis.
type FieldClass int

const (
	// FieldPII marks fields whose reads from identity-declared types
	// generate taint and whose writes are tracked field-sensitively.
	// Unknown names should classify here — the fail-closed direction.
	FieldPII FieldClass = iota
	// FieldClean marks fields explicitly classified anonymous or
	// pseudonymous: reading one does not inherit the holder's
	// identity-value taint (u.Region is shareable even though u is not).
	FieldClean
)

// TaintConfig is a taint-analysis client: what creates taint, what cuts
// it, and where tainted values must never arrive.
type TaintConfig struct {
	// ClassifyField grades a canonical (snake_case) field name. Nil
	// treats every field as FieldPII.
	ClassifyField func(canonical string) FieldClass
	// IsIdentityPkg reports whether the package path declares
	// identity-bearing types (session, gdpr). Any value of a type named
	// in such a package is itself tainted: serializing a whole
	// session.User carries its PII fields with it.
	IsIdentityPkg func(pkgPath string) bool
	// IsSanitizer reports whether calling fn cuts taint: its results are
	// clean regardless of its arguments (hashing, anonymization).
	IsSanitizer func(fn *types.Func) bool
	// Sinks catalogs the calls tainted values must not reach.
	Sinks []SinkSpec
}

func (c *TaintConfig) classify(canonical string) FieldClass {
	if c.ClassifyField == nil {
		return FieldPII
	}
	return c.ClassifyField(canonical)
}

// SinkSpec describes one sink: a callee plus which of its inputs are
// sensitive.
type SinkSpec struct {
	// Description names the sink in findings, e.g. "WAL append".
	Description string
	// Match reports whether fn is this sink. fn may be declared in any
	// package (module-local or imported, interface methods included).
	Match func(fn *types.Func) bool
	// Params lists the sensitive inputs as unified indices (receiver is
	// 0 when present, then declared parameters). Nil means every
	// declared parameter but NOT the receiver: the receiver is the sink
	// object itself (a tracer, a log), not data crossing the boundary.
	Params []int
	// CallerScoped, when non-nil, restricts the sink to calls made from
	// packages it accepts — used for universal callees like fmt.Printf
	// that are only a boundary violation inside shared infrastructure.
	CallerScoped func(callerPkgPath string) bool
}

// Finding is one tainted-value-reaches-sink report.
type Finding struct {
	// Pos is the call through which the taint enters the sink-reaching
	// path, in the function where the taint originates.
	Pos token.Pos
	// Pkg is the package the finding is reported in.
	Pkg *Package
	// Sink is the sink's description.
	Sink string
	// Sources describes the taint origins ("session.User.Email").
	Sources []string
	// Chain is the call path from the reported call to the sink; a
	// direct sink call has length 1.
	Chain []string
}

// maxSources bounds the origin descriptors carried per taint so chains
// through merge-heavy code cannot grow summaries without bound.
const maxSources = 4

// Taint is the abstract value of the analysis: which function inputs a
// value derives from, whether (and from what) it is PII-fresh, and —
// one level deep — per-PII-field taints for struct values.
type Taint struct {
	params uint64
	srcs   []string // sorted, deduped, ≤ maxSources; non-empty = fresh
	fields map[string]Taint
}

func (t Taint) fresh() bool { return len(t.srcs) > 0 }

func (t Taint) empty() bool { return t.params == 0 && len(t.srcs) == 0 && len(t.fields) == 0 }

// full flattens per-field taints into the base: the taint of using the
// value as a whole (passing the struct itself somewhere).
func (t Taint) full() Taint {
	out := Taint{params: t.params, srcs: t.srcs}
	for _, ft := range t.fields {
		out.params |= ft.params
		out.srcs = mergeSrcs(out.srcs, ft.srcs)
	}
	return out
}

// base strips field taints: the taint of the value ignoring what was
// stored in tracked PII fields.
func (t Taint) base() Taint { return Taint{params: t.params, srcs: t.srcs} }

// union merges two taints without mutating either.
func union(a, b Taint) Taint {
	if b.empty() {
		return a
	}
	if a.empty() {
		return b
	}
	out := Taint{params: a.params | b.params, srcs: mergeSrcs(a.srcs, b.srcs)}
	if len(a.fields) > 0 || len(b.fields) > 0 {
		out.fields = map[string]Taint{}
		for k, v := range a.fields {
			out.fields[k] = v.base()
		}
		for k, v := range b.fields {
			out.fields[k] = union(out.fields[k], v.base())
		}
	}
	return out
}

func mergeSrcs(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 && len(b) <= maxSources {
		return b
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	if len(out) > maxSources {
		out = out[:maxSources]
	}
	return out
}

// covers reports whether a already subsumes b — the fixpoint
// termination test. A taint whose source list is saturated counts as
// covering any further sources, which keeps the lattice finite.
func covers(a, b Taint) bool {
	af, bf := a.full(), b.full()
	if af.params&bf.params != bf.params {
		return false
	}
	if len(af.srcs) >= maxSources {
		return true
	}
	have := map[string]bool{}
	for _, s := range af.srcs {
		have[s] = true
	}
	for _, s := range bf.srcs {
		if !have[s] {
			return false
		}
	}
	return true
}

// sinkReach records that one function input reaches a sink, with the
// call chain discovered first (stable across fixpoint rounds).
type sinkReach struct {
	desc  string
	chain []string
}

// taintSummary is a function's transfer summary.
type taintSummary struct {
	// results holds, per result index, the taint of the returned value
	// expressed over the function's own inputs (param bits) plus any
	// fresh sources generated inside.
	results []Taint
	// paramSinks maps a unified input index to the sinks it reaches,
	// keyed by sink description.
	paramSinks map[int]map[string]sinkReach
}

// TaintAnalysis holds the interprocedural analysis state.
type TaintAnalysis struct {
	prog *Program
	cfg  TaintConfig
	sums map[*FuncInfo]*taintSummary
}

// NewTaintAnalysis computes summaries for every function bottom-up over
// the call graph, iterating each strongly connected component to a
// fixpoint.
func NewTaintAnalysis(prog *Program, cfg TaintConfig) *TaintAnalysis {
	ta := &TaintAnalysis{prog: prog, cfg: cfg, sums: map[*FuncInfo]*taintSummary{}}
	prog.BottomUp(func(fi *FuncInfo) bool {
		return ta.computeSummary(fi)
	})
	return ta
}

// Findings re-walks every function with the converged summaries and
// reports each place a fresh (PII-originated) taint enters a
// sink-reaching call. Output order follows package and source order.
func (ta *TaintAnalysis) Findings() []Finding {
	var out []Finding
	seen := map[string]bool{}
	for _, pkg := range ta.prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := ta.prog.Funcs[obj]
				if fi == nil {
					continue
				}
				fn := newFuncAnalysis(ta, fi)
				fn.solve()
				fn.walkBody(fn.fi.Decl.Body, func(f Finding) {
					key := fmt.Sprintf("%d|%s", f.Pos, f.Sink)
					if !seen[key] {
						seen[key] = true
						out = append(out, f)
					}
				})
			}
		}
	}
	return out
}

// computeSummary (re)derives fi's summary; reports whether it grew.
func (ta *TaintAnalysis) computeSummary(fi *FuncInfo) bool {
	fn := newFuncAnalysis(ta, fi)
	fn.solve()
	next := &taintSummary{results: fn.results, paramSinks: fn.sinks}
	prev := ta.sums[fi]
	ta.sums[fi] = next
	return prev == nil || summaryGrew(prev, next)
}

func summaryGrew(prev, next *taintSummary) bool {
	for i, t := range next.results {
		if i >= len(prev.results) || !covers(prev.results[i], t) {
			return true
		}
	}
	for p, sinks := range next.paramSinks {
		for desc := range sinks {
			if _, ok := prev.paramSinks[p][desc]; !ok {
				return true
			}
		}
	}
	return false
}

// funcAnalysis is the intraprocedural solver for one function: a
// flow-insensitive abstract interpretation iterated to a local fixpoint.
type funcAnalysis struct {
	ta   *TaintAnalysis
	fi   *FuncInfo
	info *types.Info

	vars    map[types.Object]Taint
	results []Taint
	sinks   map[int]map[string]sinkReach
	changed bool
}

func newFuncAnalysis(ta *TaintAnalysis, fi *FuncInfo) *funcAnalysis {
	fa := &funcAnalysis{
		ta:    ta,
		fi:    fi,
		info:  fi.Pkg.Info,
		vars:  map[types.Object]Taint{},
		sinks: map[int]map[string]sinkReach{},
	}
	for i, p := range paramVars(fi.Obj) {
		if i < 64 {
			fa.vars[p] = Taint{params: 1 << uint(i)}
		}
	}
	sig := fi.Obj.Type().(*types.Signature)
	fa.results = make([]Taint, sig.Results().Len())
	return fa
}

// solve iterates the body walk until the environment stops growing. The
// round cap is a safety net; the lattice is finite so real code
// converges in a handful of rounds.
func (fa *funcAnalysis) solve() {
	for round := 0; round < 32; round++ {
		fa.changed = false
		fa.walkBody(fa.fi.Decl.Body, nil)
		if !fa.changed {
			return
		}
	}
}

// bind unions t into the taint of obj. Numeric and boolean variables
// never bind taint, matching the eval-side cut.
func (fa *funcAnalysis) bind(obj types.Object, t Taint) {
	if obj == nil || t.empty() {
		return
	}
	if b, ok := obj.Type().Underlying().(*types.Basic); ok &&
		b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
		return
	}
	cur := fa.vars[obj]
	if covers(cur, t) && coversFields(cur, t) {
		return
	}
	fa.vars[obj] = union(cur, t)
	fa.changed = true
}

func coversFields(a, b Taint) bool {
	for k, v := range b.fields {
		if !covers(a.fields[k], v) {
			return false
		}
	}
	return true
}

// bindField unions t into one tracked PII field of obj.
func (fa *funcAnalysis) bindField(obj types.Object, field string, t Taint) {
	if obj == nil || t.empty() {
		return
	}
	cur := fa.vars[obj]
	if covers(cur.fields[field], t) {
		return
	}
	next := Taint{params: cur.params, srcs: cur.srcs, fields: map[string]Taint{}}
	for k, v := range cur.fields {
		next.fields[k] = v
	}
	next.fields[field] = union(next.fields[field], t.full())
	fa.vars[obj] = next
	fa.changed = true
}

// walkBody processes every statement and call; emit is nil while
// solving and set during the reporting pass.
func (fa *funcAnalysis) walkBody(body *ast.BlockStmt, emit func(Finding)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fa.assign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := fa.info.Defs[name]
				if len(n.Values) == len(n.Names) {
					fa.bind(obj, fa.eval(n.Values[i]))
				} else if len(n.Values) == 1 {
					fa.bind(obj, fa.evalCallResult(n.Values[0], i))
				}
			}
		case *ast.ReturnStmt:
			fa.ret(n)
		case *ast.RangeStmt:
			t := fa.eval(n.X).full()
			if n.Key != nil {
				fa.bind(fa.defOrUse(n.Key), t)
			}
			if n.Value != nil {
				fa.bind(fa.defOrUse(n.Value), t)
			}
		case *ast.TypeSwitchStmt:
			fa.typeSwitch(n)
		case *ast.SendStmt:
			if root := rootIdentObj(fa.info, n.Chan); root != nil {
				fa.bind(root, fa.eval(n.Value).full())
			}
		case *ast.CallExpr:
			// Single point where sinks and summaries are applied; every
			// call expression is visited here regardless of context.
			fa.call(n, emit)
		}
		return true
	})
}

func (fa *funcAnalysis) defOrUse(e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := fa.info.Defs[id]; obj != nil {
			return obj
		}
		return fa.info.Uses[id]
	}
	return nil
}

func (fa *funcAnalysis) assign(n *ast.AssignStmt) {
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		for i, lhs := range n.Lhs {
			fa.assignOne(lhs, fa.evalCallResult(n.Rhs[0], i))
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			fa.assignOne(lhs, fa.eval(n.Rhs[i]))
		}
	}
}

func (fa *funcAnalysis) assignOne(lhs ast.Expr, t Taint) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		fa.bind(fa.defOrUse(lhs), t)
	case *ast.SelectorExpr:
		root := rootIdentObj(fa.info, lhs.X)
		if root == nil {
			return
		}
		canon := CanonicalField(lhs.Sel.Name)
		if fa.isFieldSel(lhs) && fa.ta.cfg.classify(canon) == FieldPII {
			// Field-sensitive write: s.Email = v taints exactly the
			// tracked "email" slot of s.
			fa.bindField(root, canon, t)
			return
		}
		fa.bind(root, t.full())
	case *ast.IndexExpr:
		if root := rootIdentObj(fa.info, lhs.X); root != nil {
			fa.bind(root, t.full())
		}
	case *ast.StarExpr:
		if root := rootIdentObj(fa.info, lhs.X); root != nil {
			fa.bind(root, t.full())
		}
	}
}

func (fa *funcAnalysis) ret(n *ast.ReturnStmt) {
	if len(n.Results) == 0 {
		return
	}
	if len(n.Results) == 1 && len(fa.results) > 1 {
		for i := range fa.results {
			fa.mergeResult(i, fa.evalCallResult(n.Results[0], i))
		}
		return
	}
	for i, r := range n.Results {
		if i < len(fa.results) {
			fa.mergeResult(i, fa.eval(r).full())
		}
	}
}

func (fa *funcAnalysis) mergeResult(i int, t Taint) {
	sig := fa.fi.Obj.Type().(*types.Signature)
	if b, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok &&
		b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
		return
	}
	t = t.full()
	if !covers(fa.results[i], t) {
		fa.results[i] = union(fa.results[i], t)
		fa.changed = true
	}
}

func (fa *funcAnalysis) typeSwitch(n *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch a := n.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return
	}
	t := fa.eval(x).full()
	for _, stmt := range n.Body.List {
		if clause, ok := stmt.(*ast.CaseClause); ok {
			if obj := fa.info.Implicits[clause]; obj != nil {
				fa.bind(obj, t)
			}
		}
	}
}

// eval computes the taint of an expression. Expressions of numeric or
// boolean type are always clean: a duration, count, or flag cannot carry
// a PII string, and without this cut every struct that holds both
// identity and bookkeeping (a proxy with its sessions AND its latency
// counters) would taint all its arithmetic. The trade-off — numeric
// identifiers would slip through — is documented in the package doc;
// this repo's identifiers are strings.
func (fa *funcAnalysis) eval(e ast.Expr) Taint {
	t := fa.evalExpr(e)
	if !t.empty() && fa.numericOrBool(e) {
		return Taint{}
	}
	return t
}

func (fa *funcAnalysis) numericOrBool(e ast.Expr) bool {
	tv, ok := fa.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0
}

func (fa *funcAnalysis) evalExpr(e ast.Expr) Taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fa.evalIdent(e)
	case *ast.SelectorExpr:
		return fa.evalSelector(e)
	case *ast.CallExpr:
		return fa.evalCallResult(e, 0)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Comparisons yield a decision, not the data; implicit flows
			// are out of scope for this engine.
			return Taint{}
		}
		return union(fa.eval(e.X).full(), fa.eval(e.Y).full())
	case *ast.UnaryExpr:
		return fa.eval(e.X)
	case *ast.StarExpr:
		return fa.eval(e.X)
	case *ast.IndexExpr:
		return fa.eval(e.X).full()
	case *ast.SliceExpr:
		return fa.eval(e.X)
	case *ast.TypeAssertExpr:
		return fa.eval(e.X)
	case *ast.CompositeLit:
		return fa.evalCompositeLit(e)
	case *ast.KeyValueExpr:
		return fa.eval(e.Value)
	}
	return Taint{}
}

func (fa *funcAnalysis) evalIdent(e *ast.Ident) Taint {
	obj := fa.info.Uses[e]
	if obj == nil {
		obj = fa.info.Defs[e]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return Taint{}
	}
	t := fa.vars[v]
	if fa.isIdentityValue(v.Type()) {
		t = union(t, Taint{srcs: []string{typeDesc(v.Type()) + " value"}})
	}
	return t
}

// evalSelector handles x.F: PII-source genesis, per-field tracking, and
// classification-aware propagation of the holder's taint.
func (fa *funcAnalysis) evalSelector(sel *ast.SelectorExpr) Taint {
	obj := fa.info.Uses[sel.Sel]
	if _, isFunc := obj.(*types.Func); isFunc {
		// Method value or qualified function: function values carry no
		// data taint (their calls are handled at the call site).
		return Taint{}
	}
	if !fa.isFieldSel(sel) {
		// Qualified package variable.
		if v, ok := obj.(*types.Var); ok && fa.isIdentityValue(v.Type()) {
			return Taint{srcs: []string{typeDesc(v.Type()) + " value"}}
		}
		return Taint{}
	}

	canon := CanonicalField(sel.Sel.Name)
	base := fa.eval(sel.X)
	holder := fa.selectionRecv(sel)

	var t Taint
	if fa.ta.cfg.classify(canon) == FieldPII {
		t = base.base()
		t = union(t, base.fields[canon])
		if holder != nil && fa.isIdentityValue(holder) {
			t = union(t, Taint{srcs: []string{typeDesc(holder) + "." + sel.Sel.Name}})
		}
	} else {
		// Explicitly anonymous/pseudonymous field: it does not inherit
		// the "whole value is identity" genesis of its holder (u.Region
		// is shareable even though u is not), but taint that was
		// *assigned* into the struct still propagates.
		t = base.base()
		if holder != nil {
			t.srcs = dropSource(t.srcs, typeDesc(holder)+" value")
		}
	}
	if v, ok := obj.(*types.Var); ok && fa.isIdentityValue(v.Type()) {
		t = union(t, Taint{srcs: []string{typeDesc(v.Type()) + " value"}})
	}
	return t
}

// dropSource removes one descriptor from a source list.
func dropSource(srcs []string, drop string) []string {
	var out []string
	for _, s := range srcs {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

func (fa *funcAnalysis) isFieldSel(sel *ast.SelectorExpr) bool {
	s, ok := fa.info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// selectionRecv returns the type the field was selected from, or nil.
func (fa *funcAnalysis) selectionRecv(sel *ast.SelectorExpr) types.Type {
	if s, ok := fa.info.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}

func (fa *funcAnalysis) evalCompositeLit(lit *ast.CompositeLit) Taint {
	var t Taint
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				canon := CanonicalField(key.Name)
				if _, isField := fa.info.Uses[key].(*types.Var); (isField || fa.info.Defs[key] == nil && fa.info.Uses[key] == nil) && fa.ta.cfg.classify(canon) == FieldPII {
					// Struct literal keyed by a tracked PII field: keep
					// it field-sensitive like an assignment would.
					vt := fa.eval(kv.Value).full()
					if !vt.empty() {
						if t.fields == nil {
							t.fields = map[string]Taint{}
						}
						t.fields[canon] = union(t.fields[canon], vt)
					}
					continue
				}
			}
			t = union(t, fa.eval(kv.Value).full().base())
			continue
		}
		t = union(t, fa.eval(el).full().base())
	}
	return t
}

// evalCallResult evaluates a call expression's i-th result (or, for
// non-call expressions, the expression itself when i == 0).
func (fa *funcAnalysis) evalCallResult(e ast.Expr, i int) Taint {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		if i == 0 {
			return fa.eval(e)
		}
		return Taint{}
	}
	perIdx, def := fa.call(call, nil)
	if t, ok := perIdx[i]; ok {
		return t
	}
	return def
}

// call processes one call expression: sink checks, summary application,
// and result taint. It returns per-result taints plus a default for
// indices not present (used by the conservative unknown-callee rule).
// The emit hook is non-nil only during the reporting pass.
func (fa *funcAnalysis) call(call *ast.CallExpr, emit func(Finding)) (perIdx map[int]Taint, def Taint) {
	info := fa.info

	// Type conversion: T(x) propagates x.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return map[int]Taint{0: fa.eval(call.Args[0])}, Taint{}
		}
		return nil, Taint{}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "len", "cap", "make", "new", "delete", "panic", "print", "println", "clear", "close", "recover":
				return nil, Taint{}
			default: // append, copy, min, max, ...
				var t Taint
				for _, a := range call.Args {
					t = union(t, fa.eval(a).full())
				}
				return map[int]Taint{0: t}, Taint{}
			}
		}
	}

	fn := calleeFunc(info, call)

	// Sanitizers cut taint entirely.
	if fn != nil && fa.ta.cfg.IsSanitizer != nil && fa.ta.cfg.IsSanitizer(fn) {
		return nil, Taint{}
	}

	inputs := callInputs(info, call, fn)

	// Sink catalog (matches both concrete and interface callees).
	if fn != nil {
		for si := range fa.ta.cfg.Sinks {
			spec := &fa.ta.cfg.Sinks[si]
			if !spec.Match(fn) {
				continue
			}
			if spec.CallerScoped != nil && !spec.CallerScoped(fa.fi.Pkg.Path) {
				continue
			}
			fa.applySink(call, fn, spec, inputs, emit)
		}
	}

	// Module-local callee with a computed summary.
	if fi := fa.ta.prog.Funcs[fn]; fi != nil {
		sum := fa.ta.sums[fi]
		if sum == nil {
			// In-SCC callee not yet summarized this round; the fixpoint
			// loop re-runs until stable.
			return nil, Taint{}
		}
		fa.applyParamSinks(call, fi, sum, inputs, emit)
		perIdx = map[int]Taint{}
		for ri, rt := range sum.results {
			perIdx[ri] = fa.instantiate(rt, inputs)
		}
		return perIdx, Taint{}
	}

	// Unknown callee (stdlib, interface dispatch, function value):
	// conservative — taint of every input flows to every result.
	var t Taint
	for _, in := range inputs {
		if in != nil {
			t = union(t, fa.eval(in).full())
		}
	}
	return nil, t
}

// instantiate maps a summary taint (over callee inputs) to caller-side
// taint at a call site.
func (fa *funcAnalysis) instantiate(t Taint, inputs []ast.Expr) Taint {
	out := Taint{srcs: t.srcs}
	for i, in := range inputs {
		if i < 64 && t.params&(1<<uint(i)) != 0 && in != nil {
			out = union(out, fa.eval(in).full())
		}
	}
	return out
}

// applySink records (and during reporting, emits) taint flowing into a
// catalog sink call.
func (fa *funcAnalysis) applySink(call *ast.CallExpr, fn *types.Func, spec *SinkSpec, inputs []ast.Expr, emit func(Finding)) {
	indices := spec.Params
	if indices == nil {
		start := 0
		if recvOf(fn) != nil {
			start = 1
		}
		for i := start; i < len(inputs); i++ {
			indices = append(indices, i)
		}
	}
	for _, idx := range indices {
		if idx >= len(inputs) || inputs[idx] == nil {
			continue
		}
		t := fa.eval(inputs[idx]).full()
		if t.empty() {
			continue
		}
		chain := []string{funcDesc(fn)}
		fa.recordParamSinks(t, spec.Description, chain)
		if emit != nil && t.fresh() {
			emit(Finding{
				Pos:     call.Pos(),
				Pkg:     fa.fi.Pkg,
				Sink:    spec.Description,
				Sources: t.srcs,
				Chain:   chain,
			})
		}
	}
}

// applyParamSinks propagates a callee's param→sink reaches to this call
// site.
func (fa *funcAnalysis) applyParamSinks(call *ast.CallExpr, callee *FuncInfo, sum *taintSummary, inputs []ast.Expr, emit func(Finding)) {
	if len(sum.paramSinks) == 0 {
		return
	}
	var params []int
	for p := range sum.paramSinks {
		params = append(params, p)
	}
	sort.Ints(params)
	for _, p := range params {
		if p >= len(inputs) || inputs[p] == nil {
			continue
		}
		t := fa.eval(inputs[p]).full()
		if t.empty() {
			continue
		}
		var descs []string
		for desc := range sum.paramSinks[p] {
			descs = append(descs, desc)
		}
		sort.Strings(descs)
		for _, desc := range descs {
			reach := sum.paramSinks[p][desc]
			chain := append([]string{callee.Name()}, reach.chain...)
			fa.recordParamSinks(t, desc, chain)
			if emit != nil && t.fresh() {
				emit(Finding{
					Pos:     call.Pos(),
					Pkg:     fa.fi.Pkg,
					Sink:    desc,
					Sources: t.srcs,
					Chain:   chain,
				})
			}
		}
	}
}

// recordParamSinks extends this function's own summary for every input
// whose taint reaches the sink.
func (fa *funcAnalysis) recordParamSinks(t Taint, desc string, chain []string) {
	for p := 0; p < 64; p++ {
		if t.params&(1<<uint(p)) == 0 {
			continue
		}
		m := fa.sinks[p]
		if m == nil {
			m = map[string]sinkReach{}
			fa.sinks[p] = m
		}
		if _, ok := m[desc]; !ok {
			m[desc] = sinkReach{desc: desc, chain: chain}
			fa.changed = true
		}
	}
}

// callInputs returns the unified input expressions of a call: receiver
// (nil when implicit) followed by arguments. For dynamic method calls
// (fn == nil but the syntax is a method-value selection) the receiver is
// still included so its taint participates in the conservative rule.
func callInputs(info *types.Info, call *ast.CallExpr, fn *types.Func) []ast.Expr {
	var inputs []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			inputs = append(inputs, sel.X)
		} else if fn != nil && recvOf(fn) != nil {
			inputs = append(inputs, nil)
		}
	} else if fn != nil && recvOf(fn) != nil {
		inputs = append(inputs, nil)
	}
	for _, a := range call.Args {
		inputs = append(inputs, a)
	}
	return inputs
}

// isIdentityValue reports whether t (unwrapped of pointers, slices,
// arrays, maps, channels) is a named type declared in an identity
// package.
func (fa *funcAnalysis) isIdentityValue(t types.Type) bool {
	if fa.ta.cfg.IsIdentityPkg == nil {
		return false
	}
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil && fa.ta.cfg.IsIdentityPkg(named.Obj().Pkg().Path())
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeDesc renders a type as "pkg.Name" for findings.
func typeDesc(t types.Type) string {
	named := namedOf(t)
	if named == nil {
		return t.String()
	}
	pkg := ""
	if named.Obj().Pkg() != nil {
		parts := strings.Split(named.Obj().Pkg().Path(), "/")
		pkg = parts[len(parts)-1] + "."
	}
	return pkg + named.Obj().Name()
}

// funcDesc renders a callee as "pkg.Func" or "pkg.(*T).Method".
func funcDesc(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		pkg = parts[len(parts)-1] + "."
	}
	if recv := recvOf(fn); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + ptr + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// rootIdentObj resolves the base identifier object of an lvalue-ish
// expression: s in s.F, s[i], *s, (&s). Nil when the base is not a
// simple identifier.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CanonicalField converts a Go field name to the snake_case form the
// gdpr classification uses: "UserID" → "user_id", "Email" → "email".
func CanonicalField(name string) string {
	var b strings.Builder
	runes := []rune(name)
	for i, r := range runes {
		if unicode.IsUpper(r) {
			prevLower := i > 0 && !unicode.IsUpper(runes[i-1])
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
