package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/httpapi"
	"speedkit/internal/invalidb"
	"speedkit/internal/query"
	"speedkit/internal/storage"
)

// testNodes builds n durable nodes over per-node temp dirs sharing clk.
func testNodes(t *testing.T, clk clock.Clock, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(NodeConfig{
			Member:         fmt.Sprintf("node-%d", i),
			Clock:          clk,
			SketchCapacity: 512,
			DurableDir:     t.TempDir(),
			ColdWindow:     time.Minute,
			BlindHorizon:   time.Hour,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = node
	}
	return nodes
}

func testCluster(t *testing.T, clk clock.Clock, nodes []*Node) *Cluster {
	t.Helper()
	c, err := New(Config{
		Seed:        42,
		Clock:       clk,
		Capacity:    512,
		MaxFrameAge: time.Minute,
	}, nodes)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return c
}

// TestClusterRoutedWriteReachesMergedSketch: a write routed to its shard
// owner must appear in the merged client sketch after one exchange round.
func TestClusterRoutedWriteReachesMergedSketch(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	nodes := testNodes(t, clk, 3)
	c := testCluster(t, clk, nodes)
	defer c.Close()

	// A write only enters the sketch while a cached copy may be live.
	if err := c.ReportCachedRead("product-1", clk.Now().Add(time.Hour)); err != nil {
		t.Fatalf("read report: %v", err)
	}
	if err := c.ReportWrite("product-1"); err != nil {
		t.Fatalf("write report: %v", err)
	}
	if err := c.SyncDeltas(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	snap := c.Snapshot()
	if !snap.MightBeStale("product-1") {
		t.Fatal("routed write missing from merged sketch")
	}
	if snap.MightBeStale("product-unrelated-7") && c.Stats().Merger.SaturatedServes > 0 &&
		c.Stats().Merger.MergedServes == 0 {
		t.Fatal("merge still saturated after a full exchange round")
	}
	// Verify the write landed on exactly the ring owner.
	owner := c.Ring().Owner("product-1")
	for _, n := range nodes {
		st := n.Stats()
		if n.Name() == owner && st.Writes != 1 {
			t.Errorf("owner %s recorded %d writes, want 1", n.Name(), st.Writes)
		}
		if n.Name() != owner && st.Writes != 0 {
			t.Errorf("non-owner %s recorded %d writes", n.Name(), st.Writes)
		}
	}
}

// TestClusterKillDegradesAndRecoveryRestores drives the full node-kill
// cycle: kill → routed ops to the dead shard fail and the merge degrades
// to saturated; recover → the node comes back cold (saturated shard) and
// the merge completes again, still conservative until the cold window
// retires.
func TestClusterKillDegradesAndRecoveryRestores(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	nodes := testNodes(t, clk, 3)
	c := testCluster(t, clk, nodes)
	defer c.Close()

	_ = c.ReportCachedRead("key-a", clk.Now().Add(time.Hour))
	_ = c.ReportWrite("key-a")
	if err := c.SyncDeltas(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if c.Snapshot().MightBeStale("fresh-unwritten") {
		t.Fatal("healthy cluster serving saturated sketch")
	}

	victimName := c.Ring().Owner("key-a")
	victim := c.Node(victimName)
	if err := victim.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := c.ReportWrite("key-a"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("write to dead shard: err = %v, want ErrNodeDown", err)
	}
	// The victim's frame ages out; the merge must degrade, never serve a
	// merge missing the dead shard.
	clk.Advance(2 * time.Minute)
	_ = c.SyncDeltas()
	if !c.Snapshot().MightBeStale("any-key-at-all") {
		t.Fatal("merge not saturated while a member is dead past MaxFrameAge")
	}

	if err := victim.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	st := victim.Stats()
	if st.Recoveries != 1 || st.Down {
		t.Fatalf("recovery stats: %+v", st)
	}
	if err := c.SyncDeltas(); err != nil {
		t.Fatalf("post-recovery sync: %v", err)
	}
	// Complete again, but the recovered shard publishes a cold (saturated)
	// frame, so the union stays all-stale — conservative, exactly right.
	if !c.Snapshot().MightBeStale("any-key-at-all") {
		t.Fatal("cold recovered shard did not keep the merge conservative")
	}
	// Once the cold window retires the merge clears.
	clk.Advance(2 * time.Minute)
	if err := c.SyncDeltas(); err != nil {
		t.Fatalf("warm sync: %v", err)
	}
	if c.Snapshot().MightBeStale("fresh-unwritten-2") {
		t.Fatal("merge still saturated after cold window retired")
	}
	if err := c.ReportWrite("key-a"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestClusterGenerationNeverRegressesAcrossKill pins the watermark rule
// under the crash matrix: a kill + recovery must never hand clients a
// lower merged generation.
func TestClusterGenerationNeverRegressesAcrossKill(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	nodes := testNodes(t, clk, 2)
	c := testCluster(t, clk, nodes)
	defer c.Close()

	last := uint64(0)
	step := func(stage string) {
		t.Helper()
		g := c.Snapshot().Generation
		if g < last {
			t.Fatalf("%s: merged generation regressed %d -> %d", stage, last, g)
		}
		last = g
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		_ = c.ReportCachedRead(key, clk.Now().Add(time.Hour))
		_ = c.ReportWrite(key)
		clk.Advance(time.Second)
		_ = c.SyncDeltas()
		step(fmt.Sprintf("write %d", i))
	}
	victim := c.Node("node-0")
	_ = victim.Kill()
	clk.Advance(2 * time.Minute)
	_ = c.SyncDeltas()
	step("dead member aged out")
	if err := victim.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	_ = c.SyncDeltas()
	step("recovered")
	clk.Advance(2 * time.Minute)
	_ = c.SyncDeltas()
	step("cold window retired")
}

// TestClusterEventBroadcastMatchesOracle: the cluster's two-dimensional
// partitioning (registrations by ID, events broadcast) must produce
// exactly the matches of one unsharded engine over the same
// registrations.
func TestClusterEventBroadcastMatchesOracle(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	nodes := testNodes(t, clk, 4)
	c := testCluster(t, clk, nodes)
	defer c.Close()

	oracle := invalidb.New(invalidb.Config{Clock: clk})
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("q:products?cat=%d", i%8)
		q := query.New("products", query.Eq("category", fmt.Sprintf("cat-%d", i%8)))
		if err := c.Register(id, q); err != nil {
			t.Fatalf("register: %v", err)
		}
		oracle.Register(id, q)
	}
	// Registrations must actually be spread across members.
	owners := map[string]bool{}
	for i := 0; i < 40; i++ {
		owners[c.Ring().Owner(fmt.Sprintf("q:products?cat=%d", i%8))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("all registrations landed on %d member(s)", len(owners))
	}

	for i := 0; i < 16; i++ {
		ev := storage.ChangeEvent{
			Collection: "products",
			ID:         fmt.Sprintf("p-%d", i),
			Kind:       storage.ChangeUpdate,
			Before:     map[string]any{"category": fmt.Sprintf("cat-%d", i%8)},
			After:      map[string]any{"category": fmt.Sprintf("cat-%d", (i+1)%8)},
			Time:       clk.Now(),
		}
		got, err := c.ProcessEvent(ev)
		if err != nil {
			t.Fatalf("process: %v", err)
		}
		want := oracle.Process(ev)
		gotIDs := make([]string, len(got))
		for j, inv := range got {
			gotIDs[j] = inv.RegistrationID + "/" + inv.Kind.String()
		}
		wantIDs := make([]string, len(want))
		for j, inv := range want {
			wantIDs[j] = inv.RegistrationID + "/" + inv.Kind.String()
		}
		sort.Strings(gotIDs)
		sort.Strings(wantIDs)
		if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
			t.Fatalf("event %d: cluster matched %v, oracle %v", i, gotIDs, wantIDs)
		}
	}
}

// TestNodeHTTPSurface drives a node through its /v1/cluster endpoints
// with a Peer over real loopback HTTP: report → delta → fold must carry a
// key into the merged sketch, and the ring endpoint must describe the
// deployment.
func TestNodeHTTPSurface(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	node, err := NewNode(NodeConfig{Member: "n0", Clock: clk, SketchCapacity: 512})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	ring := NewRing(1, 0, []string{"n0"})
	srv := httptest.NewServer(NodeHandler(node, ring))
	defer srv.Close()

	peer := NewPeer("n0", srv.URL, srv.Client())
	if err := peer.ReportCachedRead("res-1", clk.Now().Add(time.Hour)); err != nil {
		t.Fatalf("peer read report: %v", err)
	}
	if err := peer.ReportWrites([]string{"res-1"}); err != nil {
		t.Fatalf("peer write report: %v", err)
	}
	frame, err := peer.Delta()
	if err != nil {
		t.Fatalf("peer delta: %v", err)
	}
	if frame.Node != "n0" {
		t.Fatalf("frame.Node = %q", frame.Node)
	}
	mg := NewMerger(MergerConfig{Members: []string{"n0"}, Capacity: 512, Clock: clk})
	if err := mg.Fold(frame); err != nil {
		t.Fatalf("fold: %v", err)
	}
	if !mg.Snapshot().MightBeStale("res-1") {
		t.Fatal("write reported over HTTP missing from merged sketch")
	}

	info, err := peer.Ring()
	if err != nil {
		t.Fatalf("peer ring: %v", err)
	}
	if info.Seed != 1 || len(info.Members) != 1 || info.Members[0] != "n0" {
		t.Fatalf("ring info = %+v", info)
	}
}

// TestNodeHTTPErrorEnvelopeCompatible pins the cluster endpoints' error
// envelope wire-compatible with the /v1 contract: httpapi's exported
// ErrorBody must decode every cluster error, codes included.
func TestNodeHTTPErrorEnvelopeCompatible(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	node, err := NewNode(NodeConfig{Member: "n0", Clock: clk})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	ring := NewRing(1, 0, []string{"n0"})
	srv := httptest.NewServer(NodeHandler(node, ring))
	defer srv.Close()

	check := func(path, method string, wantStatus int, wantCode string) {
		t.Helper()
		req, _ := http.NewRequest(method, srv.URL+path, nil)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
		}
		var eb httpapi.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s %s: envelope not decodable with httpapi.ErrorBody: %v", method, path, err)
		}
		if eb.Error.Code != wantCode {
			t.Fatalf("%s %s: code %q, want %q", method, path, eb.Error.Code, wantCode)
		}
		if eb.Error.Message == "" {
			t.Fatalf("%s %s: empty message", method, path)
		}
	}
	check("/v1/cluster/nope", http.MethodGet, http.StatusNotFound, httpapi.CodeNotFound)
	check("/v1/cluster/delta", http.MethodPost, http.StatusMethodNotAllowed, httpapi.CodeBadRequest)

	_ = node.Kill()
	check("/v1/cluster/delta", http.MethodGet, http.StatusServiceUnavailable, httpapi.CodeUnavailable)

	// The peer must map the 503 envelope back onto ErrNodeDown.
	peer := NewPeer("n0", srv.URL, srv.Client())
	if _, err := peer.Delta(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("peer against killed node: err = %v, want ErrNodeDown", err)
	}
}

// TestClusterDeltaOverHTTPSources swaps every in-process delta source for
// a Peer and checks a full exchange round over real loopback HTTP.
func TestClusterDeltaOverHTTPSources(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	nodes := testNodes(t, clk, 2)
	c := testCluster(t, clk, nodes)
	defer c.Close()

	for _, n := range nodes {
		srv := httptest.NewServer(NodeHandler(n, c.Ring()))
		defer srv.Close()
		if err := c.UseDeltaSource(NewPeer(n.Name(), srv.URL, srv.Client())); err != nil {
			t.Fatalf("use source: %v", err)
		}
	}
	_ = c.ReportCachedRead("k", clk.Now().Add(time.Hour))
	_ = c.ReportWrite("k")
	if err := c.SyncDeltas(); err != nil {
		t.Fatalf("sync over HTTP: %v", err)
	}
	if !c.Snapshot().MightBeStale("k") {
		t.Fatal("write missing from merge after HTTP exchange")
	}
	if c.Snapshot().MightBeStale("unwritten") {
		t.Fatal("merge saturated after complete HTTP exchange")
	}
}

// TestNodeDurableKillRecoversState: state journaled before a kill must
// survive into the recovered node (generation floor included), with the
// recovered sketch cold-started.
func TestNodeDurableKillRecoversState(t *testing.T) {
	clk := clock.NewSimulated(epoch)
	dir := t.TempDir()
	node, err := NewNode(NodeConfig{
		Member:         "n0",
		Clock:          clk,
		SketchCapacity: 512,
		DurableDir:     dir,
		ColdWindow:     time.Minute,
		BlindHorizon:   time.Hour,
	})
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	_ = node.ReportCachedRead("res-1", clk.Now().Add(time.Hour))
	_ = node.ReportWrites([]string{"res-1"})
	preGen, err := node.Generation()
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	// Publish a frame so the generation is journaled before the kill.
	if _, err := node.Delta(); err != nil {
		t.Fatalf("delta: %v", err)
	}
	if err := node.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if _, err := node.Delta(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("delta on dead node: %v", err)
	}
	if err := node.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	frame, err := node.Delta()
	if err != nil {
		t.Fatalf("post-recovery delta: %v", err)
	}
	if !frame.Cold {
		t.Fatal("unclean recovery did not cold-start the sketch")
	}
	if frame.Generation < preGen {
		t.Fatalf("recovered generation %d below pre-kill %d", frame.Generation, preGen)
	}
}
