package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speedkit/internal/clock"
)

// TestStoreGetZeroAlloc pins the allocation-free Get hit path for both
// store flavors: the lock-free mirror of an unbounded store and the
// locked LRU path of a bounded one.
func TestStoreGetZeroAlloc(t *testing.T) {
	clk := clock.NewSimulated(time.Time{})
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"unbounded-lockfree", Config{Clock: clk}},
		{"bounded-locked", Config{MaxItems: 16, Clock: clk}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			s.Put(TTLEntry(clk, "/a", []byte("body"), 1, time.Hour))
			var ok bool
			if n := testing.AllocsPerRun(1000, func() {
				_, ok = s.Get("/a")
			}); n != 0 {
				t.Fatalf("Get (hit) allocates %.1f per run, want 0", n)
			}
			if !ok {
				t.Fatal("hit path missed")
			}
			if n := testing.AllocsPerRun(1000, func() {
				_, ok = s.Get("/absent")
			}); n != 0 {
				t.Fatalf("Get (miss) allocates %.1f per run, want 0", n)
			}
		})
	}
}

// TestStoreStatsMonotoneUnderConcurrency samples Stats while readers and
// writers hammer the store and checks the documented guarantee: because
// every per-shard snapshot is taken under that shard's lock (and the
// lock-free read counters are monotone atomics), Hits, Misses, and their
// sum must never move backwards between successive Stats calls.
func TestStoreStatsMonotoneUnderConcurrency(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"unbounded-lockfree", Config{}},
		{"sharded-bounded", Config{MaxItems: 1024, Shards: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			keys := make([]string, 256)
			for i := range keys {
				keys[i] = fmt.Sprintf("/k/%d", i)
				s.Put(TTLEntry(s.clk, keys[i], nil, 1, time.Hour))
			}
			var wg sync.WaitGroup
			var running atomic.Int32
			const opsPerWorker = 4000
			for w := 0; w < 2; w++ {
				wg.Add(1)
				running.Add(1)
				go func(seed int) {
					defer wg.Done()
					defer running.Add(-1)
					for i := seed; i < seed+opsPerWorker; i++ {
						s.Get(keys[i%len(keys)])
						s.Get("/missing") // exercise the miss counter too
						if i%17 == 0 {
							s.Put(TTLEntry(s.clk, keys[i%len(keys)], nil, 2, time.Hour))
						}
					}
				}(w * 13)
			}
			// Sample while the workers run; Gosched keeps the single-P case
			// from starving the workers behind this loop.
			var prev Stats
			for running.Load() > 0 {
				st := s.Stats()
				if st.Hits < prev.Hits || st.Misses < prev.Misses {
					t.Errorf("counter regressed: %+v -> %+v", prev, st)
					break
				}
				if st.Hits+st.Misses < prev.Hits+prev.Misses {
					t.Errorf("hits+misses regressed: %+v -> %+v", prev, st)
					break
				}
				prev = st
				runtime.Gosched()
			}
			wg.Wait()
			if final := s.Stats(); final.Hits == 0 || final.Misses == 0 {
				t.Fatalf("load generated no traffic: %+v", final)
			}
		})
	}
}
