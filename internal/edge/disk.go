package edge

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/wal"
)

// Disk tier layout, reusing the durability subsystem's discipline:
//
//	<dir>/wal/            segmented WAL of fill/purge records
//	<dir>/edge-<lsn>.snap crash-safe snapshots (temp file, fsync, rename)
//
// Every committed cache entry and purge is journaled; a snapshot folds
// the live entry set into one file named by the WAL position it covers,
// after which older segments are pruned. Recovery loads the newest
// valid snapshot and replays the WAL above it. A torn tail (the
// expected kill signature) is truncated by the WAL itself; mid-log
// corruption (wal.ErrCorrupt) answers with a full wipe and cold start —
// an edge cache is disposable state, so losing it costs misses, never
// correctness.
//
// The records hold resource paths, body bytes the origin already serves
// publicly, versions, and expirations — anonymous coherence state only.
// The PII byte-scan in the smoke gate asserts exactly that.

const (
	recFill  byte = 1
	recPurge byte = 2

	snapMagic   = "SKEC"
	snapVersion = byte(1)
	snapSuffix  = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecoveryInfo summarizes what a disk-tier open recovered.
type RecoveryInfo struct {
	// Entries live in the cache after recovery.
	Entries int
	// SnapshotLSN is the WAL position the loaded snapshot covered (0:
	// no usable snapshot).
	SnapshotLSN uint64
	// Replayed counts WAL records applied above the snapshot.
	Replayed int
	// ColdStart reports a mid-log-corruption wipe: the directory was
	// cleared and the cache starts empty.
	ColdStart bool
}

type diskTier struct {
	dir string
	log *wal.Log
	clk clock.Clock
	m   *metrics
	inj *faults.Injector
	mem *cache.Store

	// mu serializes appends and snapshots: handlers journal fills and
	// purges concurrently, and two overlapping snapshot() runs would
	// interleave bytes in the same temp file before rename. wal.Log is
	// internally locked, but dead/sinceSnap/snapLSN are ours to guard.
	mu   sync.Mutex
	dead bool

	// every is the journal-records-per-snapshot cadence; sinceSnap
	// counts records appended since the last one.
	every     int
	sinceSnap int
	snapLSN   uint64
}

// openDisk opens (or recovers) the disk tier rooted at dir, loading
// surviving entries into mem.
func openDisk(dir string, every int, clk clock.Clock, inj *faults.Injector, mem *cache.Store, m *metrics) (*diskTier, RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, err
	}
	var info RecoveryInfo
	snapLSN, loaded, err := loadNewestSnapshot(dir, mem)
	if err != nil {
		return nil, info, err
	}
	info.SnapshotLSN = snapLSN
	info.Entries = loaded

	apply := func(lsn uint64, payload []byte) {
		if lsn <= snapLSN || len(payload) == 0 {
			return
		}
		switch payload[0] {
		case recFill:
			if e, ok := decodeEntry(payload[1:]); ok {
				mem.Put(e)
				info.Replayed++
			}
		case recPurge:
			mem.Delete(string(payload[1:]))
			info.Replayed++
		}
	}
	log, err := wal.Open(wal.Options{
		Dir:      filepath.Join(dir, "wal"),
		Clock:    clk,
		Faults:   inj,
		OnRecord: apply,
	})
	if errors.Is(err, wal.ErrCorrupt) {
		// Mid-log hole: do not trust anything. Wipe and start cold —
		// the cache re-fills from the upstream; a loss costs misses.
		mem.Clear()
		if err := os.RemoveAll(dir); err != nil {
			return nil, info, err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, info, err
		}
		log, err = wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Clock: clk, Faults: inj})
		if err != nil {
			return nil, info, err
		}
		info = RecoveryInfo{ColdStart: true}
	} else if err != nil {
		return nil, info, err
	}
	info.Entries = mem.Len()
	if every <= 0 {
		every = 256
	}
	return &diskTier{
		dir: dir, log: log, clk: clk, m: m, inj: inj, mem: mem,
		every: every, snapLSN: snapLSN,
	}, info, nil
}

// appendFill journals one committed entry. A failed append (injected
// crash, disk error) marks the tier dead: the edge keeps serving from
// memory, and the owner's restart path runs recovery.
func (d *diskTier) appendFill(e cache.Entry) {
	payload := append([]byte{recFill}, encodeEntry(e)...)
	d.append(payload)
	d.m.diskFills.Add(1)
}

// appendPurge journals one eviction.
func (d *diskTier) appendPurge(key string) {
	d.append(append([]byte{recPurge}, key...))
	d.m.diskPurges.Add(1)
}

func (d *diskTier) append(payload []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return
	}
	if _, err := d.log.Append(payload); err != nil {
		d.dead = true
		return
	}
	d.sinceSnap++
	if d.sinceSnap >= d.every {
		// A failed snapshot is not fatal: the WAL still holds every
		// record, so recovery replays what the snapshot missed.
		_ = d.snapshot()
	}
}

// crashed reports whether an injected fault killed the WAL.
func (d *diskTier) crashed() bool { return d.log.Crashed() }

func (d *diskTier) close() error { return d.log.Close() }

// snapshot folds the live entry set into edge-<lsn>.snap and prunes the
// WAL below it. The LSN is captured before export so records appended
// concurrently with the write stay above the prune line. Callers must
// hold d.mu.
func (d *diskTier) snapshot() error {
	lsn := d.log.NextLSN() - 1
	keys := d.mem.Keys()
	sort.Strings(keys)
	var entBuf []byte
	n := 0
	for _, k := range keys {
		e, ok := d.mem.Peek(k)
		if !ok {
			continue
		}
		enc := encodeEntry(e)
		entBuf = binary.AppendUvarint(entBuf, uint64(len(enc)))
		entBuf = append(entBuf, enc...)
		n++
	}
	body := append(binary.AppendUvarint(nil, uint64(n)), entBuf...)

	blob := append([]byte(snapMagic), snapVersion)
	blob = binary.BigEndian.AppendUint32(blob, crc32.Checksum(body, castagnoli))
	blob = append(blob, body...)

	final := filepath.Join(d.dir, fmt.Sprintf("edge-%016d%s", lsn, snapSuffix))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(d.dir)
	d.snapLSN = lsn
	d.sinceSnap = 0
	d.m.snapshots.Add(1)
	_, _ = d.log.PruneBelow(lsn + 1)
	d.pruneSnapshots(final)
	return nil
}

// pruneSnapshots removes every snapshot except the one just written.
func (d *diskTier) pruneSnapshots(keep string) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := filepath.Join(d.dir, e.Name())
		if name != keep && strings.HasSuffix(e.Name(), snapSuffix) {
			os.Remove(name)
		}
	}
}

// loadNewestSnapshot scans dir for edge-<lsn>.snap files, newest first,
// and loads the first one that validates; torn or corrupt files are
// skipped (a crash between Create and Sync leaves exactly that).
func loadNewestSnapshot(dir string, mem *cache.Store) (lsn uint64, entries int, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	type cand struct {
		lsn  uint64
		path string
	}
	var cands []cand
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "edge-") || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		v, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "edge-"), snapSuffix), 10, 64)
		if perr != nil {
			continue
		}
		cands = append(cands, cand{lsn: v, path: filepath.Join(dir, name)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands {
		n, ok := loadSnapshot(c.path, mem)
		if ok {
			return c.lsn, n, nil
		}
	}
	return 0, 0, nil
}

func loadSnapshot(path string, mem *cache.Store) (entries int, ok bool) {
	blob, err := os.ReadFile(path)
	if err != nil || len(blob) < len(snapMagic)+5 {
		return 0, false
	}
	if string(blob[:4]) != snapMagic || blob[4] != snapVersion {
		return 0, false
	}
	body := blob[9:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(blob[5:9]) {
		return 0, false
	}
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, false
	}
	body = body[n:]
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body[n:])) < sz {
			return 0, false
		}
		e, eok := decodeEntry(body[n : n+int(sz)])
		if !eok {
			return 0, false
		}
		mem.Put(e)
		entries++
		body = body[n+int(sz):]
	}
	return entries, true
}

// syncDir fsyncs a directory so a rename is durable; best-effort.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// unixNano maps a time to its wire form; the zero time stays zero so a
// never-expiring entry round-trips as one.
func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func fromUnixNano(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// --- entry wire encoding -------------------------------------------------
//
// Length-prefixed binary, no reflection:
//
//	str key | bytes body | uvarint version | varint storedAt | varint
//	expiresAt | uvarint nmeta | nmeta × (str k, str v)
//
// Timestamps travel as Unix nanoseconds (zero time → 0).

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, bool) {
	sz, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b[n:])) < sz {
		return "", nil, false
	}
	return string(b[n : n+int(sz)]), b[n+int(sz):], true
}

func encodeEntry(e cache.Entry) []byte {
	b := appendString(nil, e.Key)
	b = binary.AppendUvarint(b, uint64(len(e.Body)))
	b = append(b, e.Body...)
	b = binary.AppendUvarint(b, e.Version)
	b = binary.AppendVarint(b, unixNano(e.StoredAt))
	b = binary.AppendVarint(b, unixNano(e.ExpiresAt))
	b = binary.AppendUvarint(b, uint64(len(e.Metadata)))
	keys := make([]string, 0, len(e.Metadata))
	for k := range e.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = appendString(b, k)
		b = appendString(b, e.Metadata[k])
	}
	return b
}

func decodeEntry(b []byte) (cache.Entry, bool) {
	var e cache.Entry
	var ok bool
	if e.Key, b, ok = readString(b); !ok {
		return e, false
	}
	sz, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b[n:])) < sz {
		return e, false
	}
	e.Body = append([]byte(nil), b[n:n+int(sz)]...)
	b = b[n+int(sz):]
	if e.Version, n = binary.Uvarint(b); n <= 0 {
		return e, false
	}
	b = b[n:]
	var ns int64
	if ns, n = binary.Varint(b); n <= 0 {
		return e, false
	}
	e.StoredAt = fromUnixNano(ns)
	b = b[n:]
	if ns, n = binary.Varint(b); n <= 0 {
		return e, false
	}
	e.ExpiresAt = fromUnixNano(ns)
	b = b[n:]
	nmeta, n := binary.Uvarint(b)
	if n <= 0 {
		return e, false
	}
	b = b[n:]
	if nmeta > 0 {
		e.Metadata = make(map[string]string, nmeta)
		for i := uint64(0); i < nmeta; i++ {
			var k, v string
			if k, b, ok = readString(b); !ok {
				return e, false
			}
			if v, b, ok = readString(b); !ok {
				return e, false
			}
			e.Metadata[k] = v
		}
	}
	return e, true
}
