// Package cluster implements the coordinator-free multi-node deployment
// of the Speed Kit server side. The single-process tree already contains
// every mechanism a node needs — the counting Cache Sketch
// (internal/cachesketch), the InvaliDB matcher (internal/invalidb), the
// adaptive TTL estimator (internal/ttl), and per-node WAL + snapshot
// durability (internal/durable). This package composes N of those nodes
// into one deployment:
//
//   - A seeded consistent-hash ring (Ring) partitions resource IDs across
//     nodes; every coherence report for a key goes to exactly one owner,
//     so each node's counting sketch tracks a disjoint shard of the ID
//     space and per-node WAL recovery is self-contained.
//   - Registered continuous queries partition by registration ID across
//     the same ring while change events broadcast to every node —
//     InvaliDB's two-dimensional partitioning — so matching one event
//     costs each node only its 1/N slice of the registration set.
//   - Each node periodically publishes a DeltaFrame (its flattened shard
//     sketch plus its generation) over the /v1 HTTP surface; the Merger
//     folds the frames into the single Bloom filter clients fetch. The
//     merged generation is the sum of the folded shard generations plus a
//     saturation-transition counter, and a merged (non-saturated)
//     snapshot is only served while every member's frame is folded and
//     fresh — so client Check semantics are exactly the single-node ones.
//
// GDPR: this package is shared infrastructure in the same sense as the
// CDN and the durability layer — only anonymous coherence metadata
// (resource IDs, generations, filter bits) may ever flow through it. The
// gdprboundary analyzer enforces the import fence and piiflow treats the
// report/delta writers as sinks.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count. 64 points per
// member keeps the ring's load spread within a few percent of uniform for
// small clusters while the ring stays cheap to rebuild.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a seeded consistent-hash ring with virtual nodes. It is
// immutable after construction — rebalancing produces a new Ring — and a
// deterministic function of (seed, virtual-node count, member set), so
// every node of a deployment derives an identical ring without any
// coordination, and twin seeded runs shard identically.
type Ring struct {
	seed    int64
	vnodes  int
	members []string
	points  []ringPoint
}

// NewRing builds the ring for the given member names. Duplicate names are
// collapsed; member order does not matter (the set is sorted first).
// vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(seed int64, vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		seed:    seed,
		vnodes:  vnodes,
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   mix64(fnv64(fmt.Sprintf("%s#%d", m, v)) ^ uint64(seed)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by name so the ring stays
		// a deterministic function of the member set.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// fnv64 is the inline FNV-1a digest, matching the hashing idiom used by
// the Bloom filters and the InvaliDB collection sharder.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer. FNV-1a's low bits correlate for
// short, similar keys (product IDs share long prefixes); the finalizer
// avalanche makes every output bit depend on every input bit, which is
// what keeps the ring's arc lengths — and therefore shard sizes — close
// to uniform.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the member owning key: the one whose virtual node is the
// first at or clockwise of the key's ring position. An empty ring owns
// nothing and returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := mix64(fnv64(key) ^ uint64(r.seed))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return r.points[i].member
}

// Members returns the sorted member set (a copy).
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Seed returns the ring seed, served on /v1/cluster/ring so peers can
// verify they derived the same ring.
func (r *Ring) Seed() int64 { return r.seed }

// VirtualNodes returns the per-member virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Without returns the ring with one member removed — the rebalanced
// layout after a permanent node departure. Consistent hashing's defining
// property, pinned by the rebalance tests: only keys owned by the removed
// member move (≈1/N of the space); every other key keeps its owner.
func (r *Ring) Without(member string) *Ring {
	remaining := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			remaining = append(remaining, m)
		}
	}
	return NewRing(r.seed, r.vnodes, remaining)
}

// Info returns the wire description served at /v1/cluster/ring.
func (r *Ring) Info() RingInfo {
	return RingInfo{Seed: r.seed, VirtualNodes: r.vnodes, Members: r.Members()}
}
