// Package session models the users whose personalized content the system
// caches: identity, locale, consent, shopping cart, and browsing history.
// The generator is deterministic so that every experiment sees the same
// user population for a given seed.
package session

import (
	"fmt"
	"math/rand"
	"sync"

	"speedkit/internal/netsim"
)

// CartItem is one line in a user's shopping cart.
type CartItem struct {
	ProductID string
	Quantity  int
}

// User is the on-device user state the GDPR-compliant proxy keeps local.
type User struct {
	ID     string
	Name   string
	Email  string
	Region netsim.Region
	// Tier is the loyalty segment ("standard", "silver", "gold"); it
	// drives personalized pricing blocks.
	Tier string
	// LoggedIn distinguishes identified users from anonymous visitors.
	LoggedIn bool
	// ConsentPersonalization records the user's personalization opt-in.
	ConsentPersonalization bool
	// ConsentAnalytics records the analytics opt-in.
	ConsentAnalytics bool

	mu      sync.Mutex
	cart    []CartItem // guarded by mu
	history []string   // guarded by mu
}

// Cart returns a copy of the user's cart.
func (u *User) Cart() []CartItem {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]CartItem, len(u.cart))
	copy(out, u.cart)
	return out
}

// AddToCart adds quantity of the product (merging lines per product).
func (u *User) AddToCart(productID string, quantity int) {
	if quantity <= 0 {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for i := range u.cart {
		if u.cart[i].ProductID == productID {
			u.cart[i].Quantity += quantity
			return
		}
	}
	u.cart = append(u.cart, CartItem{ProductID: productID, Quantity: quantity})
}

// CartSize returns the total item count in the cart.
func (u *User) CartSize() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	n := 0
	for _, it := range u.cart {
		n += it.Quantity
	}
	return n
}

// ClearCart empties the cart (checkout).
func (u *User) ClearCart() {
	u.mu.Lock()
	u.cart = nil
	u.mu.Unlock()
}

// RecordView appends a product to the browsing history, keeping the most
// recent 20 entries.
func (u *User) RecordView(productID string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.history = append(u.history, productID)
	if len(u.history) > 20 {
		u.history = u.history[len(u.history)-20:]
	}
}

// History returns a copy of the browsing history, oldest first.
func (u *User) History() []string {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]string, len(u.history))
	copy(out, u.history)
	return out
}

// tiers in generation proportion order.
var tiers = []string{"standard", "standard", "standard", "silver", "gold"}

// Generate creates a deterministic user i in the given region. Roughly
// 60% of generated users are logged in and 80% of those consent to
// personalization, matching e-commerce field distributions.
func Generate(rng *rand.Rand, i int, region netsim.Region) *User {
	loggedIn := rng.Float64() < 0.6
	u := &User{
		ID:       fmt.Sprintf("u%06d", i),
		Region:   region,
		Tier:     tiers[rng.Intn(len(tiers))],
		LoggedIn: loggedIn,
	}
	if loggedIn {
		u.Name = fmt.Sprintf("User %d", i)
		u.Email = fmt.Sprintf("user%d@example.com", i)
		u.ConsentPersonalization = rng.Float64() < 0.8
		u.ConsentAnalytics = rng.Float64() < 0.5
	}
	return u
}

// PopulationRNG generates n users spread across the canonical regions,
// drawing every random decision from the injected source. Callers that
// need several deterministic populations inside one experiment share a
// single seeded *rand.Rand across calls.
func PopulationRNG(rng *rand.Rand, n int) []*User {
	regions := netsim.Regions()
	users := make([]*User, n)
	for i := range users {
		users[i] = Generate(rng, i, regions[i%len(regions)])
	}
	return users
}

// Population generates n users deterministically from seed. It is
// PopulationRNG with a freshly seeded source, so the populations are
// byte-identical for a given seed no matter which entry point is used.
func Population(seed int64, n int) []*User {
	return PopulationRNG(rand.New(rand.NewSource(seed)), n)
}
