package edge

import (
	"net/http"
	"sync"
)

// fill is one in-flight origin fetch that any number of concurrent
// requests for the same key share. The first requester (the leader)
// owns the upstream connection and appends body chunks as they arrive;
// late joiners (followers) attach and stream the shared buffer at their
// own pace, waking on the condition variable as the leader publishes
// more bytes. A stampede of N requests therefore costs exactly one
// origin fetch, and no follower waits for the full body before its
// first byte goes out — streaming coalescing, not block-and-replay.
type fill struct {
	mu   sync.Mutex
	cond *sync.Cond

	// hdrDone flips once status+header are published; followers can
	// write their response preamble from that point.
	hdrDone bool
	status  int
	header  http.Header

	// buf accumulates the body. Only ever appended to, so a follower
	// holding an offset may re-slice under the lock and copy outside it.
	buf  []byte
	done bool
	err  error
}

func newFill() *fill {
	f := &fill{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// publishHeader makes status and selected headers visible to followers.
func (f *fill) publishHeader(status int, h http.Header) {
	f.mu.Lock()
	f.status = status
	f.header = h
	f.hdrDone = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// appendChunk publishes more body bytes.
func (f *fill) appendChunk(p []byte) {
	f.mu.Lock()
	f.buf = append(f.buf, p...)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// finish marks the fill complete (err != nil: the upstream fetch broke;
// followers that already streamed a prefix simply stop short, followers
// still waiting for the header get an error response).
func (f *fill) finish(err error) {
	f.mu.Lock()
	f.done = true
	f.err = err
	if !f.hdrDone {
		f.hdrDone = true
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// waitHeader blocks until the response preamble (or a terminal error)
// is available.
func (f *fill) waitHeader() (status int, header http.Header, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.hdrDone {
		f.cond.Wait()
	}
	return f.status, f.header, f.err
}

// next returns body bytes past off, blocking until more arrive or the
// fill ends. A nil chunk with done=true means the body is complete.
func (f *fill) next(off int) (chunk []byte, done bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.buf) <= off && !f.done {
		f.cond.Wait()
	}
	if len(f.buf) > off {
		return f.buf[off:], false
	}
	return nil, true
}

// bytes returns the complete body; valid only after finish(nil).
func (f *fill) bytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.buf
}
