package core

import (
	"context"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/faults"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/workload"
)

// newFaultedStorefront builds the demo deployment with an injector
// installed.
func newFaultedStorefront(t *testing.T, rules ...faults.Rule) (*Service, *clock.Simulated, *faults.Injector) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	inj := faults.New(clk, 42, rules...)
	svc, err := NewStorefront(StorefrontConfig{
		Config:   Config{Clock: clk, Seed: 1, Delta: 30 * time.Second, Faults: inj},
		Products: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, clk, inj
}

// A sketch blackhole on a cold device cannot be bridged by a held copy,
// so the load degrades to a forced revalidation — and still serves.
func TestSketchBlackholeDegradesToRevalidation(t *testing.T) {
	svc, _, _ := newFaultedStorefront(t,
		faults.Rule{Component: faults.SketchFetch, Kind: faults.Blackhole, Probability: 1})
	dev := svc.NewDevice(nil, netsim.EU)
	res, err := dev.Load(context.Background(), "/product/p00001")
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != proxy.DegradeRevalidate {
		t.Fatalf("degraded = %q, want %q", res.Degraded, proxy.DegradeRevalidate)
	}
	if svc.Stats().FaultsInjected == 0 {
		t.Fatal("injector consulted but no fault counted")
	}
}

// Injected latency spikes surface in the reported fetch latency without
// failing the call.
func TestLatencyFaultInflatesFetchLatency(t *testing.T) {
	const spike = 3 * time.Second
	svc, _, _ := newFaultedStorefront(t,
		faults.Rule{Component: faults.OriginFetch, Kind: faults.Latency, Probability: 1, Latency: spike})
	_, lat, _, err := svc.Fetch(context.Background(), netsim.EU, "/product/p00001")
	if err != nil {
		t.Fatal(err)
	}
	if lat < spike {
		t.Fatalf("latency %v does not include the %v spike", lat, spike)
	}
}

// Delivery faults on the invalidation hop are redelivered, and when the
// budget is exhausted the hop is forced through: the sketch must still
// learn about the write, or devices would blind-serve stale copies past Δ.
func TestDeliveryFaultsNeverDropInvalidations(t *testing.T) {
	svc, _, _ := newFaultedStorefront(t,
		faults.Rule{Component: faults.Invalidation, Kind: faults.Error, Probability: 1})
	// Cache the page first: ReportWrite only tracks currently-cached paths.
	dev := svc.NewDevice(nil, netsim.EU)
	if _, err := dev.Load(context.Background(), "/product/"+workload.ProductID(1)); err != nil {
		t.Fatal(err)
	}
	gen := svc.SketchServer().Generation()
	if err := svc.Docs().Patch("products", workload.ProductID(1), map[string]any{"price": 999.0}); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.ForcedDeliveries == 0 {
		t.Fatal("permanent delivery fault did not force the hop through")
	}
	if st.Redeliveries < deliverMaxAttempts-1 {
		t.Fatalf("redeliveries = %d, want ≥ %d", st.Redeliveries, deliverMaxAttempts-1)
	}
	if svc.SketchServer().Generation() == gen {
		t.Fatal("sketch never learned about the write")
	}
}

// A transient delivery fault costs redeliveries, not correctness: with a
// sub-certain probability the hop lands within the budget.
func TestTransientDeliveryFaultRedelivers(t *testing.T) {
	svc, _, _ := newFaultedStorefront(t,
		faults.Rule{Component: faults.Invalidation, Kind: faults.Error, Probability: 0.5})
	for i := 1; i <= 8; i++ {
		_ = svc.Docs().Patch("products", workload.ProductID(i), map[string]any{"price": float64(i)})
	}
	st := svc.Stats()
	if st.Redeliveries == 0 {
		t.Fatal("no redeliveries under a 50% delivery fault rate")
	}
	if st.ForcedDeliveries != 0 {
		t.Fatalf("forced deliveries = %d under a transient fault rate", st.ForcedDeliveries)
	}
}

// Per-device resilience seeds must differ, or fleet-wide retry jitter
// would re-synchronize the storms backoff exists to break up.
func TestDevicesGetDistinctResilienceSeeds(t *testing.T) {
	svc, _ := newTestStorefront(t)
	a := svc.NewDevice(nil, netsim.EU)
	b := svc.NewDevice(nil, netsim.EU)
	if a == nil || b == nil {
		t.Fatal("nil devices")
	}
	// The seeds themselves are private; the observable contract is that
	// two fresh devices behave identically on the protocol level while
	// their jitter streams (seeded cfg.Seed + seq*7919) differ. Exercise
	// both to make sure construction with derived seeds is sound.
	if _, err := a.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
}
