package cachesketch

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"speedkit/internal/clock"
)

// buildServer populates a server with a mix of tracked, merely-cached,
// and untracked resources.
func buildServer(sim *clock.Simulated) *Server {
	s := NewServer(ServerConfig{Clock: sim})
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("/page/%02d", i)
		s.ReportCachedRead(key, sim.Now().Add(time.Duration(10+i)*time.Minute))
		if i%2 == 0 {
			s.ReportWrite(key) // tracked in the sketch
		}
		sim.Advance(time.Second)
	}
	return s
}

func TestServerStateRoundTrip(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	s := buildServer(sim)
	blob := s.ExportState()

	s2 := NewServer(ServerConfig{Clock: sim})
	if err := s2.ImportState(blob); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	// Deterministic: re-export is byte-identical, and so is a repeat.
	if !bytes.Equal(blob, s2.ExportState()) {
		t.Fatal("re-exported state differs")
	}
	if !bytes.Equal(s.ExportState(), s.ExportState()) {
		t.Fatal("repeated export is not deterministic")
	}
	if s2.Generation() != s.Generation() {
		t.Fatalf("generation %d != %d", s2.Generation(), s.Generation())
	}
	// Tracked membership and snapshot bits survive exactly.
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("/page/%02d", i)
		if s.Contains(key) != s2.Contains(key) {
			t.Fatalf("%s: Contains diverged", key)
		}
	}
	b1, _ := s.Snapshot().Marshal()
	b2, _ := s2.Snapshot().Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatal("snapshot filters differ after import")
	}
	// Scheduled removals were rebuilt: advancing past every residency
	// empties both sketches identically.
	sim.Advance(3 * time.Hour)
	if got, want := s2.Stats().Tracked, s.Stats().Tracked; got != want || got != 0 {
		t.Fatalf("tracked after expiry: %d vs %d, want 0", got, want)
	}
}

func TestServerImportRejectsGarbage(t *testing.T) {
	s := NewServer(ServerConfig{})
	for _, blob := range [][]byte{nil, {9}, []byte("SKSSxxxxxxxxxxxx")} {
		if err := s.ImportState(blob); err == nil {
			t.Fatalf("ImportState(%v) accepted garbage", blob)
		}
	}
	sim := clock.NewSimulated(time.Time{})
	good := buildServer(sim).ExportState()
	if err := s.ImportState(good[:len(good)-3]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if err := s.ImportState(append(good, 0)); err == nil {
		t.Fatal("oversized blob accepted")
	}
}

func TestColdStartWindowSemantics(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	s := buildServer(sim)
	genBefore := s.Generation()
	now := sim.Now()
	s.ColdStart(now.Add(time.Minute), now.Add(10*time.Minute))

	if s.Generation() == genBefore {
		t.Fatal("ColdStart did not bump the generation")
	}
	if !s.ColdStartActive() {
		t.Fatal("cold window not active")
	}
	snap := s.Snapshot()
	if !snap.MightBeStale("/absolutely/anything") {
		t.Fatal("cold snapshot not saturated")
	}
	// Blind window: unknown writes are tracked conservatively…
	if !s.ReportWrite("/never/reported") {
		t.Fatal("blind window did not track unknown write")
	}
	// …with residency ending at the blind horizon.
	sim.Advance(2 * time.Minute) // past the cold window, inside blind
	if s.ColdStartActive() {
		t.Fatal("cold window did not retire")
	}
	if !s.Contains("/never/reported") {
		t.Fatal("blind-tracked write evicted early")
	}
	snap = s.Snapshot()
	if snap.MightBeStale("/some/key/never/seen") {
		t.Fatal("sketch still saturated after the window")
	}
	sim.Advance(9 * time.Minute) // past the blind horizon
	if s.Contains("/never/reported") {
		t.Fatal("blind-tracked write outlived the horizon")
	}
	// Outside both windows, unknown writes are uncached again.
	if s.ReportWrite("/after/horizon") {
		t.Fatal("blind tracking persisted past the horizon")
	}
}

func TestResetClearsEverything(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	s := buildServer(sim)
	s.ColdStart(sim.Now().Add(time.Minute), sim.Now().Add(time.Minute))
	s.Reset()
	if s.Generation() != 0 {
		t.Fatalf("generation = %d after Reset", s.Generation())
	}
	if s.ColdStartActive() {
		t.Fatal("cold window survived Reset")
	}
	st := s.Stats()
	if st.Tracked != 0 || st.TableSize != 0 {
		t.Fatalf("state survived Reset: %+v", st)
	}
	if snap := s.Snapshot(); snap.MightBeStale("/page/00") {
		t.Fatal("filter bits survived Reset")
	}
}

// TestJournalEmission pins which events journal: table extensions and
// tracked writes do, ignored reports and uncached writes do not.
func TestJournalEmission(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	j := &recordingJournal{}
	s := NewServer(ServerConfig{Clock: sim, Journal: j})

	s.ReportCachedRead("/a", sim.Now().Add(time.Hour))     // journals
	s.ReportCachedRead("/a", sim.Now().Add(time.Hour))     // same expiry: no
	s.ReportWrite("/a")                                    // tracked: journals
	s.ReportWrite("/uncached")                             // uncached: no
	s.ReportCachedRead("/past", sim.Now().Add(-time.Hour)) // ignored: no

	if got := j.reads; got != 1 {
		t.Fatalf("journaled reads = %d, want 1", got)
	}
	if got := j.writes; got != 1 {
		t.Fatalf("journaled writes = %d, want 1", got)
	}

	// Generations journal once per exposure, not per snapshot: the first
	// Snapshot logs the current generation, an unchanged repeat does not.
	s.Snapshot()
	s.Snapshot()
	if len(j.gens) != 1 || j.gens[0] != s.Generation() {
		t.Fatalf("journaled generations = %v, want [%d]", j.gens, s.Generation())
	}
}

type recordingJournal struct {
	reads, writes int
	gens          []uint64
}

func (r *recordingJournal) JournalCachedRead(string, time.Time) { r.reads++ }
func (r *recordingJournal) JournalWrite(string)                 { r.writes++ }
func (r *recordingJournal) JournalGeneration(gen uint64)        { r.gens = append(r.gens, gen) }
