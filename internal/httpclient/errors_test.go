package httpclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
)

// brokenServer returns a server that answers every request with status
// and body.
func brokenServer(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(status)
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestFetchServerErrorIsRetryableNotOffline(t *testing.T) {
	ts := brokenServer(t, http.StatusInternalServerError, "boom")
	tr := New(ts.URL, ts.Client())
	_, _, _, err := tr.Fetch(context.Background(), netsim.EU, "/x")
	if err == nil {
		t.Fatal("500 swallowed")
	}
	if errors.Is(err, proxy.ErrOffline) {
		t.Fatal("application error classified as offline")
	}
	if !errors.Is(err, proxy.ErrUpstream) {
		t.Fatalf("5xx not retryable: %v", err)
	}
}

func TestFetchClientErrorIsNotRetryable(t *testing.T) {
	ts := brokenServer(t, http.StatusNotFound, "no such page")
	tr := New(ts.URL, ts.Client())
	_, _, _, err := tr.Fetch(context.Background(), netsim.EU, "/x")
	if err == nil {
		t.Fatal("404 swallowed")
	}
	if errors.Is(err, proxy.ErrUpstream) || errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("4xx misclassified: %v", err)
	}
}

func TestFetchConnectionRefusedIsOffline(t *testing.T) {
	tr := New("http://127.0.0.1:1", nil) // nothing listens on port 1
	_, _, _, err := tr.Fetch(context.Background(), netsim.EU, "/x")
	if !errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("err = %v, want ErrOffline", err)
	}
	_, rerr := tr.Revalidate(context.Background(), netsim.EU, "/x", 1)
	if !errors.Is(rerr, proxy.ErrOffline) {
		t.Fatalf("revalidate err = %v, want ErrOffline", rerr)
	}
}

// Cancellation is the caller abandoning the request, not connectivity
// loss: it must NOT engage offline mode. http.Client wraps ctx errors in
// *url.Error, which the blanket url.Error→ErrOffline mapping used to
// swallow.
func TestCancellationIsNotOffline(t *testing.T) {
	blocked := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold until the client gives up
		close(blocked)
	}))
	t.Cleanup(ts.Close)
	tr := New(ts.URL, ts.Client())

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, _, err := tr.Fetch(ctx, netsim.EU, "/x")
	<-blocked
	if err == nil {
		t.Fatal("cancelled fetch succeeded")
	}
	if errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("cancellation classified as offline: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled lost: %v", err)
	}
}

func TestDeadlineIsNotOffline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	tr := New(ts.URL, ts.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, _, err := tr.Fetch(ctx, netsim.EU, "/x")
	if err == nil {
		t.Fatal("deadline-bound fetch succeeded")
	}
	if errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("deadline classified as offline: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context.DeadlineExceeded lost: %v", err)
	}
}

func TestFetchSketchErrors(t *testing.T) {
	// Unreachable server → offline.
	tr := New("http://127.0.0.1:1", nil)
	if _, _, err := tr.FetchSketch(context.Background(), netsim.EU); !errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("dead server: %v, want ErrOffline", err)
	}
	// Server up but returning garbage → decode error, not offline.
	ts := brokenServer(t, http.StatusOK, "not-a-bloom-filter")
	tr2 := New(ts.URL, ts.Client())
	if sn, _, err := tr2.FetchSketch(context.Background(), netsim.EU); err == nil || sn != nil {
		t.Fatal("snapshot decoded from garbage")
	}
	// 503 → retryable upstream failure.
	ts503 := brokenServer(t, http.StatusServiceUnavailable, "")
	tr3 := New(ts503.URL, ts503.Client())
	if _, _, err := tr3.FetchSketch(context.Background(), netsim.EU); !errors.Is(err, proxy.ErrUpstream) {
		t.Fatalf("503 sketch: %v, want ErrUpstream", err)
	}
}

func TestFetchBlocksErrors(t *testing.T) {
	tr := New("http://127.0.0.1:1", nil)
	if _, _, err := tr.FetchBlocks(context.Background(), netsim.EU, []string{"cart"}, nil); !errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("dead server: %v, want ErrOffline", err)
	}
	ts := brokenServer(t, http.StatusOK, "{not json")
	tr2 := New(ts.URL, ts.Client())
	if frs, _, err := tr2.FetchBlocks(context.Background(), netsim.EU, []string{"cart"}, nil); err == nil || frs != nil {
		t.Fatal("blocks decoded from garbage")
	}
	ts400 := brokenServer(t, http.StatusBadRequest, "")
	tr3 := New(ts400.URL, ts400.Client())
	_, _, err := tr3.FetchBlocks(context.Background(), netsim.EU, []string{"cart"}, nil)
	if err == nil || errors.Is(err, proxy.ErrUpstream) || errors.Is(err, proxy.ErrOffline) {
		t.Fatalf("400 blocks misclassified: %v", err)
	}
}

func TestRevalidateServerError(t *testing.T) {
	ts := brokenServer(t, http.StatusInternalServerError, "oops")
	tr := New(ts.URL, ts.Client())
	if _, err := tr.Revalidate(context.Background(), netsim.EU, "/x", 1); !errors.Is(err, proxy.ErrUpstream) {
		t.Fatalf("500 revalidation: %v, want ErrUpstream", err)
	}
}

func TestSourceFromHeader(t *testing.T) {
	if sourceFromHeader("cdn") != proxy.SourceCDN ||
		sourceFromHeader("device") != proxy.SourceDevice ||
		sourceFromHeader("origin") != proxy.SourceOrigin ||
		sourceFromHeader("") != proxy.SourceOrigin {
		t.Fatal("source mapping wrong")
	}
}
