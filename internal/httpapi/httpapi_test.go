package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/clock"
	"speedkit/internal/core"
	"speedkit/internal/durable"
	"speedkit/internal/obs"
	"speedkit/internal/session"
)

func newTestAPI(t *testing.T) (*API, *httptest.Server, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock: clk, Seed: 1, Delta: 30 * time.Second,
			// A private registry and an always-sample tracer, so tests can
			// assert on exact values without cross-test interference.
			Obs:    obs.NewRegistry(),
			Tracer: obs.NewTracer(clk, 1, 16),
		},
		Products: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	users := session.Population(1, 10)
	// Force one known, logged-in, consenting user.
	users[0].ID, users[0].Name, users[0].LoggedIn = "u-test", "Test User", true
	users[0].ConsentPersonalization = true
	users[0].AddToCart("p00001", 3)

	api := New(svc, users)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return api, ts, clk
}

func get(t *testing.T, url string, headers ...string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(headers); i += 2 {
		req.Header.Set(headers[i], headers[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestHealthz(t *testing.T) {
	api, ts, clk := newTestAPI(t)
	clk.Advance(90 * time.Second)

	// Put a key into the sketch so the generation is visibly non-zero.
	_, _ = get(t, ts.URL+"/page?path=/product/p00002")
	if err := api.svc.Docs().Patch("products", "p00002", map[string]any{"stock": int64(2)}); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.Uptime != "1m30s" {
		t.Fatalf("uptime = %q, want 1m30s on the simulated clock", h.Uptime)
	}
	if h.SketchGeneration == 0 {
		t.Fatal("sketch_generation = 0 after a tracked write")
	}
	if h.SketchTracked != 1 {
		t.Fatalf("sketch_tracked = %d, want 1", h.SketchTracked)
	}
	if h.InvalidationShards != 4 {
		t.Fatalf("invalidation_shards = %d, want default 4", h.InvalidationShards)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	_, _ = get(t, ts.URL+"/page?path=/product/p00001") // origin render
	_, _ = get(t, ts.URL+"/page?path=/product/p00001") // edge hit

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE speedkit_service_fetch_total counter",
		`speedkit_service_fetch_total{source="cdn"} 1`,
		`speedkit_service_fetch_total{source="origin"} 1`,
		"# TYPE speedkit_sketch_generation gauge",
		"# TYPE speedkit_sketch_bytes gauge",
		"# TYPE speedkit_service_fetch_latency_us summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// newDurableTestAPI is newTestAPI with the durability subsystem wired
// over a temp directory.
func newDurableTestAPI(t *testing.T) (*API, *httptest.Server, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	store := durable.New(durable.Config{
		Dir:          t.TempDir(),
		Clock:        clk,
		ColdWindow:   30 * time.Second,
		BlindHorizon: 10 * time.Minute,
	})
	svc, err := core.NewStorefront(core.StorefrontConfig{
		Config: core.Config{
			Clock: clk, Seed: 1, Delta: 30 * time.Second,
			Obs:     obs.NewRegistry(),
			Tracer:  obs.NewTracer(clk, 1, 16),
			Durable: store,
		},
		Products: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	t.Cleanup(func() { _ = store.Close() })

	api := New(svc, session.Population(1, 10))
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return api, ts, clk
}

// TestMetricsDurability asserts the durability gauges reach the scrape
// exposition and /healthz reports the recovery mode — the wal/durable
// packages cannot register metrics themselves (obslabels boundary), so
// this pins the indirection through the HTTP surface.
func TestMetricsDurability(t *testing.T) {
	_, ts, _ := newDurableTestAPI(t)
	// A tracked read + a write journal some records.
	_, _ = get(t, ts.URL+"/page?path=/product/p00003")

	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE speedkit_wal_appends gauge",
		"# TYPE speedkit_wal_fsyncs gauge",
		"# TYPE speedkit_wal_replayed_records gauge",
		"# TYPE speedkit_durable_snapshot_bytes gauge",
		`speedkit_recovery_mode{mode="fresh"} 1`,
		`speedkit_recovery_mode{mode="coldstart"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "speedkit_wal_appends 1") &&
		!strings.Contains(body, "speedkit_wal_appends 2") {
		t.Errorf("wal appends gauge not reflecting journaled records:\n%s", body)
	}

	_, hbody := get(t, ts.URL+"/healthz")
	var h Health
	if err := json.Unmarshal([]byte(hbody), &h); err != nil {
		t.Fatal(err)
	}
	if h.RecoveryMode != "fresh" {
		t.Fatalf("recovery_mode = %q, want fresh", h.RecoveryMode)
	}
}

// TestMetricsMemoryOnlyOmitsDurability pins the memory-only shape: no
// durability series, no recovery_mode in /healthz.
func TestMetricsMemoryOnlyOmitsDurability(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	_, body := get(t, ts.URL+"/metrics")
	if strings.Contains(body, "speedkit_wal_") || strings.Contains(body, "speedkit_recovery_mode") {
		t.Errorf("memory-only service exposes durability series:\n%s", body)
	}
	_, hbody := get(t, ts.URL+"/healthz")
	if strings.Contains(hbody, "recovery_mode") {
		t.Errorf("memory-only healthz carries recovery_mode: %s", hbody)
	}
}

func TestTracesEndpoint(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	_, _ = get(t, ts.URL+"/page?path=/product/p00006")

	resp, body := get(t, ts.URL+"/debug/traces?n=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var traces []obs.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces not JSON: %v\n%s", err, body)
	}
	var page *obs.Trace
	for i := range traces {
		if traces[i].Kind == "http.page" {
			page = &traces[i]
		}
	}
	if page == nil {
		t.Fatalf("no http.page trace in %s", body)
	}
	if page.Path != "/product/p00006" || page.Source != "origin" {
		t.Fatalf("trace = %+v", page)
	}
	if len(page.Spans) == 0 || page.Spans[0].Name != "core.fetch" {
		t.Fatalf("spans = %+v", page.Spans)
	}
	if page.TraceID.IsZero() || page.SpanID.IsZero() {
		t.Fatalf("trace lacks causal identity: %+v", page)
	}

	resp, _ = get(t, ts.URL+"/debug/traces?n=zero")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d", resp.StatusCode)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	resp, body := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
}

func TestPageServesShellWithCachingHeaders(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	resp, body := get(t, ts.URL+"/page?path=/product/p00007")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "<!--block:") {
		t.Fatal("shell missing block placeholders (must be anonymous)")
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.HasPrefix(cc, "public, max-age=") {
		t.Fatalf("Cache-Control = %q", cc)
	}
	if et := resp.Header.Get("ETag"); et != `"v1"` {
		t.Fatalf("ETag = %q", et)
	}
	if xb := resp.Header.Get("X-Blocks"); !strings.Contains(xb, "cart") {
		t.Fatalf("X-Blocks = %q", xb)
	}
	if resp.Header.Get("X-Served-By") != "origin" {
		t.Fatalf("X-Served-By = %q", resp.Header.Get("X-Served-By"))
	}
	// Second fetch comes from the edge.
	resp, _ = get(t, ts.URL+"/page?path=/product/p00007")
	if resp.Header.Get("X-Served-By") != "cdn" {
		t.Fatalf("second fetch served by %q", resp.Header.Get("X-Served-By"))
	}
}

func TestPageMissingAndUnknown(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	resp, _ := get(t, ts.URL+"/page")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing path: %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/page?path=/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
}

func TestConditionalGet304(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	resp, _ := get(t, ts.URL+"/page?path=/product/p00003")
	etag := resp.Header.Get("ETag")

	resp, body := get(t, ts.URL+"/page?path=/product/p00003", "If-None-Match", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
	if body != "" {
		t.Fatalf("304 carried a body: %q", body)
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatal("304 lost the ETag")
	}
}

func TestConditionalGetAfterWriteReturnsNewVersion(t *testing.T) {
	api, ts, _ := newTestAPI(t)
	resp, _ := get(t, ts.URL+"/page?path=/product/p00003")
	etag := resp.Header.Get("ETag")

	if err := api.svc.Docs().Patch("products", "p00003", map[string]any{"price": 1.23}); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/page?path=/product/p00003", "If-None-Match", etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after write", resp.StatusCode)
	}
	if resp.Header.Get("ETag") != `"v2"` {
		t.Fatalf("ETag = %q", resp.Header.Get("ETag"))
	}
	if !strings.Contains(body, "1.23") {
		t.Fatal("new body missing updated price")
	}
}

func TestConditionalGetMalformedETagIgnored(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	resp, _ := get(t, ts.URL+"/page?path=/product/p00004", "If-None-Match", `"garbage"`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 for unparseable ETag", resp.StatusCode)
	}
}

func TestSketchEndpoint(t *testing.T) {
	api, ts, _ := newTestAPI(t)
	// Put something in the sketch first.
	_, _ = get(t, ts.URL+"/page?path=/product/p00005")
	if err := api.svc.Docs().Patch("products", "p00005", map[string]any{"stock": int64(1)}); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/sketch")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "public, max-age=30" {
		t.Fatalf("Cache-Control = %q (Δ=30s)", cc)
	}
	if resp.Header.Get("X-Sketch-Generation") == "" {
		t.Fatal("generation header missing")
	}
	var f bloom.Filter
	if err := f.UnmarshalBinary([]byte(body)); err != nil {
		t.Fatalf("sketch not decodable: %v", err)
	}
	if !f.Contains("/product/p00005") {
		t.Fatal("decoded sketch missing the written path")
	}
}

func TestBlocksEndpoint(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	resp, body := get(t, ts.URL+"/blocks?names=cart,greeting&user=u-test")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatal("personalized response must be no-store")
	}
	var out map[string]string
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["cart"], "3 items") {
		t.Fatalf("cart fragment = %q", out["cart"])
	}
	if !strings.Contains(out["greeting"], "Test User") {
		t.Fatalf("greeting fragment = %q", out["greeting"])
	}

	// Unknown user → anonymous fragments, never an error.
	_, body = get(t, ts.URL+"/blocks?names=greeting&user=ghost")
	if !strings.Contains(body, "Welcome!") {
		t.Fatalf("anonymous fragment = %q", body)
	}

	resp, _ = get(t, ts.URL+"/blocks")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing names: %d", resp.StatusCode)
	}
}

func TestWriteEndpointDrivesPipeline(t *testing.T) {
	api, ts, _ := newTestAPI(t)
	_, _ = get(t, ts.URL+"/page?path=/product/p00009") // cache a copy

	resp, err := http.Post(ts.URL+"/admin/write?product=p00009&price=7.77", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "v2") || !strings.Contains(string(body), "in sketch: true") {
		t.Fatalf("write response: %s", body)
	}
	doc, _, _ := api.svc.Docs().Get("products", "p00009")
	if doc["price"] != 7.77 {
		t.Fatalf("price = %v", doc["price"])
	}
}

func TestWriteEndpointValidation(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	cases := []struct {
		url  string
		want int
	}{
		{"/admin/write", http.StatusBadRequest},
		{"/admin/write?product=p00001", http.StatusBadRequest},
		{"/admin/write?product=p00001&price=abc", http.StatusBadRequest},
		{"/admin/write?product=p00001&stock=abc", http.StatusBadRequest},
		{"/admin/write?product=ghost&price=1", http.StatusNotFound},
		{"/admin/write?product=p00001&stock=5", http.StatusOK},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts, _ := newTestAPI(t)
	_, _ = get(t, ts.URL+"/page?path=/")
	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{"service:", "sketch:", "cdn:", "gdpr:"} {
		if !strings.Contains(body, want) {
			t.Errorf("stats missing %q:\n%s", want, body)
		}
	}
}

func TestParseETag(t *testing.T) {
	cases := []struct {
		in string
		v  uint64
		ok bool
	}{
		{`"v1"`, 1, true},
		{`"v123"`, 123, true},
		{`W/"v7"`, 7, true},
		{` "v2" `, 2, true},
		{`"x1"`, 0, false},
		{`"v"`, 0, false},
		{`"vabc"`, 0, false},
		{``, 0, false},
	}
	for _, c := range cases {
		v, ok := parseETag(c.in)
		if v != c.v || ok != c.ok {
			t.Errorf("parseETag(%q) = %d,%v want %d,%v", c.in, v, ok, c.v, c.ok)
		}
	}
}

func TestRegisteredUsers(t *testing.T) {
	api, _, _ := newTestAPI(t)
	if api.RegisteredUsers() != 10 {
		t.Fatalf("users = %d", api.RegisteredUsers())
	}
}
