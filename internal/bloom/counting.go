package bloom

import (
	"fmt"
	"math"
)

// Counting is a counting Bloom filter: each cell is a small counter rather
// than a bit, so keys can be removed again. This is the server-side
// representation of the Cache Sketch — a resource ID is added when it is
// written while cached copies may still exist, and removed once the last
// possible copy has expired.
//
// Counters are 16-bit and saturate at 65535. A saturated counter is never
// decremented (doing so could introduce false negatives, which would break
// the Δ-atomicity guarantee); it is only cleared by Clear. With the fill
// ratios the sketch operates at, saturation is practically unreachable and
// is surfaced via the Saturations counter for monitoring.
type Counting struct {
	cells []uint16
	m     uint32
	k     uint32
	n     int64 // net membership count (adds minus removes)

	// Saturations counts cell increments that hit the ceiling. Nonzero
	// values indicate the filter is drastically undersized.
	Saturations uint64
}

const maxCell = math.MaxUint16

// NewCounting creates a counting filter with m cells and k probes.
func NewCounting(m, k uint32) *Counting {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return &Counting{
		cells: make([]uint16, m),
		m:     m,
		k:     k,
	}
}

// NewCountingForCapacity sizes the filter for n entries at false-positive
// rate p, mirroring NewFilterForCapacity.
func NewCountingForCapacity(n uint64, p float64) *Counting {
	m, k := OptimalParams(n, p)
	return NewCounting(m, k)
}

// Add inserts key, incrementing its k cells.
func (c *Counting) Add(key string) {
	c.AddProbes(ProbesFor(key))
}

// AddProbes is Add for a precomputed probe pair.
func (c *Counting) AddProbes(p Probes) {
	for i := uint32(0); i < c.k; i++ {
		b := p.bit(i, c.m)
		if c.cells[b] == maxCell {
			c.Saturations++
			continue
		}
		c.cells[b]++
	}
	c.n++
}

// Remove deletes one prior Add of key. Removing a key that was never added
// can corrupt the filter (introduce false negatives for other keys), so the
// Cache Sketch only ever calls Remove for keys it tracked adding; as a
// defensive measure, cells already at zero are left at zero and the call
// reports whether every probed cell was decrementable.
func (c *Counting) Remove(key string) bool {
	p := ProbesFor(key)
	clean := true
	for i := uint32(0); i < c.k; i++ {
		b := p.bit(i, c.m)
		switch c.cells[b] {
		case 0:
			clean = false
		case maxCell:
			// Saturated cells are sticky; see type comment.
		default:
			c.cells[b]--
		}
	}
	if c.n > 0 {
		c.n--
	}
	return clean
}

// Contains reports whether key may be in the set. Allocates nothing.
func (c *Counting) Contains(key string) bool {
	p := ProbesFor(key)
	for i := uint32(0); i < c.k; i++ {
		if c.cells[p.bit(i, c.m)] == 0 {
			return false
		}
	}
	return true
}

// Clear resets the filter.
func (c *Counting) Clear() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.n = 0
	c.Saturations = 0
}

// Len returns the net number of members (adds minus removes).
func (c *Counting) Len() int64 { return c.n }

// Bits returns m, the number of cells.
func (c *Counting) Bits() uint32 { return c.m }

// Hashes returns k.
func (c *Counting) Hashes() uint32 { return c.k }

// SizeBytes returns the in-memory size of the cell array. The counting
// filter never leaves the server, but its footprint is part of the
// polyglot-architecture cost accounting (Figure 6 / Ablation A2).
func (c *Counting) SizeBytes() int { return len(c.cells) * 2 }

// FillRatio returns the fraction of nonzero cells.
func (c *Counting) FillRatio() float64 {
	var set int
	for _, cell := range c.cells {
		if cell != 0 {
			set++
		}
	}
	return float64(set) / float64(c.m)
}

// Merge adds other's cells into c, saturating per cell. Both filters must
// have identical parameters; a mismatch returns an error wrapping
// ErrParamMismatch and leaves c untouched. Merging is how a recovered node
// folds a peer's shard back into a local counting sketch: cell-wise
// saturating addition preserves the no-false-negative invariant because a
// merged cell is never smaller than either input.
func (c *Counting) Merge(other *Counting) error {
	if other == nil {
		return ErrNilFilter
	}
	if c.m != other.m || c.k != other.k {
		return mismatchError(c.m, c.k, other.m, other.k)
	}
	for i, cell := range other.cells {
		sum := uint32(c.cells[i]) + uint32(cell)
		if sum > maxCell {
			c.cells[i] = maxCell
			c.Saturations++
			continue
		}
		c.cells[i] = uint16(sum)
	}
	c.n += other.n
	c.Saturations += other.Saturations
	return nil
}

// Flatten projects the counting filter onto a plain Bloom filter with the
// same parameters: exactly the operation the Cache Sketch server performs
// to produce the compact client sketch. The resulting filter contains every
// key currently in the counting filter (possibly more, never fewer).
func (c *Counting) Flatten() *Filter {
	f := NewFilter(c.m, c.k)
	for i, cell := range c.cells {
		if cell != 0 {
			f.bits[i/64] |= 1 << (uint32(i) % 64)
		}
	}
	// Cardinality bookkeeping: the flat filter's n is the net member count.
	if c.n > 0 {
		f.n = uint64(c.n)
	}
	return f
}

// String summarizes the filter for logs.
func (c *Counting) String() string {
	return fmt.Sprintf("counting-bloom{m=%d k=%d members=%d fill=%.3f}", c.m, c.k, c.n, c.FillRatio())
}
