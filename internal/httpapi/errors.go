package httpapi

import (
	"encoding/json"
	"net/http"
)

// Error codes of the versioned wire surface. The envelope replaces the
// ad-hoc text/plain bodies of the unversioned API: clients branch on the
// machine-readable code, humans read the message, and both travel in one
// JSON document regardless of which handler produced the failure.
const (
	// CodeBadRequest: the request is malformed (missing or unparsable
	// parameter). Retrying without change cannot succeed.
	CodeBadRequest = "bad_request"
	// CodeNotFound: the referenced resource (page path, product) does not
	// exist at the origin.
	CodeNotFound = "not_found"
	// CodeUnavailable: a transient service-side failure; the request is
	// safe to retry (the client resilience layer maps 5xx to ErrUpstream).
	CodeUnavailable = "unavailable"
	// CodeInternal: an unexpected service-side error.
	CodeInternal = "internal"
)

// ErrorBody is the typed JSON error envelope every /v1/ endpoint (and,
// since the same handlers back them, every legacy alias) returns on
// failure:
//
//	{"error":{"code":"not_found","message":"render /nope: no route"}}
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code and the human-readable
// message of one failure.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteError emits the envelope with the given HTTP status. It is the
// only failure path handlers use; http.Error and its text/plain bodies
// are retired from this package. Exported because the envelope is the
// /v1 surface's error contract, not this package's private shape: the
// cluster node endpoints (internal/cluster, which stays behind the
// shared-infra import fence and therefore mirrors rather than imports
// this) are pinned wire-compatible against it by test.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}
