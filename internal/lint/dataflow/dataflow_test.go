package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkPkg type-checks one synthetic package from source and returns it
// in the engine's shape.
func checkPkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{file}, Types: pkg, Info: info}
}

// testConfig builds a TaintConfig resembling the piiflow client: the
// synthetic package "idpkg" is identity-bearing, fields "email" and
// "user_id" are PII while "region" is clean, Scrub is a sanitizer, and
// Emit is the lone sink.
func testConfig() TaintConfig {
	return TaintConfig{
		ClassifyField: func(canonical string) FieldClass {
			switch canonical {
			case "region", "path", "product_id":
				return FieldClean
			}
			return FieldPII
		},
		IsIdentityPkg: func(p string) bool { return p == "tstpkg" },
		IsSanitizer: func(fn *types.Func) bool {
			return fn.Name() == "Scrub"
		},
		Sinks: []SinkSpec{{
			Description: "emit sink",
			Match:       func(fn *types.Func) bool { return strings.HasPrefix(fn.Name(), "Emit") },
		}},
	}
}

func findings(t *testing.T, src string) []Finding {
	t.Helper()
	pkg := checkPkg(t, "tstpkg", src)
	prog := NewProgram([]*Package{pkg})
	ta := NewTaintAnalysis(prog, testConfig())
	return ta.Findings()
}

const idPrelude = `package tstpkg

type User struct {
	Email  string
	UserID string
	Region string
}

func Emit(s string) {}
func Scrub(s string) string { return "x" + "" }
`

func TestTaintDirectFlow(t *testing.T) {
	fs := findings(t, idPrelude+`
func leak(u User) {
	Emit(u.Email)
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %d: %+v", len(fs), fs)
	}
	if fs[0].Sink != "emit sink" {
		t.Fatalf("sink = %q", fs[0].Sink)
	}
}

func TestTaintTwoHopFlow(t *testing.T) {
	fs := findings(t, idPrelude+`
func leak(u User) {
	relay(u.Email)
}

func relay(s string) { inner(s) }

func inner(s string) { Emit(s) }
`)
	// One finding in leak (where PII originates) — the chain walks
	// relay -> inner -> Emit.
	var got *Finding
	for i := range fs {
		if strings.Contains(fs[i].Chain[0], "relay") {
			got = &fs[i]
		}
	}
	if got == nil {
		t.Fatalf("no finding entering relay: %+v", fs)
	}
	if len(got.Chain) != 3 {
		t.Fatalf("chain = %v, want 3 hops", got.Chain)
	}
}

func TestTaintSanitizerCutsFlow(t *testing.T) {
	fs := findings(t, idPrelude+`
func ok(u User) {
	Emit(Scrub(u.Email))
}
`)
	if len(fs) != 0 {
		t.Fatalf("sanitized flow reported: %+v", fs)
	}
}

func TestTaintCleanFieldNotTainted(t *testing.T) {
	fs := findings(t, idPrelude+`
func ok(u User) {
	Emit(u.Region)
}
`)
	if len(fs) != 0 {
		t.Fatalf("clean field reported: %+v", fs)
	}
}

func TestTaintFieldSensitiveStore(t *testing.T) {
	fs := findings(t, idPrelude+`
func leak(u User) {
	var v User
	v.Email = u.Email
	Emit(v.Email)
}

func ok(u User) {
	var v User
	v.Email = u.Email
	Emit(v.Region)
}
`)
	if len(fs) != 1 {
		t.Fatalf("want exactly the v.Email flow, got %d: %+v", len(fs), fs)
	}
}

func TestTaintThroughLocalsAndReturns(t *testing.T) {
	fs := findings(t, idPrelude+`
func pick(u User) string { return u.Email }

func leak(u User) {
	s := pick(u)
	t := s + "!"
	Emit(t)
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %d: %+v", len(fs), fs)
	}
}

func TestTaintRecursionConverges(t *testing.T) {
	fs := findings(t, idPrelude+`
func ping(s string, n int) string {
	if n == 0 {
		return s
	}
	return pong(s, n-1)
}

func pong(s string, n int) string {
	return ping(s, n)
}

func leak(u User) {
	Emit(ping(u.Email, 3))
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding through mutual recursion, got %d: %+v", len(fs), fs)
	}
}

func TestTaintComparisonDoesNotCarry(t *testing.T) {
	fs := findings(t, idPrelude+`
func ok(u User) {
	if u.Email == "x" {
		Emit("constant")
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("comparison carried taint: %+v", fs)
	}
}

func TestTaintIdentityValueWhole(t *testing.T) {
	// Identity genesis: a value whose type is declared in an identity
	// package is tainted as a whole — serializing the struct itself
	// carries its PII fields with it.
	fs := findings(t, idPrelude+`
func EmitAny(v interface{}) {}

func leak(u User) {
	EmitAny(u)
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding for whole-value leak, got %d: %+v", len(fs), fs)
	}
	joined := strings.Join(fs[0].Sources, ",")
	if !strings.Contains(joined, "User value") {
		t.Fatalf("sources = %v, want identity-value genesis", fs[0].Sources)
	}
}

func TestBottomUpOrder(t *testing.T) {
	pkg := checkPkg(t, "tstpkg", `package tstpkg

func a() { b() }
func b() { c() }
func c() {}
`)
	prog := NewProgram([]*Package{pkg})
	var order []string
	prog.BottomUp(func(fi *FuncInfo) bool {
		order = append(order, fi.Obj.Name())
		return false
	})
	if len(order) != 3 || order[0] != "c" || order[2] != "a" {
		t.Fatalf("bottom-up order = %v, want [c b a]", order)
	}
}

func TestDirectives(t *testing.T) {
	pkg := checkPkg(t, "tstpkg", `package tstpkg

// hot is special.
//
//speedkit:hotpath
func hot() {}

func cold() {}
`)
	prog := NewProgram([]*Package{pkg})
	var hot, cold *FuncInfo
	for _, fi := range prog.Funcs {
		switch fi.Obj.Name() {
		case "hot":
			hot = fi
		case "cold":
			cold = fi
		}
	}
	if hot == nil || !hot.HasDirective("speedkit:hotpath") {
		t.Fatalf("hot directive missing: %+v", hot)
	}
	if cold.HasDirective("speedkit:hotpath") {
		t.Fatalf("cold should not carry the directive")
	}
}

func TestAllocDirectAndTransitive(t *testing.T) {
	pkg := checkPkg(t, "tstpkg", `package tstpkg

func helper() []int { return make([]int, 4) }

func direct() {
	defer func() {}()
}

func transitive() int {
	v := helper()
	return v[0]
}

func clean(a, b int) int { return a + b }
`)
	prog := NewProgram([]*Package{pkg})
	aa := NewAllocAnalysis(prog)
	byName := map[string]*FuncInfo{}
	for _, fi := range prog.Funcs {
		byName[fi.Obj.Name()] = fi
	}
	if !aa.Allocates(byName["direct"]) {
		t.Fatalf("direct: defer + closure not flagged")
	}
	if !aa.Allocates(byName["transitive"]) {
		t.Fatalf("transitive: call to make-ing helper not flagged")
	}
	if aa.Allocates(byName["clean"]) {
		t.Fatalf("clean flagged: %+v", aa.Findings(byName["clean"]))
	}
	fs := aa.Findings(byName["transitive"])
	foundChain := false
	for _, f := range fs {
		if len(f.Chain) > 0 && strings.Contains(f.Chain[0], "helper") {
			foundChain = true
		}
	}
	if !foundChain {
		t.Fatalf("transitive finding lacks chain: %+v", fs)
	}
}

func TestAllocBoxing(t *testing.T) {
	pkg := checkPkg(t, "tstpkg", `package tstpkg

func sink(v interface{}) {}

func boxes(n int) { sink(n) }

func pointerOK(p *int) { sink(p) }
`)
	prog := NewProgram([]*Package{pkg})
	aa := NewAllocAnalysis(prog)
	byName := map[string]*FuncInfo{}
	for _, fi := range prog.Funcs {
		byName[fi.Obj.Name()] = fi
	}
	if !aa.Allocates(byName["boxes"]) {
		t.Fatalf("int -> interface{} not flagged")
	}
	if aa.Allocates(byName["pointerOK"]) {
		t.Fatalf("pointer boxing false positive: %+v", aa.Findings(byName["pointerOK"]))
	}
}

func TestCanonicalField(t *testing.T) {
	cases := map[string]string{
		"UserID":    "user_id",
		"Email":     "email",
		"IP":        "ip",
		"HashedID":  "hashed_id",
		"ABBucket":  "ab_bucket",
		"ProductID": "product_id",
		"Name":      "name",
	}
	for in, want := range cases {
		if got := CanonicalField(in); got != want {
			t.Errorf("CanonicalField(%q) = %q, want %q", in, got, want)
		}
	}
}
