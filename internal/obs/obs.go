// Package obs is the observability substrate of the Speed Kit
// reproduction: a labeled metrics registry with a Prometheus-style text
// exposition writer, and a sampling request tracer whose spans follow a
// page load through the client proxy, the CDN path, the origin, and the
// invalidation pipeline.
//
// The package sits strictly on the anonymous side of the paper's
// client/CDN split. Two mechanisms enforce that:
//
//   - at registration time, every label key is validated against
//     gdpr.PIIFields(): a PII-classified key (user_id, email, cart, ...)
//     panics before a single sample can be recorded under it;
//   - at build time, the obslabels analyzer in internal/lint statically
//     rejects identity-derived expressions (anything typed by
//     internal/session or internal/gdpr) flowing into label positions,
//     and forbids shared-infrastructure packages from importing obs at
//     all, so the registry can never become a transitive identity leak.
//
// Telemetry must also never tax the request path it observes: disabled
// or unsampled tracing is a single atomic load (plus one add when
// sampling is on) and allocates nothing, and hot-path metric updates go
// through handles resolved once at construction, not per-request name
// lookups. The AllocsPerRun tests in alloc_test.go and the hot-path
// benchmarks pin both properties.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"speedkit/internal/gdpr"
)

// Label is one key/value dimension of a metric series or trace. Keys are
// static snake_case identifiers from the metric catalog (DESIGN.md);
// values must come from small, closed sets ("cdn", "origin", "eu", ...)
// — never from request data that identifies a person.
type Label struct {
	Key   string
	Value string
}

// L builds a Label. The obslabels analyzer checks call sites of this
// function: constant PII keys and identity-derived value expressions are
// build errors.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// maxLabels bounds the label set of a single metric family. Observability
// labels are dimensions, not payloads; more than a handful means a
// cardinality problem is being designed in.
const maxLabels = 6

// piiLabelKeys is the registration-time deny list, built once from the
// same classification the runtime flow auditor and the static analyzers
// use, so all three gates can never disagree about what counts as PII.
var piiLabelKeys = func() map[string]bool {
	m := make(map[string]bool)
	for _, f := range gdpr.PIIFields() {
		m[f] = true
	}
	return m
}()

// validateName panics unless name is a well-formed dotted metric name:
// lowercase snake_case segments separated by single dots, e.g.
// "speedkit.fetch.total".
func validateName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for _, seg := range strings.Split(name, ".") {
		if !validSegment(seg) {
			panic(fmt.Sprintf("obs: invalid metric name %q (want dotted lowercase snake_case)", name))
		}
	}
}

func validSegment(seg string) bool {
	if seg == "" {
		return false
	}
	for i, r := range seg {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_' && i > 0:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// validateLabels panics on malformed, duplicate, oversized, or
// PII-classified label keys. It returns the labels sorted by key — the
// canonical order used for series identity and exposition.
func validateLabels(name string, labels []Label) []Label {
	if len(labels) > maxLabels {
		panic(fmt.Sprintf("obs: metric %q has %d labels (max %d)", name, len(labels), maxLabels))
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, l := range sorted {
		if !validSegment(l.Key) {
			panic(fmt.Sprintf("obs: metric %q has invalid label key %q", name, l.Key))
		}
		if piiLabelKeys[l.Key] {
			panic(fmt.Sprintf("obs: metric %q label key %q classifies as PII; observability stays on the anonymous side of the GDPR boundary", name, l.Key))
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: metric %q has duplicate label key %q", name, l.Key))
		}
	}
	return sorted
}

// signature renders sorted labels as the series identity string.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}
