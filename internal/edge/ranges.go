package edge

import (
	"strconv"
	"strings"
)

// byteRange is one closed interval [start, end] of a cached body.
type byteRange struct {
	start, end int64
}

func (r byteRange) length() int64 { return r.end - r.start + 1 }

// parseRange interprets a Range header against a body of the given
// size. It handles the single-range forms of RFC 9110 §14:
//
//	bytes=0-99    explicit interval (end clamped to the body)
//	bytes=100-    open interval to the end
//	bytes=-50     suffix: the final 50 bytes
//
// Returns (range, ok, unsatisfiable). ok=false means the header should
// be ignored and the full body served — the RFC's required behavior for
// syntactically invalid or multi-range specs a server chooses not to
// honor. unsatisfiable=true demands a 416 with Content-Range: bytes */size:
// the spec parsed but selects no bytes (start at or past the end, or a
// zero-length suffix).
func parseRange(spec string, size int64) (byteRange, bool, bool) {
	spec = strings.TrimSpace(spec)
	rest, ok := strings.CutPrefix(spec, "bytes=")
	if !ok || strings.Contains(rest, ",") {
		return byteRange{}, false, false
	}
	first, last, ok := strings.Cut(rest, "-")
	if !ok {
		return byteRange{}, false, false
	}
	first, last = strings.TrimSpace(first), strings.TrimSpace(last)
	if first == "" {
		// Suffix form: the final N bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n < 0 {
			return byteRange{}, false, false
		}
		if n == 0 || size == 0 {
			return byteRange{}, false, true
		}
		if n > size {
			n = size
		}
		return byteRange{start: size - n, end: size - 1}, true, false
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return byteRange{}, false, false
	}
	if start >= size {
		return byteRange{}, false, true
	}
	end := size - 1
	if last != "" {
		e, err := strconv.ParseInt(last, 10, 64)
		if err != nil || e < start {
			return byteRange{}, false, false
		}
		if e < end {
			end = e
		}
	}
	return byteRange{start: start, end: end}, true, false
}
