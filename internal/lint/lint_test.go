package lint

import (
	"go/token"
	"testing"
)

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"speedkit/internal/cache", "internal/cache", true},
		{"speedkit/internal/cachesketch", "internal/cache", false},
		{"internal/cache", "internal/cache", true},
		{"fixture/internal/cdn", "internal/cdn", true},
		{"speedkit/internal/clock/impl", "internal/clock", true},
		{"speedkit/internal/session", "internal/gdpr", false},
		{"cache", "internal/cache", false},
	}
	for _, c := range cases {
		if got := pathHasSegment(c.path, c.seg); got != c.want {
			t.Errorf("pathHasSegment(%q, %q) = %t, want %t", c.path, c.seg, got, c.want)
		}
	}
}

func TestFieldToCanonical(t *testing.T) {
	cases := map[string]string{
		"Email":        "email",
		"UserID":       "user_id",
		"Cart":         "cart",
		"HTTPServer":   "http_server",
		"ABBucket":     "ab_bucket",
		"path":         "path",
		"SessionToken": "session_token",
	}
	for in, want := range cases {
		if got := fieldToCanonical(in); got != want {
			t.Errorf("fieldToCanonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 12, Column: 3},
		Analyzer: "clockdiscipline",
		Message:  "direct time.Now",
	}
	if got, want := d.String(), "x.go:12: [clockdiscipline] direct time.Now"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAnalyzersAreRegistered(t *testing.T) {
	want := map[string]bool{
		"gdprboundary": true, "clockdiscipline": true,
		"lockcheck": true, "randdiscipline": true,
		"obslabels": true, "piiflow": true, "hotpathalloc": true,
	}
	for _, a := range Analyzers() {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %q missing doc", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
	}
	for name := range want {
		t.Errorf("analyzer %q not registered", name)
	}
}
