package proxy

import (
	"context"
	"errors"
	"strconv"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/clock"
	"speedkit/internal/obs"
	"speedkit/internal/resilience"
)

// ResilienceConfig shapes the proxy's retry, budget, and breaker
// behavior. The zero value yields the defaults noted per field; budgets
// are off by default so plain configurations keep their exact pre-
// resilience latency accounting.
type ResilienceConfig struct {
	// RetryMax is the number of retries after the first attempt for
	// transient (ErrUpstream) failures (default 2; negative disables).
	RetryMax int
	// RetryBase is the first backoff delay (default 50ms).
	RetryBase time.Duration
	// RetryMaxDelay caps the exponential backoff (default 2s).
	RetryMaxDelay time.Duration
	// RetryJitter is the ± fraction applied to each delay (default 0.5).
	RetryJitter float64
	// LoadBudget bounds the accumulated (simulated) latency a single
	// Load may spend on network attempts; once exceeded, further
	// attempts fail with ErrBudgetExceeded and the degradation ladder
	// takes over. Zero disables the budget.
	LoadBudget time.Duration
	// BreakerThreshold is the consecutive-failure count that opens an
	// upstream's circuit (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// admitting a half-open probe (default 15s).
	BreakerCooldown time.Duration
	// Seed drives the backoff jitter RNG, so retry schedules are
	// reproducible (default 1).
	Seed int64
}

func (r *ResilienceConfig) applyDefaults() {
	if r.RetryMax == 0 {
		r.RetryMax = 2
	}
	if r.RetryMax < 0 {
		r.RetryMax = 0
	}
	if r.RetryBase <= 0 {
		r.RetryBase = 50 * time.Millisecond
	}
	if r.RetryMaxDelay <= 0 {
		r.RetryMaxDelay = 2 * time.Second
	}
	if r.RetryJitter <= 0 {
		r.RetryJitter = 0.5
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = 5
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 15 * time.Second
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// budgetLeft reports whether the load still has latency budget for
// another network attempt.
func (p *Proxy) budgetLeft(res *PageLoad) bool {
	b := p.cfg.Resilience.LoadBudget
	return b <= 0 || res.Latency < b
}

// withRetry runs one logical upstream call through the resilience
// layer: breaker admission, per-load budget, and jittered exponential
// retries for transient (ErrUpstream) failures. Backoff delays are
// added to the load's simulated latency and slept on sleeping clocks
// (clock.Sleep) so real deployments actually back off.
//
// Outcome mapping: ErrOffline fails fast (the offline ladder handles
// it); application errors resolve the breaker as success (the upstream
// answered) and propagate unchanged; ctx cancellation is never retried.
// Sampled traces riding the ctx (obs.ContextWithTrace) collect the
// resilience decisions as events: each retry attempt, breaker
// rejections, breaker opens, and an exhausted budget — so a degraded
// load's trace explains which rung fired and why. The unsampled path
// pays one ctx lookup; every event call is a nil-safe no-op.
func (p *Proxy) withRetry(ctx context.Context, res *PageLoad, br *resilience.Breaker, upstream string, op func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := obs.TraceFromContext(ctx)
	if !p.budgetLeft(res) {
		tr.AddEvent("budget.exhausted", upstream)
		return ErrBudgetExceeded
	}
	if !br.Allow() {
		tr.AddEvent("breaker.rejected", upstream)
		return ErrCircuitOpen
	}
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			br.Success()
			return nil
		}
		switch {
		case errors.Is(err, ErrOffline):
			// Unreachable: count it against the breaker (so persistent
			// partitions open the circuit) but never retry — the offline
			// ladder answers faster than any backoff schedule.
			br.Failure()
			tr.AddEvent("offline", upstream)
			return err
		case errors.Is(err, ErrUpstream):
			br.Failure()
			if br.State() == resilience.Open {
				tr.AddEvent("breaker.open", upstream)
				return err
			}
			if attempt >= p.cfg.Resilience.RetryMax {
				return err
			}
			tr.AddEvent("retry", upstream+" attempt="+strconv.Itoa(attempt+1))
			delay := p.backoff.Delay(p.rng, attempt)
			res.Latency += delay
			p.stats.Retries++
			if p.m != nil {
				p.m.retries.Inc()
			}
			clock.Sleep(p.cfg.Clock, delay)
			if err := ctx.Err(); err != nil {
				return err
			}
			if !p.budgetLeft(res) {
				tr.AddEvent("budget.exhausted", upstream)
				return ErrBudgetExceeded
			}
		default:
			// The upstream answered with an application error: healthy
			// connectivity, nothing to retry or count as a fault.
			br.Success()
			return err
		}
	}
}

// markDegraded records a degradation decision: the first reason sticks
// on the PageLoad (later rungs refine, they don't replace), every
// decision is counted, and sampled traces carry the reason.
func (p *Proxy) markDegraded(res *PageLoad, trace *obs.Trace, reason DegradeReason) {
	if res.Degraded == DegradeNone {
		res.Degraded = reason
	}
	p.stats.Degraded++
	if p.m != nil {
		if c := p.m.degraded[reason]; c != nil {
			c.Inc()
		}
	}
	trace.MarkDegraded(string(reason))
	trace.AddEvent("degraded", string(reason))
}

// heldWithinDelta returns a held device copy of path whose StoredAt is
// within Δ of now. Serving such a copy preserves Δ-atomicity without
// consulting the sketch: any invalidating write necessarily postdates
// StoredAt, which is at most Δ ago.
func (p *Proxy) heldWithinDelta(path string) (cache.Entry, bool) {
	held, ok := p.store.PeekAny(path)
	if !ok || clock.Since(p.cfg.Clock, held.StoredAt) > p.cfg.Delta {
		return cache.Entry{}, false
	}
	return held, true
}

// BreakerStates reports the sketch, shell, and blocks breaker states,
// for diagnostics and tests.
func (p *Proxy) BreakerStates() (sketch, shell, blocks resilience.State) {
	return p.brSketch.State(), p.brShell.State(), p.brBlocks.State()
}

// BreakerStats reports the per-upstream breaker counters.
func (p *Proxy) BreakerStats() (sketch, shell, blocks resilience.BreakerStats) {
	return p.brSketch.Stats(), p.brShell.Stats(), p.brBlocks.Stats()
}
