package lint

import "encoding/json"

// SARIF renders findings as a SARIF 2.1.0 log — the subset code-scanning
// UIs ingest: one run, one rule per analyzer, one result per finding with a
// physical location and a baselineState ("new" for fresh findings,
// "unchanged" for baselined ones). Diagnostics should carry module-relative
// paths; the run declares SRCROOT as the uri base so viewers resolve them
// against the checkout.
func SARIF(analyzers []*Analyzer, fresh, baselined []Diagnostic) ([]byte, error) {
	var rules []sarifRule
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(fresh)+len(baselined))
	for _, d := range fresh {
		results = append(results, sarifResultOf(d, "new"))
	}
	for _, d := range baselined {
		results = append(results, sarifResultOf(d, "unchanged"))
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "speedkit-lint",
				Rules: rules,
			}},
			OriginalURIBases: map[string]sarifURIBase{
				"SRCROOT": {URI: "file:///"},
			},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

func sarifResultOf(d Diagnostic, state string) sarifResult {
	return sarifResult{
		RuleID:        d.Analyzer,
		Level:         "error",
		Message:       sarifText{Text: d.Message},
		BaselineState: state,
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{
					URI:       d.Pos.Filename,
					URIBaseID: "SRCROOT",
				},
				Region: sarifRegion{StartLine: d.Pos.Line},
			},
		}},
	}
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool             sarifTool               `json:"tool"`
	OriginalURIBases map[string]sarifURIBase `json:"originalUriBaseIds,omitempty"`
	Results          []sarifResult           `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifURIBase struct {
	URI string `json:"uri"`
}

type sarifResult struct {
	RuleID        string          `json:"ruleId"`
	Level         string          `json:"level"`
	Message       sarifText       `json:"message"`
	BaselineState string          `json:"baselineState,omitempty"`
	Locations     []sarifLocation `json:"locations"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}
