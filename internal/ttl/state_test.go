package ttl

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"speedkit/internal/clock"
)

// buildEstimator produces an estimator with varied per-resource history.
func buildEstimator(sim *clock.Simulated) *Estimator {
	e := NewEstimator(Config{Clock: sim})
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("/res/%02d", i)
		for r := 0; r <= i%5; r++ {
			e.RecordRead(id)
			sim.Advance(time.Duration(1+i%7) * time.Second)
		}
		for w := 0; w <= i%3; w++ {
			e.RecordWrite(id)
			sim.Advance(time.Duration(2+i%11) * time.Second)
		}
	}
	return e
}

func TestEstimatorStateRoundTrip(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	e := buildEstimator(sim)

	blob := e.ExportState()
	e2 := NewEstimator(Config{Clock: sim})
	if err := e2.ImportState(blob); err != nil {
		t.Fatalf("ImportState: %v", err)
	}

	// Deterministic round-trip: re-export is byte-identical.
	if !bytes.Equal(blob, e2.ExportState()) {
		t.Fatal("re-exported state differs from original export")
	}
	// Exporting twice from the same estimator is also byte-identical
	// (sorted keys, no map-order leakage).
	if !bytes.Equal(e.ExportState(), e.ExportState()) {
		t.Fatal("repeated export is not deterministic")
	}
	if e2.Tracked() != e.Tracked() {
		t.Fatalf("Tracked %d != %d", e2.Tracked(), e.Tracked())
	}
	// Behavioural equivalence: identical TTLs and rates everywhere.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("/res/%02d", i)
		if e.TTL(id) != e2.TTL(id) {
			t.Fatalf("%s: TTL %v != %v", id, e.TTL(id), e2.TTL(id))
		}
		if e.WriteRate(id) != e2.WriteRate(id) {
			t.Fatalf("%s: WriteRate mismatch", id)
		}
		if e.ReadRate(id) != e2.ReadRate(id) {
			t.Fatalf("%s: ReadRate mismatch", id)
		}
		r1, w1, _ := e.Snapshot(id)
		r2, w2, _ := e2.Snapshot(id)
		if r1 != r2 || w1 != w2 {
			t.Fatalf("%s: counters (%d,%d) != (%d,%d)", id, r1, w1, r2, w2)
		}
	}
	// The EWMA chain continues seamlessly: the next observation updates
	// both estimators identically.
	sim.Advance(13 * time.Second)
	e.RecordWrite("/res/05")
	e2.RecordWrite("/res/05")
	if e.TTL("/res/05") != e2.TTL("/res/05") {
		t.Fatal("post-import observation diverged")
	}
}

func TestEstimatorImportRejectsGarbage(t *testing.T) {
	e := NewEstimator(Config{})
	for _, blob := range [][]byte{nil, {1, 2, 3}, []byte("SKTExxxxxxxx")} {
		if err := e.ImportState(blob); err == nil {
			t.Fatalf("ImportState(%v) accepted garbage", blob)
		}
	}
	// Truncated valid blob.
	sim := clock.NewSimulated(time.Time{})
	good := buildEstimator(sim).ExportState()
	if err := e.ImportState(good[:len(good)-5]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestEstimatorReset(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	e := buildEstimator(sim)
	if e.Tracked() == 0 {
		t.Fatal("setup produced no state")
	}
	e.Reset()
	if e.Tracked() != 0 {
		t.Fatalf("Tracked = %d after Reset", e.Tracked())
	}
}
