module speedkit

go 1.22
