// Package faults implements a deterministic, seed-driven fault injector
// for chaos experiments. Rules are keyed per component (origin fetch,
// sketch fetch, invalidation delivery, CDN purge) and come in three
// kinds — transient errors, latency spikes, and blackholes — shaped by a
// per-decision probability, an optional burst length (one trigger faults
// several consecutive calls, modelling outages rather than isolated
// drops), and an optional scheduled activity window.
//
// Determinism is the whole point: every random draw comes from a
// per-component *rand.Rand seeded from the injector seed and the
// component name, and the activity windows are evaluated against the
// injected clock.Clock. A seed-pinned simulation therefore produces a
// byte-identical fault schedule on every run, which is what lets the
// chaos harness assert invariants ("every served page is Δ-atomic")
// instead of eyeballing flaky runs. The full decision log is retained;
// ScheduleHash folds it into one comparable fingerprint.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"speedkit/internal/clock"
)

// Component names an injection point in the deployment.
type Component string

// The injection points the chaos harness drives.
const (
	// OriginFetch is the device→service shell fetch path (CDN + origin).
	OriginFetch Component = "origin_fetch"
	// SketchFetch is the device→edge sketch download.
	SketchFetch Component = "sketch_fetch"
	// Invalidation is the server-side write→sketch delivery hop.
	Invalidation Component = "invalidation"
	// CDNPurge is the server-side purge fan-out to the edges.
	CDNPurge Component = "cdn_purge"
	// WALAppend is the durability log's record-append path; Crash rules
	// here kill the process mid-write, leaving a torn frame on disk.
	WALAppend Component = "wal_append"
	// WALFsync is the durability log's group-commit fsync; Crash rules
	// here kill the process with acknowledged-but-unsynced records.
	WALFsync Component = "wal_fsync"
	// SnapshotWrite is the durable snapshot writer; Crash rules here kill
	// the process with a half-written temp file (never renamed into place).
	SnapshotWrite Component = "snapshot_write"
	// NodeKill is the cluster-node process-death point: Crash rules here
	// kill one whole node (its sketch shard, matcher shard, and WAL go
	// down together) until the driver recovers it from its durable dir.
	NodeKill Component = "node_kill"
	// DeltaExchange is the inter-node sketch delta-exchange hop; Blackhole
	// rules here partition a node away from the merge layer, Error rules
	// drop one exchange round.
	DeltaExchange Component = "delta_exchange"
)

// Components lists the canonical injection points in report order.
func Components() []Component {
	return []Component{OriginFetch, SketchFetch, Invalidation, CDNPurge,
		WALAppend, WALFsync, SnapshotWrite, NodeKill, DeltaExchange}
}

// Kind classifies a fault.
type Kind int

// Fault kinds.
const (
	// None: the call proceeds unfaulted.
	None Kind = iota
	// Error: the call fails with a transient, retryable error.
	Error
	// Latency: the call succeeds but pays an added latency spike.
	Latency
	// Blackhole: the component is unreachable — the network-partition
	// failure mode; callers map it onto their offline error.
	Blackhole
	// Crash: the process is killed at this injection point. Durability
	// code reacts by persisting only a deterministic torn prefix of the
	// in-flight write and going dead until recovery reopens it.
	Crash
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Latency:
		return "latency"
	case Blackhole:
		return "blackhole"
	case Crash:
		return "crash"
	}
	return "unknown"
}

// ErrInjected marks an injected transient fault. Callers surface it as a
// retryable upstream failure.
var ErrInjected = errors.New("faults: injected transient error")

// ErrBlackhole marks an injected partition. Callers surface it as their
// unreachable/offline failure mode.
var ErrBlackhole = errors.New("faults: injected blackhole")

// ErrCrash marks an injected process kill at a durability injection
// point. The component that drew it must behave as if the process died
// mid-operation: persist nothing beyond the torn prefix and refuse all
// further work until recovery reopens it.
var ErrCrash = errors.New("faults: injected crash")

// Rule shapes fault injection for one component.
type Rule struct {
	Component Component
	Kind      Kind
	// Probability is the chance each decision triggers the rule.
	Probability float64
	// Burst makes one trigger fault this many consecutive decisions
	// (default 1): outages cluster, they don't arrive i.i.d.
	Burst int
	// Latency is the added delay for Latency faults (default 250 ms).
	Latency time.Duration
	// TornBytes is, for Crash faults against write paths, how many bytes
	// of the in-flight write reach stable storage before the kill. Zero
	// lets the injection point derive a deterministic offset of its own
	// (the WAL uses the record sequence number), so successive crashes
	// tear frames at different seeded offsets.
	TornBytes int
	// After/Until bound the rule's activity window, measured from the
	// injector's start on its clock. Zero After means "from the start";
	// zero Until means "forever".
	After, Until time.Duration
}

// Decision is the outcome of one injection point consultation.
type Decision struct {
	Kind Kind
	// Latency is the delay to add (Latency faults only).
	Latency time.Duration
	// TornBytes is the crash rule's torn-write prefix length (Crash
	// faults only; zero means "derive deterministically at the point").
	TornBytes int
	// Err is non-nil for Error (ErrInjected), Blackhole (ErrBlackhole),
	// and Crash (ErrCrash) faults.
	Err error
}

// Faulted reports whether the call should be perturbed.
func (d Decision) Faulted() bool { return d.Kind != None }

// Event is one recorded injected fault.
type Event struct {
	// Seq orders events across all components.
	Seq uint64
	// Call is the per-component decision index that drew the fault.
	Call      uint64
	Component Component
	Kind      Kind
	// Offset is the injector-clock time since New.
	Offset time.Duration
}

// compState is the per-component deterministic fault stream.
type compState struct {
	rules     []Rule
	rng       *rand.Rand
	decisions uint64
	// Burst continuation: remaining faulted calls and their shape.
	burstLeft    int
	burstKind    Kind
	burstLatency time.Duration
	burstTorn    int
	injected     map[Kind]uint64
}

// Injector draws fault decisions. Safe for concurrent use; within one
// component the decision stream is a deterministic function of (seed,
// call index, clock), so single-threaded harnesses replay byte-identically.
// A nil *Injector is fully disabled: Decide returns the zero Decision.
type Injector struct {
	clk   clock.Clock
	start time.Time

	mu     sync.Mutex
	comps  map[Component]*compState // guarded by mu
	events []Event                  // guarded by mu
	seq    uint64                   // guarded by mu
}

// New creates an injector over the given clock (default the system
// clock) with a deterministic seed. Rules are grouped per component;
// each component draws from its own rand.Rand seeded from (seed,
// component), so interleavings across components cannot perturb a
// component's schedule.
func New(clk clock.Clock, seed int64, rules ...Rule) *Injector {
	if clk == nil {
		clk = clock.System
	}
	inj := &Injector{
		clk:   clk,
		start: clk.Now(),
		comps: make(map[Component]*compState),
	}
	for _, r := range rules {
		if r.Probability <= 0 || r.Kind == None {
			continue
		}
		if r.Burst <= 0 {
			r.Burst = 1
		}
		if r.Kind == Latency && r.Latency <= 0 {
			r.Latency = 250 * time.Millisecond
		}
		st := inj.comps[r.Component]
		if st == nil {
			h := fnv.New64a()
			h.Write([]byte(r.Component))
			st = &compState{
				rng:      rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
				injected: make(map[Kind]uint64),
			}
			inj.comps[r.Component] = st
		}
		st.rules = append(st.rules, r)
	}
	return inj
}

// Decide consults the injector at one injection point. Exactly one
// rule-ordered scan runs per call; burst continuations replay the
// triggering rule's shape without new random draws.
func (i *Injector) Decide(c Component) Decision {
	if i == nil {
		return Decision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	st := i.comps[c]
	if st == nil {
		return Decision{}
	}
	call := st.decisions
	st.decisions++
	if st.burstLeft > 0 {
		st.burstLeft--
		return i.record(c, st, call, st.burstKind, st.burstLatency, st.burstTorn)
	}
	off := i.clk.Now().Sub(i.start)
	// Every rule draws on every decision, active or not, and the winner
	// is picked afterwards: a rule's activity window can therefore never
	// shift the randomness consumed by the rules after it.
	winner := -1
	for idx, r := range st.rules {
		hit := st.rng.Float64() < r.Probability
		if !hit || winner >= 0 {
			continue
		}
		if off < r.After || (r.Until > 0 && off >= r.Until) {
			continue
		}
		winner = idx
	}
	if winner < 0 {
		return Decision{}
	}
	r := st.rules[winner]
	if r.Burst > 1 {
		st.burstLeft = r.Burst - 1
		st.burstKind = r.Kind
		st.burstLatency = r.Latency
		st.burstTorn = r.TornBytes
	}
	return i.record(c, st, call, r.Kind, r.Latency, r.TornBytes)
}

// record must hold i.mu: it logs the event and builds the Decision.
func (i *Injector) record(c Component, st *compState, call uint64, k Kind, lat time.Duration, torn int) Decision {
	st.injected[k]++
	i.seq++
	i.events = append(i.events, Event{
		Seq: i.seq, Call: call, Component: c, Kind: k,
		Offset: i.clk.Now().Sub(i.start),
	})
	d := Decision{Kind: k, Latency: lat, TornBytes: torn}
	switch k {
	case Error:
		d.Err = ErrInjected
	case Blackhole:
		d.Err = ErrBlackhole
	case Crash:
		d.Err = ErrCrash
	}
	return d
}

// Schedule returns a copy of the injected-fault log, in decision order.
func (i *Injector) Schedule() []Event {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Event, len(i.events))
	copy(out, i.events)
	return out
}

// ScheduleHash folds the fault schedule into one FNV-1a fingerprint.
// Two runs are byte-reproducible iff their hashes match.
func (i *Injector) ScheduleHash() uint64 {
	h := fnv.New64a()
	for _, ev := range i.Schedule() {
		fmt.Fprintf(h, "%d|%d|%s|%d|%d\n", ev.Seq, ev.Call, ev.Component, ev.Kind, ev.Offset)
	}
	return h.Sum64()
}

// ComponentStats aggregates one component's injection activity.
type ComponentStats struct {
	// Decisions counts injection-point consultations.
	Decisions uint64
	// Injected counts faults drawn, by kind.
	Injected map[Kind]uint64
}

// Total returns the number of injected faults across kinds.
func (s ComponentStats) Total() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// Rate returns the realized fault rate (injected / decisions).
func (s ComponentStats) Rate() float64 {
	if s.Decisions == 0 {
		return 0
	}
	return float64(s.Total()) / float64(s.Decisions)
}

// Stats returns per-component injection counters.
func (i *Injector) Stats() map[Component]ComponentStats {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Component]ComponentStats, len(i.comps))
	for c, st := range i.comps {
		inj := make(map[Kind]uint64, len(st.injected))
		for k, v := range st.injected {
			inj[k] = v
		}
		out[c] = ComponentStats{Decisions: st.decisions, Injected: inj}
	}
	return out
}

// String renders the per-component injection report, components sorted.
func (i *Injector) String() string {
	st := i.Stats()
	comps := make([]string, 0, len(st))
	for c := range st {
		comps = append(comps, string(c))
	}
	sort.Strings(comps)
	var b strings.Builder
	for _, c := range comps {
		s := st[Component(c)]
		fmt.Fprintf(&b, "%-13s %5d calls, %4d faulted (%.1f%%):", c, s.Decisions, s.Total(), s.Rate()*100)
		for _, k := range []Kind{Error, Latency, Blackhole, Crash} {
			if n := s.Injected[k]; n > 0 {
				fmt.Fprintf(&b, " %s=%d", k, n)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ChaosRules is the canonical chaos profile: every component faulted at
// the given base rate, mixing all three kinds with outage-style bursts
// on the device-facing paths. rate is the total per-call fault
// probability for the sketch and origin fetch paths (the acceptance
// floor for chaos runs is 0.10).
func ChaosRules(rate float64) []Rule {
	if rate <= 0 {
		rate = 0.12
	}
	return []Rule{
		// Shell path: mostly transient errors plus latency spikes and
		// short unreachability bursts.
		{Component: OriginFetch, Kind: Error, Probability: rate * 0.5},
		{Component: OriginFetch, Kind: Latency, Probability: rate * 0.3, Latency: 400 * time.Millisecond},
		{Component: OriginFetch, Kind: Blackhole, Probability: rate * 0.2, Burst: 3},
		// Sketch path: unreachability dominates (the edge is down), with
		// some transient errors.
		{Component: SketchFetch, Kind: Blackhole, Probability: rate * 0.6, Burst: 2},
		{Component: SketchFetch, Kind: Error, Probability: rate * 0.4},
		// Pipeline hops: dropped deliveries that the service must retry.
		{Component: Invalidation, Kind: Error, Probability: rate},
		{Component: CDNPurge, Kind: Error, Probability: rate},
	}
}

// CrashRules is the canonical crash-recovery profile for the durability
// gate: seed-driven process kills on the WAL append and fsync paths and
// during snapshot writes. rate is the per-append kill probability; fsync
// and snapshot kills fire at a quarter of it (they are rarer operations).
// TornBytes is left zero so each kill tears the in-flight frame at a
// deterministic, record-dependent offset.
func CrashRules(rate float64) []Rule {
	if rate <= 0 {
		rate = 0.001
	}
	return []Rule{
		{Component: WALAppend, Kind: Crash, Probability: rate},
		{Component: WALFsync, Kind: Crash, Probability: rate / 4},
		{Component: SnapshotWrite, Kind: Crash, Probability: rate / 4},
	}
}
