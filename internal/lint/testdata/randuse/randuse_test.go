package randuse

import (
	"math/rand"
	"testing"
)

// Test files are exempt from rand discipline: no findings expected here.
func TestGlobalRandAllowedInTests(t *testing.T) {
	if n := rand.Intn(10); n < 0 || n > 9 {
		t.Fatalf("rand.Intn(10) = %d", n)
	}
}
