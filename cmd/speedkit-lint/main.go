// Command speedkit-lint runs the repo-specific static-analysis suite
// (internal/lint) over the whole module: the GDPR-boundary, clock-,
// lock-, and randomness-discipline analyzers that pin the invariants the
// paper's claims depend on.
//
// Usage:
//
//	speedkit-lint [./...]
//
// Diagnostics print one per line as "file:line: [analyzer] message".
// Exit status is 1 if there are findings, 2 on a load or usage error, and
// 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"

	"speedkit/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: speedkit-lint [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The loader always analyzes the whole module; the only accepted
	// pattern is the conventional ./... spelling (or nothing).
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "speedkit-lint: unsupported pattern %q (only ./...)\n", arg)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "speedkit-lint: %v\n", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "speedkit-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := mod.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "speedkit-lint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "speedkit-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
