package cache

import (
	"container/list"
	"sync"
	"time"

	"speedkit/internal/clock"
)

// Store is the concrete Cache implementation shared by all tiers. It
// bounds both entry count and total bytes; whichever limit is hit first
// triggers eviction according to the configured policy. Safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	entries  map[string]*list.Element // guarded by mu
	order    *list.List               // front = next eviction candidate
	clk      clock.Clock
	policy   Policy
	maxItems int
	maxBytes int
	stats    Stats
}

type storedEntry struct {
	entry Entry
	freq  uint64 // LFU use count
	size  int
}

// Config sizes and parameterizes a Store.
type Config struct {
	// MaxItems bounds the entry count; 0 means unlimited.
	MaxItems int
	// MaxBytes bounds the accounted size; 0 means unlimited.
	MaxBytes int
	// Policy selects the eviction policy (default LRU).
	Policy Policy
	// Clock supplies time for expiration (default system clock).
	Clock clock.Clock
}

// New creates a Store from cfg.
func New(cfg Config) *Store {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	return &Store{
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		clk:      clk,
		policy:   cfg.Policy,
		maxItems: cfg.MaxItems,
		maxBytes: cfg.MaxBytes,
	}
}

// Get implements Cache.
func (s *Store) Get(key string) (Entry, bool) {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return Entry{}, false
	}
	se := el.Value.(*storedEntry)
	if se.entry.Expired(now) {
		s.removeLocked(key, el)
		s.stats.Expirations++
		s.stats.Misses++
		return Entry{}, false
	}
	s.promoteLocked(el, se)
	s.stats.Hits++
	return se.entry, true
}

// Peek implements Cache.
func (s *Store) Peek(key string) (Entry, bool) {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	se := el.Value.(*storedEntry)
	if se.entry.Expired(now) {
		return Entry{}, false
	}
	return se.entry, true
}

// PeekAny returns the stored entry under key even if it has expired.
// Revalidation uses this: an expired copy cannot be served, but its
// version still makes a conditional request possible, saving the body
// transfer when the resource is unchanged.
func (s *Store) PeekAny(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(*storedEntry).entry, true
}

// promoteLocked updates eviction order after a use.
func (s *Store) promoteLocked(el *list.Element, se *storedEntry) {
	switch s.policy {
	case LRU:
		s.order.MoveToBack(el)
	case LFU:
		se.freq++
		s.repositionLFULocked(el, se)
	case FIFO:
		// Insertion order is eviction order; uses don't promote.
	}
}

// repositionLFULocked bubbles el toward the back past entries with
// lower-or-equal frequency, keeping the front the least-frequently-used.
func (s *Store) repositionLFULocked(el *list.Element, se *storedEntry) {
	for next := el.Next(); next != nil; next = el.Next() {
		if next.Value.(*storedEntry).freq > se.freq {
			break
		}
		s.order.MoveAfter(el, next)
	}
}

// Put implements Cache.
func (s *Store) Put(e Entry) {
	if e.StoredAt.IsZero() {
		e.StoredAt = s.clk.Now()
	}
	size := e.Size()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.Key]; ok {
		se := el.Value.(*storedEntry)
		s.stats.BytesUsed += size - se.size
		se.entry = e
		se.size = size
		s.promoteLocked(el, se)
	} else {
		se := &storedEntry{entry: e, size: size, freq: 1}
		var el *list.Element
		if s.policy == LFU {
			// New entries start at the front and bubble past freq-1 peers
			// so ties break by recency (older same-frequency entries are
			// evicted first).
			el = s.order.PushFront(se)
			s.repositionLFULocked(el, se)
		} else {
			el = s.order.PushBack(se)
		}
		s.entries[e.Key] = el
		s.stats.BytesUsed += size
	}
	s.stats.Puts++
	s.evictLocked()
}

// evictLocked enforces both capacity limits. Expired entries are evicted
// first (they are free wins), then the policy's victim order applies.
func (s *Store) evictLocked() {
	over := func() bool {
		if s.maxItems > 0 && len(s.entries) > s.maxItems {
			return true
		}
		if s.maxBytes > 0 && s.stats.BytesUsed > s.maxBytes {
			return true
		}
		return false
	}
	if !over() {
		return
	}
	// First pass: drop expired entries.
	now := s.clk.Now()
	for el := s.order.Front(); el != nil && over(); {
		next := el.Next()
		se := el.Value.(*storedEntry)
		if se.entry.Expired(now) {
			s.removeLocked(se.entry.Key, el)
			s.stats.Expirations++
		}
		el = next
	}
	// Second pass: policy order from the front.
	for over() {
		el := s.order.Front()
		if el == nil {
			return
		}
		se := el.Value.(*storedEntry)
		s.removeLocked(se.entry.Key, el)
		s.stats.Evictions++
	}
}

func (s *Store) removeLocked(key string, el *list.Element) {
	s.order.Remove(el)
	delete(s.entries, key)
	s.stats.BytesUsed -= el.Value.(*storedEntry).size
}

// Delete implements Cache.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return false
	}
	s.removeLocked(key, el)
	s.stats.Invalidations++
	return true
}

// Clear implements Cache.
func (s *Store) Clear() {
	s.mu.Lock()
	s.entries = make(map[string]*list.Element)
	s.order.Init()
	s.stats.BytesUsed = 0
	s.mu.Unlock()
}

// Len implements Cache.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats implements Cache.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Sweep removes all expired entries eagerly and returns the count reaped.
func (s *Store) Sweep() int {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for el := s.order.Front(); el != nil; {
		next := el.Next()
		se := el.Value.(*storedEntry)
		if se.entry.Expired(now) {
			s.removeLocked(se.entry.Key, el)
			s.stats.Expirations++
			n++
		}
		el = next
	}
	return n
}

// Keys returns the keys of live (unexpired) entries in eviction order,
// front (next victim) first. Primarily for tests and debugging.
func (s *Store) Keys() []string {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for el := s.order.Front(); el != nil; el = el.Next() {
		se := el.Value.(*storedEntry)
		if !se.entry.Expired(now) {
			out = append(out, se.entry.Key)
		}
	}
	return out
}

var _ Cache = (*Store)(nil)

// TTLEntry is a convenience constructor for an entry expiring ttl from now
// according to clk.
func TTLEntry(clk clock.Clock, key string, body []byte, version uint64, ttl time.Duration) Entry {
	if clk == nil {
		clk = clock.System
	}
	now := clk.Now()
	e := Entry{Key: key, Body: body, Version: version, StoredAt: now}
	if ttl > 0 {
		e.ExpiresAt = now.Add(ttl)
	}
	return e
}
