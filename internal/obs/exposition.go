package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a fully qualified sample name (family
// name plus any _sum/_count suffix), its label set (including synthetic
// labels such as quantile), and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// FamilySnapshot is the point-in-time state of one metric family in
// exposition order.
type FamilySnapshot struct {
	// Name is the exposition name: the dotted registry name with dots
	// mapped to underscores.
	Name string
	Kind Kind
	// Overflowed reports that the family hit its series cap and collapsed
	// later label sets into the {overflow="true"} series.
	Overflowed bool
	Samples    []Sample
}

// summaryQuantiles labels the quantiles a histogram family exposes, in
// the order metrics.HistogramSnapshot carries them.
var summaryQuantiles = []string{"0.5", "0.9", "0.95", "0.99"}

// ExpositionName maps a dotted registry name to its exposition form.
func ExpositionName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// Snapshot returns every family sorted by exposition name, each with its
// samples sorted by label signature. Two snapshots of registries holding
// identical values render byte-identical text — the golden tests depend
// on this determinism.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	families := make([]*family, 0, len(r.families))
	for _, fam := range r.families {
		families = append(families, fam)
	}
	r.mu.RUnlock()

	out := make([]FamilySnapshot, 0, len(families))
	for _, fam := range families {
		out = append(out, fam.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (f *family) snapshot() FamilySnapshot {
	f.mu.RLock()
	ordered := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		ordered = append(ordered, s)
	}
	overflowed := f.overflowed
	f.mu.RUnlock()
	sort.Slice(ordered, func(i, j int) bool {
		return signature(ordered[i].labels) < signature(ordered[j].labels)
	})

	name := ExpositionName(f.name)
	fs := FamilySnapshot{Name: name, Kind: f.kind, Overflowed: overflowed}
	for _, s := range ordered {
		switch f.kind {
		case KindCounter:
			fs.Samples = append(fs.Samples, Sample{Name: name, Labels: s.labels, Value: float64(s.counter.Value())})
		case KindGauge:
			fs.Samples = append(fs.Samples, Sample{Name: name, Labels: s.labels, Value: float64(s.gauge.Value())})
		case KindSummary:
			snap := s.histo.Snapshot()
			for i, q := range []float64{snap.P50, snap.P90, snap.P95, snap.P99} {
				labels := make([]Label, 0, len(s.labels)+1)
				labels = append(labels, s.labels...)
				labels = append(labels, Label{Key: "quantile", Value: summaryQuantiles[i]})
				fs.Samples = append(fs.Samples, Sample{Name: name, Labels: labels, Value: q})
			}
			fs.Samples = append(fs.Samples, Sample{Name: name + "_sum", Labels: s.labels, Value: snap.Sum})
			fs.Samples = append(fs.Samples, Sample{Name: name + "_count", Labels: s.labels, Value: float64(snap.Count)})
		}
	}
	return fs
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): a # TYPE header per family followed by its
// sample lines, families sorted by name, series sorted by label
// signature, label values escaped per the format's rules.
func (r *Registry) WriteText(w io.Writer) error {
	for _, fam := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
			return err
		}
		for _, s := range fam.Samples {
			if _, err := io.WriteString(w, renderSample(s)); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderSample(s Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Value))
	b.WriteByte('\n')
	return b.String()
}

// escapeLabelValue applies the exposition format's escaping: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders integral values without an exponent or decimal
// point (counters and counts stay grep-able) and everything else in Go's
// shortest-round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
