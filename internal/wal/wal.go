// Package wal implements the segmented append-only write-ahead log under
// the durability subsystem. Records are CRC32C-framed and carry a
// monotonically increasing log sequence number (LSN); fsyncs are
// group-committed on the injected clock so a burst of appends shares one
// disk flush; segments rotate at a size threshold and are named by their
// first LSN so whole-segment pruning after a snapshot is a file delete.
//
// Recovery discipline: Open scans every segment in LSN order, replaying
// intact records through the OnRecord callback. A torn tail — an
// incomplete or CRC-failing frame at the end of the *last* segment — is
// the expected crash signature and is truncated away; any damage before
// that point (a bad frame in a non-final segment, a broken LSN chain) is
// mid-log corruption and surfaces as ErrCorrupt, which the durable layer
// answers with a conservative cold start rather than trusting a log with
// a hole in it.
//
// The log stores only anonymous coherence records (resource paths,
// expirations, versions): it is shared-infrastructure code under the
// GDPR boundary and must never see identity-bearing types.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/faults"
)

// Frame layout: [u32 length][u32 crc32c][u64 lsn][payload], all
// little-endian. length covers lsn+payload; crc covers the same bytes.
const (
	frameHeader = 8
	lsnBytes    = 8
	// maxRecord bounds a frame body; anything larger in a length field is
	// damage, not data.
	maxRecord = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports mid-log corruption: a damaged frame with intact
// records after it, or a broken LSN chain. A torn tail is NOT corruption —
// it is truncated silently — so ErrCorrupt means history cannot be
// trusted and the caller should fall back to a conservative cold start.
var ErrCorrupt = errors.New("wal: mid-log corruption")

// ErrCrashed reports that the log drew an injected crash and is dead: no
// append or sync will succeed until the directory is recovered by a fresh
// Open.
var ErrCrashed = errors.New("wal: crashed (injected)")

// Options parameterizes a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentMaxBytes rotates segments at this size (default 1 MiB).
	SegmentMaxBytes int64
	// GroupCommitWindow is the maximum time acknowledged appends may wait
	// for their shared fsync (default 2 ms on the injected clock).
	GroupCommitWindow time.Duration
	// GroupCommitMax forces an fsync after this many unsynced appends
	// regardless of the window (default 64).
	GroupCommitMax int
	// Clock drives the group-commit window (default the system clock).
	Clock clock.Clock
	// FirstLSN, when non-zero, seeds the LSN of the first append into an
	// empty directory. The durable layer passes one past everything its
	// retained snapshot covers when it reopens a wiped log, so reissued
	// LSNs can never fall back inside snapshot coverage (replay skips
	// records at or below the snapshot LSN, which would silently drop
	// them). Opening a directory that still holds segments whose records
	// end below a non-zero FirstLSN is an error: seeding may not punch
	// LSN-chain gaps into a live log.
	FirstLSN uint64
	// Faults optionally injects crashes: Crash decisions on WALAppend tear
	// the in-flight frame at a deterministic offset, Crash decisions on
	// WALFsync discard the unsynced suffix — both then kill the log until
	// recovery. Nil disables injection.
	Faults *faults.Injector
	// OnRecord receives every intact record during the Open scan, in LSN
	// order. Nil skips replay delivery (the scan still validates frames).
	OnRecord func(lsn uint64, payload []byte)
}

func (o *Options) applyDefaults() {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 1 << 20
	}
	if o.GroupCommitWindow <= 0 {
		o.GroupCommitWindow = 2 * time.Millisecond
	}
	if o.GroupCommitMax <= 0 {
		o.GroupCommitMax = 64
	}
	if o.Clock == nil {
		o.Clock = clock.System
	}
}

// Stats counts log activity since Open.
type Stats struct {
	// Appends is how many records were durably framed (torn appends from
	// injected crashes are not counted).
	Appends uint64
	// Fsyncs is how many disk flushes ran; group commit keeps it well
	// below Appends under load.
	Fsyncs uint64
	// Rotations counts segment rolls.
	Rotations uint64
	// Replayed is how many intact records the Open scan delivered.
	Replayed uint64
	// TruncatedBytes is how many torn-tail bytes Open discarded.
	TruncatedBytes int64
	// Segments is the current on-disk segment count.
	Segments int
}

// segment is one on-disk log file.
type segment struct {
	firstLSN uint64
	path     string
}

// Log is a segmented write-ahead log. Safe for concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	segs     []segment // guarded by mu
	file     *os.File  // guarded by mu; active segment (nil until first append)
	size     int64     // guarded by mu; bytes written to the active segment
	synced   int64     // guarded by mu; bytes of the active segment known flushed
	pending  int       // guarded by mu; appends awaiting their group fsync
	lastSync time.Time // guarded by mu; when the last group fsync ran
	nextLSN  uint64    // guarded by mu
	dead     bool      // guarded by mu; true after an injected crash
	stats    Stats     // guarded by mu
}

// segName renders the canonical segment filename for a first LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstLSN)
}

// parseSegName extracts the first LSN from a segment filename.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
	return v, err == nil
}

// Open scans dir, replays intact records through opts.OnRecord, truncates
// any torn tail, and returns a log positioned to append after the last
// durable record. A directory with no segments opens as an empty log
// whose first append creates LSN 1. Mid-log corruption returns ErrCorrupt
// (wrapped); the caller decides whether to wipe and cold-start.
func Open(opts Options) (*Log, error) {
	opts.applyDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, nextLSN: 1, lastSync: opts.Clock.Now()}

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, segment{firstLSN: first, path: filepath.Join(opts.Dir, e.Name())})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].firstLSN < l.segs[j].firstLSN })

	for i, seg := range l.segs {
		// The LSN chain must also hold ACROSS segments: each non-first
		// segment starts exactly where the previous one left off. A
		// mismatch means a whole segment went missing (deleted, renamed,
		// restored from a partial backup) — mid-log corruption, not a torn
		// tail, or replay would resume "warm" with a silent gap in history.
		if i > 0 && seg.firstLSN != l.nextLSN {
			return nil, fmt.Errorf("wal: segment %s: first lsn %d where %d expected (missing segment?): %w",
				filepath.Base(seg.path), seg.firstLSN, l.nextLSN, ErrCorrupt)
		}
		last := i == len(l.segs)-1
		if err := l.scanSegment(seg, last); err != nil {
			return nil, err
		}
	}
	if opts.FirstLSN > l.nextLSN {
		if len(l.segs) > 0 {
			return nil, fmt.Errorf("wal: FirstLSN %d past existing records (next lsn %d)", opts.FirstLSN, l.nextLSN)
		}
		l.nextLSN = opts.FirstLSN
	}
	l.stats.Segments = len(l.segs)
	if n := len(l.segs); n > 0 {
		// Reopen the last segment for appending after its good prefix.
		f, err := os.OpenFile(l.segs[n-1].path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(l.size, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.file = f
		l.synced = l.size
	}
	return l, nil
}

// scanSegment validates and replays one segment. For the last segment a
// bad frame is a torn tail: the file is truncated to the last good offset.
// For any earlier segment it is mid-log corruption. The active segment's
// size is left in l.size. Runs during Open, before the log is shared; any
// later caller must hold l.mu.
func (l *Log) scanSegment(seg segment, last bool) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	expect := seg.firstLSN
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		good := false
		var lsn uint64
		var payload []byte
		if len(rest) >= frameHeader {
			length := binary.LittleEndian.Uint32(rest[0:4])
			if length >= lsnBytes && length <= maxRecord && int(length) <= len(rest)-frameHeader {
				body := rest[frameHeader : frameHeader+int(length)]
				if crc32.Checksum(body, castagnoli) == binary.LittleEndian.Uint32(rest[4:8]) {
					lsn = binary.LittleEndian.Uint64(body[:lsnBytes])
					payload = body[lsnBytes:]
					good = lsn == expect
					// A frame that checksums but breaks the LSN chain is
					// damage wherever it sits.
					if !good {
						return fmt.Errorf("wal: segment %s: lsn %d where %d expected: %w",
							filepath.Base(seg.path), lsn, expect, ErrCorrupt)
					}
				}
			}
		}
		if !good {
			if !last {
				return fmt.Errorf("wal: segment %s: bad frame at offset %d: %w",
					filepath.Base(seg.path), off, ErrCorrupt)
			}
			// Torn tail: discard everything from the bad frame on.
			torn := int64(len(data)) - off
			if err := os.Truncate(seg.path, off); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			l.stats.TruncatedBytes += torn
			break
		}
		if l.opts.OnRecord != nil {
			l.opts.OnRecord(lsn, payload)
		}
		l.stats.Replayed++
		off += frameHeader + lsnBytes + int64(len(payload))
		expect = lsn + 1
		l.nextLSN = lsn + 1
	}
	if last {
		l.size = off
	}
	return nil
}

// Append frames payload as the next record and applies the group-commit
// fsync policy. It returns the record's LSN. Callers must treat a nil
// error as "acknowledged", not "fsynced": crash recovery may lose the
// unsynced suffix, which is exactly the window the durable layer's
// conservative cold start covers.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, ErrCrashed
	}
	lsn := l.nextLSN
	frame := make([]byte, frameHeader+lsnBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(lsnBytes+len(payload)))
	binary.LittleEndian.PutUint64(frame[frameHeader:], lsn)
	copy(frame[frameHeader+lsnBytes:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[frameHeader:], castagnoli))

	if l.file == nil || l.size+int64(len(frame)) > l.opts.SegmentMaxBytes && l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}

	if d := l.opts.Faults.Decide(faults.WALAppend); d.Kind == faults.Crash {
		// Mid-write kill: a deterministic prefix of the frame reaches the
		// file, then the log goes dead. Recovery sees a torn tail.
		torn := d.TornBytes
		if torn <= 0 {
			torn = int(lsn % uint64(len(frame)))
		}
		if torn >= len(frame) {
			torn = len(frame) - 1
		}
		if torn > 0 {
			_, _ = l.file.Write(frame[:torn])
		}
		l.dead = true
		return 0, fmt.Errorf("wal: append lsn %d: %w: %w", lsn, faults.ErrCrash, ErrCrashed)
	}

	if _, err := l.file.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.size += int64(len(frame))
	l.nextLSN++
	l.stats.Appends++
	l.pending++

	now := l.opts.Clock.Now()
	if l.pending >= l.opts.GroupCommitMax || now.Sub(l.lastSync) >= l.opts.GroupCommitWindow {
		if err := l.syncLocked(now); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// Sync forces the group fsync immediately.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return ErrCrashed
	}
	if l.file == nil {
		return nil
	}
	return l.syncLocked(l.opts.Clock.Now())
}

// syncLocked flushes the active segment. The caller must hold l.mu.
func (l *Log) syncLocked(now time.Time) error {
	if d := l.opts.Faults.Decide(faults.WALFsync); d.Kind == faults.Crash {
		// Kill at the flush: the unsynced suffix never reached stable
		// storage. Model the loss by truncating back to the synced size —
		// these records were acknowledged, and losing them is the exact
		// hazard the conservative cold start exists to absorb.
		_ = l.file.Truncate(l.synced)
		l.dead = true
		return fmt.Errorf("wal: fsync: %w: %w", faults.ErrCrash, ErrCrashed)
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Fsyncs++
	l.synced = l.size
	l.pending = 0
	l.lastSync = now
	return nil
}

// rotateLocked seals the active segment and opens the next one. The
// caller must hold l.mu.
func (l *Log) rotateLocked() error {
	if l.file != nil {
		if err := l.syncLocked(l.opts.Clock.Now()); err != nil {
			return err
		}
		if err := l.file.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.file = nil
		l.stats.Rotations++
	}
	path := filepath.Join(l.opts.Dir, segName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.file = f
	l.size = 0
	l.synced = 0
	l.segs = append(l.segs, segment{firstLSN: l.nextLSN, path: path})
	l.stats.Segments = len(l.segs)
	return nil
}

// PruneBelow deletes every sealed segment whose records all have LSNs
// strictly below lsn — the post-snapshot cleanup that keeps the log from
// growing without bound. The active segment is never pruned.
func (l *Log) PruneBelow(lsn uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 1 && l.segs[1].firstLSN <= lsn {
		if rmErr := os.Remove(l.segs[0].path); rmErr != nil {
			return removed, fmt.Errorf("wal: prune: %w", rmErr)
		}
		l.segs = l.segs[1:]
		removed++
	}
	l.stats.Segments = len(l.segs)
	return removed, nil
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Crashed reports whether an injected crash killed the log.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// Stats returns a copy of the activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close flushes and closes the active segment. A crashed log closes
// without flushing — the torn state on disk is the point.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	f := l.file
	l.file = nil
	if l.dead {
		return f.Close()
	}
	if l.pending > 0 {
		if err := l.syncFileLocked(f); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// syncFileLocked is the Close-path flush: no fault consult (the process
// is exiting deliberately), just the fsync and counters.
func (l *Log) syncFileLocked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Fsyncs++
	l.synced = l.size
	l.pending = 0
	return nil
}
