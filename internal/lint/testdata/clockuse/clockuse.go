// Package clockuse seeds clockdiscipline violations for the analyzer's
// fixture test.
package clockuse

import (
	"time"

	"speedkit/internal/clock"
)

// Bad reads the wall clock directly.
func Bad() time.Time {
	return time.Now() // want "time\\.Now"
}

// BadSleep blocks against the wall clock.
func BadSleep() {
	time.Sleep(time.Millisecond) // want "time\\.Sleep"
}

// BadElapsed measures against the wall clock.
func BadElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time\\.Since"
}

// storedNow leaks the wall clock as a value, not a call.
var storedNow = time.Now // want "time\\.Now"

// Good reads through an injected clock: no finding.
func Good(c clock.Clock) time.Time {
	return c.Now()
}

// GoodArithmetic uses time.Time methods, which are pure: no finding.
func GoodArithmetic(a, b time.Time) bool {
	return a.After(b)
}
