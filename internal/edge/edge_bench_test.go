package edge

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// BenchmarkEdgeHit measures the steady-state serving path: an in-memory
// hit answered without touching the upstream — the latency every POP
// request pays once the working set is warm.
func BenchmarkEdgeHit(b *testing.B) {
	u := newFakeUpstream()
	defer u.close()
	u.set("/p", "the warm body the POP serves all day", 1)
	p, _, err := New(Options{Upstream: u.srv.URL})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	// Warm the entry; every timed iteration is a pure hit.
	r := httptest.NewRequest(http.MethodGet, "/v1/page?path=/p", nil)
	if w := httptest.NewRecorder(); true {
		p.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("warmup: %d", w.Code)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		p.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("hit: %d", w.Code)
		}
	}
}

// BenchmarkEdgeCoalescedMiss measures the stampede path: 8 concurrent
// requests race one cold key, the leader fetches from the upstream over
// real loopback HTTP, and the waiters stream from its in-flight fill.
// ns/op is the cost of one whole coalesced group, upstream round trip
// included.
func BenchmarkEdgeCoalescedMiss(b *testing.B) {
	u := newFakeUpstream()
	defer u.close()
	p, _, err := New(Options{Upstream: u.srv.URL})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const racers = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := fmt.Sprintf("/cold/%d", i)
		u.set(path, "a cold body fetched once and fanned out", 1)
		target := "/v1/page?path=" + path
		b.StartTimer()
		var wg sync.WaitGroup
		for r := 0; r < racers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := httptest.NewRecorder()
				p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
				if w.Code != http.StatusOK {
					b.Error("miss:", w.Code)
				}
			}()
		}
		wg.Wait()
	}
}
