package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// expectation is one "// want" annotation: the fixture author's claim that
// an analyzer reports a matching diagnostic on that line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	// raw preserves the annotation text for error messages.
	raw string
}

var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// expectations extracts the want annotations from a loaded package. The
// annotation syntax is a trailing comment holding a Go-quoted regexp:
//
//	time.Now() // want "time\\.Now"
func expectations(pkg *Package) ([]expectation, error) {
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				match := wantRe.FindStringSubmatch(c.Text)
				if match == nil {
					if strings.Contains(c.Text, "// want") {
						pos := pkg.Fset.Position(c.Pos())
						return nil, fmt.Errorf("%s:%d: malformed want annotation %q", pos.Filename, pos.Line, c.Text)
					}
					continue
				}
				pattern, err := strconv.Unquote(match[1])
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s:%d: unquoting want pattern: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s:%d: compiling want pattern: %v", pos.Filename, pos.Line, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, expectation{
					file: pos.Filename,
					line: pos.Line,
					re:   re,
					raw:  c.Text,
				})
			}
		}
	}
	return wants, nil
}

// CheckFixture runs the analyzers over a fixture package and compares the
// diagnostics against its want annotations. Every want must be matched by
// a diagnostic on the same line, and every diagnostic must be claimed by a
// want — so clean declarations in a fixture double as negative cases.
// It returns one error string per mismatch.
func CheckFixture(pkg *Package, analyzers ...*Analyzer) ([]string, error) {
	wants, err := expectations(pkg)
	if err != nil {
		return nil, err
	}
	diags := Run([]*Package{pkg}, analyzers)

	var problems []string
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw))
		}
	}
	for i, d := range diags {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	return problems, nil
}
