package core

import (
	"fmt"

	"speedkit/internal/origin"
	"speedkit/internal/query"
	"speedkit/internal/storage"
	"speedkit/internal/workload"
)

// StorefrontConfig sizes the canonical e-commerce deployment used by the
// examples and every benchmark.
type StorefrontConfig struct {
	Config
	// Products is the catalog size (default 1000).
	Products int
	// CatalogSeed seeds the deterministic catalog (default Config.Seed).
	CatalogSeed int64
}

// NewStorefront builds the complete demo deployment: seeded catalog,
// origin with home / category / product pages and the built-in dynamic
// blocks, and a Service wired over it. It is the one-call entry point the
// public API exposes.
func NewStorefront(cfg StorefrontConfig) (*Service, error) {
	cfg.Config.applyDefaults()
	if cfg.Products <= 0 {
		cfg.Products = 1000
	}
	if cfg.CatalogSeed == 0 {
		cfg.CatalogSeed = cfg.Seed + 1
	}

	docs := storage.NewDocumentStore(cfg.Clock)
	// Category listings are equality queries; index them so the
	// invalidation-heavy workloads evaluate them from candidates instead
	// of collection scans.
	docs.CreateIndex("products", "category")
	if err := workload.SeedCatalog(docs, cfg.CatalogSeed, cfg.Products); err != nil {
		return nil, fmt.Errorf("core: storefront: %w", err)
	}

	org := origin.NewServer(docs, cfg.Clock)
	org.RegisterStatic("/", []byte("<h1>Store</h1><p>Featured products</p>"),
		"greeting", "cart", "reco")
	org.RegisterProducts("/product/", "products", "cart", "reco", "tier")
	for _, cat := range workload.Categories {
		org.RegisterQueryPage(
			workload.CategoryPath(cat),
			"Category: "+cat,
			query.New("products", query.Eq("category", cat)).OrderBy("price", false).WithLimit(24),
			"cart", "tier",
		)
	}
	org.RegisterBlock("greeting", origin.GreetingBlock)
	org.RegisterBlock("cart", origin.CartBlock)
	org.RegisterBlock("reco", origin.RecommendationsBlock)
	org.RegisterBlock("tier", origin.TierPriceBlock)

	return NewService(cfg.Config, docs, org), nil
}
