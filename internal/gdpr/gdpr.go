// Package gdpr implements the compliance substrate: classification of
// data fields by sensitivity, a consent ledger, pseudonymization, and a
// flow auditor that records which fields crossed which trust boundary.
//
// The architectural claim the paper makes — "natively GDPR-compliant
// client proxy that handles all sensitive information within the user
// device" — becomes a measurable property here: the auditor tallies PII
// fields per boundary, and the Table 3 experiment shows zero PII reaching
// the shared CDN boundary under Speed Kit versus per-request leakage
// under a personalizing-CDN baseline.
package gdpr

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sensitivity grades a data field.
type Sensitivity int

// Sensitivity levels, ordered.
const (
	// Anonymous data identifies nobody (product IDs, page paths).
	Anonymous Sensitivity = iota
	// Pseudonymous data identifies a person only via a lookup the
	// processor does not have (hashed IDs, session tokens).
	Pseudonymous
	// PII directly identifies a person (name, email, cart contents tied
	// to an identity).
	PII
)

// String names the sensitivity level.
func (s Sensitivity) String() string {
	switch s {
	case Anonymous:
		return "anonymous"
	case Pseudonymous:
		return "pseudonymous"
	case PII:
		return "pii"
	}
	return "unknown"
}

// classification maps canonical field names to sensitivity. Unknown
// fields default to PII — the safe direction for a compliance check.
var classification = map[string]Sensitivity{
	// Identity
	"user_id": PII, "name": PII, "email": PII, "address": PII,
	"phone": PII, "ip": PII, "payment": PII,
	// Behavioural data tied to identity
	"cart": PII, "history": PII, "orders": PII, "wishlist": PII,
	"tier": PII, "consent": PII,
	// Pseudonymous
	"session_token": Pseudonymous, "hashed_id": Pseudonymous,
	"ab_bucket": Pseudonymous,
	// Anonymous
	"path": Anonymous, "product_id": Anonymous, "category": Anonymous,
	"page": Anonymous, "query": Anonymous, "region": Anonymous,
	"sketch": Anonymous, "asset": Anonymous, "price": Anonymous,
	"stock": Anonymous, "sort": Anonymous, "limit": Anonymous,
}

// Classify returns the sensitivity of a field name. Names are matched
// case-insensitively; unknown names classify as PII (fail closed).
func Classify(field string) Sensitivity {
	if s, ok := classification[strings.ToLower(field)]; ok {
		return s
	}
	return PII
}

// PIIFields returns the canonical field names classified as PII, sorted.
// The static-analysis suite in internal/lint uses this list to reject
// PII-bearing types from shared-infrastructure APIs at build time, so the
// runtime auditor and the compile-time check can never disagree about
// what counts as PII.
func PIIFields() []string {
	out := make([]string, 0, len(classification))
	for name, s := range classification {
		if s == PII {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Pseudonymize returns a stable, non-reversible token for an identifier,
// suitable for analytics that must not carry raw identity. The same input
// always yields the same token so aggregation still works.
func Pseudonymize(id string) string {
	sum := sha256.Sum256([]byte("speedkit-pseudo:" + id))
	return "p_" + hex.EncodeToString(sum[:8])
}

// StripPII returns a copy of fields with every PII-classified key
// removed, and the list of removed keys (sorted). This is the operation
// the client proxy applies to anything leaving the device toward shared
// infrastructure.
func StripPII(fields map[string]string) (clean map[string]string, removed []string) {
	clean = make(map[string]string, len(fields))
	for k, v := range fields {
		if Classify(k) == PII {
			removed = append(removed, k)
			continue
		}
		clean[k] = v
	}
	sort.Strings(removed)
	return clean, removed
}

// Purpose is a processing purpose under consent.
type Purpose string

// Consent purposes used by the system.
const (
	PurposePersonalization Purpose = "personalization"
	PurposeAnalytics       Purpose = "analytics"
)

// ConsentLedger records per-user, per-purpose consent with timestamps, as
// required for accountability (GDPR Art. 7). Safe for concurrent use.
type ConsentLedger struct {
	mu      sync.RWMutex
	records map[string]map[Purpose]consentRecord // guarded by mu
}

type consentRecord struct {
	granted bool
	at      time.Time
}

// NewConsentLedger creates an empty ledger.
func NewConsentLedger() *ConsentLedger {
	return &ConsentLedger{records: make(map[string]map[Purpose]consentRecord)}
}

// Grant records consent by userID for purpose at time t.
func (l *ConsentLedger) Grant(userID string, p Purpose, t time.Time) {
	l.set(userID, p, true, t)
}

// Revoke withdraws consent.
func (l *ConsentLedger) Revoke(userID string, p Purpose, t time.Time) {
	l.set(userID, p, false, t)
}

func (l *ConsentLedger) set(userID string, p Purpose, granted bool, t time.Time) {
	l.mu.Lock()
	m, ok := l.records[userID]
	if !ok {
		m = make(map[Purpose]consentRecord)
		l.records[userID] = m
	}
	m[p] = consentRecord{granted: granted, at: t}
	l.mu.Unlock()
}

// Allowed reports whether the user has consented to the purpose. Absent
// records mean no consent (opt-in, not opt-out).
func (l *ConsentLedger) Allowed(userID string, p Purpose) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.records[userID][p]
	return ok && rec.granted
}

// GrantedAt returns when the current consent state was set.
func (l *ConsentLedger) GrantedAt(userID string, p Purpose) (time.Time, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.records[userID][p]
	if !ok {
		return time.Time{}, false
	}
	return rec.at, true
}

// Erase implements the right to erasure (Art. 17) for the ledger itself.
func (l *ConsentLedger) Erase(userID string) {
	l.mu.Lock()
	delete(l.records, userID)
	l.mu.Unlock()
}

// Users returns the number of users with ledger entries.
func (l *ConsentLedger) Users() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.records)
}
