package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
)

func newTestKV() (*KV, *clock.Simulated) {
	clk := clock.NewSimulated(time.Time{})
	return NewKV(clk), clk
}

func TestKVSetGet(t *testing.T) {
	kv, _ := newTestKV()
	kv.Set("a", []byte("hello"), 0)
	got, ok := kv.Get("a")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := kv.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestKVValueIsolation(t *testing.T) {
	kv, _ := newTestKV()
	buf := []byte("abc")
	kv.Set("k", buf, 0)
	buf[0] = 'X'
	got, _ := kv.Get("k")
	if string(got) != "abc" {
		t.Fatal("stored value aliases caller buffer")
	}
	got[0] = 'Y'
	got2, _ := kv.Get("k")
	if string(got2) != "abc" {
		t.Fatal("returned value aliases stored buffer")
	}
}

func TestKVTTLExpiry(t *testing.T) {
	kv, clk := newTestKV()
	kv.Set("k", []byte("v"), 10*time.Second)
	if _, ok := kv.Get("k"); !ok {
		t.Fatal("fresh key missing")
	}
	clk.Advance(9 * time.Second)
	if _, ok := kv.Get("k"); !ok {
		t.Fatal("key expired early")
	}
	clk.Advance(time.Second)
	if _, ok := kv.Get("k"); ok {
		t.Fatal("key survived its TTL")
	}
	if kv.Stats().Expirations == 0 {
		t.Fatal("expiration not counted")
	}
}

func TestKVTTLQuery(t *testing.T) {
	kv, clk := newTestKV()
	kv.Set("e", []byte("v"), 30*time.Second)
	kv.Set("p", []byte("v"), 0)
	if d, ok := kv.TTL("e"); !ok || d != 30*time.Second {
		t.Fatalf("TTL(e) = %v, %v", d, ok)
	}
	if d, ok := kv.TTL("p"); !ok || d != 0 {
		t.Fatalf("TTL(p) = %v, %v", d, ok)
	}
	if _, ok := kv.TTL("missing"); ok {
		t.Fatal("TTL of missing key ok")
	}
	clk.Advance(31 * time.Second)
	if _, ok := kv.TTL("e"); ok {
		t.Fatal("TTL of expired key ok")
	}
}

func TestKVExpire(t *testing.T) {
	kv, clk := newTestKV()
	kv.Set("k", []byte("v"), 0)
	if !kv.Expire("k", 5*time.Second) {
		t.Fatal("Expire on live key failed")
	}
	clk.Advance(6 * time.Second)
	if _, ok := kv.Get("k"); ok {
		t.Fatal("key survived updated TTL")
	}
	if kv.Expire("k", time.Second) {
		t.Fatal("Expire on dead key succeeded")
	}
	// Expire with ttl<=0 clears expiry.
	kv.Set("k2", []byte("v"), time.Second)
	kv.Expire("k2", 0)
	clk.Advance(time.Hour)
	if _, ok := kv.Get("k2"); !ok {
		t.Fatal("cleared expiry still expired")
	}
}

func TestKVDel(t *testing.T) {
	kv, clk := newTestKV()
	kv.Set("k", []byte("v"), 0)
	if !kv.Del("k") {
		t.Fatal("Del of live key reported absent")
	}
	if kv.Del("k") {
		t.Fatal("Del of missing key reported present")
	}
	kv.Set("e", []byte("v"), time.Second)
	clk.Advance(2 * time.Second)
	if kv.Del("e") {
		t.Fatal("Del of expired key reported present")
	}
}

func TestKVIncr(t *testing.T) {
	kv, _ := newTestKV()
	if v := kv.Incr("c", 1); v != 1 {
		t.Fatalf("Incr = %d", v)
	}
	if v := kv.Incr("c", 4); v != 5 {
		t.Fatalf("Incr = %d", v)
	}
	if v := kv.Incr("c", -2); v != 3 {
		t.Fatalf("Incr = %d", v)
	}
	if v := kv.Counter("c"); v != 3 {
		t.Fatalf("Counter = %d", v)
	}
	if v := kv.Counter("absent"); v != 0 {
		t.Fatalf("Counter(absent) = %d", v)
	}
}

func TestKVIncrOverwritesValueType(t *testing.T) {
	kv, _ := newTestKV()
	kv.Set("k", []byte("text"), 0)
	if v := kv.Incr("k", 2); v != 2 {
		t.Fatalf("Incr over value = %d, want 2 (restart from zero)", v)
	}
	if _, ok := kv.Get("k"); ok {
		t.Fatal("counter key readable as value")
	}
}

func TestKVKeysPrefix(t *testing.T) {
	kv, clk := newTestKV()
	kv.Set("user:1", []byte("a"), 0)
	kv.Set("user:2", []byte("b"), time.Second)
	kv.Set("cart:1", []byte("c"), 0)
	clk.Advance(2 * time.Second)
	keys := kv.Keys("user:")
	if len(keys) != 1 || keys[0] != "user:1" {
		t.Fatalf("Keys = %v", keys)
	}
	all := kv.Keys("")
	if len(all) != 2 {
		t.Fatalf("all keys = %v", all)
	}
}

func TestKVSweep(t *testing.T) {
	kv, clk := newTestKV()
	for i := 0; i < 10; i++ {
		kv.Set(fmt.Sprintf("k%d", i), []byte("v"), time.Duration(i+1)*time.Second)
	}
	clk.Advance(5 * time.Second)
	if n := kv.Sweep(); n != 5 {
		t.Fatalf("Sweep reaped %d, want 5", n)
	}
	if kv.Len() != 5 {
		t.Fatalf("Len = %d", kv.Len())
	}
}

func TestKVStats(t *testing.T) {
	kv, _ := newTestKV()
	kv.Set("a", []byte("v"), 0)
	kv.Get("a")
	kv.Get("miss")
	kv.Del("a")
	s := kv.Stats()
	if s.Sets != 1 || s.Gets != 2 || s.Hits != 1 || s.Dels != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestKVConcurrent(t *testing.T) {
	kv := NewKV(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d-%d", w, i)
				kv.Set(k, []byte("v"), time.Minute)
				kv.Get(k)
				kv.Incr("shared", 1)
			}
		}(w)
	}
	wg.Wait()
	if v := kv.Counter("shared"); v != 4000 {
		t.Fatalf("shared counter = %d, want 4000", v)
	}
}
