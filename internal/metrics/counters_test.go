package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored
	if c.Value() != 6 {
		t.Fatalf("value = %d, want 6", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset value = %d", c.Value())
	}
}

// TestCounterAddDropsNonPositiveDeltas pins the monotonicity contract:
// zero and negative deltas are dropped outright, including the edge
// cases that would corrupt the counter if the delta were cast to uint64
// before the sign check (math.MinInt would add 2^63).
func TestCounterAddDropsNonPositiveDeltas(t *testing.T) {
	c := NewCounter()
	c.Add(10)
	for _, n := range []int{0, -1, -10, math.MinInt} {
		c.Add(n)
		if c.Value() != 10 {
			t.Fatalf("after Add(%d): value = %d, want 10 (non-positive deltas must be dropped)", n, c.Value())
		}
	}
	c.Add(1)
	if c.Value() != 11 {
		t.Fatalf("positive delta after dropped ones: value = %d, want 11", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("value = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("value = %d, want 6", g.Value())
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(0, 0); r != 0 {
		t.Fatalf("Ratio(0,0) = %v", r)
	}
	if r := Ratio(3, 1); r != 0.75 {
		t.Fatalf("Ratio(3,1) = %v", r)
	}
}

func TestMeterRate(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := newMeterAt(time.Second, clock)
	for i := 0; i < 10; i++ {
		m.Mark(100)
		now = now.Add(100 * time.Millisecond)
	}
	rate := m.Rate()
	// 1000 events in 1s window => ~1000/s; allow slot-boundary slop.
	if rate < 800 || rate > 1200 {
		t.Fatalf("rate = %v, want ~1000", rate)
	}
}

func TestMeterIdleDecay(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := newMeterAt(time.Second, clock)
	m.Mark(1000)
	now = now.Add(10 * time.Second) // far beyond the window
	if rate := m.Rate(); rate != 0 {
		t.Fatalf("rate after idle = %v, want 0", rate)
	}
}

func TestMeterZeroWindowDefaults(t *testing.T) {
	m := NewMeter(0)
	m.Mark(1)
	if m.Rate() < 0 {
		t.Fatal("negative rate")
	}
}

func TestRegistryCreatesOnFirstUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	if c2 := r.Counter("hits"); c2 != c {
		t.Fatal("counter not memoized")
	}
	g := r.Gauge("depth")
	if g2 := r.Gauge("depth"); g2 != g {
		t.Fatal("gauge not memoized")
	}
	h := r.Histogram("lat")
	if h2 := r.Histogram("lat"); h2 != h {
		t.Fatal("histogram not memoized")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(3)
	r.Gauge("b.depth").Set(7)
	r.Histogram("c.lat").Observe(100)
	out := r.Dump()
	for _, want := range []string{"a.hits", "b.depth", "c.lat", "3", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Sorted: counter line for a.hits should precede gauge line for b.depth.
	if strings.Index(out, "a.hits") > strings.Index(out, "b.depth") {
		t.Errorf("dump not sorted:\n%s", out)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("x").Inc()
				r.Histogram("y").Observe(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("x").Value() != 1600 {
		t.Fatalf("count = %d", r.Counter("x").Value())
	}
}
