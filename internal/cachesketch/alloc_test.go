package cachesketch

import (
	"fmt"
	"testing"
	"time"
)

// The client-side sketch probe gates every cached read, so the protocol
// hot paths — Snapshot.MightBeStale and Client.Check — must not allocate.
// These regression tests keep the zero-alloc property from eroding.

func TestSnapshotMightBeStaleZeroAlloc(t *testing.T) {
	s, clk := newTestServer()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("/p/%d", i)
		s.ReportCachedRead(key, clk.Now().Add(time.Hour))
		s.ReportWrite(key)
	}
	sn := s.Snapshot()
	var stale bool
	if n := testing.AllocsPerRun(1000, func() {
		stale = sn.MightBeStale("/p/42")
	}); n != 0 {
		t.Fatalf("MightBeStale allocates %.1f per run, want 0", n)
	}
	if !stale {
		t.Fatal("tracked key not flagged")
	}
	if n := testing.AllocsPerRun(1000, func() {
		stale = sn.MightBeStale("/absent")
	}); n != 0 {
		t.Fatalf("MightBeStale (miss) allocates %.1f per run, want 0", n)
	}
}

func TestClientCheckZeroAlloc(t *testing.T) {
	s, clk := newTestServer()
	s.ReportCachedRead("/p/1", clk.Now().Add(time.Hour))
	s.ReportWrite("/p/1")
	cl := NewClient(clk, time.Hour)
	cl.Install(s.Snapshot())
	var d Decision
	if n := testing.AllocsPerRun(1000, func() {
		d = cl.Check("/p/1")
	}); n != 0 {
		t.Fatalf("Check (stale hit) allocates %.1f per run, want 0", n)
	}
	if d != Revalidate {
		t.Fatalf("decision = %v, want Revalidate", d)
	}
	if n := testing.AllocsPerRun(1000, func() {
		d = cl.Check("/fresh")
	}); n != 0 {
		t.Fatalf("Check (fresh pass) allocates %.1f per run, want 0", n)
	}
	if d != ServeFromCache {
		t.Fatalf("decision = %v, want ServeFromCache", d)
	}
}
