package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/tracectx"
)

func newTestSLO(clk clock.Clock) (*DeltaSLO, *Registry) {
	r := NewRegistry()
	s := NewDeltaSLO(SLOConfig{Clock: clk, Registry: r, Objective: 0.999})
	return s, r
}

func TestSLOBucketsAreCumulative(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(1700000000, 0).UTC())
	s, _ := newTestSLO(clk)
	ids := tracectx.NewIDSource(1)
	// One observation per bucket, plus one breach.
	for _, frac := range []float64{0.05, 0.2, 0.4, 0.7, 0.8, 0.95, 1.5} {
		s.Observe("cdn", frac, ids.TraceID())
	}
	snap := s.Snapshot()
	if len(snap.Sources) != 1 || snap.Sources[0].Source != "cdn" {
		t.Fatalf("sources = %+v", snap.Sources)
	}
	src := snap.Sources[0]
	wantCum := []uint64{1, 2, 3, 4, 5, 6, 7}
	if len(src.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(src.Buckets), len(wantCum))
	}
	for i, b := range src.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket[%d] (le=%s) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if src.Buckets[len(src.Buckets)-1].LE != "+Inf" {
		t.Fatalf("last bucket le = %s", src.Buckets[len(src.Buckets)-1].LE)
	}
	if src.Total != 7 {
		t.Fatalf("total = %d", src.Total)
	}
}

func TestSLOBurnRateWindows(t *testing.T) {
	start := time.Unix(1700000000, 0).UTC()
	clk := clock.NewSimulated(start)
	s, _ := newTestSLO(clk)
	tid := tracectx.TraceID{}

	// Minute 0: 9 good, 1 breach => 10% breach rate; objective 0.999
	// means a 0.1% error budget, so burn = 0.10/0.001 = 100.
	for i := 0; i < 9; i++ {
		s.Observe("cdn", 0.5, tid)
	}
	s.Observe("cdn", 1.5, tid)
	snap := s.Snapshot()
	for _, w := range snap.Windows {
		if w.Total != 10 || w.Breached != 1 {
			t.Fatalf("window %s = %+v, want 10/1", w.Window, w)
		}
		if w.BurnRate < 99.9 || w.BurnRate > 100.1 {
			t.Fatalf("window %s burn = %v, want ~100", w.Window, w.BurnRate)
		}
	}

	// 10 minutes later: clean traffic. The 5m window forgets the breach,
	// the 30m window still sees it.
	clk.Advance(10 * time.Minute)
	for i := 0; i < 10; i++ {
		s.Observe("cdn", 0.2, tid)
	}
	snap = s.Snapshot()
	byWindow := map[string]SLOWindow{}
	for _, w := range snap.Windows {
		byWindow[w.Window] = w
	}
	if w := byWindow["5m0s"]; w.Total != 10 || w.Breached != 0 || w.BurnRate != 0 {
		t.Fatalf("5m window = %+v, want clean 10/0", w)
	}
	if w := byWindow["30m0s"]; w.Total != 20 || w.Breached != 1 {
		t.Fatalf("30m window = %+v, want 20/1", w)
	}

	// 7 hours later: everything has aged out of even the 6h window.
	clk.Advance(7 * time.Hour)
	snap = s.Snapshot()
	for _, w := range snap.Windows {
		if w.Total != 0 || w.BurnRate != 0 {
			t.Fatalf("window %s retains aged-out traffic: %+v", w.Window, w)
		}
	}
}

func TestSLOExemplarsTailOnly(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(1700000000, 0).UTC())
	s, _ := newTestSLO(clk)
	ids := tracectx.NewIDSource(7)
	lowID, tailID := ids.TraceID(), ids.TraceID()

	s.Observe("cdn", 0.2, lowID)              // below the tail: no exemplar
	s.Observe("origin", 0.8, tailID)          // tail: exemplar
	s.Observe("cdn", 1.2, tracectx.TraceID{}) // breach but unsampled: no exemplar
	snap := s.Snapshot()
	if len(snap.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly one", snap.Exemplars)
	}
	ex := snap.Exemplars[0]
	if ex.TraceID != tailID || ex.Source != "origin" || ex.Budget != 0.8 {
		t.Fatalf("exemplar = %+v", ex)
	}

	// The ring keeps the newest ExemplarCap exemplars.
	capN := s.cfg.ExemplarCap
	for i := 0; i < capN+5; i++ {
		s.Observe("cdn", 0.9, ids.TraceID())
	}
	snap = s.Snapshot()
	if len(snap.Exemplars) != capN {
		t.Fatalf("exemplar ring = %d, want cap %d", len(snap.Exemplars), capN)
	}
	for _, e := range snap.Exemplars {
		if e.TraceID == lowID {
			t.Fatal("below-tail trace donated an exemplar")
		}
	}
}

func TestSLOSnapshotDeterministicJSON(t *testing.T) {
	build := func() []byte {
		clk := clock.NewSimulated(time.Unix(1700000000, 0).UTC())
		s, _ := newTestSLO(clk)
		ids := tracectx.NewIDSource(3)
		s.Observe("origin", 0.8, ids.TraceID())
		s.Observe("cdn", 0.3, ids.TraceID())
		s.Observe("device", 1.1, ids.TraceID())
		b, err := json.MarshalIndent(s.Snapshot(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	x, y := build(), build()
	if string(x) != string(y) {
		t.Fatalf("twin snapshots differ:\n%s\n---\n%s", x, y)
	}
	// Sources sorted by name for byte determinism.
	var snap SLOSnapshot
	if err := json.Unmarshal(x, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Sources) != 3 || snap.Sources[0].Source != "cdn" ||
		snap.Sources[1].Source != "device" || snap.Sources[2].Source != "origin" {
		t.Fatalf("sources not sorted: %+v", snap.Sources)
	}
}

func TestSLOFeedsRegistry(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(1700000000, 0).UTC())
	s, r := newTestSLO(clk)
	s.Observe("cdn", 0.5, tracectx.TraceID{})
	s.Observe("cdn", 1.5, tracectx.TraceID{})
	s.Snapshot() // refreshes burn gauges

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"speedkit_slo_delta_budget_permil_count{source=\"cdn\"} 2",
		"speedkit_slo_objective_millis 999",
		"speedkit_slo_burn_rate_millis{window=\"5m0s\"}",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSLONilIsInert(t *testing.T) {
	var s *DeltaSLO
	s.Observe("cdn", 0.5, tracectx.TraceID{}) // must not panic
	snap := s.Snapshot()
	if snap.Objective != 0 || len(snap.Sources) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	c.Collect()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"speedkit_runtime_goroutines",
		"speedkit_runtime_heap_alloc_bytes",
		"speedkit_runtime_gc_cycles",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
	var nilC *RuntimeCollector
	nilC.Collect() // must not panic
}
