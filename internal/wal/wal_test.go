package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"speedkit/internal/clock"
	"speedkit/internal/faults"
)

// collect returns Options wired to gather replayed records into the
// returned map, keyed by LSN.
func collect(dir string, got *map[uint64]string) Options {
	*got = make(map[uint64]string)
	return Options{
		Dir:   dir,
		Clock: clock.NewSimulated(time.Time{}),
		OnRecord: func(lsn uint64, payload []byte) {
			(*got)[lsn] = string(payload)
		},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Clock: clock.NewSimulated(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("lsn = %d, want %d", lsn, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got map[uint64]string
	l2, err := Open(collect(dir, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[uint64(i+1)] != fmt.Sprintf("record-%03d", i) {
			t.Fatalf("lsn %d: payload %q", i+1, got[uint64(i+1)])
		}
	}
	if next := l2.NextLSN(); next != n+1 {
		t.Fatalf("NextLSN = %d, want %d", next, n+1)
	}
	// Appends continue the LSN chain after reopen.
	lsn, err := l2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != n+1 {
		t.Fatalf("post-reopen lsn = %d, want %d", lsn, n+1)
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentMaxBytes: 128, Clock: clock.NewSimulated(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rotate-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want several at 128-byte rotation", st.Segments)
	}
	if st.Rotations == 0 {
		t.Fatal("no rotations recorded")
	}
	removed, err := l.PruneBelow(l.NextLSN() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("prune removed nothing")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The surviving tail still replays cleanly, starting past the prune.
	var got map[uint64]string
	l2, err := Open(collect(dir, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) == 0 {
		t.Fatal("no records survived pruning")
	}
	for lsn := range got {
		if got[lsn] != fmt.Sprintf("rotate-%02d", lsn-1) {
			t.Fatalf("lsn %d: payload %q", lsn, got[lsn])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Clock: clock.NewSimulated(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("solid")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a mid-write kill: garbage half-frame at the tail.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var got map[uint64]string
	l2, err := Open(collect(dir, &got))
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	defer l2.Close()
	if len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
	if l2.Stats().TruncatedBytes != 3 {
		t.Fatalf("TruncatedBytes = %d, want 3", l2.Stats().TruncatedBytes)
	}
	if l2.NextLSN() != 6 {
		t.Fatalf("NextLSN = %d, want 6", l2.NextLSN())
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentMaxBytes: 96, Clock: clock.NewSimulated(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("payload-xx")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs multiple segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST segment: damage with intact records
	// after it is corruption, not a torn tail.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+lsnBytes] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(collect(dir, new(map[uint64]string)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestMissingMiddleSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentMaxBytes: 96, Clock: clock.NewSimulated(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("payload-xx")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatal("test needs at least three segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose a middle segment whole: every frame in the survivors is intact,
	// so only the cross-segment LSN chain can expose the gap.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segs[len(segs)/2]); err != nil {
		t.Fatal(err)
	}

	_, err = Open(collect(dir, new(map[uint64]string)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for a missing middle segment", err)
	}
}

func TestFirstLSNSeedsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Clock: clock.NewSimulated(time.Time{}), FirstLSN: 42})
	if err != nil {
		t.Fatal(err)
	}
	if l.NextLSN() != 42 {
		t.Fatalf("NextLSN = %d, want 42", l.NextLSN())
	}
	lsn, err := l.Append([]byte("seeded"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("first seeded lsn = %d, want 42", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A plain reopen replays from the seeded position.
	var got map[uint64]string
	l2, err := Open(collect(dir, &got))
	if err != nil {
		t.Fatal(err)
	}
	if got[42] != "seeded" || l2.NextLSN() != 43 {
		t.Fatalf("replay = %v, NextLSN = %d", got, l2.NextLSN())
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Seeding past a log that still holds records is refused: it would
	// punch an LSN-chain gap into a live segment.
	if _, err := Open(Options{Dir: dir, Clock: clock.NewSimulated(time.Time{}), FirstLSN: 100}); err == nil {
		t.Fatal("FirstLSN past existing records must refuse to open")
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	sim := clock.NewSimulated(time.Time{})
	l, err := Open(Options{
		Dir:               t.TempDir(),
		Clock:             sim,
		GroupCommitMax:    8,
		GroupCommitWindow: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Simulated time never advances, so only the count threshold fires.
	for i := 0; i < 32; i++ {
		if _, err := l.Append([]byte("batched")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Fsyncs != 4 {
		t.Fatalf("Fsyncs = %d, want 4 (32 appends / batch of 8)", st.Fsyncs)
	}
	// The window fires the next append's fsync once time passes.
	sim.Advance(2 * time.Second)
	if _, err := l.Append([]byte("windowed")); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Fsyncs; got != 5 {
		t.Fatalf("Fsyncs after window = %d, want 5", got)
	}
}

func TestInjectedAppendCrashLeavesTornTail(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSimulated(time.Time{})
	// Crash on the 4th append (burst-free single rule with p=1 would kill
	// the first; use a window keyed off simulated time instead: simpler to
	// crash deterministically by probability 1 after three good appends on
	// a second injector).
	inj := faults.New(sim, 1, faults.Rule{Component: faults.WALAppend, Kind: faults.Crash, Probability: 1})
	l, err := Open(Options{Dir: dir, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("durable")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Swap in the crashing injector mid-flight.
	l.mu.Lock()
	l.opts.Faults = inj
	l.mu.Unlock()
	_, err = l.Append([]byte("doomed"))
	if !errors.Is(err, faults.ErrCrash) || !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrash and ErrCrashed", err)
	}
	if !l.Crashed() {
		t.Fatal("log not marked crashed")
	}
	if _, err := l.Append([]byte("refused")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append err = %v, want ErrCrashed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got map[uint64]string
	l2, err := Open(collect(dir, &got))
	if err != nil {
		t.Fatalf("recovery after injected crash: %v", err)
	}
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want the 3 synced ones", len(got))
	}
}

func TestInjectedFsyncCrashPreservesAckedRecords(t *testing.T) {
	dir := t.TempDir()
	sim := clock.NewSimulated(time.Time{})
	l, err := Open(Options{Dir: dir, Clock: sim, GroupCommitMax: 1 << 20, GroupCommitWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append([]byte("synced")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Three more acknowledged appends whose fsync will draw the kill.
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("acked-not-synced")); err != nil {
			t.Fatal(err)
		}
	}
	l.mu.Lock()
	l.opts.Faults = faults.New(sim, 1, faults.Rule{Component: faults.WALFsync, Kind: faults.Crash, Probability: 1})
	l.mu.Unlock()
	if err := l.Sync(); !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	if !l.Crashed() {
		t.Fatal("log not marked crashed")
	}
	if _, err := l.Append([]byte("refused")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append err = %v, want ErrCrashed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got map[uint64]string
	l2, err := Open(collect(dir, &got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Every acknowledged append survives: acknowledgement means the frame
	// reached the OS file, and an injected crash models a process kill,
	// which loses nothing the kernel already holds. (Power loss — which
	// CAN drop the unsynced suffix — is modeled separately by truncating
	// segment files; see the durable-layer tests.)
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want all 5 acknowledged", len(got))
	}
}

// TestGroupCommitCrashPreservesEveryAckedAppend drives many concurrent
// appenders into a log whose injector will kill it mid-stream, then
// asserts the write-before-ack contract under group commit: recovery
// replays EVERY append that returned an LSN, and the kill tore at most
// the uncommitted tail (the LSN chain is intact by construction, or Open
// would report ErrCorrupt).
func TestGroupCommitCrashPreservesEveryAckedAppend(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dir := t.TempDir()
		sim := clock.NewSimulated(time.Time{})
		inj := faults.New(sim, seed,
			faults.Rule{Component: faults.WALAppend, Kind: faults.Crash, Probability: 0.002},
			faults.Rule{Component: faults.WALFsync, Kind: faults.Crash, Probability: 0.02},
		)
		l, err := Open(Options{Dir: dir, Clock: sim, GroupCommitMax: 8, Faults: inj})
		if err != nil {
			t.Fatal(err)
		}

		const appenders = 8
		var mu sync.Mutex
		acked := make(map[uint64]bool)
		var wg sync.WaitGroup
		for g := 0; g < appenders; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				payload := []byte{byte('a' + g)}
				for i := 0; i < 500; i++ {
					lsn, err := l.Append(payload)
					if err != nil {
						return
					}
					mu.Lock()
					acked[lsn] = true
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if !l.Crashed() {
			// This seed never drew a crash; the invariant holds trivially.
			l.Close()
			continue
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		replayed := make(map[uint64]bool)
		l2, err := Open(Options{Dir: dir, Clock: sim, OnRecord: func(lsn uint64, payload []byte) {
			replayed[lsn] = true
		}})
		if err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		l2.Close()
		for lsn := range acked {
			if !replayed[lsn] {
				t.Fatalf("seed %d: acknowledged lsn %d lost by recovery", seed, lsn)
			}
		}
	}
}

func TestEmptyDirOpensFresh(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Clock: clock.NewSimulated(time.Time{})})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.NextLSN() != 1 {
		t.Fatalf("NextLSN = %d, want 1", l.NextLSN())
	}
	if st := l.Stats(); st.Replayed != 0 || st.Segments != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
}
