package proxy

import "errors"

// The proxy's failure taxonomy. Every error the request path returns
// matches exactly one of these families via errors.Is:
//
//   - ErrOffline: the network is unreachable. Not retried — the proxy
//     answers with its offline mode instead (any held device copy beats
//     a failed page load).
//   - ErrUpstream: a transient upstream failure (injected fault, 5xx,
//     dropped response). Retried with jittered exponential backoff; the
//     per-upstream circuit breakers count these.
//   - ErrDegraded: umbrella for "the resilience layer refused to call
//     the upstream". ErrBudgetExceeded and ErrCircuitOpen both match it,
//     so callers can branch on the family or the precise cause.
//
// Application errors (unknown page, rendering failure) belong to none
// of the families and propagate unchanged: a healthy upstream saying
// "no" is not a fault to retry or degrade around.
var (
	// ErrOffline is returned by Transport implementations when the
	// network is unreachable. The proxy answers it with its offline
	// mode: any held device copy is served rather than failing the
	// page load.
	ErrOffline = errors.New("proxy: network unreachable")

	// ErrUpstream marks a transient upstream failure worth retrying.
	// Transport implementations wrap retryable causes (5xx responses,
	// injected chaos faults) with it.
	ErrUpstream = errors.New("proxy: transient upstream failure")

	// ErrDegraded is the umbrella the resilience-layer refusals match:
	// errors.Is(err, ErrDegraded) is true for ErrBudgetExceeded and
	// ErrCircuitOpen.
	ErrDegraded = errors.New("proxy: degraded service")

	// ErrBudgetExceeded reports that the per-load latency budget was
	// exhausted before the upstream call could be made.
	ErrBudgetExceeded error = &degradedError{msg: "proxy: per-load latency budget exceeded"}

	// ErrCircuitOpen reports that the upstream's circuit breaker is
	// open and the call was refused without touching the network.
	ErrCircuitOpen error = &degradedError{msg: "proxy: circuit breaker open"}
)

// degradedError is a named refusal under the ErrDegraded umbrella.
type degradedError struct{ msg string }

func (e *degradedError) Error() string { return e.msg }

// Unwrap makes every degradedError match ErrDegraded via errors.Is.
func (e *degradedError) Unwrap() error { return ErrDegraded }

// DegradeReason names why a load was answered below full protocol
// fidelity. It doubles as the `reason` metric label on
// speedkit.device.degraded.total and the trace annotation.
type DegradeReason string

// Degradation ladder rungs, roughly in order of decreasing fidelity.
const (
	// DegradeNone: the load ran the full protocol.
	DegradeNone DegradeReason = ""
	// DegradeServeStale: the sketch (or shell upstream) was unavailable
	// and a held copy stored within the last Δ was served. Such a copy
	// cannot exceed the staleness bound: any invalidating write
	// postdates its StoredAt, which is at most Δ ago.
	DegradeServeStale DegradeReason = "serve_stale"
	// DegradeRevalidate: the sketch was unavailable and no held copy
	// was young enough, so the load was forced through the
	// version-conditioned revalidation path.
	DegradeRevalidate DegradeReason = "forced_revalidate"
	// DegradeOfflineShell: the network was unreachable and a held copy
	// was served regardless of age (the explicit Offline mode; the Δ
	// bound is suspended and PageLoad.Offline is set).
	DegradeOfflineShell DegradeReason = "offline_shell"
	// DegradeCircuitOpen: a breaker refused the upstream call.
	DegradeCircuitOpen DegradeReason = "circuit_open"
	// DegradeBudget: the per-load latency budget ran out.
	DegradeBudget DegradeReason = "budget"
	// DegradeRetriesExhausted: transient upstream failures persisted
	// through the whole retry schedule.
	DegradeRetriesExhausted DegradeReason = "retries_exhausted"
	// DegradeBlocksLocal: origin-sourced personalized fragments could
	// not be fetched and the device rendered local fallbacks instead.
	DegradeBlocksLocal DegradeReason = "blocks_local"
)

// degradeReasons enumerates the non-empty rungs for metric
// pre-resolution.
var degradeReasons = []DegradeReason{
	DegradeServeStale, DegradeRevalidate, DegradeOfflineShell,
	DegradeCircuitOpen, DegradeBudget, DegradeRetriesExhausted,
	DegradeBlocksLocal,
}
