package proxy

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/resilience"
)

func TestRetryRecoversFromTransientFetchFailure(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	calls := 0
	// Inject transience via the fake's error hook: fail twice, then heal.
	fail := 2
	tr.fetchHook = func() error {
		calls++
		if calls <= fail {
			return fmt.Errorf("edge hiccup: %w", ErrUpstream)
		}
		return nil
	}
	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("load failed despite retries: %v", err)
	}
	if calls != fail+1 {
		t.Fatalf("fetch attempts = %d, want %d", calls, fail+1)
	}
	if p.Stats().Retries != uint64(fail) {
		t.Fatalf("Retries = %d, want %d", p.Stats().Retries, fail)
	}
	// The backoff delays are accounted into the simulated latency:
	// at least base/2 + base (with ±50% jitter) on top of network costs.
	if res.Latency < 55*time.Millisecond+25*time.Millisecond {
		t.Fatalf("latency %v does not include backoff delays", res.Latency)
	}
	if res.Degraded != DegradeNone {
		t.Fatalf("successful retry marked degraded: %q", res.Degraded)
	}
}

func TestRetriesExhaustedServesHeldCopyWithinDelta(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	if _, err := p.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	// Flag the page so the next load must revalidate, then make the
	// upstream persistently transiently-failing.
	tr.sketchSrv.ReportWrite("/")
	p.sketch.Install(tr.sketchSrv.Snapshot())
	tr.fetchErr = fmt.Errorf("edge melting: %w", ErrUpstream)
	clk.Advance(10 * time.Second) // copy is 10s old, within Δ=30s

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("load failed with a Δ-fresh copy held: %v", err)
	}
	if res.Degraded != DegradeRetriesExhausted {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, DegradeRetriesExhausted)
	}
	if res.Source != SourceDevice || res.Offline {
		t.Fatalf("degraded serve: %+v", res)
	}
	if res.Version != 1 {
		t.Fatalf("version = %d", res.Version)
	}
}

func TestRetriesExhaustedWithoutYoungCopyFails(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	if _, err := p.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	tr.sketchSrv.ReportWrite("/")
	p.sketch.Install(tr.sketchSrv.Snapshot())
	tr.fetchErr = fmt.Errorf("edge melting: %w", ErrUpstream)
	clk.Advance(31 * time.Second) // held copy now older than Δ — but so is the sketch

	// The sketch is also stale now; make its refresh succeed so only the
	// shell path fails.
	_, err := p.Load(context.Background(), "/")
	if !errors.Is(err, ErrUpstream) {
		t.Fatalf("err = %v, want ErrUpstream", err)
	}
	if errors.Is(err, ErrDegraded) {
		t.Fatal("upstream failure must not masquerade as a resilience refusal")
	}
}

func TestBudgetExceededDegradesToHeldCopy(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	if _, err := p.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	tr.sketchSrv.ReportWrite("/")
	p.sketch.Install(tr.sketchSrv.Snapshot())
	clk.Advance(5 * time.Second)
	// A budget below the revalidation cost: the first attempt is allowed
	// (nothing spent yet), fails transiently, and the backoff pushes the
	// accumulated latency over budget.
	p.cfg.Resilience.LoadBudget = 20 * time.Millisecond
	tr.fetchErr = fmt.Errorf("slow edge: %w", ErrUpstream)

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("budget exhaustion failed the load despite held copy: %v", err)
	}
	if res.Degraded != DegradeBudget && res.Degraded != DegradeRetriesExhausted {
		t.Fatalf("Degraded = %q", res.Degraded)
	}
	if res.Source != SourceDevice {
		t.Fatalf("source = %v", res.Source)
	}
}

func TestBudgetExceededWithoutCopyReturnsTypedError(t *testing.T) {
	p, _, _ := newTestProxy(t, nil)
	p.cfg.Resilience.LoadBudget = time.Nanosecond
	// Cold load: the sketch fetch itself consumes the (tiny) budget, so
	// the shell fetch is refused and no copy exists to degrade to.
	_, err := p.Load(context.Background(), "/never-seen")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatal("ErrBudgetExceeded must match the ErrDegraded family")
	}
}

func TestBreakerOpensAndFailsFast(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	tr.fetchErr = fmt.Errorf("dead edge: %w", ErrUpstream)
	tr.sketchDown = true
	p.cfg.Resilience.BreakerThreshold = 3

	// Rebuild breakers with the tightened threshold (cfg was copied at
	// New); drive failures until the shell breaker opens.
	p.brShell = resilience.NewBreaker(resilience.BreakerConfig{
		Clock: p.cfg.Clock, Threshold: 3, Cooldown: 15 * time.Second})
	for i := 0; i < 2; i++ {
		_, _ = p.Load(context.Background(), "/cold")
	}
	if p.brShell.State() != resilience.Open {
		t.Fatalf("shell breaker state = %v after repeated failures", p.brShell.State())
	}
	// Next load is refused without touching the transport.
	before := tr.blockCalls
	_, err := p.Load(context.Background(), "/cold")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatal("ErrCircuitOpen must match the ErrDegraded family")
	}
	if tr.blockCalls != before {
		t.Fatal("open breaker still called the transport")
	}
	_, shell, _ := p.BreakerStats()
	if shell.Opens == 0 || shell.Rejected == 0 {
		t.Fatalf("breaker stats = %+v", shell)
	}
}

func TestBreakerRecoversAfterCooldown(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	if _, err := p.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	tr.fetchErr = fmt.Errorf("dead edge: %w", ErrUpstream)
	p.brShell = resilience.NewBreaker(resilience.BreakerConfig{
		Clock: clk, Threshold: 2, Cooldown: 15 * time.Second})
	for i := 0; i < 2; i++ {
		_, _ = p.Load(context.Background(), "/cold")
	}
	if p.brShell.State() != resilience.Open {
		t.Fatalf("breaker = %v", p.brShell.State())
	}
	tr.fetchErr = nil
	clk.Advance(16 * time.Second)
	res, err := p.Load(context.Background(), "/plain")
	if err != nil {
		t.Fatalf("post-cooldown probe load failed: %v", err)
	}
	if res.Source == SourceDevice {
		t.Fatal("probe load did not reach the network")
	}
	if p.brShell.State() != resilience.Closed {
		t.Fatalf("breaker after successful probe = %v", p.brShell.State())
	}
}

func TestSketchUnreachableForcesRevalidation(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	if _, err := p.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}
	// Sketch endpoint down, copy and sketch both older than Δ: the
	// ladder may not blind-serve and must take the version-conditioned
	// revalidation path (the origin itself is still reachable).
	tr.sketchDown = true
	clk.Advance(31 * time.Second)

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("sketch-down load failed: %v", err)
	}
	if res.Degraded != DegradeRevalidate {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, DegradeRevalidate)
	}
	if !res.Revalidated || res.Offline {
		t.Fatalf("forced revalidation result: %+v", res)
	}
	if p.Stats().Degraded == 0 {
		t.Fatal("degradation not counted")
	}
}

func TestSketchUnreachableServeStaleWithinDelta(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	// Short-TTL page: the device refetches it mid-window, decoupling the
	// copy's StoredAt from the sketch's TakenAt.
	e := cache.TTLEntry(clk, "/", []byte("<html>shell</html>"), 1, 15*time.Second)
	tr.pages["/"] = e
	if _, err := p.Load(context.Background(), "/"); err != nil { // sketch @0s, copy @0s
		t.Fatal(err)
	}
	clk.Advance(20 * time.Second)
	tr.pages["/"] = cache.TTLEntry(clk, "/", []byte("<html>shell</html>"), 1, time.Hour)
	if _, err := p.Load(context.Background(), "/"); err != nil { // TTL miss → refetch: copy @20s, sketch @0s
		t.Fatal(err)
	}
	tr.sketchDown = true
	clk.Advance(11 * time.Second) // sketch 31s old (> Δ), copy 11s old (< Δ)

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("serve-stale load failed: %v", err)
	}
	if res.Degraded != DegradeServeStale {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, DegradeServeStale)
	}
	if res.Source != SourceDevice || res.Offline {
		t.Fatalf("serve-stale result: %+v", res)
	}
	// The served copy is provably within the bound: it was stored 11s
	// ago, so its staleness cannot exceed Δ = 30s.
	if p.Stats().OfflineServes != 0 {
		t.Fatal("serve-stale miscounted as offline")
	}
}

func TestContextCancellationNotRetried(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	tr.fetchHook = func() error {
		calls++
		return nil
	}
	_, err := p.Load(ctx, "/")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("cancelled load still made %d transport calls", calls)
	}
	if p.Stats().Retries != 0 {
		t.Fatal("cancelled load recorded retries")
	}
}

func TestBlocksFailureFallsBackToLocalRender(t *testing.T) {
	u := loggedInUser()
	p, tr, _ := newTestProxy(t, u)
	p.cfg.OriginBlocks = map[string]bool{"cart": true}
	tr.blockErr = fmt.Errorf("blocks endpoint down: %w", ErrUpstream)

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("blocks failure failed the page: %v", err)
	}
	if res.Degraded != DegradeBlocksLocal {
		t.Fatalf("Degraded = %q, want %q", res.Degraded, DegradeBlocksLocal)
	}
	if res.BlocksPersonalized != 2 {
		t.Fatalf("blocks = %d, want 2 (local fallbacks)", res.BlocksPersonalized)
	}
	if p.Stats().BlocksOrigin != 0 || p.Stats().BlocksLocal == 0 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestErrorTaxonomyIsMatchable(t *testing.T) {
	cases := []struct {
		err      error
		degraded bool
	}{
		{ErrOffline, false},
		{ErrUpstream, false},
		{ErrDegraded, true},
		{ErrBudgetExceeded, true},
		{ErrCircuitOpen, true},
	}
	for _, c := range cases {
		wrapped := fmt.Errorf("proxy: fetch /x: %w", c.err)
		if !errors.Is(wrapped, c.err) {
			t.Fatalf("%v not matchable through wrapping", c.err)
		}
		if errors.Is(wrapped, ErrDegraded) != c.degraded {
			t.Fatalf("%v: ErrDegraded match = %v, want %v", c.err, !c.degraded, c.degraded)
		}
	}
	if errors.Is(ErrBudgetExceeded, ErrCircuitOpen) {
		t.Fatal("distinct refusals must not match each other")
	}
}
