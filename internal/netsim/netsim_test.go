package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestLinkSampleDeterministicWithSeed(t *testing.T) {
	l := Link{RTT: 100 * time.Millisecond, Jitter: 0.2, Bandwidth: 1e6, Loss: 0.01}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if l.Sample(a, 1000) != l.Sample(b, 1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestLinkSampleNoJitterNoLoss(t *testing.T) {
	l := Link{RTT: 50 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	if d := l.Sample(rng, 0); d != 50*time.Millisecond {
		t.Fatalf("deterministic link sampled %v", d)
	}
}

func TestLinkBandwidthTerm(t *testing.T) {
	l := Link{RTT: 10 * time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	rng := rand.New(rand.NewSource(1))
	d := l.Sample(rng, 1_000_000) // 1 MB => +1 s
	want := 10*time.Millisecond + time.Second
	if d != want {
		t.Fatalf("d = %v, want %v", d, want)
	}
}

func TestLinkJitterCentersOnRTT(t *testing.T) {
	l := Link{RTT: 100 * time.Millisecond, Jitter: 0.2}
	rng := rand.New(rand.NewSource(7))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += l.Sample(rng, 0)
	}
	mean := sum / n
	// Log-normal mean is RTT·exp(σ²/2) ≈ 102 ms; accept 95–115 ms.
	if mean < 95*time.Millisecond || mean > 115*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestLinkLossAddsRetransmits(t *testing.T) {
	lossy := Link{RTT: 100 * time.Millisecond, Loss: 0.5}
	clean := Link{RTT: 100 * time.Millisecond}
	rng := rand.New(rand.NewSource(9))
	var lossySum, cleanSum time.Duration
	for i := 0; i < 5000; i++ {
		lossySum += lossy.Sample(rng, 0)
		cleanSum += clean.Sample(rng, 0)
	}
	if lossySum <= cleanSum+cleanSum/4 {
		t.Fatalf("loss penalty too small: %v vs %v", lossySum, cleanSum)
	}
}

func TestNetworkLinkRegistry(t *testing.T) {
	n := NewNetwork(1)
	n.SetLink("a", "b", Link{RTT: time.Millisecond})
	if _, ok := n.Link("a", "b"); !ok {
		t.Fatal("registered link missing")
	}
	if _, ok := n.Link("b", "a"); ok {
		t.Fatal("links must be directional")
	}
}

func TestNetworkUnknownLinkFallsBack(t *testing.T) {
	n := NewNetwork(1)
	d := n.Latency("ghost", "nowhere", 100)
	if d < 100*time.Millisecond {
		t.Fatalf("fallback latency suspiciously low: %v", d)
	}
}

func TestDefaultTopologyShape(t *testing.T) {
	n := DefaultTopology(1)
	// Every canonical path must exist.
	for _, r := range Regions() {
		for _, pair := range [][2]string{
			{ClientNode(r), EdgeNode(r)},
			{ClientNode(r), OriginNode},
			{EdgeNode(r), OriginNode},
		} {
			if _, ok := n.Link(pair[0], pair[1]); !ok {
				t.Fatalf("missing link %s -> %s", pair[0], pair[1])
			}
		}
	}
	// Edge paths must beat origin paths, increasingly so with distance.
	edgeEU, _ := n.Link(ClientNode(EU), EdgeNode(EU))
	origEU, _ := n.Link(ClientNode(EU), OriginNode)
	origAPAC, _ := n.Link(ClientNode(APAC), OriginNode)
	if edgeEU.RTT >= origEU.RTT {
		t.Fatal("EU edge not faster than EU origin")
	}
	if origAPAC.RTT <= origEU.RTT*3 {
		t.Fatalf("APAC origin RTT %v should dwarf EU %v", origAPAC.RTT, origEU.RTT)
	}
}

func TestDefaultTopologyDeterministic(t *testing.T) {
	a := DefaultTopology(5)
	b := DefaultTopology(5)
	for i := 0; i < 50; i++ {
		da := a.Latency(ClientNode(US), OriginNode, 5000)
		db := b.Latency(ClientNode(US), OriginNode, 5000)
		if da != db {
			t.Fatal("same-seed topologies diverged")
		}
	}
}

func TestDeviceLatencySubMillisecond(t *testing.T) {
	n := NewNetwork(3)
	for i := 0; i < 100; i++ {
		d := n.DeviceLatency()
		if d < 300*time.Microsecond || d > time.Millisecond {
			t.Fatalf("device latency %v out of range", d)
		}
	}
}

func TestRegionsOrder(t *testing.T) {
	rs := Regions()
	if len(rs) != 3 || rs[0] != EU || rs[1] != US || rs[2] != APAC {
		t.Fatalf("regions = %v", rs)
	}
}
