package tracectx

import (
	"context"
	"strings"
	"testing"
)

func mustSpanContext(t *testing.T, tp string) SpanContext {
	t.Helper()
	sc, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed, want ok", tp)
	}
	return sc
}

func TestTraceparentRoundTrip(t *testing.T) {
	src := NewIDSource(42)
	for i := 0; i < 100; i++ {
		want := SpanContext{
			TraceID: src.TraceID(),
			SpanID:  src.SpanID(),
			Sampled: i%2 == 0,
		}
		wire := want.Traceparent()
		if len(wire) != traceparentLen {
			t.Fatalf("Traceparent() length = %d, want %d (%q)", len(wire), traceparentLen, wire)
		}
		got, ok := ParseTraceparent(wire)
		if !ok {
			t.Fatalf("round-trip parse failed for %q", wire)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v (wire %q)", got, want, wire)
		}
	}
}

func TestTraceparentKnownVector(t *testing.T) {
	// Vector from the W3C trace-context spec.
	const wire = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc := mustSpanContext(t, wire)
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", sc.TraceID)
	}
	if sc.SpanID.String() != "00f067aa0ba902b7" {
		t.Fatalf("span id = %s", sc.SpanID)
	}
	if !sc.Sampled {
		t.Fatal("sampled bit not parsed")
	}
	if sc.Traceparent() != wire {
		t.Fatalf("re-encode = %q, want %q", sc.Traceparent(), wire)
	}
}

// TestTraceparentMalformed is the fail-closed gate: every malformed,
// truncated, or hostile header must yield ok=false and the zero
// SpanContext — the caller then starts a fresh root span and makes its
// own sampling decision, never inheriting a bogus sampling bit.
func TestTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"garbage", "not-a-traceparent"},
		{"truncated after version", "00-"},
		{"truncated trace id", valid[:20]},
		{"truncated span id", valid[:40]},
		{"truncated flags", valid[:len(valid)-1]},
		{"one char short", valid[:54]},
		{"trailing junk v00", valid + "x"},
		{"trailing dash v00", valid + "-extra"},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"uppercase flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0A"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01"},
		{"non-hex span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bz-01"},
		{"non-hex version", "0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"wrong separator 1", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"wrong separator 2", "00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01"},
		{"wrong separator 3", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7_01"},
		{"future version bad tail", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x"},
		{"all dashes", strings.Repeat("-", traceparentLen)},
		{"long garbage", strings.Repeat("z", 200)},
		{"nul bytes", string(make([]byte, traceparentLen))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent(tc.in) // must never panic
			if ok {
				t.Fatalf("ParseTraceparent(%q) = ok, want fail-closed", tc.in)
			}
			if sc != (SpanContext{}) {
				t.Fatalf("ParseTraceparent(%q) leaked partial context %+v", tc.in, sc)
			}
			if sc.Sampled {
				t.Fatalf("malformed header %q inherited sampling bit", tc.in)
			}
		})
	}
}

func TestTraceparentFutureVersion(t *testing.T) {
	// A future version with the 00-shaped prefix parses (forward
	// compatibility), including with dash-separated extension fields.
	for _, wire := range []string{
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra-fields",
	} {
		sc := mustSpanContext(t, wire)
		if !sc.Sampled {
			t.Fatalf("sampled bit lost for %q", wire)
		}
	}
}

func TestTraceparentFlagBits(t *testing.T) {
	// Unknown flag bits are ignored; only bit 0 is the sampling decision.
	base := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-"
	for _, tc := range []struct {
		flags   string
		sampled bool
	}{
		{"00", false}, {"01", true}, {"02", false}, {"03", true}, {"fe", false}, {"ff", true},
	} {
		sc := mustSpanContext(t, base+tc.flags)
		if sc.Sampled != tc.sampled {
			t.Fatalf("flags %s: sampled = %v, want %v", tc.flags, sc.Sampled, tc.sampled)
		}
	}
}

func TestInvalidContextDoesNotPropagate(t *testing.T) {
	var zero SpanContext
	if zero.Valid() {
		t.Fatal("zero SpanContext reports Valid")
	}
	if got := zero.Traceparent(); got != "" {
		t.Fatalf("zero context rendered %q, want empty", got)
	}
	ctx := ContextWithSpan(context.Background(), zero)
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("invalid context stored in ctx")
	}
}

func TestContextCarrier(t *testing.T) {
	src := NewIDSource(7)
	sc := SpanContext{TraceID: src.TraceID(), SpanID: src.SpanID(), Sampled: true}
	ctx := ContextWithSpan(context.Background(), sc)
	got, ok := SpanFromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("SpanFromContext = %+v, %v; want %+v, true", got, ok, sc)
	}
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty ctx yielded a span context")
	}
}

// TestIDSourceDeterminism pins the splitmix64 stream: same seed, same
// IDs, forever. Golden trace exports depend on this.
func TestIDSourceDeterminism(t *testing.T) {
	a, b := NewIDSource(1234), NewIDSource(1234)
	for i := 0; i < 50; i++ {
		if a.TraceID() != b.TraceID() || a.SpanID() != b.SpanID() {
			t.Fatalf("seeded streams diverged at draw %d", i)
		}
	}
	c := NewIDSource(4321)
	if NewIDSource(1234).TraceID() == c.TraceID() {
		t.Fatal("different seeds produced identical first trace ID")
	}
	if NewIDSource(0).TraceID().IsZero() {
		t.Fatal("zero seed degenerated to zero IDs")
	}
}

// TestParseZeroAlloc gates the hot propagation path: parsing any header
// — valid or hostile — must not allocate. Extraction runs on every
// server request whether or not the trace is sampled.
func TestParseZeroAlloc(t *testing.T) {
	inputs := []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
		"",
		"garbage",
		strings.Repeat("z", 200),
	}
	for _, in := range inputs {
		in := in
		if n := testing.AllocsPerRun(200, func() {
			ParseTraceparent(in)
		}); n != 0 {
			t.Fatalf("ParseTraceparent(%q) allocates %.1f/op, want 0", in, n)
		}
	}
}
