package proxy

import (
	"context"
	"testing"
	"time"

	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/netsim"
)

// newPrefetchProxy builds a proxy over a fake transport where the listing
// page "/list" links three detail pages.
func newPrefetchProxy(t *testing.T, k int) (*Proxy, *fakeTransport, *clock.Simulated) {
	t.Helper()
	clk := clock.NewSimulated(time.Time{})
	tr := &fakeTransport{
		clk:       clk,
		sketchSrv: cachesketch.NewServer(cachesketch.ServerConfig{Clock: clk}),
		pages:     make(map[string]cache.Entry),
		fetchSrc:  SourceCDN,
		fetchLat:  20 * time.Millisecond,
	}
	listing := cache.TTLEntry(clk, "/list", []byte("<ul>items</ul>"), 1, time.Hour)
	listing.Metadata = EntryMetadata(nil, []string{"/item/1", "/item/2", "/item/3"})
	tr.pages["/list"] = listing
	for _, p := range []string{"/item/1", "/item/2", "/item/3"} {
		tr.pages[p] = cache.TTLEntry(clk, p, []byte("<item>"+p+"</item>"), 1, time.Hour)
	}
	p := New(Config{Region: netsim.EU, Clock: clk, PrefetchLinks: k}, tr)
	return p, tr, clk
}

func TestPrefetchWarmsLinkedPages(t *testing.T) {
	p, _, _ := newPrefetchProxy(t, 2)
	res, err := p.Load(context.Background(), "/list")
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2 (K cap)", st.Prefetches)
	}
	if st.PrefetchTime == 0 {
		t.Fatal("prefetch cost not accounted")
	}
	// Prefetch cost is NOT part of the page latency.
	if res.Latency > 100*time.Millisecond {
		t.Fatalf("page latency %v includes prefetch cost", res.Latency)
	}
	// The next click is a device hit.
	r2, _ := p.Load(context.Background(), "/item/1")
	if r2.Source != SourceDevice {
		t.Fatalf("prefetched page served from %v", r2.Source)
	}
	// The third link was beyond K and stays cold.
	r3, _ := p.Load(context.Background(), "/item/3")
	if r3.Source == SourceDevice {
		t.Fatal("link beyond K was prefetched")
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	p, _, _ := newPrefetchProxy(t, 0)
	_, _ = p.Load(context.Background(), "/list")
	if p.Stats().Prefetches != 0 {
		t.Fatal("prefetch ran despite K=0")
	}
}

func TestPrefetchSkipsHeldPages(t *testing.T) {
	p, _, _ := newPrefetchProxy(t, 3)
	_, _ = p.Load(context.Background(), "/item/2") // warm one link by visiting it
	_, _ = p.Load(context.Background(), "/list")
	// 3 links, one already held → only 2 prefetches.
	if got := p.Stats().Prefetches; got != 2 {
		t.Fatalf("prefetches = %d, want 2", got)
	}
}

func TestPrefetchStopsWhenOffline(t *testing.T) {
	p, tr, _ := newPrefetchProxy(t, 3)
	_, _ = p.Load(context.Background(), "/list") // caches the listing itself
	p.store.Delete("/item/1")
	p.store.Delete("/item/2")
	p.store.Delete("/item/3")
	before := p.Stats().Prefetches

	goOffline(tr)
	res, err := p.Load(context.Background(), "/list") // offline: listing from device cache
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offline && res.Source != SourceDevice {
		t.Fatalf("unexpected result %+v", res)
	}
	if p.Stats().Prefetches != before {
		t.Fatal("prefetch attempted while offline")
	}
}

func TestEntryMetadata(t *testing.T) {
	if EntryMetadata(nil, nil) != nil {
		t.Fatal("empty metadata not nil")
	}
	m := EntryMetadata([]string{"cart"}, []string{"/a", "/b"})
	if m["blocks"] != "cart" || m["links"] != "/a,/b" {
		t.Fatalf("metadata = %v", m)
	}
	if m := EntryMetadata(nil, []string{"/a"}); m["links"] != "/a" || m["blocks"] != "" {
		t.Fatalf("links-only metadata = %v", m)
	}
}
