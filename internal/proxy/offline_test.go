package proxy

import (
	"context"
	"errors"
	"testing"
	"time"
)

// goOffline makes the fake transport unreachable, including the sketch
// endpoint (nil snapshot).
func goOffline(tr *fakeTransport) {
	tr.fetchErr = ErrOffline
	tr.sketchDown = true
}

func TestOfflineServesHeldCopy(t *testing.T) {
	p, tr, clk := newTestProxy(t, loggedInUser())
	if _, err := p.Load(context.Background(), "/"); err != nil {
		t.Fatal(err)
	}

	goOffline(tr)
	clk.Advance(31 * time.Second) // sketch stale too — everything is down

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("offline load failed despite held copy: %v", err)
	}
	if !res.Offline || res.Source != SourceDevice {
		t.Fatalf("offline result: %+v", res)
	}
	if len(res.Body) == 0 || res.BlocksPersonalized == 0 {
		t.Fatal("offline page not assembled/personalized")
	}
	if p.Stats().OfflineServes != 1 {
		t.Fatalf("OfflineServes = %d", p.Stats().OfflineServes)
	}
}

func TestOfflineServesExpiredCopy(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	// Cache a short-lived page, then let it expire while offline.
	e := tr.pages["/"]
	e.ExpiresAt = clk.Now().Add(5 * time.Second)
	tr.pages["/"] = e
	_, _ = p.Load(context.Background(), "/")

	goOffline(tr)
	clk.Advance(time.Hour)

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatalf("offline load of expired copy failed: %v", err)
	}
	if !res.Offline {
		t.Fatal("expired-copy serve not marked offline")
	}
}

func TestOfflineWithoutCopyFails(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	goOffline(tr)
	_, err := p.Load(context.Background(), "/never-cached")
	if !errors.Is(err, ErrOffline) {
		t.Fatalf("err = %v, want ErrOffline", err)
	}
}

func TestOfflineNonNetworkErrorsPropagate(t *testing.T) {
	p, tr, _ := newTestProxy(t, nil)
	_, _ = p.Load(context.Background(), "/")
	tr.fetchErr = errors.New("500 internal server error")
	tr.sketchDown = false
	// Force a refetch by flagging the page.
	tr.sketchSrv.ReportCachedRead("/", tr.clk.Now().Add(time.Hour))
	tr.sketchSrv.ReportWrite("/")
	p.sketch.Install(tr.sketchSrv.Snapshot())

	if _, err := p.Load(context.Background(), "/"); err == nil {
		t.Fatal("application error masked by offline fallback")
	}
}

func TestOfflineRecoveryRestoresProtocol(t *testing.T) {
	p, tr, clk := newTestProxy(t, nil)
	_, _ = p.Load(context.Background(), "/")

	goOffline(tr)
	clk.Advance(31 * time.Second)
	res, _ := p.Load(context.Background(), "/")
	if !res.Offline {
		t.Fatal("not offline")
	}

	// Connectivity returns; the write made while offline must become
	// visible within Δ of recovery.
	tr.fetchErr = nil
	tr.sketchDown = false
	tr.sketchSrv.ReportWrite("/") // copy reported during first load
	e := tr.pages["/"]
	e.Version = 2
	tr.pages["/"] = e

	res, err := p.Load(context.Background(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Offline {
		t.Fatal("still offline after recovery")
	}
	if !res.SketchRefreshed || res.Version != 2 {
		t.Fatalf("post-recovery load: %+v", res)
	}
}
