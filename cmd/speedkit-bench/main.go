// Command speedkit-bench regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	speedkit-bench                  # run everything at full scale
//	speedkit-bench -scale 0.1       # quick pass
//	speedkit-bench -only t2,f5      # selected artifacts
//	speedkit-bench -seed 7          # different deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"speedkit/internal/bench"
	"speedkit/internal/clock"
	"speedkit/internal/obs"
)

type experiment struct {
	id   string
	desc string
	run  func(seed int64, scale bench.Scale) (fmt.Stringer, error)
}

func experiments() []experiment {
	return []experiment{
		{"t1", "cache-tier hit ratios and latencies", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunTable1(s, sc)
		}},
		{"t2", "consistency: TTL-only vs Cache Sketch", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunTable2(s, sc)
		}},
		{"t3", "GDPR: PII crossing the CDN boundary", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunTable3(s, sc)
		}},
		{"f4", "page-load time by geography", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunFigure4(s, sc)
		}},
		{"f5", "Δ refresh-interval sweep", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunFigure5(s, sc)
		}},
		{"f6", "sketch size vs tracked entries", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunFigure6(sc), nil
		}},
		{"f7", "TTL policies: adaptive vs static", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunFigure7(s, sc)
		}},
		{"f8", "invalidation matcher scaling", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunFigure8(sc), nil
		}},
		{"f9", "A/B field simulation", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunFigure9(s, sc)
		}},
		{"a1", "ablation: dynamic-block strategies", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunAblationA1(s, sc)
		}},
		{"a2", "ablation: sketch maintenance", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunAblationA2(sc), nil
		}},
		{"a3", "ablation: listing-query index", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunAblationA3(sc), nil
		}},
		{"a4", "ablation: link prefetching", func(s int64, sc bench.Scale) (fmt.Stringer, error) {
			return bench.RunAblationA4(s, sc)
		}},
	}
}

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed for all experiments")
	scale := flag.Float64("scale", 1.0, "scale factor for op counts (0.05 = quick)")
	only := flag.String("only", "", "comma-separated experiment ids (t1,t2,t3,f4..f9,a1,a2)")
	list := flag.Bool("list", false, "list experiments and exit")
	obsOut := flag.String("obs-out", "", "write the accumulated metrics registry to this file ('-' for stdout)")
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.desc)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	failed := false
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s (seed=%d scale=%.2f)\n", e.id, e.desc, *seed, *scale)
		sw := clock.NewStopwatch(clock.System)
		res, err := e.run(*seed, bench.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Print(res.String())
		fmt.Printf("--- %s done in %v\n\n", e.id, sw.Elapsed().Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}

	// Every experiment's service registers its instruments in obs.Default,
	// so one dump covers the whole suite — a registry snapshot rides along
	// with the experiment output for offline comparison.
	if *obsOut != "" {
		w := os.Stdout
		if *obsOut != "-" {
			f, err := os.Create(*obsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		} else {
			fmt.Println("=== metrics registry (Prometheus text exposition)")
		}
		if err := obs.Default.WriteText(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
