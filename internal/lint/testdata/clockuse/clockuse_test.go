package clockuse

import (
	"testing"
	"time"
)

// Test files are exempt from clock discipline: no findings expected here.
func TestWallClockAllowedInTests(t *testing.T) {
	start := time.Now()
	time.Sleep(time.Microsecond)
	if time.Since(start) < 0 {
		t.Fatal("clock ran backwards")
	}
}
