package query

import (
	"fmt"
	"testing"
)

func sampleDocs() []map[string]any {
	return []map[string]any{
		{"id": "p1", "category": "shoes", "price": 89.9, "stock": int64(12)},
		{"id": "p2", "category": "shoes", "price": 120.0, "stock": int64(0)},
		{"id": "p3", "category": "hats", "price": 25.0, "stock": int64(7)},
		{"id": "p4", "category": "shoes", "price": 45.0, "stock": int64(3)},
		{"id": "p5", "category": "belts", "price": 35.0},
	}
}

func TestQueryApplyFilterSortLimit(t *testing.T) {
	q := New("products", Eq("category", "shoes")).OrderBy("price", false).WithLimit(2)
	got := q.Apply(sampleDocs())
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0]["id"] != "p4" || got[1]["id"] != "p1" {
		t.Fatalf("order = %v,%v, want p4,p1", got[0]["id"], got[1]["id"])
	}
}

func TestQueryApplyDescending(t *testing.T) {
	q := New("products", nil).OrderBy("price", true)
	got := q.Apply(sampleDocs())
	if got[0]["id"] != "p2" {
		t.Fatalf("desc first = %v, want p2", got[0]["id"])
	}
}

func TestQueryApplyMissingSortKeyOrdersLast(t *testing.T) {
	q := New("products", nil).OrderBy("stock", false)
	got := q.Apply(sampleDocs())
	if got[len(got)-1]["id"] != "p5" {
		t.Fatalf("missing-key doc not last: %v", got[len(got)-1]["id"])
	}
}

func TestQueryNilFilterMatchesAll(t *testing.T) {
	q := New("products", nil)
	if len(q.Apply(sampleDocs())) != 5 {
		t.Fatal("nil filter did not match all")
	}
	if !q.Match(map[string]any{"anything": 1}) {
		t.Fatal("nil filter Match failed")
	}
}

func TestQueryNegativeLimitClamped(t *testing.T) {
	q := New("c", nil).WithLimit(-5)
	if q.Limit != 0 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestQueryIDStability(t *testing.T) {
	a := New("products", And{Eq("category", "shoes"), Lt("price", 100)}).OrderBy("price", false).WithLimit(10)
	b := New("products", And{Lt("price", 100), Eq("category", "shoes")}).OrderBy("price", false).WithLimit(10)
	if a.ID() != b.ID() {
		t.Fatalf("equivalent queries have different IDs:\n%s\n%s", a.ID(), b.ID())
	}
	c := New("products", And{Eq("category", "shoes"), Lt("price", 100)}).OrderBy("price", true).WithLimit(10)
	if a.ID() == c.ID() {
		t.Fatal("different sort direction shares ID")
	}
	d := New("other", a.Filter)
	if a.ID() == d.ID() {
		t.Fatal("different collection shares ID")
	}
}

func TestQueryReadsField(t *testing.T) {
	q := New("p", And{Eq("category", "shoes"), Gt("price", 10)}).OrderBy("rank", false)
	for _, f := range []string{"category", "price", "rank"} {
		if !q.ReadsField(f) {
			t.Errorf("ReadsField(%s) = false", f)
		}
	}
	if q.ReadsField("stock") {
		t.Error("ReadsField(stock) = true")
	}
	empty := New("p", nil)
	if empty.ReadsField("x") {
		t.Error("nil filter reads field")
	}
}

func TestQueryApplyDoesNotMutateInput(t *testing.T) {
	docs := sampleDocs()
	q := New("p", nil).OrderBy("price", true)
	q.Apply(docs)
	if docs[0]["id"] != "p1" {
		t.Fatal("Apply reordered the input slice")
	}
}

func TestEqualityLookups(t *testing.T) {
	cases := []struct {
		name string
		p    Predicate
		want map[string]any
	}{
		{"bare eq", Eq("a", 1), map[string]any{"a": 1}},
		{"and of eqs", And{Eq("a", 1), Eq("b", "x")}, map[string]any{"a": 1, "b": "x"}},
		{"and mixed", And{Eq("a", 1), Gt("b", 2)}, map[string]any{"a": 1}},
		{"no eq", Gt("a", 1), nil},
		{"or not extracted", Or{Eq("a", 1), Eq("a", 2)}, nil},
		{"nested and not extracted", And{Or{Eq("a", 1)}}, nil},
		{"ne not extracted", Ne("a", 1), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := EqualityLookups(c.p)
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for k, v := range c.want {
				if got[k] != v {
					t.Fatalf("got %v, want %v", got, c.want)
				}
			}
		})
	}
}

func BenchmarkQueryMatch(b *testing.B) {
	q := MustParse(`products WHERE category = "shoes" AND price < 100 AND stock > 0`)
	doc := map[string]any{"category": "shoes", "price": 50.0, "stock": int64(5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Match(doc)
	}
}

func BenchmarkQueryApply1k(b *testing.B) {
	docs := make([]map[string]any, 1000)
	for i := range docs {
		docs[i] = map[string]any{"id": fmt.Sprintf("p%d", i), "price": float64(i % 200), "category": "shoes"}
	}
	q := MustParse(`products WHERE price < 100 ORDER BY price LIMIT 20`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Apply(docs)
	}
}
