// Package httpclient implements the client proxy's Transport over real
// HTTP against the endpoints served by internal/httpapi. Together with
// cmd/speedkit-server it closes the loop: the same proxy.Proxy that runs
// in-process inside the simulator can drive the protocol across an actual
// network — binary sketch downloads, ETag-conditional page fetches, the
// first-party blocks API, and offline detection on connection failure.
//
// Latencies reported through this transport are measured wall-clock
// round-trip times, not simulated ones.
package httpclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"speedkit/internal/bloom"
	"speedkit/internal/cache"
	"speedkit/internal/cachesketch"
	"speedkit/internal/clock"
	"speedkit/internal/netsim"
	"speedkit/internal/proxy"
	"speedkit/internal/session"
	"speedkit/internal/tracectx"
)

// Transport talks to a Speed Kit HTTP API. It speaks the versioned
// /v1/ wire surface and transparently falls back to the legacy
// unversioned paths when pointed at a pre-/v1 server.
type Transport struct {
	base string
	hc   *http.Client
	clk  clock.Clock
	// generation tracks sketch generations for Install ordering when the
	// server omits the header.
	generation uint64
	// legacy latches once the server is known to predate /v1: every later
	// request goes straight to the unversioned path without re-probing.
	legacy atomic.Bool
}

// New creates a transport for the API at base (e.g. "http://host:8080").
// A nil client uses a default with a 10 s timeout.
func New(base string, hc *http.Client) *Transport {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Transport{
		base: strings.TrimRight(base, "/"),
		hc:   hc,
		clk:  clock.System,
	}
}

// asOffline maps connection-level failures to proxy.ErrOffline so the
// proxy's offline mode engages; application-level errors pass through.
//
// Context cancellation must be checked before the net/url probes:
// http.Client wraps ctx errors in *url.Error, so the blanket url.Error
// branch used to misreport the caller's own deadline or cancellation as
// connectivity loss — engaging offline mode for a request the caller
// abandoned on purpose. Cancellation propagates unchanged so
// errors.Is(err, context.Canceled) keeps working upstream.
func asOffline(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var netErr net.Error
	if errors.As(err, &netErr) || errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: %v", proxy.ErrOffline, err)
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return fmt.Errorf("%w: %v", proxy.ErrOffline, err)
	}
	// url.Error wraps transport failures (connection refused, DNS, ...).
	var urlErr *url.Error
	if errors.As(err, &urlErr) {
		return fmt.Errorf("%w: %v", proxy.ErrOffline, err)
	}
	return err
}

// statusErr renders a non-success response as an error: 5xx answers are
// transient upstream failures (retryable under proxy.ErrUpstream), 4xx
// are application errors and pass through untyped. The /v1 JSON error
// envelope ({"error":{"code","message"}}) is unwrapped into the message
// when present; legacy text/plain bodies pass through as-is.
func statusErr(op, path string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	detail := strings.TrimSpace(string(raw))
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		detail = env.Error.Code + ": " + env.Error.Message
	}
	err := fmt.Errorf("httpclient: %s %s: %d %s",
		op, path, resp.StatusCode, detail)
	if resp.StatusCode >= 500 {
		return fmt.Errorf("%w: %w", proxy.ErrUpstream, err)
	}
	return err
}

// injectTraceparent stamps the outgoing request with the active span's
// W3C traceparent, if the caller's context carries one. The span context
// holds anonymous identifiers only (trace ID, span ID, sampling bit), so
// the header is safe to send to shared infrastructure. Unsampled loads
// carry no span and send no header — the propagation path stays
// allocation-free when tracing sits idle.
func injectTraceparent(ctx context.Context, req *http.Request) {
	if sc, ok := tracectx.SpanFromContext(ctx); ok {
		req.Header.Set(tracectx.Header, sc.Traceparent())
	}
}

// routeMissing reports whether a 404 means "this server has no such
// route" rather than "the resource does not exist". Every /v1 handler
// emits 404s through the JSON error envelope; the stdlib mux's
// route-not-found answer is text/plain. So a non-JSON 404 on a /v1 path
// can only come from a server that predates the versioned surface.
func routeMissing(resp *http.Response) bool {
	return resp.StatusCode == http.StatusNotFound &&
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json")
}

// get issues a ctx-bound GET for the API endpoint (e.g. "/page") plus
// query, negotiating the wire version: the versioned /v1 path is tried
// first, and a route-missing 404 latches the transport onto the legacy
// unversioned paths for all subsequent requests. hdr, when non-nil, is
// merged into the request (If-None-Match for revalidation).
func (t *Transport) get(ctx context.Context, endpoint, query string, hdr http.Header) (*http.Response, error) {
	build := func(url string) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		injectTraceparent(ctx, req)
		return req, nil
	}
	if !t.legacy.Load() {
		req, err := build(t.base + "/v1" + endpoint + query)
		if err != nil {
			return nil, err
		}
		resp, err := t.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if !routeMissing(resp) {
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.legacy.Store(true)
	}
	req, err := build(t.base + endpoint + query)
	if err != nil {
		return nil, err
	}
	return t.hc.Do(req)
}

// FetchSketch implements proxy.Transport.
func (t *Transport) FetchSketch(ctx context.Context, _ netsim.Region) (*cachesketch.Snapshot, time.Duration, error) {
	start := t.clk.Now()
	resp, err := t.get(ctx, "/sketch", "", nil)
	if err != nil {
		return nil, 0, asOffline(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, t.clk.Now().Sub(start), statusErr("sketch", "/sketch", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, t.clk.Now().Sub(start), asOffline(err)
	}
	var f bloom.Filter
	if err := f.UnmarshalBinary(data); err != nil {
		return nil, t.clk.Now().Sub(start), fmt.Errorf("httpclient: sketch decode: %w", err)
	}
	gen, _ := strconv.ParseUint(resp.Header.Get("X-Sketch-Generation"), 10, 64)
	if gen == 0 {
		t.generation++
		gen = t.generation
	}
	// TakenAt uses the client clock at receive time: conservative within
	// one transfer time, which only shortens the effective Δ slightly.
	return &cachesketch.Snapshot{
		Filter:     &f,
		Generation: gen,
		TakenAt:    t.clk.Now(),
	}, t.clk.Now().Sub(start), nil
}

// parseMaxAge extracts max-age seconds from a Cache-Control header.
func parseMaxAge(cc string) (time.Duration, bool) {
	for _, part := range strings.Split(cc, ",") {
		part = strings.TrimSpace(part)
		if rest, ok := strings.CutPrefix(part, "max-age="); ok {
			secs, err := strconv.Atoi(rest)
			if err != nil || secs < 0 {
				return 0, false
			}
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}

// parseVersionETag extracts the version from the server's `"v<n>"` ETags.
func parseVersionETag(tag string) uint64 {
	tag = strings.Trim(strings.TrimPrefix(strings.TrimSpace(tag), "W/"), `"`)
	if !strings.HasPrefix(tag, "v") {
		return 0
	}
	v, _ := strconv.ParseUint(tag[1:], 10, 64)
	return v
}

// entryFromResponse builds a cache entry from a 200 page response.
func (t *Transport) entryFromResponse(path string, resp *http.Response, body []byte) cache.Entry {
	now := t.clk.Now()
	e := cache.Entry{
		Key:      path,
		Body:     body,
		Version:  parseVersionETag(resp.Header.Get("ETag")),
		StoredAt: now,
	}
	if maxAge, ok := parseMaxAge(resp.Header.Get("Cache-Control")); ok && maxAge > 0 {
		e.ExpiresAt = now.Add(maxAge)
	}
	if blocks := resp.Header.Get("X-Blocks"); blocks != "" {
		e.Metadata = map[string]string{"blocks": blocks}
	}
	return e
}

func sourceFromHeader(h string) proxy.Source {
	switch h {
	case "cdn":
		return proxy.SourceCDN
	case "device":
		return proxy.SourceDevice
	default:
		return proxy.SourceOrigin
	}
}

// Fetch implements proxy.Transport.
func (t *Transport) Fetch(ctx context.Context, _ netsim.Region, path string) (cache.Entry, time.Duration, proxy.Source, error) {
	start := t.clk.Now()
	resp, err := t.get(ctx, "/page", "?path="+url.QueryEscape(path), nil)
	if err != nil {
		return cache.Entry{}, 0, 0, asOffline(err)
	}
	defer resp.Body.Close()
	lat := t.clk.Now().Sub(start)
	if resp.StatusCode != http.StatusOK {
		return cache.Entry{}, lat, 0, statusErr("fetch", path, resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return cache.Entry{}, lat, 0, asOffline(err)
	}
	lat = t.clk.Now().Sub(start)
	return t.entryFromResponse(path, resp, body), lat, sourceFromHeader(resp.Header.Get("X-Served-By")), nil
}

// Revalidate implements proxy.Transport via If-None-Match.
func (t *Transport) Revalidate(ctx context.Context, _ netsim.Region, path string, knownVersion uint64) (proxy.RevalidationResult, error) {
	start := t.clk.Now()
	hdr := http.Header{}
	hdr.Set("If-None-Match", fmt.Sprintf("%q", "v"+strconv.FormatUint(knownVersion, 10)))
	resp, err := t.get(ctx, "/page", "?path="+url.QueryEscape(path), hdr)
	if err != nil {
		return proxy.RevalidationResult{}, asOffline(err)
	}
	defer resp.Body.Close()
	lat := t.clk.Now().Sub(start)

	switch resp.StatusCode {
	case http.StatusNotModified:
		e := cache.Entry{Key: path, Version: knownVersion, StoredAt: t.clk.Now()}
		if maxAge, ok := parseMaxAge(resp.Header.Get("Cache-Control")); ok && maxAge > 0 {
			e.ExpiresAt = t.clk.Now().Add(maxAge)
		}
		return proxy.RevalidationResult{
			NotModified: true, Entry: e, Latency: lat, Source: proxy.SourceOrigin,
		}, nil
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return proxy.RevalidationResult{}, asOffline(err)
		}
		return proxy.RevalidationResult{
			Entry:   t.entryFromResponse(path, resp, body),
			Latency: t.clk.Now().Sub(start),
			Source:  sourceFromHeader(resp.Header.Get("X-Served-By")),
		}, nil
	default:
		return proxy.RevalidationResult{}, statusErr("revalidate", path, resp)
	}
}

// FetchBlocks implements proxy.Transport over the first-party API. Only
// the user ID crosses the wire — the server resolves the session.
func (t *Transport) FetchBlocks(ctx context.Context, _ netsim.Region, names []string, u *session.User) (map[string][]byte, time.Duration, error) {
	start := t.clk.Now()
	q := url.Values{"names": {strings.Join(names, ",")}}
	if u != nil {
		q.Set("user", u.ID)
	}
	resp, err := t.get(ctx, "/blocks", "?"+q.Encode(), nil)
	if err != nil {
		return nil, 0, asOffline(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, t.clk.Now().Sub(start), statusErr("blocks", strings.Join(names, ","), resp)
	}
	var decoded map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		return nil, t.clk.Now().Sub(start), fmt.Errorf("httpclient: blocks decode: %w", err)
	}
	out := make(map[string][]byte, len(decoded))
	for k, v := range decoded {
		out[k] = []byte(v)
	}
	return out, t.clk.Now().Sub(start), nil
}

var _ proxy.Transport = (*Transport)(nil)
