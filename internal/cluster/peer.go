package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Peer is the HTTP client for one remote node's /v1/cluster surface. It
// implements DeltaSource (so the merge layer pulls real frames over the
// wire) and mirrors the routed-report writers, which is how a router
// forwards coherence traffic to a node in another process.
type Peer struct {
	name string
	base string
	hc   *http.Client
}

// NewPeer creates a client for the named node at baseURL (e.g.
// "http://127.0.0.1:7101"). A nil hc uses http.DefaultClient.
func NewPeer(name, baseURL string, hc *http.Client) *Peer {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Peer{name: name, base: baseURL, hc: hc}
}

// Name returns the peer's member name.
func (p *Peer) Name() string { return p.name }

// decodeError turns a non-2xx response into an error: 503/unavailable
// maps back onto ErrNodeDown so routers treat remote and in-process
// outages identically.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
		if eb.Error.Code == codeUnavailable {
			return fmt.Errorf("%w (peer: %s)", ErrNodeDown, eb.Error.Message)
		}
		return fmt.Errorf("cluster: peer %s: %s", eb.Error.Code, eb.Error.Message)
	}
	return fmt.Errorf("cluster: peer status %d", resp.StatusCode)
}

// Delta fetches the node's current frame from /v1/cluster/delta. A
// connection failure reports the node down — from the merge layer's
// perspective an unreachable node and a dead one degrade identically.
func (p *Peer) Delta() (DeltaFrame, error) {
	resp, err := p.hc.Get(p.base + "/v1/cluster/delta")
	if err != nil {
		return DeltaFrame{}, fmt.Errorf("%w: %v", ErrNodeDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return DeltaFrame{}, decodeError(resp)
	}
	var frame DeltaFrame
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		return DeltaFrame{}, fmt.Errorf("cluster: peer delta decode: %w", err)
	}
	return frame, nil
}

// Ring fetches the node's view of the ring layout from /v1/cluster/ring.
func (p *Peer) Ring() (RingInfo, error) {
	resp, err := p.hc.Get(p.base + "/v1/cluster/ring")
	if err != nil {
		return RingInfo{}, fmt.Errorf("%w: %v", ErrNodeDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RingInfo{}, decodeError(resp)
	}
	var info RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return RingInfo{}, fmt.Errorf("cluster: peer ring decode: %w", err)
	}
	return info, nil
}

// report POSTs one reportRequest to /v1/cluster/report. This is the
// inter-node frame writer piiflow treats as a sink: only anonymous
// resource IDs may reach it.
func (p *Peer) report(req reportRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := p.hc.Post(p.base+"/v1/cluster/report", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNodeDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// ReportWrites forwards a batch of write reports to the remote shard.
func (p *Peer) ReportWrites(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	return p.report(reportRequest{Writes: keys})
}

// ReportCachedRead forwards one cache-fill report to the remote shard.
func (p *Peer) ReportCachedRead(key string, expiresAt time.Time) error {
	return p.report(reportRequest{Reads: []readReport{{Key: key, ExpiresAt: expiresAt}}})
}
