package workload

import (
	"fmt"
	"math/rand"

	"speedkit/internal/storage"
)

// SeedCatalog populates the document store with a deterministic product
// catalog of the given size: prices in [5, 205), stock in [0, 100),
// categories round-robin over Categories. Shared by examples, tests, and
// every benchmark.
func SeedCatalog(docs *storage.DocumentStore, seed int64, products int) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < products; i++ {
		doc := map[string]any{
			"name":     fmt.Sprintf("Product %d", i),
			"category": CategoryOf(i),
			"price":    5 + rng.Float64()*200,
			"stock":    int64(rng.Intn(100)),
		}
		if err := docs.Insert("products", ProductID(i), doc); err != nil {
			return fmt.Errorf("workload: seed catalog: %w", err)
		}
	}
	return nil
}

// ApplyWrite executes a write op against the document store, returning
// the product page path it invalidates. AddToCart/Checkout ops are
// device-local and return an empty path.
func ApplyWrite(docs *storage.DocumentStore, rng *rand.Rand, op Op) (string, error) {
	switch op.Kind {
	case UpdatePrice:
		err := docs.Patch("products", op.ProductID, map[string]any{
			"price": 5 + rng.Float64()*200,
		})
		return "/product/" + op.ProductID, err
	case UpdateStock:
		err := docs.Patch("products", op.ProductID, map[string]any{
			"stock": int64(rng.Intn(100)),
		})
		return "/product/" + op.ProductID, err
	default:
		return "", nil
	}
}
