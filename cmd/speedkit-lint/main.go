// Command speedkit-lint runs the repo-specific static-analysis suite
// (internal/lint) over the whole module: the GDPR-boundary, clock-,
// lock-, and randomness-discipline analyzers plus the interprocedural
// piiflow and hotpathalloc passes that pin the invariants the paper's
// claims depend on.
//
// Usage:
//
//	speedkit-lint [flags] [./...]
//
// Diagnostics print one per line as "file:line: [analyzer] message" with
// module-relative paths. Findings recorded in the baseline file
// (lint.baseline.json at the module root by default) are reported but do
// not affect the exit status; exit status is 1 only when there are
// non-baselined findings, 2 on a load or usage error, and 0 otherwise.
//
// -json emits the findings as a JSON array; -sarif writes a SARIF 2.1.0
// log (for CI artifact upload) to the given path, with baselined findings
// marked baselineState "unchanged" and fresh ones "new".
// -write-baseline regenerates the baseline from the current findings —
// review additions to it like //lint:ignore directives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"speedkit/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON instead of text")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 log to `file` (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "baseline `file` (default <module>/lint.baseline.json)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline from current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: speedkit-lint [flags] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The loader always analyzes the whole module; the only accepted
	// pattern is the conventional ./... spelling (or nothing).
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "speedkit-lint: unsupported pattern %q (only ./...)\n", arg)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := lint.LoadModule(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := mod.LoadAll()
	if err != nil {
		fatal(err)
	}

	diags := lint.Relativize(lint.Run(pkgs, lint.Analyzers()), mod.Root)

	if *baselinePath == "" {
		*baselinePath = filepath.Join(mod.Root, "lint.baseline.json")
	}
	if *writeBaseline {
		if err := lint.WriteBaseline(*baselinePath, diags); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "speedkit-lint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return
	}
	base, err := lint.ReadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, baselined := base.Split(diags)

	if *sarifPath != "" {
		data, err := lint.SARIF(lint.Analyzers(), fresh, baselined)
		if err != nil {
			fatal(err)
		}
		if *sarifPath == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*sarifPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	switch {
	case *jsonOut:
		type finding struct {
			File      string `json:"file"`
			Line      int    `json:"line"`
			Analyzer  string `json:"analyzer"`
			Message   string `json:"message"`
			Baselined bool   `json:"baselined,omitempty"`
		}
		out := []finding{}
		emit := func(ds []lint.Diagnostic, baselined bool) {
			for _, d := range ds {
				out = append(out, finding{
					File:      d.Pos.Filename,
					Line:      d.Pos.Line,
					Analyzer:  d.Analyzer,
					Message:   d.Message,
					Baselined: baselined,
				})
			}
		}
		emit(fresh, false)
		emit(baselined, true)
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	default:
		for _, d := range fresh {
			fmt.Println(d)
		}
		for _, d := range baselined {
			fmt.Printf("%s (baselined)\n", d)
		}
	}

	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "speedkit-lint: %d new finding(s) in %d package(s)\n", len(fresh), len(pkgs))
		os.Exit(1)
	}
	if len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "speedkit-lint: %d baselined finding(s), none new\n", len(baselined))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "speedkit-lint: %v\n", err)
	os.Exit(2)
}
