package session

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"

	"speedkit/internal/netsim"
)

func TestCartOperations(t *testing.T) {
	u := &User{ID: "u1"}
	u.AddToCart("p1", 2)
	u.AddToCart("p2", 1)
	u.AddToCart("p1", 3) // merges
	u.AddToCart("p3", 0) // ignored
	u.AddToCart("p3", -1)

	cart := u.Cart()
	if len(cart) != 2 {
		t.Fatalf("cart lines = %d, want 2", len(cart))
	}
	if cart[0].ProductID != "p1" || cart[0].Quantity != 5 {
		t.Fatalf("p1 line = %+v", cart[0])
	}
	if u.CartSize() != 6 {
		t.Fatalf("cart size = %d", u.CartSize())
	}
	u.ClearCart()
	if u.CartSize() != 0 {
		t.Fatal("clear failed")
	}
}

func TestCartCopyIsolation(t *testing.T) {
	u := &User{ID: "u1"}
	u.AddToCart("p1", 1)
	c := u.Cart()
	c[0].Quantity = 99
	if u.Cart()[0].Quantity != 1 {
		t.Fatal("Cart returns aliased slice")
	}
}

func TestHistoryBounded(t *testing.T) {
	u := &User{ID: "u1"}
	for i := 0; i < 30; i++ {
		u.RecordView("p")
	}
	if len(u.History()) != 20 {
		t.Fatalf("history len = %d, want 20", len(u.History()))
	}
}

func TestHistoryOrder(t *testing.T) {
	u := &User{ID: "u1"}
	u.RecordView("a")
	u.RecordView("b")
	h := u.History()
	if h[0] != "a" || h[1] != "b" {
		t.Fatalf("history = %v", h)
	}
	h[0] = "mutated"
	if u.History()[0] != "a" {
		t.Fatal("History returns aliased slice")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(1)), 7, netsim.EU)
	b := Generate(rand.New(rand.NewSource(1)), 7, netsim.EU)
	if a.ID != b.ID || a.LoggedIn != b.LoggedIn || a.Tier != b.Tier ||
		a.ConsentPersonalization != b.ConsentPersonalization {
		t.Fatal("same-seed generation diverged")
	}
}

func TestGenerateAnonymousUsersHaveNoPII(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		u := Generate(rng, i, netsim.US)
		if !u.LoggedIn && (u.Name != "" || u.Email != "" || u.ConsentPersonalization) {
			t.Fatalf("anonymous user %d carries identity: %+v", i, u)
		}
		if u.LoggedIn && (u.Name == "" || u.Email == "") {
			t.Fatalf("logged-in user %d missing identity", i)
		}
	}
}

// renderUser flattens every generated field so population comparisons are
// byte-exact, not just field-subset checks.
func renderUser(u *User) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%t|%t|%t",
		u.ID, u.Name, u.Email, u.Region, u.Tier,
		u.LoggedIn, u.ConsentPersonalization, u.ConsentAnalytics)
}

func TestPopulationByteIdenticalForSeed(t *testing.T) {
	const seed, n = 7, 120
	a := Population(seed, n)
	b := PopulationRNG(rand.New(rand.NewSource(seed)), n)
	c := Population(seed, n)
	for i := range a {
		ra, rb, rc := renderUser(a[i]), renderUser(b[i]), renderUser(c[i])
		if ra != rb {
			t.Fatalf("user %d differs between Population and PopulationRNG:\n %s\n %s", i, ra, rb)
		}
		if ra != rc {
			t.Fatalf("user %d differs across Population runs:\n %s\n %s", i, ra, rc)
		}
	}
}

// TestPopulationGolden pins the generated population against a recorded
// digest so that refactors of the generator cannot silently reshuffle the
// user base every experiment is seeded with.
func TestPopulationGolden(t *testing.T) {
	h := sha256.New()
	for _, u := range Population(42, 50) {
		fmt.Fprintln(h, renderUser(u))
	}
	const want = "08ed1400199b92197ff9f76a3bc5d4a9b9873e33657a326726771347a33c74e6"
	if got := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Fatalf("population digest for seed 42 = %s, want %s", got, want)
	}
}

func TestPopulationDistribution(t *testing.T) {
	users := Population(1, 3000)
	if len(users) != 3000 {
		t.Fatalf("len = %d", len(users))
	}
	loggedIn, consent := 0, 0
	regions := map[netsim.Region]int{}
	for _, u := range users {
		if u.LoggedIn {
			loggedIn++
			if u.ConsentPersonalization {
				consent++
			}
		}
		regions[u.Region]++
	}
	// ~60% logged in, ~80% of those consenting.
	if loggedIn < 1600 || loggedIn > 2000 {
		t.Fatalf("logged in = %d, want ~1800", loggedIn)
	}
	if ratio := float64(consent) / float64(loggedIn); ratio < 0.7 || ratio > 0.9 {
		t.Fatalf("consent ratio = %v, want ~0.8", ratio)
	}
	for _, r := range netsim.Regions() {
		if regions[r] != 1000 {
			t.Fatalf("region %s count = %d", r, regions[r])
		}
	}
	// IDs must be unique.
	seen := map[string]bool{}
	for _, u := range users {
		if seen[u.ID] {
			t.Fatalf("duplicate ID %s", u.ID)
		}
		seen[u.ID] = true
	}
}
