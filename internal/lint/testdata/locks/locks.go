// Package locks seeds lockcheck violations for the analyzer's fixture
// test.
package locks

import "sync"

// Box is a mutex-guarded counter.
type Box struct {
	mu   sync.Mutex
	data int // guarded by mu
}

// Bad reads the guarded field without the lock.
func (b *Box) Bad() int {
	return b.data // want "guarded by mu"
}

// Good brackets the access: no finding.
func (b *Box) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.data
}

// GoodExplicit unlocks explicitly: no finding.
func (b *Box) GoodExplicit(v int) {
	b.mu.Lock()
	b.data = v
	b.mu.Unlock()
}

// Leak locks without ever unlocking.
func (b *Box) Leak(v int) {
	b.mu.Lock() // want "no matching Unlock"
	b.data = v
}

// bumpLocked runs under the caller's lock per the Locked-suffix
// convention: no finding.
func (b *Box) bumpLocked() { b.data++ }

// merge also runs under the caller's lock, marked by doc comment. The
// caller must hold b.mu.
func (b *Box) merge(v int) { b.data += v }

// RBox exercises the read-lock path.
type RBox struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

// Read holds the read lock: no finding.
func (r *RBox) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.val
}

// Stale releases the read lock before the access.
func (r *RBox) Stale() int {
	r.mu.RLock()
	r.mu.RUnlock()
	return r.val // want "guarded by mu"
}
